file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive_sampling.dir/ext_adaptive_sampling.cc.o"
  "CMakeFiles/ext_adaptive_sampling.dir/ext_adaptive_sampling.cc.o.d"
  "ext_adaptive_sampling"
  "ext_adaptive_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
