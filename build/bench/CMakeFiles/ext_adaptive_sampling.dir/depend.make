# Empty dependencies file for ext_adaptive_sampling.
# This may be replaced when dependencies are built.
