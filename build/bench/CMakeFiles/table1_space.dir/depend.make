# Empty dependencies file for table1_space.
# This may be replaced when dependencies are built.
