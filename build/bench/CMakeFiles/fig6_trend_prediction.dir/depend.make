# Empty dependencies file for fig6_trend_prediction.
# This may be replaced when dependencies are built.
