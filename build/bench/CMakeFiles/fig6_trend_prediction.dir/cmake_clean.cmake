file(REMOVE_RECURSE
  "CMakeFiles/fig6_trend_prediction.dir/fig6_trend_prediction.cc.o"
  "CMakeFiles/fig6_trend_prediction.dir/fig6_trend_prediction.cc.o.d"
  "fig6_trend_prediction"
  "fig6_trend_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_trend_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
