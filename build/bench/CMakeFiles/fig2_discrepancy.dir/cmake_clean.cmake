file(REMOVE_RECURSE
  "CMakeFiles/fig2_discrepancy.dir/fig2_discrepancy.cc.o"
  "CMakeFiles/fig2_discrepancy.dir/fig2_discrepancy.cc.o.d"
  "fig2_discrepancy"
  "fig2_discrepancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
