# Empty compiler generated dependencies file for fig2_discrepancy.
# This may be replaced when dependencies are built.
