file(REMOVE_RECURSE
  "CMakeFiles/table5_splits.dir/table5_splits.cc.o"
  "CMakeFiles/table5_splits.dir/table5_splits.cc.o.d"
  "table5_splits"
  "table5_splits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_splits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
