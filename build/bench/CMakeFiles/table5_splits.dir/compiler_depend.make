# Empty compiler generated dependencies file for table5_splits.
# This may be replaced when dependencies are built.
