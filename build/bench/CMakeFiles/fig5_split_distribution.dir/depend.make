# Empty dependencies file for fig5_split_distribution.
# This may be replaced when dependencies are built.
