file(REMOVE_RECURSE
  "CMakeFiles/fig5_split_distribution.dir/fig5_split_distribution.cc.o"
  "CMakeFiles/fig5_split_distribution.dir/fig5_split_distribution.cc.o.d"
  "fig5_split_distribution"
  "fig5_split_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_split_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
