# Empty dependencies file for fig7_linear_vs_rbf.
# This may be replaced when dependencies are built.
