file(REMOVE_RECURSE
  "CMakeFiles/fig7_linear_vs_rbf.dir/fig7_linear_vs_rbf.cc.o"
  "CMakeFiles/fig7_linear_vs_rbf.dir/fig7_linear_vs_rbf.cc.o.d"
  "fig7_linear_vs_rbf"
  "fig7_linear_vs_rbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_linear_vs_rbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
