# Empty dependencies file for ext_power_model.
# This may be replaced when dependencies are built.
