
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_power_model.cc" "bench/CMakeFiles/ext_power_model.dir/ext_power_model.cc.o" "gcc" "bench/CMakeFiles/ext_power_model.dir/ext_power_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ppm_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ppm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/rbf/CMakeFiles/ppm_rbf.dir/DependInfo.cmake"
  "/root/repo/build/src/linreg/CMakeFiles/ppm_linreg.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/ppm_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/ppm_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/dspace/CMakeFiles/ppm_dspace.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ppm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
