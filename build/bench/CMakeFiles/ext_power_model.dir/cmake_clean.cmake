file(REMOVE_RECURSE
  "CMakeFiles/ext_power_model.dir/ext_power_model.cc.o"
  "CMakeFiles/ext_power_model.dir/ext_power_model.cc.o.d"
  "ext_power_model"
  "ext_power_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
