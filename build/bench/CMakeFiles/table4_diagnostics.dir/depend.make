# Empty dependencies file for table4_diagnostics.
# This may be replaced when dependencies are built.
