file(REMOVE_RECURSE
  "CMakeFiles/table4_diagnostics.dir/table4_diagnostics.cc.o"
  "CMakeFiles/table4_diagnostics.dir/table4_diagnostics.cc.o.d"
  "table4_diagnostics"
  "table4_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
