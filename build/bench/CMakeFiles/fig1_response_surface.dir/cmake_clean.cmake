file(REMOVE_RECURSE
  "CMakeFiles/fig1_response_surface.dir/fig1_response_surface.cc.o"
  "CMakeFiles/fig1_response_surface.dir/fig1_response_surface.cc.o.d"
  "fig1_response_surface"
  "fig1_response_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_response_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
