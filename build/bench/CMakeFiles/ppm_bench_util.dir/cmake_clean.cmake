file(REMOVE_RECURSE
  "CMakeFiles/ppm_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ppm_bench_util.dir/bench_util.cc.o.d"
  "libppm_bench_util.a"
  "libppm_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
