file(REMOVE_RECURSE
  "libppm_bench_util.a"
)
