# Empty dependencies file for ppm_bench_util.
# This may be replaced when dependencies are built.
