file(REMOVE_RECURSE
  "CMakeFiles/fig4_error_vs_samples.dir/fig4_error_vs_samples.cc.o"
  "CMakeFiles/fig4_error_vs_samples.dir/fig4_error_vs_samples.cc.o.d"
  "fig4_error_vs_samples"
  "fig4_error_vs_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_error_vs_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
