# Empty compiler generated dependencies file for fig4_error_vs_samples.
# This may be replaced when dependencies are built.
