file(REMOVE_RECURSE
  "CMakeFiles/ppm_sim.dir/branch_predictor.cc.o"
  "CMakeFiles/ppm_sim.dir/branch_predictor.cc.o.d"
  "CMakeFiles/ppm_sim.dir/cache.cc.o"
  "CMakeFiles/ppm_sim.dir/cache.cc.o.d"
  "CMakeFiles/ppm_sim.dir/config.cc.o"
  "CMakeFiles/ppm_sim.dir/config.cc.o.d"
  "CMakeFiles/ppm_sim.dir/dram.cc.o"
  "CMakeFiles/ppm_sim.dir/dram.cc.o.d"
  "CMakeFiles/ppm_sim.dir/functional_units.cc.o"
  "CMakeFiles/ppm_sim.dir/functional_units.cc.o.d"
  "CMakeFiles/ppm_sim.dir/memory_controller.cc.o"
  "CMakeFiles/ppm_sim.dir/memory_controller.cc.o.d"
  "CMakeFiles/ppm_sim.dir/memory_hierarchy.cc.o"
  "CMakeFiles/ppm_sim.dir/memory_hierarchy.cc.o.d"
  "CMakeFiles/ppm_sim.dir/ooo_core.cc.o"
  "CMakeFiles/ppm_sim.dir/ooo_core.cc.o.d"
  "CMakeFiles/ppm_sim.dir/power.cc.o"
  "CMakeFiles/ppm_sim.dir/power.cc.o.d"
  "CMakeFiles/ppm_sim.dir/simulator.cc.o"
  "CMakeFiles/ppm_sim.dir/simulator.cc.o.d"
  "libppm_sim.a"
  "libppm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
