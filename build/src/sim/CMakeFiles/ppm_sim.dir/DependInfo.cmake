
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch_predictor.cc" "src/sim/CMakeFiles/ppm_sim.dir/branch_predictor.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/branch_predictor.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/ppm_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/ppm_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/dram.cc" "src/sim/CMakeFiles/ppm_sim.dir/dram.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/dram.cc.o.d"
  "/root/repo/src/sim/functional_units.cc" "src/sim/CMakeFiles/ppm_sim.dir/functional_units.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/functional_units.cc.o.d"
  "/root/repo/src/sim/memory_controller.cc" "src/sim/CMakeFiles/ppm_sim.dir/memory_controller.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/memory_controller.cc.o.d"
  "/root/repo/src/sim/memory_hierarchy.cc" "src/sim/CMakeFiles/ppm_sim.dir/memory_hierarchy.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/memory_hierarchy.cc.o.d"
  "/root/repo/src/sim/ooo_core.cc" "src/sim/CMakeFiles/ppm_sim.dir/ooo_core.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/ooo_core.cc.o.d"
  "/root/repo/src/sim/power.cc" "src/sim/CMakeFiles/ppm_sim.dir/power.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/power.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/ppm_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/ppm_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/ppm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dspace/CMakeFiles/ppm_dspace.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ppm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
