# Empty dependencies file for ppm_linreg.
# This may be replaced when dependencies are built.
