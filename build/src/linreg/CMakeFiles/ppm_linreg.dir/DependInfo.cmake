
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linreg/linear_model.cc" "src/linreg/CMakeFiles/ppm_linreg.dir/linear_model.cc.o" "gcc" "src/linreg/CMakeFiles/ppm_linreg.dir/linear_model.cc.o.d"
  "/root/repo/src/linreg/model_selection.cc" "src/linreg/CMakeFiles/ppm_linreg.dir/model_selection.cc.o" "gcc" "src/linreg/CMakeFiles/ppm_linreg.dir/model_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dspace/CMakeFiles/ppm_dspace.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ppm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
