file(REMOVE_RECURSE
  "CMakeFiles/ppm_linreg.dir/linear_model.cc.o"
  "CMakeFiles/ppm_linreg.dir/linear_model.cc.o.d"
  "CMakeFiles/ppm_linreg.dir/model_selection.cc.o"
  "CMakeFiles/ppm_linreg.dir/model_selection.cc.o.d"
  "libppm_linreg.a"
  "libppm_linreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_linreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
