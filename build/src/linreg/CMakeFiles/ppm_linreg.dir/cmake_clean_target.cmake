file(REMOVE_RECURSE
  "libppm_linreg.a"
)
