file(REMOVE_RECURSE
  "libppm_rbf.a"
)
