
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rbf/basis.cc" "src/rbf/CMakeFiles/ppm_rbf.dir/basis.cc.o" "gcc" "src/rbf/CMakeFiles/ppm_rbf.dir/basis.cc.o.d"
  "/root/repo/src/rbf/criteria.cc" "src/rbf/CMakeFiles/ppm_rbf.dir/criteria.cc.o" "gcc" "src/rbf/CMakeFiles/ppm_rbf.dir/criteria.cc.o.d"
  "/root/repo/src/rbf/network.cc" "src/rbf/CMakeFiles/ppm_rbf.dir/network.cc.o" "gcc" "src/rbf/CMakeFiles/ppm_rbf.dir/network.cc.o.d"
  "/root/repo/src/rbf/rbf_rt.cc" "src/rbf/CMakeFiles/ppm_rbf.dir/rbf_rt.cc.o" "gcc" "src/rbf/CMakeFiles/ppm_rbf.dir/rbf_rt.cc.o.d"
  "/root/repo/src/rbf/serialize.cc" "src/rbf/CMakeFiles/ppm_rbf.dir/serialize.cc.o" "gcc" "src/rbf/CMakeFiles/ppm_rbf.dir/serialize.cc.o.d"
  "/root/repo/src/rbf/trainer.cc" "src/rbf/CMakeFiles/ppm_rbf.dir/trainer.cc.o" "gcc" "src/rbf/CMakeFiles/ppm_rbf.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tree/CMakeFiles/ppm_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/dspace/CMakeFiles/ppm_dspace.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ppm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
