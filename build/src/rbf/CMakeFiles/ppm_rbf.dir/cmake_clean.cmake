file(REMOVE_RECURSE
  "CMakeFiles/ppm_rbf.dir/basis.cc.o"
  "CMakeFiles/ppm_rbf.dir/basis.cc.o.d"
  "CMakeFiles/ppm_rbf.dir/criteria.cc.o"
  "CMakeFiles/ppm_rbf.dir/criteria.cc.o.d"
  "CMakeFiles/ppm_rbf.dir/network.cc.o"
  "CMakeFiles/ppm_rbf.dir/network.cc.o.d"
  "CMakeFiles/ppm_rbf.dir/rbf_rt.cc.o"
  "CMakeFiles/ppm_rbf.dir/rbf_rt.cc.o.d"
  "CMakeFiles/ppm_rbf.dir/serialize.cc.o"
  "CMakeFiles/ppm_rbf.dir/serialize.cc.o.d"
  "CMakeFiles/ppm_rbf.dir/trainer.cc.o"
  "CMakeFiles/ppm_rbf.dir/trainer.cc.o.d"
  "libppm_rbf.a"
  "libppm_rbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_rbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
