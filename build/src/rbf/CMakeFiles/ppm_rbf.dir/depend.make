# Empty dependencies file for ppm_rbf.
# This may be replaced when dependencies are built.
