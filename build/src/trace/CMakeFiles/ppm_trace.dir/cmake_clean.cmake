file(REMOVE_RECURSE
  "CMakeFiles/ppm_trace.dir/benchmark_profile.cc.o"
  "CMakeFiles/ppm_trace.dir/benchmark_profile.cc.o.d"
  "CMakeFiles/ppm_trace.dir/trace.cc.o"
  "CMakeFiles/ppm_trace.dir/trace.cc.o.d"
  "CMakeFiles/ppm_trace.dir/trace_generator.cc.o"
  "CMakeFiles/ppm_trace.dir/trace_generator.cc.o.d"
  "libppm_trace.a"
  "libppm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
