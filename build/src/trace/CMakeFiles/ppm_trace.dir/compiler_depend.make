# Empty compiler generated dependencies file for ppm_trace.
# This may be replaced when dependencies are built.
