file(REMOVE_RECURSE
  "libppm_trace.a"
)
