
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/benchmark_profile.cc" "src/trace/CMakeFiles/ppm_trace.dir/benchmark_profile.cc.o" "gcc" "src/trace/CMakeFiles/ppm_trace.dir/benchmark_profile.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/ppm_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/ppm_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/trace_generator.cc" "src/trace/CMakeFiles/ppm_trace.dir/trace_generator.cc.o" "gcc" "src/trace/CMakeFiles/ppm_trace.dir/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/ppm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
