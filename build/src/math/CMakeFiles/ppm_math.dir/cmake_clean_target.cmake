file(REMOVE_RECURSE
  "libppm_math.a"
)
