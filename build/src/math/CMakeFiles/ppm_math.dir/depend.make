# Empty dependencies file for ppm_math.
# This may be replaced when dependencies are built.
