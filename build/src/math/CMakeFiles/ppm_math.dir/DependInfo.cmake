
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/linalg.cc" "src/math/CMakeFiles/ppm_math.dir/linalg.cc.o" "gcc" "src/math/CMakeFiles/ppm_math.dir/linalg.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/math/CMakeFiles/ppm_math.dir/matrix.cc.o" "gcc" "src/math/CMakeFiles/ppm_math.dir/matrix.cc.o.d"
  "/root/repo/src/math/rng.cc" "src/math/CMakeFiles/ppm_math.dir/rng.cc.o" "gcc" "src/math/CMakeFiles/ppm_math.dir/rng.cc.o.d"
  "/root/repo/src/math/stats.cc" "src/math/CMakeFiles/ppm_math.dir/stats.cc.o" "gcc" "src/math/CMakeFiles/ppm_math.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
