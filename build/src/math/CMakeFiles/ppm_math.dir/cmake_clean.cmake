file(REMOVE_RECURSE
  "CMakeFiles/ppm_math.dir/linalg.cc.o"
  "CMakeFiles/ppm_math.dir/linalg.cc.o.d"
  "CMakeFiles/ppm_math.dir/matrix.cc.o"
  "CMakeFiles/ppm_math.dir/matrix.cc.o.d"
  "CMakeFiles/ppm_math.dir/rng.cc.o"
  "CMakeFiles/ppm_math.dir/rng.cc.o.d"
  "CMakeFiles/ppm_math.dir/stats.cc.o"
  "CMakeFiles/ppm_math.dir/stats.cc.o.d"
  "libppm_math.a"
  "libppm_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
