file(REMOVE_RECURSE
  "CMakeFiles/ppm_tree.dir/regression_tree.cc.o"
  "CMakeFiles/ppm_tree.dir/regression_tree.cc.o.d"
  "CMakeFiles/ppm_tree.dir/split_report.cc.o"
  "CMakeFiles/ppm_tree.dir/split_report.cc.o.d"
  "libppm_tree.a"
  "libppm_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
