file(REMOVE_RECURSE
  "libppm_tree.a"
)
