# Empty compiler generated dependencies file for ppm_tree.
# This may be replaced when dependencies are built.
