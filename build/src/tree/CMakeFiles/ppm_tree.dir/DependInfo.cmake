
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/regression_tree.cc" "src/tree/CMakeFiles/ppm_tree.dir/regression_tree.cc.o" "gcc" "src/tree/CMakeFiles/ppm_tree.dir/regression_tree.cc.o.d"
  "/root/repo/src/tree/split_report.cc" "src/tree/CMakeFiles/ppm_tree.dir/split_report.cc.o" "gcc" "src/tree/CMakeFiles/ppm_tree.dir/split_report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dspace/CMakeFiles/ppm_dspace.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/ppm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
