file(REMOVE_RECURSE
  "libppm_sampling.a"
)
