# Empty dependencies file for ppm_sampling.
# This may be replaced when dependencies are built.
