file(REMOVE_RECURSE
  "CMakeFiles/ppm_sampling.dir/discrepancy.cc.o"
  "CMakeFiles/ppm_sampling.dir/discrepancy.cc.o.d"
  "CMakeFiles/ppm_sampling.dir/latin_hypercube.cc.o"
  "CMakeFiles/ppm_sampling.dir/latin_hypercube.cc.o.d"
  "CMakeFiles/ppm_sampling.dir/sample_gen.cc.o"
  "CMakeFiles/ppm_sampling.dir/sample_gen.cc.o.d"
  "libppm_sampling.a"
  "libppm_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
