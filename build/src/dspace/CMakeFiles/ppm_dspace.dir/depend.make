# Empty dependencies file for ppm_dspace.
# This may be replaced when dependencies are built.
