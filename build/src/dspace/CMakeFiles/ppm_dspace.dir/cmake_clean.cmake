file(REMOVE_RECURSE
  "CMakeFiles/ppm_dspace.dir/design_space.cc.o"
  "CMakeFiles/ppm_dspace.dir/design_space.cc.o.d"
  "CMakeFiles/ppm_dspace.dir/paper_space.cc.o"
  "CMakeFiles/ppm_dspace.dir/paper_space.cc.o.d"
  "CMakeFiles/ppm_dspace.dir/parameter.cc.o"
  "CMakeFiles/ppm_dspace.dir/parameter.cc.o.d"
  "libppm_dspace.a"
  "libppm_dspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_dspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
