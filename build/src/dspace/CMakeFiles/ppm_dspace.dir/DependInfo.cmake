
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dspace/design_space.cc" "src/dspace/CMakeFiles/ppm_dspace.dir/design_space.cc.o" "gcc" "src/dspace/CMakeFiles/ppm_dspace.dir/design_space.cc.o.d"
  "/root/repo/src/dspace/paper_space.cc" "src/dspace/CMakeFiles/ppm_dspace.dir/paper_space.cc.o" "gcc" "src/dspace/CMakeFiles/ppm_dspace.dir/paper_space.cc.o.d"
  "/root/repo/src/dspace/parameter.cc" "src/dspace/CMakeFiles/ppm_dspace.dir/parameter.cc.o" "gcc" "src/dspace/CMakeFiles/ppm_dspace.dir/parameter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/ppm_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
