file(REMOVE_RECURSE
  "libppm_dspace.a"
)
