file(REMOVE_RECURSE
  "CMakeFiles/ppm_core.dir/adaptive.cc.o"
  "CMakeFiles/ppm_core.dir/adaptive.cc.o.d"
  "CMakeFiles/ppm_core.dir/evaluator.cc.o"
  "CMakeFiles/ppm_core.dir/evaluator.cc.o.d"
  "CMakeFiles/ppm_core.dir/explorer.cc.o"
  "CMakeFiles/ppm_core.dir/explorer.cc.o.d"
  "CMakeFiles/ppm_core.dir/knn_model.cc.o"
  "CMakeFiles/ppm_core.dir/knn_model.cc.o.d"
  "CMakeFiles/ppm_core.dir/model_builder.cc.o"
  "CMakeFiles/ppm_core.dir/model_builder.cc.o.d"
  "CMakeFiles/ppm_core.dir/oracle.cc.o"
  "CMakeFiles/ppm_core.dir/oracle.cc.o.d"
  "CMakeFiles/ppm_core.dir/predictor.cc.o"
  "CMakeFiles/ppm_core.dir/predictor.cc.o.d"
  "libppm_core.a"
  "libppm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
