file(REMOVE_RECURSE
  "CMakeFiles/test_knn_serialize.dir/test_knn_serialize.cc.o"
  "CMakeFiles/test_knn_serialize.dir/test_knn_serialize.cc.o.d"
  "test_knn_serialize"
  "test_knn_serialize.pdb"
  "test_knn_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knn_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
