file(REMOVE_RECURSE
  "CMakeFiles/test_parameter.dir/test_parameter.cc.o"
  "CMakeFiles/test_parameter.dir/test_parameter.cc.o.d"
  "test_parameter"
  "test_parameter.pdb"
  "test_parameter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
