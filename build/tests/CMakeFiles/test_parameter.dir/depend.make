# Empty dependencies file for test_parameter.
# This may be replaced when dependencies are built.
