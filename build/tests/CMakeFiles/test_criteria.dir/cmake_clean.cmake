file(REMOVE_RECURSE
  "CMakeFiles/test_criteria.dir/test_criteria.cc.o"
  "CMakeFiles/test_criteria.dir/test_criteria.cc.o.d"
  "test_criteria"
  "test_criteria.pdb"
  "test_criteria[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_criteria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
