file(REMOVE_RECURSE
  "CMakeFiles/test_discrepancy.dir/test_discrepancy.cc.o"
  "CMakeFiles/test_discrepancy.dir/test_discrepancy.cc.o.d"
  "test_discrepancy"
  "test_discrepancy.pdb"
  "test_discrepancy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
