# Empty dependencies file for test_discrepancy.
# This may be replaced when dependencies are built.
