file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_stats.dir/test_simulator_stats.cc.o"
  "CMakeFiles/test_simulator_stats.dir/test_simulator_stats.cc.o.d"
  "test_simulator_stats"
  "test_simulator_stats.pdb"
  "test_simulator_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
