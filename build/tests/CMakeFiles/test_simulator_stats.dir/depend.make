# Empty dependencies file for test_simulator_stats.
# This may be replaced when dependencies are built.
