# Empty dependencies file for test_rbf.
# This may be replaced when dependencies are built.
