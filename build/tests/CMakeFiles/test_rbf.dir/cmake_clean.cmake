file(REMOVE_RECURSE
  "CMakeFiles/test_rbf.dir/test_rbf.cc.o"
  "CMakeFiles/test_rbf.dir/test_rbf.cc.o.d"
  "test_rbf"
  "test_rbf.pdb"
  "test_rbf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
