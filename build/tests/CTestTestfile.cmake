# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_parameter[1]_include.cmake")
include("/root/repo/build/tests/test_design_space[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_discrepancy[1]_include.cmake")
include("/root/repo/build/tests/test_tree[1]_include.cmake")
include("/root/repo/build/tests/test_rbf[1]_include.cmake")
include("/root/repo/build/tests/test_criteria[1]_include.cmake")
include("/root/repo/build/tests/test_linreg[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_branch_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_knn_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_simulator_stats[1]_include.cmake")
