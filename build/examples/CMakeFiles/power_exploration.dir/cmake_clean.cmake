file(REMOVE_RECURSE
  "CMakeFiles/power_exploration.dir/power_exploration.cc.o"
  "CMakeFiles/power_exploration.dir/power_exploration.cc.o.d"
  "power_exploration"
  "power_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
