# Empty dependencies file for power_exploration.
# This may be replaced when dependencies are built.
