/**
 * @file
 * Quickstart: build a predictive CPI model for one benchmark and use
 * it in place of the simulator.
 *
 * The complete BuildRBFmodel flow in ~40 lines:
 *   1. pick a workload (synthetic SPEC CPU2000-like trace);
 *   2. get a memoizing simulation oracle from the factory — local by
 *      default, sharded across ppm_serve servers when
 *      PPM_SERVE_SOCKET is set, persistent when PPM_ARCHIVE_DIR is
 *      set (results are bit-identical either way);
 *   3. run the model builder (LHS sampling -> simulation -> RBF fit
 *      -> validation, growing the sample until accurate);
 *   4. predict CPI at a configuration that was never simulated.
 */

#include <cstdio>

#include "core/model_builder.hh"
#include "dspace/paper_space.hh"
#include "serve/oracle_factory.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

int
main()
{
    using namespace ppm;

    // 1. Workload: 100K instructions of a twolf-like program.
    const auto trace =
        trace::generateTrace(trace::profileByName("twolf"), 100000);

    // 2. The design space (paper Table 1) and the simulation oracle
    //    (honours PPM_SERVE_SOCKET / PPM_ARCHIVE_DIR).
    const auto train_space = dspace::paperTrainSpace();
    const auto test_space = dspace::paperTestSpace();
    const auto oracle =
        serve::makeOracle(train_space, "twolf", trace);

    // 3. Build the model: grow the sample until the mean validation
    //    error drops below 5%.
    core::ModelBuilder builder(train_space, test_space, *oracle);
    core::BuildOptions options;
    options.sample_sizes = {30, 50, 90};
    options.target_mean_error = 5.0;
    const core::BuildResult result = builder.build(options);

    std::printf("built %s from %lu simulations\n",
                result.model->describe().c_str(),
                static_cast<unsigned long>(result.simulations));
    for (const auto &step : result.history) {
        std::printf("  n=%3d: mean err %.2f%%, max %.2f%%\n",
                    step.sample_size, step.rbf_error.mean_error,
                    step.rbf_error.max_error);
    }

    // 4. Predict CPI at an unexplored design point and compare with
    //    one detailed simulation of the same point.
    const dspace::DesignPoint config{
        12,   // pipeline depth
        96,   // ROB entries
        0.5,  // IQ size as fraction of ROB
        0.5,  // LSQ size as fraction of ROB
        2048, // L2 size (KB)
        10,   // L2 latency
        32,   // IL1 size (KB)
        32,   // DL1 size (KB)
        2,    // DL1 latency
    };
    const double predicted = result.model->predict(config);
    const double simulated = oracle->cpi(config);
    std::printf("\nconfig [%s]\n",
                train_space.describe(config).c_str());
    std::printf("predicted CPI %.3f vs simulated %.3f (%.1f%% off)\n",
                predicted, simulated,
                100.0 * (predicted - simulated) / simulated);
    return 0;
}
