/**
 * @file
 * Design-space exploration: the paper's headline use case. Once a
 * model exists, searching tens of thousands of configurations costs
 * microseconds each, so an architect can optimize under constraints
 * that would be hopeless to sweep with detailed simulation.
 *
 * Scenario: find the fastest configuration for a perlbmk-like
 * workload subject to an "area budget" (a proxy built from cache and
 * window sizes), then verify the winners with detailed simulation.
 */

#include <cmath>
#include <cstdio>

#include "core/explorer.hh"
#include "core/model_builder.hh"
#include "dspace/paper_space.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace {

using namespace ppm;

/**
 * Crude area proxy in arbitrary units: caches dominate, plus the
 * out-of-order window. Stands in for the real floorplan constraint an
 * architect would carry.
 */
double
areaProxy(const dspace::DesignPoint &p)
{
    using namespace ppm::dspace;
    const double cache_area = p[kL2SizeKB] / 8.0 +
        p[kIl1SizeKB] + p[kDl1SizeKB];
    const double window_area = 0.5 * p[kRobSize] *
        (p[kIqFrac] + p[kLsqFrac]);
    return cache_area + window_area;
}

} // namespace

int
main()
{
    const auto trace =
        trace::generateTrace(trace::profileByName("perlbmk"), 100000);
    const auto space = dspace::paperTrainSpace();
    core::SimulatorOracle oracle(space, trace);

    // Build the model once (this is where all simulation time goes).
    core::ModelBuilder builder(space, dspace::paperTestSpace(), oracle);
    core::BuildOptions opts;
    opts.sample_sizes = {50, 90};
    opts.target_mean_error = 6.0;
    const auto result = builder.build(opts);
    std::printf("model ready: %s (%.2f%% mean validation error, "
                "%lu simulations)\n\n",
                result.model->describe().c_str(),
                result.final().rbf_error.mean_error,
                static_cast<unsigned long>(result.simulations));

    // Search 50,000 random configurations under the area budget.
    const double budget = 220.0;
    core::SearchOptions search;
    search.num_candidates = 50000;
    search.top_k = 5;
    search.constraint = [budget](const dspace::DesignPoint &p) {
        return areaProxy(p) <= budget;
    };
    const auto best =
        core::findBestConfigurations(*result.model, space, search);

    std::printf("top configurations under area budget %.0f:\n", budget);
    std::printf("%4s %-60s %8s %8s %8s\n", "#", "configuration",
                "area", "pred", "sim");
    // Verify the finalists with one detailed simulation each — the
    // workflow the paper proposes: model for search, simulator for
    // confirmation. The batch fans out across the thread pool.
    std::vector<dspace::DesignPoint> finalists;
    for (const auto &c : best)
        finalists.push_back(c.point);
    const auto sim_cpis = oracle.evaluateAll(finalists);
    int rank = 1;
    for (std::size_t i = 0; i < best.size(); ++i) {
        const auto &c = best[i];
        std::printf("%4d %-60s %8.1f %8.3f %8.3f\n", rank++,
                    space.describe(c.point).c_str(),
                    areaProxy(c.point), c.predicted_cpi, sim_cpis[i]);
    }

    // Contrast with an unconstrained search.
    core::SearchOptions unconstrained;
    unconstrained.num_candidates = 50000;
    unconstrained.top_k = 1;
    const auto absolute =
        core::findBestConfigurations(*result.model, space,
                                     unconstrained);
    std::printf("\nunconstrained optimum (area %.1f): %s "
                "-> predicted CPI %.3f\n",
                areaProxy(absolute.front().point),
                space.describe(absolute.front().point).c_str(),
                absolute.front().predicted_cpi);
    std::printf("\ntotal detailed simulations used: %lu "
                "(model evaluations: 100000)\n",
                static_cast<unsigned long>(oracle.evaluations()));
    return 0;
}
