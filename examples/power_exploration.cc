/**
 * @file
 * Power-aware design-space exploration (paper Sec 6 extension): build
 * CPI and energy-per-instruction models for one workload and search
 * for the energy-delay-squared (ED^2P) optimal configuration — the
 * classic voltage-independent efficiency target. Shows how multiple
 * response models over the same design space compose.
 */

#include <cstdio>

#include "core/explorer.hh"
#include "core/model_builder.hh"
#include "dspace/paper_space.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

int
main()
{
    using namespace ppm;

    const auto trace =
        trace::generateTrace(trace::profileByName("ammp"), 100000);
    const auto train = dspace::paperTrainSpace();
    const auto test = dspace::paperTestSpace();

    // Two oracles over the same trace: one per metric. (Each memoizes
    // independently; a production setup would share the simulation
    // run and derive both metrics from it.)
    core::SimulatorOracle cpi_oracle(train, trace);
    core::SimulatorOracle epi_oracle(train, trace, {},
                                     core::Metric::EnergyPerInst);

    core::BuildOptions opts;
    opts.sample_sizes = {90};
    opts.target_mean_error = 0.0;

    core::ModelBuilder cpi_builder(train, test, cpi_oracle);
    const auto cpi_model = cpi_builder.build(opts).model;
    core::ModelBuilder epi_builder(train, test, epi_oracle);
    const auto epi_model = epi_builder.build(opts).model;
    std::printf("CPI model: %s\nEPI model: %s\n\n",
                cpi_model->describe().c_str(),
                epi_model->describe().c_str());

    // Scan candidates through both models and rank by ED^2P =
    // EPI * CPI^2.
    math::Rng rng(42);
    dspace::DesignPoint best_point;
    double best_ed2p = 1e300;
    for (int i = 0; i < 30000; ++i) {
        const auto p = train.randomPoint(rng);
        const double cpi = cpi_model->predict(p);
        const double epi = epi_model->predict(p);
        const double ed2p = epi * cpi * cpi;
        if (ed2p < best_ed2p) {
            best_ed2p = ed2p;
            best_point = p;
        }
    }

    std::printf("predicted ED2P-optimal configuration:\n  %s\n",
                train.describe(best_point).c_str());
    std::printf("  predicted: CPI %.3f, EPI %.2f, ED2P %.2f\n",
                cpi_model->predict(best_point),
                epi_model->predict(best_point), best_ed2p);

    // Reference corners for contrast.
    const dspace::DesignPoint fastest{7, 128, 0.75, 0.75, 8192, 5,
                                      64, 64, 1};
    const dspace::DesignPoint smallest{24, 24, 0.25, 0.25, 256, 20,
                                       8, 8, 4};
    for (const auto &[label, p] :
         {std::pair<const char *, const dspace::DesignPoint &>{
              "fastest corner", fastest},
          {"smallest corner", smallest}}) {
        const double cpi = cpi_model->predict(p);
        const double epi = epi_model->predict(p);
        std::printf("  %s: CPI %.3f, EPI %.2f, ED2P %.2f\n", label,
                    cpi, epi, epi * cpi * cpi);
    }

    // Confirm the winner with detailed simulation of both metrics.
    const double sim_cpi = cpi_oracle.cpi(best_point);
    const double sim_epi = epi_oracle.cpi(best_point);
    std::printf("\nsimulated at the winner: CPI %.3f, EPI %.2f, "
                "ED2P %.2f\n",
                sim_cpi, sim_epi, sim_epi * sim_cpi * sim_cpi);
    std::printf("total detailed simulations: %lu\n",
                static_cast<unsigned long>(cpi_oracle.evaluations() +
                                           epi_oracle.evaluations()));
    return 0;
}
