/**
 * @file
 * Workload characterization: run every built-in SPEC CPU2000-like
 * profile through the simulator at a reference configuration and
 * report the component statistics — instruction mix, cache miss
 * rates, branch behaviour, DRAM row locality — that explain each
 * benchmark's CPI. This is the substrate-validation view: the
 * synthetic workloads must differ in the same qualitative ways the
 * real programs do (mcf memory-bound, vortex IL1-hungry, equake
 * streaming FP, ...).
 */

#include <cstdio>

#include "dspace/paper_space.hh"
#include "sim/simulator.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

int
main()
{
    using namespace ppm;

    const auto space = dspace::paperTrainSpace();
    const dspace::DesignPoint reference{14, 64, 0.5, 0.5, 1024, 12,
                                        32, 32, 2};
    std::printf("reference configuration: %s\n\n",
                space.describe(reference).c_str());

    std::printf("%-12s %6s | %5s %5s %5s | %6s %6s %6s | %6s %7s\n",
                "benchmark", "CPI", "ld%", "st%", "br%", "il1mr",
                "dl1mr", "l2mr", "bmis%", "rowhit%");

    for (const auto &name : trace::profileNames()) {
        const auto trace =
            trace::generateTrace(trace::profileByName(name), 100000);
        const auto summary = trace.summarize();
        const auto stats = sim::simulate(trace, space, reference);

        const double n = static_cast<double>(summary.instructions);
        const double row_hit_pct = stats.memory.requests
            ? 100.0 * static_cast<double>(stats.memory.row_hits) /
                static_cast<double>(stats.memory.requests)
            : 0.0;

        std::printf("%-12s %6.2f | %5.1f %5.1f %5.1f "
                    "| %6.3f %6.3f %6.3f | %6.1f %7.1f\n",
                    name.c_str(), stats.cpi(),
                    100.0 * static_cast<double>(summary.loads) / n,
                    100.0 * static_cast<double>(summary.stores) / n,
                    100.0 * static_cast<double>(summary.branches) / n,
                    stats.il1.missRate(), stats.dl1.missRate(),
                    stats.l2.missRate(),
                    100.0 * stats.branch.mispredictRate(),
                    row_hit_pct);
    }

    std::printf("\nlegend: *mr = miss rate, bmis%% = conditional "
                "branch misprediction rate,\n"
                "rowhit%% = DRAM row-buffer hit rate. Each benchmark "
                "keeps its published character:\n"
                "mcf memory-bound, vortex/perlbmk code-heavy, "
                "equake/ammp regular FP.\n");
    return 0;
}
