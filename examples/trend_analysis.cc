/**
 * @file
 * Microarchitectural trend analysis (paper Sec 4.1): use the model to
 * answer "what happens to CPI as I scale parameter X, and how does it
 * interact with parameter Y?" — and cross-check selected points
 * against the simulator.
 *
 * Scenario: for an mcf-like (memory-bound) workload, study
 *   (a) the L2-size scaling curve,
 *   (b) the ROB-size scaling curve, and
 *   (c) the interaction between L2 size and L2 latency.
 */

#include <cstdio>

#include "core/explorer.hh"
#include "core/model_builder.hh"
#include "dspace/paper_space.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

int
main()
{
    using namespace ppm;

    const auto trace =
        trace::generateTrace(trace::profileByName("mcf"), 100000);
    const auto space = dspace::paperTrainSpace();
    core::SimulatorOracle oracle(space, trace);

    core::ModelBuilder builder(space, dspace::paperTestSpace(), oracle);
    core::BuildOptions opts;
    opts.sample_sizes = {90};
    opts.target_mean_error = 0.0;
    const auto result = builder.build(opts);
    const auto &model = *result.model;
    std::printf("model: %s (mean validation error %.2f%%)\n\n",
                model.describe().c_str(),
                result.final().rbf_error.mean_error);

    const dspace::DesignPoint base{14, 64, 0.5, 0.5, 1024, 12,
                                   32, 32, 2};

    // (a) L2 capacity scaling: where does adding cache stop paying?
    std::printf("L2 size scaling (model vs simulator):\n");
    std::printf("%10s %10s %10s\n", "L2 (KB)", "model", "sim");
    const auto l2_sweep =
        core::sweepParameter(model, space, base, dspace::kL2SizeKB, 6);
    for (const auto &c : l2_sweep) {
        std::printf("%10.0f %10.3f %10.3f\n",
                    c.point[dspace::kL2SizeKB], c.predicted_cpi,
                    oracle.cpi(c.point));
    }

    // (b) ROB scaling: how much window does a pointer chaser need?
    std::printf("\nROB size scaling (model only):\n");
    std::printf("%10s %10s\n", "ROB", "model");
    const auto rob_sweep =
        core::sweepParameter(model, space, base, dspace::kRobSize, 6);
    for (const auto &c : rob_sweep)
        std::printf("%10.0f %10.3f\n", c.point[dspace::kRobSize],
                    c.predicted_cpi);

    // (c) Interaction: latency hurts more when the cache is small.
    std::printf("\nL2 size x L2 latency interaction (model CPI):\n");
    std::printf("%10s", "L2\\lat");
    for (int lat : {5, 10, 15, 20})
        std::printf(" %8d", lat);
    std::printf("\n");
    const auto grid = core::sweepInteraction(
        model, space, base, dspace::kL2SizeKB, dspace::kL2Lat, 4, 4);
    for (int i = 0; i < 4; ++i) {
        std::printf("%9.0fK", grid[static_cast<std::size_t>(i) * 4]
                                  .point[dspace::kL2SizeKB]);
        for (int j = 0; j < 4; ++j)
            std::printf(" %8.3f",
                        grid[static_cast<std::size_t>(i) * 4 +
                             static_cast<std::size_t>(j)]
                            .predicted_cpi);
        std::printf("\n");
    }

    std::printf("\nsimulations: %lu, model evaluations: %zu\n",
                static_cast<unsigned long>(oracle.evaluations()),
                l2_sweep.size() + rob_sweep.size() + grid.size());
    return 0;
}
