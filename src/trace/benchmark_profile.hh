/**
 * @file
 * Statistical workload profiles standing in for SPEC CPU2000 traces.
 *
 * The paper drives its simulator with IBM PowerPC traces of SPEC
 * CPU2000 running MinneSPEC lgred inputs. Those traces are not
 * redistributable, so this library substitutes a synthetic trace
 * generator parameterized per benchmark (see DESIGN.md): instruction
 * mix, code footprint and branch behaviour, data footprint and access
 * patterns, and register dependency distances. The profiles below are
 * calibrated qualitatively to the published characteristics of each
 * program (e.g. mcf = pointer-chasing and memory bound, vortex = large
 * instruction footprint, equake/ammp = regular floating point).
 */

#ifndef PPM_TRACE_BENCHMARK_PROFILE_HH
#define PPM_TRACE_BENCHMARK_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ppm::trace {

/**
 * Fractions of the dynamic instruction mix. Branch/load/store are
 * explicit; the remainder is split among the compute classes.
 * All fractions are of the total instruction count and the compute
 * fractions are normalized internally.
 */
struct InstructionMix
{
    double load = 0.25;
    double store = 0.10;
    double branch = 0.15;
    // Relative weights among non-memory, non-branch instructions.
    double int_alu = 1.0;
    double int_mul = 0.02;
    double int_div = 0.002;
    double fp_alu = 0.0;
    double fp_mul = 0.0;
    double fp_div = 0.0;
};

/** Static code structure parameters. */
struct CodeProfile
{
    /** Static code footprint in bytes (drives IL1 behaviour). */
    std::uint64_t footprint_bytes = 64 * 1024;
    /**
     * Zipf skew of block popularity: higher = a few hot loops
     * dominate (good IL1 locality); near 0 = flat (bad locality).
     */
    double block_zipf = 1.1;
    /** Fraction of block-ending branches that are conditional. */
    double cond_fraction = 0.80;
    /** Fraction of the remainder that are calls (matched by returns). */
    double call_fraction = 0.40;
    /**
     * Fraction of conditional branches that are loop back-edges
     * (biased-taken backward branches). Lower values spread execution
     * across more code, increasing IL1 pressure.
     */
    double loop_fraction = 0.35;
    /**
     * Mean loop trip count. Long trips (FP inner loops) make loop
     * exits rare and branches nearly perfectly predictable.
     */
    double mean_loop_trips = 10.0;
    /**
     * Fraction of non-loop conditional branches with a strong (easily
     * predicted) bias; the rest have weak biases a predictor cannot
     * learn beyond the bias itself.
     */
    double predictable_fraction = 0.85;
    /** Taken probability of strongly biased branches. */
    double strong_bias = 0.97;
    /**
     * Probability that a call targets a recently-called function
     * instead of a fresh Zipf draw. Creates the phase-like active
     * function set whose size (relative to IL1 capacity) drives
     * instruction cache sensitivity.
     */
    double call_locality = 0.75;
};

/** Data-side access pattern parameters. */
struct DataProfile
{
    /** Data footprint in bytes (drives DL1/L2/DRAM behaviour). */
    std::uint64_t footprint_bytes = 8ULL * 1024 * 1024;
    /**
     * Probability that a static memory block uses a strided stream
     * (arrays); remaining blocks use region-random or pointer-chase.
     */
    double streaming_fraction = 0.3;
    /** Probability mass of pointer-chasing blocks (dependent loads). */
    double pointer_chase_fraction = 0.0;
    /** Stride in bytes of streaming accesses. */
    std::uint64_t stride_bytes = 8;
    /** Number of Zipf-weighted regions covering the data footprint. */
    std::size_t num_regions = 64;
    /** Zipf skew of region popularity (higher = hotter hot set). */
    double region_zipf = 1.0;
    /**
     * Probability that a region access re-uses one of the most
     * recently touched addresses instead of drawing a fresh one —
     * the temporal locality real programs get from stack slots, hot
     * objects and loop-carried values.
     */
    double temporal_locality = 0.75;
    /** Size of the recently-touched address pool. */
    std::size_t locality_window = 256;
    /**
     * Probability that a pointer-chase step stays within the current
     * 4KB page (linked nodes allocated together) rather than jumping
     * anywhere in the footprint.
     */
    double chase_locality = 0.70;
};

/** Register dependency structure. */
struct DependencyProfile
{
    /**
     * Mean distance (in dynamic instructions) from an instruction to
     * the producer of its first operand; short distances serialize
     * execution and reduce exploitable ILP.
     */
    double mean_distance = 6.0;
    /** Probability that an instruction has a second source operand. */
    double second_operand_prob = 0.5;
};

/**
 * Complete generator configuration for one benchmark.
 */
struct BenchmarkProfile
{
    /** SPEC-style name, e.g. "181.mcf". */
    std::string name;
    /** Generator seed; fixed per benchmark for reproducibility. */
    std::uint64_t seed = 1;
    InstructionMix mix;
    CodeProfile code;
    DataProfile data;
    DependencyProfile deps;
};

/**
 * Profiles for the eight SPEC CPU2000 programs of paper Table 3:
 * 181.mcf, 186.crafty, 197.parser, 253.perlbmk, 255.vortex,
 * 300.twolf, 183.equake, 188.ammp.
 */
const std::vector<BenchmarkProfile> &spec2000Profiles();

/**
 * Profile by name.
 * @param name Full name ("181.mcf") or suffix ("mcf").
 * @throws std::out_of_range if unknown.
 */
const BenchmarkProfile &profileByName(const std::string &name);

/** Names of all built-in profiles, in Table 3 order. */
std::vector<std::string> profileNames();

} // namespace ppm::trace

#endif // PPM_TRACE_BENCHMARK_PROFILE_HH
