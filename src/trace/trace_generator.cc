#include "trace/trace_generator.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "math/rng.hh"

namespace ppm::trace {

namespace {

/** Memory access pattern of a static block. */
enum class MemPattern : std::uint8_t { Region, Stream, Chase };

/** Register dedicated to the pointer-chase chain. */
constexpr RegId kChaseReg = 1;

/** Maximum modeled call depth; deeper calls degrade to plain jumps. */
constexpr std::size_t kMaxCallDepth = 64;

/** Static description of one basic block. */
struct StaticBlock
{
    std::uint64_t start_pc = 0;
    std::uint32_t size = 4;          //!< instructions incl. terminator
    OpClass terminator = OpClass::BranchCond;
    double taken_bias = 0.5;         //!< P(taken) for conditionals
    std::uint32_t taken_target = 0;  //!< block index when taken
    /**
     * Loop back-edge: outcomes are counted (taken trips-1 times per
     * loop entry, then fall through) instead of i.i.d. draws, so
     * loops have realistic trip counts and learnable exits.
     */
    bool is_loop_tail = false;
    std::uint16_t fixed_trips = 8;   //!< usual iterations per entry
    /**
     * Data-dependent branch: outcomes follow a persistent Markov
     * process (runs of one direction) rather than a fixed bias, so a
     * history predictor can learn part of the behaviour, as with
     * real hard-to-predict branches.
     */
    bool is_weak = false;
    std::uint32_t stream_id = 0;     //!< cursor index for Stream accesses
};

/** Discrete sampler over Zipf-like weights (binary search on a CDF). */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items.
     * @param skew Zipf exponent; rank r gets weight (r + 1)^-skew.
     * @param rng Used to shuffle ranks so hot items are scattered.
     */
    ZipfSampler(std::size_t n, double skew, math::Rng &rng)
    {
        assert(n > 0);
        std::vector<std::size_t> ranks(n);
        for (std::size_t i = 0; i < n; ++i)
            ranks[i] = i;
        rng.shuffle(ranks);
        cdf_.resize(n);
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            acc += std::pow(static_cast<double>(ranks[i]) + 1.0, -skew);
            cdf_[i] = acc;
        }
    }

    std::size_t
    sample(math::Rng &rng) const
    {
        const double u = rng.uniform() * cdf_.back();
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<std::size_t>(it - cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
};

/**
 * Holds the static program plus all dynamic generator state.
 */
class Generator
{
  public:
    Generator(const BenchmarkProfile &profile, std::size_t n)
        : profile_(profile), rng_(profile.seed), n_(n)
    {
        buildStaticProgram();
    }

    Trace
    run()
    {
        Trace trace(profile_.name);
        trace.reserve(n_);
        std::uint32_t cur = func_heads_.empty() ? 0 : func_heads_[0];
        while (trace.size() < n_)
            cur = emitBlock(cur, trace);
        return trace;
    }

  private:
    // --- static program construction -------------------------------

    void
    buildStaticProgram()
    {
        const double branch_frac =
            std::clamp(profile_.mix.branch, 0.05, 0.33);
        const double mean_block = 1.0 / branch_frac;
        const std::uint64_t static_insts =
            std::max<std::uint64_t>(64, profile_.code.footprint_bytes / 4);

        // Lay out functions of geometrically distributed block counts.
        std::uint64_t pc = kCodeBase;
        std::uint64_t insts_laid = 0;
        while (insts_laid < static_insts) {
            const std::size_t func_blocks = std::max<std::uint64_t>(
                4, rng_.geometric(1.0 / 16.0));
            const std::uint32_t func_start =
                static_cast<std::uint32_t>(blocks_.size());
            for (std::size_t b = 0; b < func_blocks; ++b) {
                StaticBlock blk;
                blk.start_pc = pc;
                // Near-constant block sizes keep the dynamic branch
                // fraction close to the profile even when a few hot
                // loops dominate execution.
                blk.size = static_cast<std::uint32_t>(std::clamp(
                    std::lround(rng_.gaussian(mean_block,
                                              mean_block / 3.0)),
                    2L, 24L));
                pc += blk.size * 4ULL;
                insts_laid += blk.size;
                blocks_.push_back(blk);
            }
            const std::uint32_t func_end =
                static_cast<std::uint32_t>(blocks_.size()) - 1;
            func_heads_.push_back(func_start);
            func_ends_.push_back(func_end);
            assignTerminators(func_start, func_end);
        }

        // Popularity of call targets and data regions.
        func_sampler_ = std::make_unique<ZipfSampler>(
            func_heads_.size(), profile_.code.block_zipf, rng_);
        region_sampler_ = std::make_unique<ZipfSampler>(
            std::max<std::size_t>(1, profile_.data.num_regions),
            profile_.data.region_zipf, rng_);

        assignMemPatterns();
        recent_dests_.assign(256, kNoReg);
        recent_addrs_.assign(
            std::max<std::size_t>(1, profile_.data.locality_window), 0);
        loop_remaining_.assign(blocks_.size(), 0);
        weak_state_.assign(blocks_.size(), 0);
        recent_funcs_.assign(48, 0);
    }

    /** Remember @p addr in the temporal-locality pool. */
    void
    recordRecent(std::uint64_t addr)
    {
        recent_addrs_[recent_pos_] = addr;
        recent_pos_ = (recent_pos_ + 1) % recent_addrs_.size();
        recent_count_ = std::min(recent_count_ + 1,
                                 recent_addrs_.size());
    }

    void
    assignTerminators(std::uint32_t func_start, std::uint32_t func_end)
    {
        const auto &code = profile_.code;
        for (std::uint32_t b = func_start; b <= func_end; ++b) {
            StaticBlock &blk = blocks_[b];
            if (b == func_end) {
                blk.terminator = OpClass::BranchRet;
                continue;
            }
            if (rng_.bernoulli(code.cond_fraction)) {
                blk.terminator = OpClass::BranchCond;
                configureCondBranch(blk, b, func_start, func_end);
            } else if (rng_.bernoulli(code.call_fraction)) {
                blk.terminator = OpClass::BranchCall;
            } else {
                blk.terminator = OpClass::BranchUncond;
                blk.taken_target = forwardTarget(b, func_end);
            }
        }
    }

    void
    configureCondBranch(StaticBlock &blk, std::uint32_t b,
                        std::uint32_t func_start, std::uint32_t func_end)
    {
        const auto &code = profile_.code;
        const bool can_loop = b > func_start;
        if (can_loop && rng_.bernoulli(code.loop_fraction)) {
            // Loop tail: counted backward branch to the loop head.
            const std::uint32_t max_span = std::min<std::uint32_t>(
                8, b - func_start);
            std::uint32_t span = 1 +
                static_cast<std::uint32_t>(
                    rng_.uniformInt(std::uint64_t(max_span)));
            // Loops may contain calls and forward branches but not
            // other loop tails: within-function nests would multiply
            // trip counts and trap the walk in a few blocks for the
            // entire trace. (Loops still nest across call boundaries.)
            for (std::uint32_t body = b - span; body < b; ++body) {
                if (blocks_[body].is_loop_tail) {
                    span = b - body - 1;
                    break;
                }
            }
            if (span == 0) {
                blk.taken_target = forwardTarget(b, func_end);
                blk.is_weak = true;
                blk.taken_bias = 0.5;
                return;
            }
            blk.taken_target = b - span;
            blk.is_loop_tail = true;
            // Mostly-fixed trip counts: a gshare with enough history
            // can learn short loop exits, as it does for real loops.
            blk.fixed_trips = static_cast<std::uint16_t>(
                std::clamp(std::lround(rng_.exponential(
                               code.mean_loop_trips)), 2L, 512L));
            blk.taken_bias =
                1.0 - 1.0 / static_cast<double>(blk.fixed_trips);
            return;
        }
        blk.taken_target = forwardTarget(b, func_end);
        if (rng_.bernoulli(code.predictable_fraction)) {
            const double strong = code.strong_bias;
            blk.taken_bias = rng_.bernoulli(0.35) ? strong : 1.0 - strong;
        } else {
            blk.is_weak = true;
            blk.taken_bias = 0.5;
        }
    }

    std::uint32_t
    forwardTarget(std::uint32_t b, std::uint32_t func_end)
    {
        const std::uint32_t max_skip =
            std::min<std::uint32_t>(3, func_end - b);
        return b + 1 +
            static_cast<std::uint32_t>(
                rng_.uniformInt(std::uint64_t(max_skip)));
    }

    void
    assignMemPatterns()
    {
        const auto &data = profile_.data;
        // Each static block is tied to one of a small set of stream
        // cursors; the pattern itself is drawn per access so the
        // dynamic pattern mix matches the profile regardless of which
        // blocks run hot.
        constexpr std::uint32_t kNumStreams = 8;
        for (std::size_t b = 0; b < blocks_.size(); ++b)
            blocks_[b].stream_id =
                static_cast<std::uint32_t>(b) % kNumStreams;
        stream_cursors_.resize(kNumStreams);
        for (std::size_t s = 0; s < stream_cursors_.size(); ++s) {
            const std::uint64_t slice =
                std::max<std::uint64_t>(4096,
                                        data.footprint_bytes /
                                            stream_cursors_.size());
            stream_cursors_[s] = {kDataBase + s * slice, slice, 0};
        }
        chase_addr_ = kDataBase;
    }

    // --- dynamic walk ----------------------------------------------

    /** Emit one block; returns the next block index. */
    std::uint32_t
    emitBlock(std::uint32_t b, Trace &trace)
    {
        const StaticBlock &blk = blocks_[b];
        // Body instructions (all but the terminator).
        for (std::uint32_t i = 0; i + 1 < blk.size; ++i) {
            if (trace.size() >= n_)
                return b;
            emitBodyInstruction(blk, blk.start_pc + i * 4ULL, trace);
        }
        if (trace.size() >= n_)
            return b;
        return emitTerminator(b, trace);
    }

    void
    emitBodyInstruction(const StaticBlock &blk, std::uint64_t pc,
                        Trace &trace)
    {
        TraceInstruction inst;
        inst.pc = pc;
        inst.op = sampleBodyOp();
        if (inst.op == OpClass::Load || inst.op == OpClass::Store) {
            fillMemoryOperand(blk, inst);
        } else {
            inst.dest = randomDest();
            inst.src[0] = dependencySource();
            if (rng_.bernoulli(profile_.deps.second_operand_prob))
                inst.src[1] = dependencySource();
        }
        pushDest(inst.dest);
        trace.push(inst);
    }

    std::uint32_t
    emitTerminator(std::uint32_t b, Trace &trace)
    {
        const StaticBlock &blk = blocks_[b];
        TraceInstruction inst;
        inst.pc = blk.start_pc + (blk.size - 1) * 4ULL;
        inst.op = blk.terminator;
        inst.src[0] = dependencySource();
        pushDest(kNoReg);

        std::uint32_t next = b;
        switch (blk.terminator) {
          case OpClass::BranchCond:
            if (blk.is_loop_tail) {
                // Counted loop: taken (trips - 1) times per entry.
                // Trip counts are usually the block's fixed count
                // (learnable); occasionally data-dependent.
                std::uint16_t &rem = loop_remaining_[b];
                if (rem == 0) {
                    rem = rng_.bernoulli(0.8)
                        ? blk.fixed_trips
                        : static_cast<std::uint16_t>(std::min<
                              std::uint64_t>(
                                  rng_.geometric(
                                      1.0 / blk.fixed_trips), 512));
                }
                inst.taken = rem > 1;
                --rem;
            } else if (blk.is_weak) {
                // Persistent Markov outcomes: mostly repeat the last
                // direction, occasionally flip.
                std::uint8_t &state = weak_state_[b];
                if (state == 0)
                    state = rng_.bernoulli(0.5) ? 1 : 2;
                else if (rng_.bernoulli(0.18))
                    state = state == 1 ? 2 : 1;
                inst.taken = state == 1;
            } else {
                inst.taken = rng_.bernoulli(blk.taken_bias);
            }
            inst.branch_target = blocks_[blk.taken_target].start_pc;
            next = inst.taken ? blk.taken_target : b + 1;
            break;
          case OpClass::BranchUncond:
            inst.taken = true;
            inst.branch_target = blocks_[blk.taken_target].start_pc;
            next = blk.taken_target;
            break;
          case OpClass::BranchCall: {
            if (call_stack_.size() < kMaxCallDepth) {
                call_stack_.push_back(b + 1);
                // Phase behaviour: most calls stay within the active
                // function set; the rest pull in a fresh function.
                std::size_t callee;
                if (recent_func_count_ > 0 &&
                    rng_.bernoulli(profile_.code.call_locality)) {
                    callee = recent_funcs_[rng_.uniformInt(
                        std::uint64_t(recent_func_count_))];
                } else {
                    callee = func_sampler_->sample(rng_);
                }
                recent_funcs_[recent_func_pos_] = callee;
                recent_func_pos_ =
                    (recent_func_pos_ + 1) % recent_funcs_.size();
                recent_func_count_ = std::min(recent_func_count_ + 1,
                                              recent_funcs_.size());
                inst.taken = true;
                next = func_heads_[callee];
                inst.branch_target = blocks_[next].start_pc;
            } else {
                // Depth cap: degrade to a fall-through jump.
                inst.op = OpClass::BranchUncond;
                inst.taken = true;
                next = b + 1;
                inst.branch_target = blocks_[next].start_pc;
            }
            break;
          }
          case OpClass::BranchRet: {
            inst.taken = true;
            if (!call_stack_.empty()) {
                next = call_stack_.back();
                call_stack_.pop_back();
            } else {
                // Start-up underflow: restart in a popular function.
                next = func_heads_[func_sampler_->sample(rng_)];
            }
            inst.branch_target = blocks_[next].start_pc;
            break;
          }
          default:
            assert(false && "non-branch terminator");
        }
        trace.push(inst);
        assert(next < blocks_.size());
        return next;
    }

    OpClass
    sampleBodyOp()
    {
        const auto &mix = profile_.mix;
        const double non_branch = 1.0 - std::clamp(mix.branch, 0.05,
                                                   0.33);
        const double u = rng_.uniform() * non_branch;
        if (u < mix.load)
            return OpClass::Load;
        if (u < mix.load + mix.store)
            return OpClass::Store;
        // Compute class by relative weight.
        const std::vector<double> weights = {
            mix.int_alu, mix.int_mul, mix.int_div,
            mix.fp_alu, mix.fp_mul, mix.fp_div,
        };
        static const OpClass classes[] = {
            OpClass::IntAlu, OpClass::IntMul, OpClass::IntDiv,
            OpClass::FpAlu, OpClass::FpMul, OpClass::FpDiv,
        };
        return classes[rng_.weightedIndex(weights)];
    }

    void
    fillMemoryOperand(const StaticBlock &blk, TraceInstruction &inst)
    {
        const auto &data = profile_.data;
        MemPattern pattern = MemPattern::Region;
        const double u = rng_.uniform();
        if (u < data.streaming_fraction)
            pattern = MemPattern::Stream;
        else if (u < data.streaming_fraction +
                     data.pointer_chase_fraction)
            pattern = MemPattern::Chase;
        switch (pattern) {
          case MemPattern::Stream: {
            auto &cur = stream_cursors_[blk.stream_id %
                                        stream_cursors_.size()];
            inst.mem_addr = cur.base + cur.offset;
            cur.offset += data.stride_bytes;
            if (cur.offset >= cur.length)
                cur.offset = 0;
            inst.src[0] = dependencySource();
            break;
          }
          case MemPattern::Chase: {
            // Hash-walk the footprint; each chase load both reads and
            // writes the chain register, serializing the chain. Most
            // steps stay on the current page (nodes allocated
            // together); the rest jump anywhere.
            std::uint64_t h = chase_addr_ * 0x9e3779b97f4a7c15ULL + 1;
            h ^= h >> 29;
            h *= 0xbf58476d1ce4e5b9ULL;
            h ^= h >> 32;
            if (rng_.bernoulli(data.chase_locality)) {
                chase_addr_ = (chase_addr_ & ~std::uint64_t(4095)) +
                    (h & 4095) / 8 * 8;
            } else {
                chase_addr_ = kDataBase +
                    (h % std::max<std::uint64_t>(64,
                                                 data.footprint_bytes))
                        / 8 * 8;
            }
            inst.mem_addr = chase_addr_;
            recordRecent(inst.mem_addr);
            inst.src[0] = kChaseReg;
            if (inst.op == OpClass::Load) {
                inst.dest = kChaseReg;
                return;
            }
            break;
          }
          case MemPattern::Region: {
            if (recent_count_ > 0 &&
                rng_.bernoulli(data.temporal_locality)) {
                // Temporal re-use of a recently touched address.
                inst.mem_addr = recent_addrs_[rng_.uniformInt(
                    std::uint64_t(recent_count_))];
            } else if (region_burst_left_ > 0) {
                // Spatial burst: walk on through the fresh record.
                region_burst_addr_ += 8;
                --region_burst_left_;
                inst.mem_addr = region_burst_addr_;
            } else {
                const std::size_t region = region_sampler_->sample(rng_);
                const std::uint64_t region_size =
                    std::max<std::uint64_t>(
                        64, data.footprint_bytes /
                                std::max<std::size_t>(
                                    1, data.num_regions));
                const std::uint64_t offset =
                    rng_.uniformInt(region_size / 8) * 8;
                inst.mem_addr =
                    kDataBase + region * region_size + offset;
                // Fresh records are read field by field: the next few
                // fresh draws continue sequentially from here.
                region_burst_addr_ = inst.mem_addr;
                region_burst_left_ = rng_.geometric(1.0 / 8.0);
            }
            recordRecent(inst.mem_addr);
            inst.src[0] = dependencySource();
            break;
          }
        }
        if (inst.op == OpClass::Load)
            inst.dest = randomDest();
        else
            inst.src[1] = dependencySource(); // store data operand
    }

    RegId
    randomDest()
    {
        // r0 is reserved as "zero", r1 as the chase chain.
        return static_cast<RegId>(
            2 + rng_.uniformInt(std::uint64_t(kNumArchRegs - 2)));
    }

    /**
     * Pick a source register a geometric distance back in the stream
     * of recent destinations, falling back to a random register when
     * the slot holds no writer.
     */
    RegId
    dependencySource()
    {
        const std::uint64_t dist = std::min<std::uint64_t>(
            rng_.geometric(1.0 / profile_.deps.mean_distance),
            recent_dests_.size());
        const std::size_t idx =
            (ring_pos_ + recent_dests_.size() - dist) %
            recent_dests_.size();
        const RegId reg = recent_dests_[idx];
        return reg != kNoReg ? reg : randomDest();
    }

    void
    pushDest(RegId dest)
    {
        recent_dests_[ring_pos_] = dest;
        ring_pos_ = (ring_pos_ + 1) % recent_dests_.size();
    }

    struct StreamCursor
    {
        std::uint64_t base = 0;
        std::uint64_t length = 0;
        std::uint64_t offset = 0;
    };

    const BenchmarkProfile &profile_;
    math::Rng rng_;
    std::size_t n_;

    std::vector<StaticBlock> blocks_;
    std::vector<std::uint32_t> func_heads_;
    std::vector<std::uint32_t> func_ends_;
    std::unique_ptr<ZipfSampler> func_sampler_;
    std::unique_ptr<ZipfSampler> region_sampler_;

    std::vector<std::uint32_t> call_stack_;
    std::vector<StreamCursor> stream_cursors_;
    std::uint64_t chase_addr_ = kDataBase;
    std::vector<RegId> recent_dests_;
    std::size_t ring_pos_ = 0;
    std::vector<std::uint64_t> recent_addrs_;
    std::size_t recent_pos_ = 0;
    std::size_t recent_count_ = 0;
    std::vector<std::uint16_t> loop_remaining_;
    std::vector<std::uint8_t> weak_state_;
    std::uint64_t region_burst_addr_ = kDataBase;
    std::uint64_t region_burst_left_ = 0;
    std::vector<std::size_t> recent_funcs_;
    std::size_t recent_func_pos_ = 0;
    std::size_t recent_func_count_ = 0;
};

} // namespace

Trace
generateTrace(const BenchmarkProfile &profile, std::size_t num_instructions)
{
    assert(num_instructions > 0);
    Generator gen(profile, num_instructions);
    return gen.run();
}

} // namespace ppm::trace
