/**
 * @file
 * Trace instruction record. The simulator is trace driven (as the
 * paper's was): a trace fixes the dynamic instruction stream — opcodes,
 * register dependences, memory addresses, branch outcomes — and the
 * simulator determines its timing for a given processor configuration.
 */

#ifndef PPM_TRACE_INSTRUCTION_HH
#define PPM_TRACE_INSTRUCTION_HH

#include <cstdint>
#include <string>

namespace ppm::trace {

/** Functional classes of instructions the timing model distinguishes. */
enum class OpClass : std::uint8_t
{
    IntAlu,       //!< single-cycle integer op
    IntMul,       //!< integer multiply
    IntDiv,       //!< integer divide (long latency, unpipelined)
    FpAlu,        //!< floating point add/sub/compare
    FpMul,        //!< floating point multiply
    FpDiv,        //!< floating point divide (long latency, unpipelined)
    Load,         //!< memory read
    Store,        //!< memory write
    BranchCond,   //!< conditional direct branch
    BranchUncond, //!< unconditional direct jump
    BranchCall,   //!< call (pushes return address)
    BranchRet,    //!< return (pops return address)
};

/** Short mnemonic for an OpClass. */
std::string opClassName(OpClass op);

/** True for the three branch-y op classes plus conditional branches. */
constexpr bool
isBranch(OpClass op)
{
    return op == OpClass::BranchCond || op == OpClass::BranchUncond ||
        op == OpClass::BranchCall || op == OpClass::BranchRet;
}

/** True for loads and stores. */
constexpr bool
isMemory(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** Register id type; kNoReg marks an absent operand. */
using RegId = std::uint16_t;
inline constexpr RegId kNoReg = 0xffff;

/** Number of architectural registers in the trace ISA. */
inline constexpr std::size_t kNumArchRegs = 64;

/**
 * One dynamic instruction.
 */
struct TraceInstruction
{
    /** Instruction address (4-byte instructions). */
    std::uint64_t pc = 0;
    /** Effective address for loads/stores, 0 otherwise. */
    std::uint64_t mem_addr = 0;
    /** Target address for taken branches, 0 otherwise. */
    std::uint64_t branch_target = 0;
    /** Functional class. */
    OpClass op = OpClass::IntAlu;
    /** Source registers; kNoReg when absent. */
    RegId src[2] = {kNoReg, kNoReg};
    /** Destination register; kNoReg when absent. */
    RegId dest = kNoReg;
    /** Branch outcome (meaningful only for branches). */
    bool taken = false;

    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isMem() const { return isMemory(op); }
    bool isBr() const { return isBranch(op); }
};

} // namespace ppm::trace

#endif // PPM_TRACE_INSTRUCTION_HH
