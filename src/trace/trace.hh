/**
 * @file
 * Instruction trace container with summary statistics, used by tests
 * to validate generated workloads against their profiles.
 */

#ifndef PPM_TRACE_TRACE_HH
#define PPM_TRACE_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/instruction.hh"

namespace ppm::trace {

/** Aggregate statistics over a trace. */
struct TraceSummary
{
    std::size_t instructions = 0;
    std::size_t loads = 0;
    std::size_t stores = 0;
    std::size_t branches = 0;
    std::size_t cond_branches = 0;
    std::size_t taken_branches = 0;
    std::size_t fp_ops = 0;
    /** Distinct 64-byte instruction lines touched. */
    std::size_t unique_code_lines = 0;
    /** Distinct 64-byte data lines touched. */
    std::size_t unique_data_lines = 0;
};

/**
 * A dynamic instruction trace for one benchmark.
 */
class Trace
{
  public:
    Trace() = default;

    /** @param benchmark Name of the generating profile. */
    explicit Trace(std::string benchmark)
        : benchmark_(std::move(benchmark))
    {}

    const std::string &benchmark() const { return benchmark_; }

    /** Number of instructions. */
    std::size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }

    const TraceInstruction &operator[](std::size_t i) const
    {
        return insts_[i];
    }

    /** Append an instruction. */
    void push(const TraceInstruction &inst) { insts_.push_back(inst); }

    /** Pre-allocate for @p n instructions. */
    void reserve(std::size_t n) { insts_.reserve(n); }

    const std::vector<TraceInstruction> &instructions() const
    {
        return insts_;
    }

    /** Compute summary statistics (one pass; O(size) memory for sets). */
    TraceSummary summarize() const;

  private:
    std::string benchmark_;
    std::vector<TraceInstruction> insts_;
};

} // namespace ppm::trace

#endif // PPM_TRACE_TRACE_HH
