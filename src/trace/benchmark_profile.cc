#include "trace/benchmark_profile.hh"

#include <stdexcept>

namespace ppm::trace {

namespace {

BenchmarkProfile
makeMcf()
{
    // Memory-bound pointer chaser: small code, huge sparse data
    // footprint, short dependency chains through loads.
    BenchmarkProfile p;
    p.name = "181.mcf";
    p.seed = 0x181;
    p.mix.load = 0.31;
    p.mix.store = 0.09;
    p.mix.branch = 0.19;
    p.code.footprint_bytes = 24 * 1024;
    p.code.block_zipf = 1.5;
    p.code.predictable_fraction = 0.93;
    p.data.footprint_bytes = 16ULL * 1024 * 1024;
    p.data.streaming_fraction = 0.10;
    p.data.pointer_chase_fraction = 0.20;
    p.data.num_regions = 128;
    p.data.region_zipf = 0.9;
    p.data.temporal_locality = 0.78;
    p.data.chase_locality = 0.80;
    p.deps.mean_distance = 3.0;
    return p;
}

BenchmarkProfile
makeCrafty()
{
    // Chess search: branchy, large code, small data set that mostly
    // fits in L2, bit-twiddling integer work.
    BenchmarkProfile p;
    p.name = "186.crafty";
    p.seed = 0x186;
    p.mix.load = 0.27;
    p.mix.store = 0.07;
    p.mix.branch = 0.18;
    p.mix.int_mul = 0.03;
    p.code.footprint_bytes = 160 * 1024;
    p.code.block_zipf = 0.70;
    p.code.call_locality = 0.55;
    p.code.predictable_fraction = 0.93;
    p.code.call_fraction = 0.45;
    p.data.footprint_bytes = 2ULL * 1024 * 1024;
    p.data.streaming_fraction = 0.15;
    p.data.pointer_chase_fraction = 0.03;
    p.data.num_regions = 48;
    p.data.region_zipf = 1.2;
    p.data.temporal_locality = 0.93;
    p.deps.mean_distance = 5.0;
    return p;
}

BenchmarkProfile
makeParser()
{
    // Dictionary/link grammar parser: pointer-ish, medium footprints.
    BenchmarkProfile p;
    p.name = "197.parser";
    p.seed = 0x197;
    p.mix.load = 0.28;
    p.mix.store = 0.11;
    p.mix.branch = 0.17;
    p.code.footprint_bytes = 96 * 1024;
    p.code.block_zipf = 0.80;
    p.code.predictable_fraction = 0.94;
    p.data.footprint_bytes = 8ULL * 1024 * 1024;
    p.data.streaming_fraction = 0.15;
    p.data.pointer_chase_fraction = 0.08;
    p.data.num_regions = 96;
    p.data.region_zipf = 1.1;
    p.data.temporal_locality = 0.92;
    p.deps.mean_distance = 4.0;
    return p;
}

BenchmarkProfile
makePerlbmk()
{
    // Interpreter: very large instruction footprint, indirect-ish
    // control flow (low predictability), hash-table data.
    BenchmarkProfile p;
    p.name = "253.perlbmk";
    p.seed = 0x253;
    p.mix.load = 0.26;
    p.mix.store = 0.13;
    p.mix.branch = 0.21;
    p.code.footprint_bytes = 256 * 1024;
    p.code.block_zipf = 0.80;
    p.code.predictable_fraction = 0.9;
    p.code.loop_fraction = 0.25;
    p.code.call_fraction = 0.45;
    p.data.footprint_bytes = 8ULL * 1024 * 1024;
    p.data.streaming_fraction = 0.10;
    p.data.pointer_chase_fraction = 0.05;
    p.data.num_regions = 96;
    p.data.region_zipf = 1.0;
    p.data.temporal_locality = 0.90;
    p.deps.mean_distance = 4.5;
    return p;
}

BenchmarkProfile
makeVortex()
{
    // Object database: the largest instruction footprint of the suite
    // (IL1-size sensitive, as in paper Table 5) and random record
    // accesses over a large store.
    BenchmarkProfile p;
    p.name = "255.vortex";
    p.seed = 0x255;
    p.mix.load = 0.29;
    p.mix.store = 0.15;
    p.mix.branch = 0.16;
    p.code.footprint_bytes = 384 * 1024;
    p.code.block_zipf = 0.80;
    p.code.call_locality = 0.65;
    p.code.predictable_fraction = 0.96;
    p.code.loop_fraction = 0.20;
    p.code.call_fraction = 0.50;
    p.data.footprint_bytes = 16ULL * 1024 * 1024;
    p.data.streaming_fraction = 0.12;
    p.data.pointer_chase_fraction = 0.04;
    p.data.num_regions = 128;
    p.data.region_zipf = 1.1;
    p.data.temporal_locality = 0.88;
    p.deps.mean_distance = 5.0;
    return p;
}

BenchmarkProfile
makeTwolf()
{
    // Place-and-route: moderate footprints, mixed access patterns,
    // branchy inner loops with data-dependent outcomes.
    BenchmarkProfile p;
    p.name = "300.twolf";
    p.seed = 0x300;
    p.mix.load = 0.26;
    p.mix.store = 0.08;
    p.mix.branch = 0.18;
    p.mix.int_mul = 0.04;
    p.code.footprint_bytes = 72 * 1024;
    p.code.block_zipf = 0.90;
    p.code.predictable_fraction = 0.92;
    p.data.footprint_bytes = 3ULL * 1024 * 1024;
    p.data.streaming_fraction = 0.20;
    p.data.pointer_chase_fraction = 0.06;
    p.data.num_regions = 64;
    p.data.region_zipf = 1.1;
    p.data.temporal_locality = 0.92;
    p.deps.mean_distance = 4.5;
    return p;
}

BenchmarkProfile
makeEquake()
{
    // FP earthquake simulation: streaming sparse-matrix style access,
    // long dependency distances (high ILP), few highly biased
    // branches.
    BenchmarkProfile p;
    p.name = "183.equake";
    p.seed = 0x183;
    p.mix.load = 0.30;
    p.mix.store = 0.08;
    p.mix.branch = 0.08;
    p.mix.int_alu = 0.5;
    p.mix.fp_alu = 0.35;
    p.mix.fp_mul = 0.25;
    p.mix.fp_div = 0.01;
    p.code.footprint_bytes = 32 * 1024;
    p.code.block_zipf = 1.6;
    p.code.predictable_fraction = 0.99;
    p.code.mean_loop_trips = 60.0;
    p.data.footprint_bytes = 16ULL * 1024 * 1024;
    p.data.streaming_fraction = 0.70;
    p.data.pointer_chase_fraction = 0.02;
    p.data.stride_bytes = 8;
    p.data.num_regions = 32;
    p.data.region_zipf = 0.8;
    p.data.temporal_locality = 0.55;
    p.deps.mean_distance = 9.0;
    return p;
}

BenchmarkProfile
makeAmmp()
{
    // FP molecular dynamics: neighbour-list gather (some pointer
    // indirection) over a large set plus dense FP arithmetic.
    BenchmarkProfile p;
    p.name = "188.ammp";
    p.seed = 0x188;
    p.mix.load = 0.28;
    p.mix.store = 0.09;
    p.mix.branch = 0.10;
    p.mix.int_alu = 0.5;
    p.mix.fp_alu = 0.30;
    p.mix.fp_mul = 0.28;
    p.mix.fp_div = 0.02;
    p.code.footprint_bytes = 48 * 1024;
    p.code.block_zipf = 1.4;
    p.code.predictable_fraction = 0.985;
    p.code.mean_loop_trips = 40.0;
    p.data.footprint_bytes = 16ULL * 1024 * 1024;
    p.data.streaming_fraction = 0.45;
    p.data.pointer_chase_fraction = 0.05;
    p.data.num_regions = 48;
    p.data.region_zipf = 0.9;
    p.data.temporal_locality = 0.80;
    p.deps.mean_distance = 8.0;
    return p;
}

} // namespace

const std::vector<BenchmarkProfile> &
spec2000Profiles()
{
    static const std::vector<BenchmarkProfile> profiles = {
        makeMcf(),    makeCrafty(), makeParser(), makePerlbmk(),
        makeVortex(), makeTwolf(),  makeEquake(), makeAmmp(),
    };
    return profiles;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &p : spec2000Profiles()) {
        if (p.name == name)
            return p;
        // Accept the bare program name ("mcf" for "181.mcf").
        const auto dot = p.name.find('.');
        if (dot != std::string::npos && p.name.substr(dot + 1) == name)
            return p;
    }
    throw std::out_of_range("unknown benchmark profile: " + name);
}

std::vector<std::string>
profileNames()
{
    std::vector<std::string> names;
    for (const auto &p : spec2000Profiles())
        names.push_back(p.name);
    return names;
}

} // namespace ppm::trace
