/**
 * @file
 * Synthetic instruction-trace generation from a BenchmarkProfile.
 *
 * The generator lays out a static program — basic blocks grouped into
 * functions over the profile's code footprint — and then walks it
 * dynamically: loops iterate via biased backward branches, calls and
 * returns maintain a call stack, and each static memory block draws
 * addresses from a streaming, region-random or pointer-chasing
 * pattern. Branch outcomes are consistent with the emitted control
 * flow, so a branch predictor inside the simulator sees realistic,
 * learnable (or deliberately unlearnable) behaviour.
 *
 * Mean basic-block size is derived from the profile's branch fraction
 * (every block ends in exactly one branch), keeping the dynamic
 * instruction mix faithful to the profile.
 */

#ifndef PPM_TRACE_TRACE_GENERATOR_HH
#define PPM_TRACE_TRACE_GENERATOR_HH

#include <cstddef>

#include "trace/benchmark_profile.hh"
#include "trace/trace.hh"

namespace ppm::trace {

/** Base virtual address of the synthetic code segment. */
inline constexpr std::uint64_t kCodeBase = 0x0040'0000ULL;

/** Base virtual address of the synthetic data segment. */
inline constexpr std::uint64_t kDataBase = 0x1000'0000ULL;

/**
 * Generate a trace of @p num_instructions instructions.
 *
 * Generation is deterministic in (profile.seed, num_instructions):
 * the same call always yields the same trace.
 *
 * @param profile Workload description.
 * @param num_instructions Trace length (> 0).
 */
Trace generateTrace(const BenchmarkProfile &profile,
                    std::size_t num_instructions);

} // namespace ppm::trace

#endif // PPM_TRACE_TRACE_GENERATOR_HH
