#include "trace/trace.hh"

#include <unordered_set>

namespace ppm::trace {

std::string
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
        return "int_alu";
      case OpClass::IntMul:
        return "int_mul";
      case OpClass::IntDiv:
        return "int_div";
      case OpClass::FpAlu:
        return "fp_alu";
      case OpClass::FpMul:
        return "fp_mul";
      case OpClass::FpDiv:
        return "fp_div";
      case OpClass::Load:
        return "load";
      case OpClass::Store:
        return "store";
      case OpClass::BranchCond:
        return "branch_cond";
      case OpClass::BranchUncond:
        return "branch_uncond";
      case OpClass::BranchCall:
        return "branch_call";
      case OpClass::BranchRet:
        return "branch_ret";
    }
    return "unknown";
}

TraceSummary
Trace::summarize() const
{
    TraceSummary s;
    s.instructions = insts_.size();
    std::unordered_set<std::uint64_t> code_lines, data_lines;
    for (const auto &inst : insts_) {
        code_lines.insert(inst.pc >> 6);
        if (inst.isLoad())
            ++s.loads;
        if (inst.isStore())
            ++s.stores;
        if (inst.isMem())
            data_lines.insert(inst.mem_addr >> 6);
        if (inst.isBr()) {
            ++s.branches;
            if (inst.op == OpClass::BranchCond)
                ++s.cond_branches;
            if (inst.taken)
                ++s.taken_branches;
        }
        if (inst.op == OpClass::FpAlu || inst.op == OpClass::FpMul ||
            inst.op == OpClass::FpDiv) {
            ++s.fp_ops;
        }
    }
    s.unique_code_lines = code_lines.size();
    s.unique_data_lines = data_lines.size();
    return s;
}

} // namespace ppm::trace
