/**
 * @file
 * Adaptive sampling — the paper's proposed cost reduction (Sec 6):
 * "the simulation costs involved in constructing predictive models
 * can potentially be reduced using adaptive sampling, wherein sets of
 * design points to simulate are selected based on data from initial
 * small samples."
 *
 * The sampler starts from a small discrepancy-optimized LHS sample
 * and then adds batches of infill points chosen to be (a) far from
 * every already-simulated point and (b) in regions where the current
 * regression tree sees high response variance — i.e. where the model
 * is likely still wrong. Batches are selected by
 * sampling::acquireBatch — by default the determinantal strategy,
 * which scores one candidate pool per round and picks the whole batch
 * jointly, so each round costs a single scoring pass and a single
 * (shardable) oracle dispatch. After each batch the RBF model is
 * refit and validated; the loop stops at the error target or the
 * budget.
 */

#ifndef PPM_CORE_ADAPTIVE_HH
#define PPM_CORE_ADAPTIVE_HH

#include <vector>

#include "core/evaluator.hh"
#include "core/oracle.hh"
#include "core/predictor.hh"
#include "dspace/design_space.hh"
#include "rbf/trainer.hh"
#include "sampling/batch_acquisition.hh"

namespace ppm::core {

/** Options for AdaptiveSampler::build(). */
struct AdaptiveOptions
{
    /** Initial LHS sample size. */
    int initial_size = 30;
    /** Points added per refinement round. */
    int batch_size = 10;
    /** Total simulation budget for training points. */
    int max_samples = 200;
    /** Stop when mean validation error (%) falls below this. */
    double target_mean_error = 3.0;
    /** Random candidate pool scored per round. */
    int candidate_pool = 2000;
    /**
     * Exponent balancing exploration vs exploitation in the infill
     * score  d_min^w * (1 + leaf_std); w = 1 is balanced, larger w
     * approaches pure space filling.
     */
    double distance_weight = 1.0;
    /** Independent random validation points. */
    int num_test_points = 50;
    /** Candidate LHS samples for the initial design. */
    int lhs_candidates = 50;
    /**
     * Infill batch selection strategy. Determinantal scores the
     * candidate pool once per round and requires
     * candidate_pool >= batch_size.
     */
    sampling::BatchStrategy batch_strategy =
        sampling::BatchStrategy::Determinantal;
    /** Gaussian kernel bandwidth for Determinantal (0 = auto). */
    double kernel_bandwidth = 0.0;
    /** Seed for all sampling. */
    std::uint64_t seed = 1;
    /** RBF hyperparameter grid. */
    rbf::TrainerOptions trainer;
};

/** One refinement round's outcome. */
struct AdaptiveRound
{
    /** Training points accumulated after this round. */
    int samples = 0;
    /** Validation accuracy of the refit model. */
    ErrorReport error;
    /**
     * Acquisition accounting for the batch that produced this round
     * (all-zero for round 0, whose sample is the LHS seed).
     */
    sampling::AcquisitionStats acquisition;
};

/** Result of adaptive model construction. */
struct AdaptiveResult
{
    std::shared_ptr<RbfPerformanceModel> model;
    std::vector<AdaptiveRound> history;
    /** All training points used (in simulation order). */
    std::vector<dspace::DesignPoint> sample;
    std::uint64_t simulations = 0;
    bool converged = false;
};

/**
 * Drives adaptive model construction against an oracle.
 */
class AdaptiveSampler
{
  public:
    /**
     * @param train_space Space to sample (copied; temporaries safe).
     * @param test_space Space for validation points (copied).
     * @param oracle Response source (held by reference).
     */
    AdaptiveSampler(dspace::DesignSpace train_space,
                    dspace::DesignSpace test_space, CpiOracle &oracle);

    /** Run the loop. @throws std::invalid_argument on bad options. */
    AdaptiveResult build(const AdaptiveOptions &options = {});

  private:
    dspace::DesignSpace train_space_;
    dspace::DesignSpace test_space_;
    CpiOracle &oracle_;
};

} // namespace ppm::core

#endif // PPM_CORE_ADAPTIVE_HH
