/**
 * @file
 * The public predictive-model interface: a trained model maps a raw
 * design point to predicted CPI. RBF networks (the paper's model) and
 * the linear baseline both implement it, so evaluation, exploration
 * and trend analysis are model-agnostic.
 */

#ifndef PPM_CORE_PREDICTOR_HH
#define PPM_CORE_PREDICTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "dspace/design_space.hh"
#include "linreg/model_selection.hh"
#include "rbf/trainer.hh"

namespace ppm::core {

/**
 * A trained performance model over a design space.
 */
class PerformanceModel
{
  public:
    virtual ~PerformanceModel() = default;

    /** Predicted CPI at a raw design point. */
    virtual double predict(const dspace::DesignPoint &point) const = 0;

    /** Short description ("rbf m=27 p_min=1 alpha=6", "linear ..."). */
    virtual std::string describe() const = 0;

    /**
     * Batch prediction across the global thread pool. predict() is
     * const and side-effect free for every model, so the result is
     * identical to a serial loop for any thread count.
     */
    std::vector<double> predictAll(
        const std::vector<dspace::DesignPoint> &points) const;
};

/**
 * RBF network model bound to its design space (handles raw <-> unit
 * conversion).
 */
class RbfPerformanceModel : public PerformanceModel
{
  public:
    /**
     * @param space Design space (copied).
     * @param trained Output of rbf::trainRbfModel().
     */
    RbfPerformanceModel(dspace::DesignSpace space, rbf::TrainedRbf trained);

    double predict(const dspace::DesignPoint &point) const override;
    std::string describe() const override;

    const rbf::TrainedRbf &trained() const { return trained_; }
    const dspace::DesignSpace &space() const { return space_; }

  private:
    dspace::DesignSpace space_;
    rbf::TrainedRbf trained_;
};

/**
 * Linear regression model bound to its design space.
 */
class LinearPerformanceModel : public PerformanceModel
{
  public:
    LinearPerformanceModel(dspace::DesignSpace space,
                           linreg::SelectedLinearModel selected);

    double predict(const dspace::DesignPoint &point) const override;
    std::string describe() const override;

    const linreg::SelectedLinearModel &selected() const
    {
        return selected_;
    }

  private:
    dspace::DesignSpace space_;
    linreg::SelectedLinearModel selected_;
};

} // namespace ppm::core

#endif // PPM_CORE_PREDICTOR_HH
