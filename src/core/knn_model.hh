/**
 * @file
 * k-nearest-neighbour baseline model: inverse-distance-weighted
 * interpolation over the training sample in unit space. A
 * zero-training-cost reference point between the linear baseline and
 * the RBF network — useful for quantifying how much of the RBF
 * model's accuracy comes from mere locality versus the fitted basis
 * expansion.
 */

#ifndef PPM_CORE_KNN_MODEL_HH
#define PPM_CORE_KNN_MODEL_HH

#include "core/predictor.hh"

namespace ppm::core {

/**
 * Inverse-distance-weighted k-NN regressor over the design space.
 */
class KnnPerformanceModel : public PerformanceModel
{
  public:
    /**
     * @param space Design space (copied; defines the metric via the
     *              per-parameter unit transforms).
     * @param points Training design points.
     * @param responses Responses, same length as @p points.
     * @param k Neighbours used per query (clamped to the sample
     *          size); must be >= 1.
     */
    KnnPerformanceModel(dspace::DesignSpace space,
                        std::vector<dspace::DesignPoint> points,
                        std::vector<double> responses, int k = 5);

    double predict(const dspace::DesignPoint &point) const override;
    std::string describe() const override;

    int k() const { return k_; }
    std::size_t sampleSize() const { return unit_.size(); }

  private:
    dspace::DesignSpace space_;
    std::vector<dspace::UnitPoint> unit_;
    std::vector<double> responses_;
    int k_;
};

} // namespace ppm::core

#endif // PPM_CORE_KNN_MODEL_HH
