/**
 * @file
 * ResultStore: the persistent backing-store interface shared by the
 * memoizing oracles (core/oracle.hh) and the result cache
 * (cache/result_cache.hh). Split out of oracle.hh so the cache
 * subsystem can spill through it without a header cycle.
 */

#ifndef PPM_CORE_RESULT_STORE_HH
#define PPM_CORE_RESULT_STORE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace ppm::core {

/**
 * Persistent backing store for simulation results. A SimulatorOracle
 * with an attached store preloads every archived (design-point key →
 * value) pair into its memo cache at attach time and reports each
 * fresh simulation back through append(), so results survive the
 * process and are shared across concurrent processes. The result
 * cache additionally spills evicted not-yet-durable entries through
 * the same interface.
 *
 * Implementations must make append() safe to call concurrently; the
 * canonical implementation is serve::ResultArchive (an append-only,
 * CRC-checked on-disk log). The store is scoped to one oracle context
 * (benchmark, trace length, options, metric) — keys from different
 * contexts must go to different stores.
 */
class ResultStore
{
  public:
    /** Memo key: the fixed-point rendering of a design point. */
    using Key = std::vector<std::int64_t>;

    virtual ~ResultStore() = default;

    /** Invoke @p sink for every archived (key, value) pair. */
    virtual void load(
        const std::function<void(const Key &, double)> &sink) = 0;

    /** Durably record one fresh result. Thread-safe. */
    virtual void append(const Key &key, double value) = 0;
};

} // namespace ppm::core

#endif // PPM_CORE_RESULT_STORE_HH
