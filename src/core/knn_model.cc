#include "core/knn_model.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace ppm::core {

KnnPerformanceModel::KnnPerformanceModel(
    dspace::DesignSpace space, std::vector<dspace::DesignPoint> points,
    std::vector<double> responses, int k)
    : space_(std::move(space)), responses_(std::move(responses)),
      k_(k)
{
    assert(!points.empty());
    assert(points.size() == responses_.size());
    assert(k_ >= 1);
    k_ = std::min(k_, static_cast<int>(points.size()));
    unit_.reserve(points.size());
    for (const auto &p : points)
        unit_.push_back(space_.toUnit(p));
}

double
KnnPerformanceModel::predict(const dspace::DesignPoint &point) const
{
    const dspace::UnitPoint x = space_.toUnit(point);

    // Partial selection of the k nearest by squared distance.
    std::vector<std::pair<double, std::size_t>> dist;
    dist.reserve(unit_.size());
    for (std::size_t i = 0; i < unit_.size(); ++i) {
        double acc = 0;
        for (std::size_t j = 0; j < x.size(); ++j) {
            const double d = x[j] - unit_[i][j];
            acc += d * d;
        }
        dist.emplace_back(acc, i);
    }
    const std::size_t k = static_cast<std::size_t>(k_);
    std::partial_sort(dist.begin(), dist.begin() + k, dist.end());

    // Inverse-distance weights; an exact hit returns its response.
    double wsum = 0, acc = 0;
    for (std::size_t n = 0; n < k; ++n) {
        const double d = std::sqrt(dist[n].first);
        if (d < 1e-12)
            return responses_[dist[n].second];
        const double w = 1.0 / d;
        wsum += w;
        acc += w * responses_[dist[n].second];
    }
    return acc / wsum;
}

std::string
KnnPerformanceModel::describe() const
{
    std::ostringstream os;
    os << "knn k=" << k_ << " samples=" << unit_.size();
    return os.str();
}

} // namespace ppm::core
