/**
 * @file
 * Model validation on independent test data (paper Sec 3): mean,
 * standard deviation and maximum of the absolute percentage error in
 * predicted CPI — the metrics of Table 3 and Figures 4 and 7.
 */

#ifndef PPM_CORE_EVALUATOR_HH
#define PPM_CORE_EVALUATOR_HH

#include <vector>

#include "core/oracle.hh"
#include "core/predictor.hh"
#include "dspace/design_space.hh"

namespace ppm::core {

/** Accuracy of a model on a test set. */
struct ErrorReport
{
    /** Mean absolute percentage error in CPI. */
    double mean_error = 0.0;
    /** Standard deviation of the percentage errors. */
    double std_error = 0.0;
    /** Largest percentage error at any test point. */
    double max_error = 0.0;
    /** Per-point percentage errors (same order as the test set). */
    std::vector<double> errors;
};

/**
 * Evaluate a model against known responses.
 *
 * @param model Trained model.
 * @param points Test design points.
 * @param actual Simulated CPI at those points (same order/length).
 */
ErrorReport evaluateModel(const PerformanceModel &model,
                          const std::vector<dspace::DesignPoint> &points,
                          const std::vector<double> &actual);

/**
 * Evaluate a model against an oracle: the reference responses are
 * obtained through the oracle's batched (possibly parallel) API, so
 * uncached test points simulate across the thread pool.
 */
ErrorReport evaluateModel(const PerformanceModel &model,
                          const std::vector<dspace::DesignPoint> &points,
                          CpiOracle &oracle);

/** Same metrics for precomputed predictions. */
ErrorReport evaluatePredictions(const std::vector<double> &actual,
                                const std::vector<double> &predicted);

} // namespace ppm::core

#endif // PPM_CORE_EVALUATOR_HH
