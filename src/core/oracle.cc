#include "core/oracle.hh"

#include <cmath>

#include "sim/power.hh"

namespace ppm::core {

std::string
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Cpi:
        return "CPI";
      case Metric::EnergyPerInst:
        return "EPI";
      case Metric::EnergyDelaySquared:
        return "ED2P";
    }
    return "unknown";
}

SimulatorOracle::SimulatorOracle(const dspace::DesignSpace &space,
                                 const trace::Trace &trace,
                                 const sim::SimOptions &options,
                                 Metric metric)
    : space_(space), trace_(trace), options_(options), metric_(metric)
{
}

double
SimulatorOracle::cpi(const dspace::DesignPoint &point)
{
    // Key on a fixed-point rendering so float noise cannot split
    // logically identical configurations.
    std::vector<std::int64_t> key;
    key.reserve(point.size());
    for (double v : point)
        key.push_back(static_cast<std::int64_t>(std::llround(v * 1e6)));

    const auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++cache_hits_;
        return it->second;
    }

    const auto config =
        sim::ProcessorConfig::fromDesignPoint(space_, point);
    last_stats_ = sim::simulate(trace_, config, options_);
    ++evaluations_;

    double value = 0.0;
    switch (metric_) {
      case Metric::Cpi:
        value = last_stats_.cpi();
        break;
      case Metric::EnergyPerInst:
        value = sim::computePower(config, last_stats_)
                    .epi(last_stats_);
        break;
      case Metric::EnergyDelaySquared:
        value = sim::computePower(config, last_stats_)
                    .ed2p(last_stats_);
        break;
    }
    cache_.emplace(std::move(key), value);
    return value;
}

} // namespace ppm::core
