#include "core/oracle.hh"

#include <chrono>
#include <cmath>

#include "obs/trace_span.hh"
#include "sim/power.hh"
#include "util/thread_pool.hh"

namespace ppm::core {

std::string
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Cpi:
        return "CPI";
      case Metric::EnergyPerInst:
        return "EPI";
      case Metric::EnergyDelaySquared:
        return "ED2P";
    }
    return "unknown";
}

SimulatorOracle::SimulatorOracle(const dspace::DesignSpace &space,
                                 const trace::Trace &trace,
                                 const sim::SimOptions &options,
                                 Metric metric)
    : space_(space), trace_(trace), options_(options), metric_(metric)
{
}

ResultStore::Key
SimulatorOracle::cacheKey(const dspace::DesignPoint &point)
{
    ResultStore::Key key;
    key.reserve(point.size());
    for (double v : point)
        key.push_back(static_cast<std::int64_t>(std::llround(v * 1e6)));
    return key;
}

void
SimulatorOracle::attachStore(std::shared_ptr<ResultStore> store)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t loaded = 0;
    store->load([this, &loaded](const ResultStore::Key &key,
                                double value) {
        std::promise<double> ready;
        ready.set_value(value);
        const auto [it, inserted] =
            cache_.try_emplace(key, ready.get_future().share());
        (void)it;
        if (inserted) {
            archived_.fetch_add(1, std::memory_order_relaxed);
            ++loaded;
        }
    });
    store_ = std::move(store);
    OBS_STATIC_COUNTER(preloaded, "oracle.preloaded");
    OBS_ADD(preloaded, loaded);
}

double
SimulatorOracle::cpi(const dspace::DesignPoint &point)
{
    const ResultStore::Key key = cacheKey(point);

    std::promise<double> promise;
    std::shared_ptr<ResultStore> store;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto [it, inserted] = cache_.try_emplace(key);
        if (!inserted) {
            // Completed or still in flight: either way this request
            // costs no simulation. get() blocks until the owner of
            // the entry fulfils it.
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            const std::shared_future<double> ready = it->second;
            lock.unlock();
            // Observational only: a zero-wait probe distinguishes a
            // completed memo hit from in-flight deduplication.
            if (ready.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                OBS_STATIC_COUNTER(memo_hits, "oracle.cache_hits");
                OBS_ADD(memo_hits, 1);
            } else {
                OBS_STATIC_COUNTER(dedup_waits, "oracle.dedup_waits");
                OBS_ADD(dedup_waits, 1);
            }
            return ready.get();
        }
        it->second = promise.get_future().share();
        store = store_;
    }

    // This thread owns the entry; simulate outside the lock so other
    // points proceed concurrently.
    OBS_SPAN("oracle.simulate");
    OBS_STATIC_COUNTER(simulations, "oracle.simulations");
    OBS_ADD(simulations, 1);
    const auto config =
        sim::ProcessorConfig::fromDesignPoint(space_, point);
    try {
        sim::SimStats stats = sim::simulate(trace_, config, options_);
        double value = 0.0;
        switch (metric_) {
          case Metric::Cpi:
            value = stats.cpi();
            break;
          case Metric::EnergyPerInst:
            value = sim::computePower(config, stats).epi(stats);
            break;
          case Metric::EnergyDelaySquared:
            value = sim::computePower(config, stats).ed2p(stats);
            break;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            last_stats_ = stats;
        }
        // Archive before publishing: if the store cannot persist the
        // result, fail the request rather than hand out a value that
        // a replay would have to re-simulate.
        if (store)
            store->append(key, value);
        evaluations_.fetch_add(1, std::memory_order_relaxed);
        promise.set_value(value);
        return value;
    } catch (...) {
        // Remove the entry so a later request retries, and wake any
        // waiters with the failure.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            cache_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

std::vector<double>
SimulatorOracle::evaluateAll(const std::vector<dspace::DesignPoint> &points)
{
    return util::parallelMap(points, [this](const dspace::DesignPoint &p) {
        return cpi(p);
    });
}

} // namespace ppm::core
