#include "core/oracle.hh"

#include <cmath>
#include <utility>

#include "obs/trace_span.hh"
#include "sim/power.hh"
#include "util/thread_pool.hh"

namespace ppm::core {

std::string
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Cpi:
        return "CPI";
      case Metric::EnergyPerInst:
        return "EPI";
      case Metric::EnergyDelaySquared:
        return "ED2P";
    }
    return "unknown";
}

int
metricIndex(Metric metric)
{
    switch (metric) {
      case Metric::EnergyPerInst:
        return 1;
      case Metric::EnergyDelaySquared:
        return 2;
      default:
        return 0;
    }
}

SimulatorOracle::SimulatorOracle(const dspace::DesignSpace &space,
                                 const trace::Trace &trace,
                                 const sim::SimOptions &options,
                                 Metric metric)
    : space_(space), trace_(trace), options_(options), metric_(metric)
{
}

ResultStore::Key
SimulatorOracle::cacheKey(const dspace::DesignPoint &point)
{
    ResultStore::Key key;
    key.reserve(point.size());
    for (double v : point)
        key.push_back(static_cast<std::int64_t>(std::llround(v * 1e6)));
    return key;
}

void
SimulatorOracle::ensureCache()
{
    std::call_once(cache_once_, [this] {
        if (cache_)
            return; // attachSharedCache() supplied one
        cache::CacheConfig config;
        config.key_words = space_.size() + 1;
        cache_ = std::make_shared<cache::ResultCache>(config);
    });
}

ResultStore::Key
SimulatorOracle::fullKey(const dspace::DesignPoint &point) const
{
    ResultStore::Key key;
    key.reserve(point.size() + 1);
    key.push_back(
        cache::contextWord(context_id_, metricIndex(metric_)));
    for (double v : point)
        key.push_back(static_cast<std::int64_t>(std::llround(v * 1e6)));
    return key;
}

void
SimulatorOracle::attachSharedCache(
    std::shared_ptr<cache::ResultCache> cache, std::int64_t context_id)
{
    std::call_once(cache_once_, [&] {
        cache_ = std::move(cache);
        shared_cache_ = true;
        context_id_ = context_id;
    });
}

void
SimulatorOracle::attachStore(std::shared_ptr<ResultStore> store)
{
    ensureCache();
    std::uint64_t loaded = 0;
    const std::int64_t ctx =
        cache::contextWord(context_id_, metricIndex(metric_));
    store->load([&](const ResultStore::Key &bare, double value) {
        ResultStore::Key key;
        key.reserve(bare.size() + 1);
        key.push_back(ctx);
        key.insert(key.end(), bare.begin(), bare.end());
        // Archived results are durable by definition: insert clean.
        if (cache_->insert(key, value, /*dirty=*/false)) {
            archived_.fetch_add(1, std::memory_order_relaxed);
            ++loaded;
        }
    });
    {
        std::lock_guard<std::mutex> lock(store_mutex_);
        store_ = std::move(store);
    }
    OBS_STATIC_COUNTER(preloaded, "oracle.preloaded");
    OBS_ADD(preloaded, loaded);
}

double
SimulatorOracle::simulatePoint(const dspace::DesignPoint &point,
                               const ResultStore::Key &bare_key)
{
    OBS_SPAN("oracle.simulate");
    OBS_STATIC_COUNTER(simulations, "oracle.simulations");
    OBS_ADD(simulations, 1);
    const auto config =
        sim::ProcessorConfig::fromDesignPoint(space_, point);
    const sim::SimStats stats =
        sim::simulate(trace_, config, options_);
    const sim::PowerReport power = sim::computePower(config, stats);
    const double values[3] = {stats.cpi(), power.epi(stats),
                              power.ed2p(stats)};
    const double value = values[metricIndex(metric_)];
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        last_stats_ = stats;
    }
    // Archive before publishing: if the store cannot persist the
    // result, fail the request rather than hand out a value that a
    // replay would have to re-simulate.
    std::shared_ptr<ResultStore> store;
    {
        std::lock_guard<std::mutex> lock(store_mutex_);
        store = store_;
    }
    if (store)
        store->append(bare_key, value);
    // One simulation prices every metric: on a shared table, populate
    // the sibling-metric entries of this context so a sibling oracle
    // (same design-space config, different Metric) never re-simulates
    // this point. Siblings are dirty — durability belongs to *their*
    // archives, reached via their registered spill routes.
    if (shared_cache_) {
        for (int m = 0; m < 3; ++m) {
            if (m == metricIndex(metric_))
                continue;
            ResultStore::Key sibling;
            sibling.reserve(bare_key.size() + 1);
            sibling.push_back(cache::contextWord(context_id_, m));
            sibling.insert(sibling.end(), bare_key.begin(),
                           bare_key.end());
            cache_->insert(sibling, values[m], /*dirty=*/true);
        }
    }
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    return value;
}

double
SimulatorOracle::cpi(const dspace::DesignPoint &point)
{
    ensureCache();
    const ResultStore::Key bare = cacheKey(point);
    ResultStore::Key key;
    key.reserve(bare.size() + 1);
    key.push_back(
        cache::contextWord(context_id_, metricIndex(metric_)));
    key.insert(key.end(), bare.begin(), bare.end());

    const cache::ResultCache::GetResult result = cache_->getOrCompute(
        key, [&] { return simulatePoint(point, bare); },
        /*publish_dirty=*/false);
    switch (result.outcome) {
      case cache::Outcome::Hit: {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        OBS_STATIC_COUNTER(memo_hits, "oracle.cache_hits");
        OBS_ADD(memo_hits, 1);
        break;
      }
      case cache::Outcome::DedupWait: {
        // Still no extra simulation: another thread paid for it.
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        OBS_STATIC_COUNTER(dedup_waits, "oracle.dedup_waits");
        OBS_ADD(dedup_waits, 1);
        break;
      }
      default:
        break; // Computed/Bypassed counted via oracle.simulations
    }
    return result.value;
}

std::vector<double>
SimulatorOracle::evaluateAll(const std::vector<dspace::DesignPoint> &points)
{
    ensureCache();
    return util::parallelMap(points, [this](const dspace::DesignPoint &p) {
        return cpi(p);
    });
}

double
FunctionOracle::cpi(const dspace::DesignPoint &point)
{
    const auto evaluate = [&] {
        // Relaxed atomic: function oracles must stay safe under a
        // parallel evaluateAll() override, matching SimulatorOracle.
        evaluations_.fetch_add(1, std::memory_order_relaxed);
        OBS_STATIC_COUNTER(fn_evals, "oracle.fn_evals");
        OBS_ADD(fn_evals, 1);
        return fn_(point);
    };
    if (!cache_)
        return evaluate();
    ResultStore::Key key;
    key.reserve(point.size() + 1);
    key.push_back(ctx_word_);
    for (double v : point)
        key.push_back(static_cast<std::int64_t>(std::llround(v * 1e6)));
    return cache_->getOrCompute(key, evaluate, write_behind_).value;
}

void
FunctionOracle::attachCache(std::shared_ptr<cache::ResultCache> cache,
                            std::shared_ptr<ResultStore> store,
                            std::int64_t context_id)
{
    cache_ = std::move(cache);
    ctx_word_ = cache::contextWord(context_id, 0);
    write_behind_ = store != nullptr;
    if (!store)
        return;
    cache_->registerSpillStore(ctx_word_, store);
    store->load([&](const ResultStore::Key &bare, double value) {
        ResultStore::Key key;
        key.reserve(bare.size() + 1);
        key.push_back(ctx_word_);
        key.insert(key.end(), bare.begin(), bare.end());
        if (cache_->insert(key, value, /*dirty=*/false))
            archived_.fetch_add(1, std::memory_order_relaxed);
    });
}

std::size_t
FunctionOracle::flushDirty()
{
    return cache_ ? cache_->flushDirty() : 0;
}

} // namespace ppm::core
