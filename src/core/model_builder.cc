#include "core/model_builder.hh"

#include <stdexcept>

#include "linreg/model_selection.hh"
#include "sampling/discrepancy.hh"
#include "sampling/sample_gen.hh"

namespace ppm::core {

ModelBuilder::ModelBuilder(dspace::DesignSpace train_space,
                           dspace::DesignSpace test_space,
                           CpiOracle &oracle)
    : train_space_(std::move(train_space)),
      test_space_(std::move(test_space)), oracle_(oracle)
{
}

BuildResult
ModelBuilder::build(const BuildOptions &options)
{
    if (options.sample_sizes.empty())
        throw std::invalid_argument("BuildOptions: empty size schedule");
    for (int size : options.sample_sizes)
        if (size < 10)
            throw std::invalid_argument(
                "BuildOptions: sample sizes must be >= 10");
    if (options.num_test_points < 1)
        throw std::invalid_argument(
            "BuildOptions: need at least one test point");

    const std::uint64_t evals_before = oracle_.evaluations();
    math::Rng rng(options.seed);

    // Step 5 preparation: a fixed, independently generated random test
    // set, simulated once (paper Sec 3).
    math::Rng test_rng = rng.split();
    test_points_ = sampling::randomTestSet(
        test_space_, options.num_test_points, test_rng);
    test_responses_ = oracle_.evaluateAll(test_points_);

    BuildResult result;
    for (int size : options.sample_sizes) {
        SizeResult step;
        step.sample_size = size;

        // Step 2: select the simulation sample.
        std::vector<dspace::DesignPoint> sample;
        if (options.use_random_sampling) {
            sample = sampling::randomSample(train_space_, size, rng);
            step.discrepancy = sampling::centeredL2Discrepancy(
                sampling::toUnitSample(train_space_, sample));
        } else {
            sampling::OptimizedSample best = sampling::bestLatinHypercube(
                train_space_, size, options.lhs_candidates, rng);
            sample = std::move(best.points);
            step.discrepancy = best.discrepancy;
        }

        // Step 3: detailed simulation at the sample.
        const std::vector<double> responses = oracle_.evaluateAll(sample);

        // Step 4: fit the RBF network.
        std::vector<dspace::UnitPoint> unit;
        unit.reserve(sample.size());
        for (const auto &p : sample)
            unit.push_back(train_space_.toUnit(p));
        rbf::TrainedRbf trained =
            rbf::trainRbfModel(unit, responses, options.trainer);
        step.p_min = trained.p_min;
        step.alpha = trained.alpha;
        step.num_centers = trained.num_centers;

        auto model = std::make_shared<RbfPerformanceModel>(
            train_space_, std::move(trained));

        // Step 5: estimate accuracy on the held-out test set.
        step.rbf_error =
            evaluateModel(*model, test_points_, test_responses_);

        if (options.fit_linear_baseline) {
            linreg::SelectedLinearModel lin =
                linreg::fitSelectedLinearModel(unit, responses);
            auto linear = std::make_shared<LinearPerformanceModel>(
                train_space_, std::move(lin));
            step.linear_error =
                evaluateModel(*linear, test_points_, test_responses_);
            result.linear_model = std::move(linear);
        }

        result.model = std::move(model);
        result.history.push_back(std::move(step));

        // Step 6: grow the sample until accurate enough.
        if (result.history.back().rbf_error.mean_error <=
            options.target_mean_error) {
            result.converged = true;
            break;
        }
    }

    result.simulations = oracle_.evaluations() - evals_before;
    return result;
}

} // namespace ppm::core
