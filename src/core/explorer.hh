/**
 * @file
 * Design-space exploration on top of a trained model: the "common
 * tasks" the paper argues the model can take over from detailed
 * simulation — searching for optimal design points and predicting
 * microarchitectural trends (paper Sec 4.1).
 */

#ifndef PPM_CORE_EXPLORER_HH
#define PPM_CORE_EXPLORER_HH

#include <functional>
#include <vector>

#include "core/predictor.hh"
#include "dspace/design_space.hh"
#include "math/rng.hh"

namespace ppm::core {

/** One evaluated candidate from a search. */
struct Candidate
{
    dspace::DesignPoint point;
    double predicted_cpi = 0.0;
};

/** Options for findBestConfigurations(). */
struct SearchOptions
{
    /** Random candidates to evaluate through the model. */
    int num_candidates = 20000;
    /** How many best configurations to return. */
    int top_k = 10;
    /** Seed for candidate generation. */
    std::uint64_t seed = 7;
    /**
     * Optional feasibility constraint (e.g. an area or power proxy);
     * return false to reject a candidate. Null accepts everything.
     */
    std::function<bool(const dspace::DesignPoint &)> constraint;
};

/**
 * Search the design space through the model (model evaluations are
 * microseconds, so tens of thousands of candidates are cheap — the
 * paper's motivation for replacing simulation in the search loop).
 *
 * @return Up to top_k candidates sorted by ascending predicted CPI.
 */
std::vector<Candidate> findBestConfigurations(
    const PerformanceModel &model, const dspace::DesignSpace &space,
    const SearchOptions &options = {});

/**
 * Sweep one parameter, holding the others at @p base: the 1-D trend
 * curve.
 *
 * @param parameter Index of the swept parameter.
 * @param steps Number of evenly spaced settings (in transformed
 *              space) across the parameter range.
 * @return Candidates in sweep order.
 */
std::vector<Candidate> sweepParameter(
    const PerformanceModel &model, const dspace::DesignSpace &space,
    const dspace::DesignPoint &base, std::size_t parameter, int steps);

/**
 * Sweep two parameters jointly: the 2-D interaction surface of paper
 * Figures 1 and 6. Row-major: result[i * steps_b + j] corresponds to
 * setting i of parameter @p a and setting j of parameter @p b.
 */
std::vector<Candidate> sweepInteraction(
    const PerformanceModel &model, const dspace::DesignSpace &space,
    const dspace::DesignPoint &base, std::size_t a, std::size_t b,
    int steps_a, int steps_b);

} // namespace ppm::core

#endif // PPM_CORE_EXPLORER_HH
