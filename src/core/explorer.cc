#include "core/explorer.hh"

#include <algorithm>
#include <cassert>

namespace ppm::core {

std::vector<Candidate>
findBestConfigurations(const PerformanceModel &model,
                       const dspace::DesignSpace &space,
                       const SearchOptions &options)
{
    assert(options.num_candidates > 0 && options.top_k > 0);
    math::Rng rng(options.seed);
    std::vector<Candidate> best;

    for (int i = 0; i < options.num_candidates; ++i) {
        Candidate c;
        c.point = space.randomPoint(rng);
        if (options.constraint && !options.constraint(c.point))
            continue;
        c.predicted_cpi = model.predict(c.point);

        best.push_back(std::move(c));
        if (best.size() > static_cast<std::size_t>(options.top_k) * 4) {
            // Keep the working set small during the scan.
            std::nth_element(
                best.begin(),
                best.begin() + options.top_k, best.end(),
                [](const Candidate &x, const Candidate &y) {
                    return x.predicted_cpi < y.predicted_cpi;
                });
            best.resize(static_cast<std::size_t>(options.top_k));
        }
    }

    std::sort(best.begin(), best.end(),
              [](const Candidate &x, const Candidate &y) {
                  return x.predicted_cpi < y.predicted_cpi;
              });
    if (best.size() > static_cast<std::size_t>(options.top_k))
        best.resize(static_cast<std::size_t>(options.top_k));
    return best;
}

std::vector<Candidate>
sweepParameter(const PerformanceModel &model,
               const dspace::DesignSpace &space,
               const dspace::DesignPoint &base, std::size_t parameter,
               int steps)
{
    assert(parameter < space.size());
    assert(steps >= 2);
    std::vector<Candidate> out;
    out.reserve(static_cast<std::size_t>(steps));
    for (int s = 0; s < steps; ++s) {
        Candidate c;
        c.point = base;
        c.point[parameter] =
            space.param(parameter).levelValue(s, steps);
        c.predicted_cpi = model.predict(c.point);
        out.push_back(std::move(c));
    }
    return out;
}

std::vector<Candidate>
sweepInteraction(const PerformanceModel &model,
                 const dspace::DesignSpace &space,
                 const dspace::DesignPoint &base, std::size_t a,
                 std::size_t b, int steps_a, int steps_b)
{
    assert(a < space.size() && b < space.size() && a != b);
    assert(steps_a >= 2 && steps_b >= 2);
    std::vector<Candidate> out;
    out.reserve(static_cast<std::size_t>(steps_a) *
                static_cast<std::size_t>(steps_b));
    for (int i = 0; i < steps_a; ++i) {
        for (int j = 0; j < steps_b; ++j) {
            Candidate c;
            c.point = base;
            c.point[a] = space.param(a).levelValue(i, steps_a);
            c.point[b] = space.param(b).levelValue(j, steps_b);
            c.predicted_cpi = model.predict(c.point);
            out.push_back(std::move(c));
        }
    }
    return out;
}

} // namespace ppm::core
