/**
 * @file
 * CPI oracles: the expensive function the predictive models
 * approximate. The production oracle runs the cycle-level simulator on
 * a benchmark trace and memoizes results; an analytic oracle backs
 * fast tests of the model-building machinery.
 */

#ifndef PPM_CORE_ORACLE_HH
#define PPM_CORE_ORACLE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dspace/design_space.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace ppm::core {

/**
 * Source of CPI responses over a design space.
 */
class CpiOracle
{
  public:
    virtual ~CpiOracle() = default;

    /** CPI at a raw design point. */
    virtual double cpi(const dspace::DesignPoint &point) = 0;

    /** Number of expensive evaluations performed so far. */
    virtual std::uint64_t evaluations() const = 0;

    /** CPI at many points. */
    std::vector<double>
    cpiAll(const std::vector<dspace::DesignPoint> &points)
    {
        std::vector<double> out;
        out.reserve(points.size());
        for (const auto &p : points)
            out.push_back(cpi(p));
        return out;
    }
};

/**
 * Which simulated response a SimulatorOracle reports. CPI is the
 * paper's metric; the energy metrics implement its proposed extension
 * to power modeling (Sec 6) via the activity-based model in
 * sim/power.hh.
 */
enum class Metric
{
    Cpi,                //!< cycles per instruction
    EnergyPerInst,      //!< model-nJ per committed instruction
    EnergyDelaySquared, //!< EPI * CPI^2
};

/** Short name of a Metric ("CPI", "EPI", "ED2P"). */
std::string metricName(Metric metric);

/**
 * Oracle backed by the cycle-level simulator running one benchmark
 * trace. Results are memoized, so re-simulating a previously seen
 * configuration is free — mirroring how a real study would archive
 * simulation results.
 *
 * Despite the interface name, the oracle can report any Metric; the
 * model-building machinery is agnostic to what response it models.
 */
class SimulatorOracle : public CpiOracle
{
  public:
    /**
     * @param space Design space the points belong to (paper layout).
     * @param trace Benchmark trace (held by reference; must outlive
     *              the oracle).
     * @param options Simulation options applied to every run.
     * @param metric Response reported by cpi().
     */
    SimulatorOracle(const dspace::DesignSpace &space,
                    const trace::Trace &trace,
                    const sim::SimOptions &options = {},
                    Metric metric = Metric::Cpi);

    double cpi(const dspace::DesignPoint &point) override;
    std::uint64_t evaluations() const override { return evaluations_; }

    /** Memoization hits so far. */
    std::uint64_t cacheHits() const { return cache_hits_; }

    /** Full statistics of the most recent (uncached) simulation. */
    const sim::SimStats &lastStats() const { return last_stats_; }

    /** The metric this oracle reports. */
    Metric metric() const { return metric_; }

  private:
    const dspace::DesignSpace &space_;
    const trace::Trace &trace_;
    sim::SimOptions options_;
    Metric metric_;
    std::map<std::vector<std::int64_t>, double> cache_;
    std::uint64_t evaluations_ = 0;
    std::uint64_t cache_hits_ = 0;
    sim::SimStats last_stats_;
};

/**
 * Oracle defined by an arbitrary function of the raw design point.
 * Used by unit tests and by synthetic accuracy studies where ground
 * truth must be known exactly.
 */
class FunctionOracle : public CpiOracle
{
  public:
    using Fn = std::function<double(const dspace::DesignPoint &)>;

    explicit FunctionOracle(Fn fn) : fn_(std::move(fn)) {}

    double
    cpi(const dspace::DesignPoint &point) override
    {
        ++evaluations_;
        return fn_(point);
    }

    std::uint64_t evaluations() const override { return evaluations_; }

  private:
    Fn fn_;
    std::uint64_t evaluations_ = 0;
};

} // namespace ppm::core

#endif // PPM_CORE_ORACLE_HH
