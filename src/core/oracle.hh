/**
 * @file
 * CPI oracles: the expensive function the predictive models
 * approximate. The production oracle runs the cycle-level simulator on
 * a benchmark trace and memoizes results; an analytic oracle backs
 * fast tests of the model-building machinery.
 *
 * Memoization is delegated to cache::ResultCache (src/cache/), the
 * concurrent budgeted hash table: oracles render design points to
 * fixed-point keys, prefix them with a context word, and run the
 * cache's exactly-once getOrCompute protocol. The old design — one
 * mutex around a std::map of shared_futures — survives as
 * cache::MutexMapCache for benchmarks and equivalence tests.
 */

#ifndef PPM_CORE_ORACLE_HH
#define PPM_CORE_ORACLE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/result_cache.hh"
#include "core/result_store.hh"
#include "dspace/design_space.hh"
#include "obs/trace_span.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace ppm::core {

/**
 * Source of CPI responses over a design space.
 */
class CpiOracle
{
  public:
    virtual ~CpiOracle() = default;

    /** CPI at a raw design point. */
    virtual double cpi(const dspace::DesignPoint &point) = 0;

    /** Number of expensive evaluations performed so far. */
    virtual std::uint64_t evaluations() const = 0;

    /** CPI at many points, strictly in order on the calling thread. */
    std::vector<double>
    cpiAll(const std::vector<dspace::DesignPoint> &points)
    {
        std::vector<double> out;
        out.reserve(points.size());
        for (const auto &p : points)
            out.push_back(cpi(p));
        return out;
    }

    /**
     * CPI at many points, possibly evaluated in parallel. Results are
     * returned in input order and are bit-identical to cpiAll() for
     * every thread count. The default forwards to cpiAll(); oracles
     * whose cpi() is thread-safe override it to fan the batch out
     * across the global pool.
     */
    virtual std::vector<double>
    evaluateAll(const std::vector<dspace::DesignPoint> &points)
    {
        return cpiAll(points);
    }
};

/**
 * Which simulated response a SimulatorOracle reports. CPI is the
 * paper's metric; the energy metrics implement its proposed extension
 * to power modeling (Sec 6) via the activity-based model in
 * sim/power.hh.
 */
enum class Metric
{
    Cpi,                //!< cycles per instruction
    EnergyPerInst,      //!< model-nJ per committed instruction
    EnergyDelaySquared, //!< EPI * CPI^2
};

/** Short name of a Metric ("CPI", "EPI", "ED2P"). */
std::string metricName(Metric metric);

/** Zero-based index of @p metric, as packed into cache key words. */
int metricIndex(Metric metric);

/**
 * Oracle backed by the cycle-level simulator running one benchmark
 * trace. Results are memoized, so re-simulating a previously seen
 * configuration is free — mirroring how a real study would archive
 * simulation results.
 *
 * cpi() is thread-safe: the memo layer is a cache::ResultCache, whose
 * two-phase insert deduplicates concurrent requests for the same
 * point — exactly one simulation runs and every other requester
 * blocks on (and shares) its result. evaluateAll() exploits this to
 * simulate a batch across the global thread pool.
 *
 * By default each oracle lazily creates a private table sized by
 * PPM_CACHE_MB. Alternatively attachSharedCache() points several
 * oracles at one process-wide table: each oracle's entries are
 * distinguished by a context word packed from its context id and
 * metric, and one simulation populates the sibling metrics of its
 * context (a CPI oracle's run also fills the EPI and ED2P entries),
 * so sibling-metric oracles never re-simulate a paid-for point.
 *
 * Despite the interface name, the oracle can report any Metric; the
 * model-building machinery is agnostic to what response it models.
 */
class SimulatorOracle : public CpiOracle
{
  public:
    /**
     * @param space Design space the points belong to (paper layout).
     * @param trace Benchmark trace (held by reference; must outlive
     *              the oracle).
     * @param options Simulation options applied to every run.
     * @param metric Response reported by cpi().
     */
    SimulatorOracle(const dspace::DesignSpace &space,
                    const trace::Trace &trace,
                    const sim::SimOptions &options = {},
                    Metric metric = Metric::Cpi);

    double cpi(const dspace::DesignPoint &point) override;
    std::vector<double> evaluateAll(
        const std::vector<dspace::DesignPoint> &points) override;

    /**
     * Attach a persistent result store: every archived result is
     * preloaded into the memo cache (so requesting it never simulates)
     * and every fresh simulation is appended to the store *before*
     * its value is published (write-through — a cached entry is
     * always durable, so evicting it never needs a spill). Attach
     * before issuing requests; results simulated earlier by this
     * oracle are not retroactively archived.
     */
    void attachStore(std::shared_ptr<ResultStore> store);

    /**
     * Memoize through @p cache (shared with other oracles) instead of
     * a private table. This oracle's keys carry
     * cache::contextWord(@p context_id, metricIndex(metric())), and a
     * fresh simulation also inserts the sibling-metric values for the
     * same context id. Call before the first cpi()/attachStore();
     * @p cache must outlive the oracle's requests and its key width
     * must be the design-point size + 1.
     */
    void attachSharedCache(std::shared_ptr<cache::ResultCache> cache,
                           std::int64_t context_id);

    /** Results preloaded from the attached store. */
    std::uint64_t
    archivedResults() const
    {
        return archived_.load(std::memory_order_relaxed);
    }

    /**
     * Memo-cache key of @p point: a fixed-point rendering, so float
     * noise cannot split logically identical configurations. This is
     * also the key persisted by an attached ResultStore. (The in-table
     * key additionally carries a leading context word.)
     */
    static ResultStore::Key cacheKey(const dspace::DesignPoint &point);

    std::uint64_t
    evaluations() const override
    {
        return evaluations_.load(std::memory_order_relaxed);
    }

    /**
     * Memoization hits so far. A request that arrives while the same
     * point is still being simulated counts as a hit: it consumes no
     * extra simulation.
     */
    std::uint64_t
    cacheHits() const
    {
        return cache_hits_.load(std::memory_order_relaxed);
    }

    /**
     * Full statistics of the most recent (uncached) simulation,
     * copied under a mutex so it can be polled while a parallel
     * evaluateAll() is in flight. Only meaningful between batches;
     * during a batch "most recent" depends on scheduling.
     */
    sim::SimStats
    lastStats() const
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        return last_stats_;
    }

    /** The metric this oracle reports. */
    Metric metric() const { return metric_; }

  private:
    /** Create the private table on first use (PPM_CACHE_MB-sized). */
    void ensureCache();
    /** Context word + fixed-point point rendering. */
    ResultStore::Key fullKey(const dspace::DesignPoint &point) const;
    /** Run one simulation and return the requested metric's value. */
    double simulatePoint(const dspace::DesignPoint &point,
                         const ResultStore::Key &bare_key);

    const dspace::DesignSpace &space_;
    const trace::Trace &trace_;
    sim::SimOptions options_;
    Metric metric_;

    std::once_flag cache_once_;
    std::shared_ptr<cache::ResultCache> cache_;
    bool shared_cache_ = false;
    std::int64_t context_id_ = 0;

    std::mutex store_mutex_;
    std::shared_ptr<ResultStore> store_;

    std::atomic<std::uint64_t> evaluations_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
    std::atomic<std::uint64_t> archived_{0};

    mutable std::mutex stats_mutex_;
    sim::SimStats last_stats_;
};

/**
 * Oracle defined by an arbitrary function of the raw design point.
 * Used by unit tests and by synthetic accuracy studies where ground
 * truth must be known exactly.
 *
 * By default every cpi() call invokes the function (no memo), keeping
 * evaluation counting exact for tests. attachCache() opts into
 * ResultCache memoization; with a store the oracle runs write-behind:
 * fresh results are published dirty, spilled to the store when budget
 * pressure evicts them, and flushDirty() persists the remainder.
 */
class FunctionOracle : public CpiOracle
{
  public:
    using Fn = std::function<double(const dspace::DesignPoint &)>;

    explicit FunctionOracle(Fn fn) : fn_(std::move(fn)) {}

    double cpi(const dspace::DesignPoint &point) override;

    /**
     * Memoize through @p cache (key width = design-point size + 1;
     * entries keyed by cache::contextWord(@p context_id, 0)). When
     * @p store is non-null the oracle preloads it, registers it as
     * the spill route for its context word, and publishes fresh
     * results dirty (write-behind).
     */
    void attachCache(std::shared_ptr<cache::ResultCache> cache,
                     std::shared_ptr<ResultStore> store = nullptr,
                     std::int64_t context_id = 0);

    /** Spill still-dirty results through the attached store. */
    std::size_t flushDirty();

    /** Results preloaded from the attached store. */
    std::uint64_t
    archivedResults() const
    {
        return archived_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    evaluations() const override
    {
        return evaluations_.load(std::memory_order_relaxed);
    }

  private:
    Fn fn_;
    std::shared_ptr<cache::ResultCache> cache_;
    std::int64_t ctx_word_ = 0;
    bool write_behind_ = false;
    std::atomic<std::uint64_t> evaluations_{0};
    std::atomic<std::uint64_t> archived_{0};
};

} // namespace ppm::core

#endif // PPM_CORE_ORACLE_HH
