/**
 * @file
 * CPI oracles: the expensive function the predictive models
 * approximate. The production oracle runs the cycle-level simulator on
 * a benchmark trace and memoizes results; an analytic oracle backs
 * fast tests of the model-building machinery.
 */

#ifndef PPM_CORE_ORACLE_HH
#define PPM_CORE_ORACLE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dspace/design_space.hh"
#include "obs/trace_span.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace ppm::core {

/**
 * Source of CPI responses over a design space.
 */
class CpiOracle
{
  public:
    virtual ~CpiOracle() = default;

    /** CPI at a raw design point. */
    virtual double cpi(const dspace::DesignPoint &point) = 0;

    /** Number of expensive evaluations performed so far. */
    virtual std::uint64_t evaluations() const = 0;

    /** CPI at many points, strictly in order on the calling thread. */
    std::vector<double>
    cpiAll(const std::vector<dspace::DesignPoint> &points)
    {
        std::vector<double> out;
        out.reserve(points.size());
        for (const auto &p : points)
            out.push_back(cpi(p));
        return out;
    }

    /**
     * CPI at many points, possibly evaluated in parallel. Results are
     * returned in input order and are bit-identical to cpiAll() for
     * every thread count. The default forwards to cpiAll(); oracles
     * whose cpi() is thread-safe override it to fan the batch out
     * across the global pool.
     */
    virtual std::vector<double>
    evaluateAll(const std::vector<dspace::DesignPoint> &points)
    {
        return cpiAll(points);
    }
};

/**
 * Which simulated response a SimulatorOracle reports. CPI is the
 * paper's metric; the energy metrics implement its proposed extension
 * to power modeling (Sec 6) via the activity-based model in
 * sim/power.hh.
 */
enum class Metric
{
    Cpi,                //!< cycles per instruction
    EnergyPerInst,      //!< model-nJ per committed instruction
    EnergyDelaySquared, //!< EPI * CPI^2
};

/** Short name of a Metric ("CPI", "EPI", "ED2P"). */
std::string metricName(Metric metric);

/**
 * Persistent backing store for simulation results. A SimulatorOracle
 * with an attached store preloads every archived (design-point key →
 * value) pair into its memo cache at attach time and reports each
 * fresh simulation back through append(), so results survive the
 * process and are shared across concurrent processes.
 *
 * Implementations must make append() safe to call concurrently; the
 * canonical implementation is serve::ResultArchive (an append-only,
 * CRC-checked on-disk log). The store is scoped to one oracle context
 * (benchmark, trace length, options, metric) — keys from different
 * contexts must go to different stores.
 */
class ResultStore
{
  public:
    /** Memo key: the fixed-point rendering of a design point. */
    using Key = std::vector<std::int64_t>;

    virtual ~ResultStore() = default;

    /** Invoke @p sink for every archived (key, value) pair. */
    virtual void load(
        const std::function<void(const Key &, double)> &sink) = 0;

    /** Durably record one fresh result. Thread-safe. */
    virtual void append(const Key &key, double value) = 0;
};

/**
 * Oracle backed by the cycle-level simulator running one benchmark
 * trace. Results are memoized, so re-simulating a previously seen
 * configuration is free — mirroring how a real study would archive
 * simulation results.
 *
 * cpi() is thread-safe: the memo cache is mutex-guarded and stores a
 * shared future per design point, so concurrent requests for the same
 * point deduplicate — exactly one simulation runs and every other
 * requester blocks on (and shares) its result. evaluateAll() exploits
 * this to simulate a batch across the global thread pool.
 *
 * Despite the interface name, the oracle can report any Metric; the
 * model-building machinery is agnostic to what response it models.
 */
class SimulatorOracle : public CpiOracle
{
  public:
    /**
     * @param space Design space the points belong to (paper layout).
     * @param trace Benchmark trace (held by reference; must outlive
     *              the oracle).
     * @param options Simulation options applied to every run.
     * @param metric Response reported by cpi().
     */
    SimulatorOracle(const dspace::DesignSpace &space,
                    const trace::Trace &trace,
                    const sim::SimOptions &options = {},
                    Metric metric = Metric::Cpi);

    double cpi(const dspace::DesignPoint &point) override;
    std::vector<double> evaluateAll(
        const std::vector<dspace::DesignPoint> &points) override;

    /**
     * Attach a persistent result store: every archived result is
     * preloaded into the memo cache (so requesting it never simulates)
     * and every fresh simulation is appended to the store. Attach
     * before issuing requests; results simulated earlier by this
     * oracle are not retroactively archived.
     */
    void attachStore(std::shared_ptr<ResultStore> store);

    /** Results preloaded from the attached store. */
    std::uint64_t
    archivedResults() const
    {
        return archived_.load(std::memory_order_relaxed);
    }

    /**
     * Memo-cache key of @p point: a fixed-point rendering, so float
     * noise cannot split logically identical configurations. This is
     * also the key persisted by an attached ResultStore.
     */
    static ResultStore::Key cacheKey(const dspace::DesignPoint &point);

    std::uint64_t
    evaluations() const override
    {
        return evaluations_.load(std::memory_order_relaxed);
    }

    /**
     * Memoization hits so far. A request that arrives while the same
     * point is still being simulated counts as a hit: it consumes no
     * extra simulation.
     */
    std::uint64_t
    cacheHits() const
    {
        return cache_hits_.load(std::memory_order_relaxed);
    }

    /**
     * Full statistics of the most recent (uncached) simulation,
     * copied under the cache mutex so it can be polled while a
     * parallel evaluateAll() is in flight. Only meaningful between
     * batches; during a batch "most recent" depends on scheduling.
     */
    sim::SimStats
    lastStats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return last_stats_;
    }

    /** The metric this oracle reports. */
    Metric metric() const { return metric_; }

  private:
    const dspace::DesignSpace &space_;
    const trace::Trace &trace_;
    sim::SimOptions options_;
    Metric metric_;
    /**
     * Memo cache. Each entry is created by the first requester of a
     * key, who simulates and fulfils the future; later requesters wait
     * on the shared state instead of simulating (in-flight dedup).
     */
    std::map<std::vector<std::int64_t>, std::shared_future<double>>
        cache_;
    mutable std::mutex mutex_;
    std::shared_ptr<ResultStore> store_;
    std::atomic<std::uint64_t> evaluations_{0};
    std::atomic<std::uint64_t> cache_hits_{0};
    std::atomic<std::uint64_t> archived_{0};
    sim::SimStats last_stats_;
};

/**
 * Oracle defined by an arbitrary function of the raw design point.
 * Used by unit tests and by synthetic accuracy studies where ground
 * truth must be known exactly.
 */
class FunctionOracle : public CpiOracle
{
  public:
    using Fn = std::function<double(const dspace::DesignPoint &)>;

    explicit FunctionOracle(Fn fn) : fn_(std::move(fn)) {}

    double
    cpi(const dspace::DesignPoint &point) override
    {
        // Relaxed atomic: function oracles must stay safe under a
        // parallel evaluateAll() override, matching SimulatorOracle.
        evaluations_.fetch_add(1, std::memory_order_relaxed);
        OBS_STATIC_COUNTER(fn_evals, "oracle.fn_evals");
        OBS_ADD(fn_evals, 1);
        return fn_(point);
    }

    std::uint64_t
    evaluations() const override
    {
        return evaluations_.load(std::memory_order_relaxed);
    }

  private:
    Fn fn_;
    std::atomic<std::uint64_t> evaluations_{0};
};

} // namespace ppm::core

#endif // PPM_CORE_ORACLE_HH
