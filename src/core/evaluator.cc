#include "core/evaluator.hh"

#include <cassert>

#include "math/stats.hh"

namespace ppm::core {

ErrorReport
evaluatePredictions(const std::vector<double> &actual,
                    const std::vector<double> &predicted)
{
    assert(actual.size() == predicted.size());
    ErrorReport report;
    report.errors = math::absolutePercentageErrors(actual, predicted);
    const math::Summary s = math::summarize(report.errors);
    report.mean_error = s.mean;
    report.std_error = s.stddev;
    report.max_error = s.max;
    return report;
}

ErrorReport
evaluateModel(const PerformanceModel &model,
              const std::vector<dspace::DesignPoint> &points,
              const std::vector<double> &actual)
{
    return evaluatePredictions(actual, model.predictAll(points));
}

ErrorReport
evaluateModel(const PerformanceModel &model,
              const std::vector<dspace::DesignPoint> &points,
              CpiOracle &oracle)
{
    return evaluatePredictions(oracle.evaluateAll(points),
                               model.predictAll(points));
}

} // namespace ppm::core
