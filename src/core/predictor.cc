#include "core/predictor.hh"

#include <sstream>

#include "util/thread_pool.hh"

namespace ppm::core {

std::vector<double>
PerformanceModel::predictAll(
    const std::vector<dspace::DesignPoint> &points) const
{
    return util::parallelMap(points, [this](const dspace::DesignPoint &p) {
        return predict(p);
    });
}

RbfPerformanceModel::RbfPerformanceModel(dspace::DesignSpace space,
                                         rbf::TrainedRbf trained)
    : space_(std::move(space)), trained_(std::move(trained))
{
}

double
RbfPerformanceModel::predict(const dspace::DesignPoint &point) const
{
    return trained_.network.predict(space_.toUnit(point));
}

std::string
RbfPerformanceModel::describe() const
{
    std::ostringstream os;
    os << "rbf centers=" << trained_.num_centers
       << " p_min=" << trained_.p_min << " alpha=" << trained_.alpha;
    return os.str();
}

LinearPerformanceModel::LinearPerformanceModel(
    dspace::DesignSpace space, linreg::SelectedLinearModel selected)
    : space_(std::move(space)), selected_(std::move(selected))
{
}

double
LinearPerformanceModel::predict(const dspace::DesignPoint &point) const
{
    return selected_.model.predict(space_.toUnit(point));
}

std::string
LinearPerformanceModel::describe() const
{
    std::ostringstream os;
    os << "linear terms=" << selected_.model.numTerms()
       << " eliminated=" << selected_.eliminated;
    return os.str();
}

} // namespace ppm::core
