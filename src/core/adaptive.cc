#include "core/adaptive.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sampling/sample_gen.hh"
#include "tree/regression_tree.hh"
#include "util/thread_pool.hh"

namespace ppm::core {

namespace {

/** Squared Euclidean distance between unit points. */
double
distSq(const dspace::UnitPoint &a, const dspace::UnitPoint &b)
{
    double acc = 0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        const double d = a[k] - b[k];
        acc += d * d;
    }
    return acc;
}

/** Distance from @p x to the nearest point of @p points. */
double
nearestDistance(const dspace::UnitPoint &x,
                const std::vector<dspace::UnitPoint> &points)
{
    double best = 1e300;
    for (const auto &p : points)
        best = std::min(best, distSq(x, p));
    return std::sqrt(best);
}

/**
 * Response-variability proxy at @p x: the standard deviation of the
 * training responses inside the tree leaf containing x. High values
 * mark regions the tree could not yet explain.
 */
class LeafStd
{
  public:
    LeafStd(const std::vector<dspace::UnitPoint> &xs,
            const std::vector<double> &ys)
        : tree_(xs, ys, 8), xs_(xs), ys_(ys)
    {
    }

    double
    operator()(const dspace::UnitPoint &x) const
    {
        // The tree predicts the leaf mean; estimate the leaf spread
        // by the absolute deviation of the nearest training point's
        // response from that mean (cheap and monotone in the true
        // leaf variance).
        const double mean = tree_.predict(x);
        double best = 1e300;
        double nearest_y = mean;
        for (std::size_t i = 0; i < xs_.size(); ++i) {
            const double d = distSq(x, xs_[i]);
            if (d < best) {
                best = d;
                nearest_y = ys_[i];
            }
        }
        return std::fabs(nearest_y - mean);
    }

  private:
    tree::RegressionTree tree_;
    const std::vector<dspace::UnitPoint> &xs_;
    const std::vector<double> &ys_;
};

} // namespace

AdaptiveSampler::AdaptiveSampler(dspace::DesignSpace train_space,
                                 dspace::DesignSpace test_space,
                                 CpiOracle &oracle)
    : train_space_(std::move(train_space)),
      test_space_(std::move(test_space)), oracle_(oracle)
{
}

AdaptiveResult
AdaptiveSampler::build(const AdaptiveOptions &options)
{
    if (options.initial_size < 10)
        throw std::invalid_argument("AdaptiveOptions: initial_size");
    if (options.batch_size < 1)
        throw std::invalid_argument("AdaptiveOptions: batch_size");
    if (options.max_samples < options.initial_size)
        throw std::invalid_argument("AdaptiveOptions: max_samples");
    if (options.num_test_points < 1)
        throw std::invalid_argument("AdaptiveOptions: test points");

    const std::uint64_t evals_before = oracle_.evaluations();
    math::Rng rng(options.seed);

    // Fixed validation set.
    math::Rng test_rng = rng.split();
    const auto test_points = sampling::randomTestSet(
        test_space_, options.num_test_points, test_rng);
    const auto test_ys = oracle_.evaluateAll(test_points);

    AdaptiveResult result;

    // Round 0: discrepancy-optimized LHS seed sample.
    result.sample = sampling::bestLatinHypercube(
        train_space_, options.initial_size, options.lhs_candidates,
        rng).points;
    std::vector<double> ys = oracle_.evaluateAll(result.sample);
    std::vector<dspace::UnitPoint> unit;
    for (const auto &p : result.sample)
        unit.push_back(train_space_.toUnit(p));

    auto refit_and_record = [&]() {
        rbf::TrainedRbf trained =
            rbf::trainRbfModel(unit, ys, options.trainer);
        result.model = std::make_shared<RbfPerformanceModel>(
            train_space_, std::move(trained));
        AdaptiveRound round;
        round.samples = static_cast<int>(result.sample.size());
        round.error =
            evaluateModel(*result.model, test_points, test_ys);
        result.history.push_back(round);
        return result.history.back().error.mean_error;
    };

    double err = refit_and_record();

    while (err > options.target_mean_error &&
           static_cast<int>(result.sample.size()) <
               options.max_samples) {
        const int want = std::min(
            options.batch_size,
            options.max_samples -
                static_cast<int>(result.sample.size()));

        // Score a candidate pool: far from the sample, in
        // high-variance regions.
        const LeafStd leaf_std(unit, ys);
        std::vector<dspace::DesignPoint> batch_raw;
        std::vector<dspace::UnitPoint> batch_unit;
        std::vector<dspace::UnitPoint> occupied = unit;

        const auto pool =
            static_cast<std::size_t>(options.candidate_pool);
        std::vector<dspace::DesignPoint> cand_raw(pool);
        std::vector<dspace::UnitPoint> cand_unit(pool);
        std::vector<double> cand_score(pool);

        for (int picked = 0; picked < want; ++picked) {
            // Candidates are scored in parallel; each derives its RNG
            // stream from (base, index) so the pool is identical for
            // every thread count. Picks stay sequential because each
            // depends on the previously occupied points.
            const std::uint64_t base = rng.next();
            util::parallelFor(pool, [&](std::size_t c) {
                math::Rng crng = math::Rng::stream(base, c);
                cand_raw[c] = train_space_.randomPoint(crng);
                cand_unit[c] = train_space_.toUnit(cand_raw[c]);
                const double d = nearestDistance(cand_unit[c], occupied);
                cand_score[c] =
                    std::pow(d, options.distance_weight) *
                    (1.0 + leaf_std(cand_unit[c]));
            });
            // First strict maximum: the same winner the serial scan
            // would pick.
            std::size_t best_c = 0;
            for (std::size_t c = 1; c < pool; ++c)
                if (cand_score[c] > cand_score[best_c])
                    best_c = c;
            occupied.push_back(cand_unit[best_c]);
            batch_raw.push_back(std::move(cand_raw[best_c]));
            batch_unit.push_back(std::move(cand_unit[best_c]));
        }

        // Simulate the batch across the pool and refit.
        const std::vector<double> batch_ys =
            oracle_.evaluateAll(batch_raw);
        for (std::size_t i = 0; i < batch_raw.size(); ++i) {
            ys.push_back(batch_ys[i]);
            result.sample.push_back(batch_raw[i]);
            unit.push_back(batch_unit[i]);
        }
        err = refit_and_record();
    }

    result.converged = err <= options.target_mean_error;
    result.simulations = oracle_.evaluations() - evals_before;
    return result;
}

} // namespace ppm::core
