#include "core/adaptive.hh"

#include <algorithm>
#include <stdexcept>

#include "obs/event_log.hh"
#include "obs/trace_span.hh"
#include "sampling/sample_gen.hh"
#include "tree/regression_tree.hh"

namespace ppm::core {

AdaptiveSampler::AdaptiveSampler(dspace::DesignSpace train_space,
                                 dspace::DesignSpace test_space,
                                 CpiOracle &oracle)
    : train_space_(std::move(train_space)),
      test_space_(std::move(test_space)), oracle_(oracle)
{
}

AdaptiveResult
AdaptiveSampler::build(const AdaptiveOptions &options)
{
    if (options.initial_size < 10)
        throw std::invalid_argument("AdaptiveOptions: initial_size");
    if (options.batch_size < 1)
        throw std::invalid_argument("AdaptiveOptions: batch_size");
    if (options.max_samples < options.initial_size)
        throw std::invalid_argument("AdaptiveOptions: max_samples");
    if (options.num_test_points < 1)
        throw std::invalid_argument("AdaptiveOptions: test points");
    if (options.candidate_pool < 1)
        throw std::invalid_argument("AdaptiveOptions: candidate_pool");
    if (options.lhs_candidates < 1)
        throw std::invalid_argument("AdaptiveOptions: lhs_candidates");
    if (options.batch_strategy ==
            sampling::BatchStrategy::Determinantal &&
        options.candidate_pool < options.batch_size)
        throw std::invalid_argument(
            "AdaptiveOptions: candidate_pool < batch_size");

    const std::uint64_t evals_before = oracle_.evaluations();
    math::Rng rng(options.seed);

    // Fixed validation set.
    math::Rng test_rng = rng.split();
    const auto test_points = sampling::randomTestSet(
        test_space_, options.num_test_points, test_rng);
    const auto test_ys = oracle_.evaluateAll(test_points);

    AdaptiveResult result;

    // Round 0: discrepancy-optimized LHS seed sample.
    result.sample = sampling::bestLatinHypercube(
        train_space_, options.initial_size, options.lhs_candidates,
        rng).points;
    std::vector<double> ys = oracle_.evaluateAll(result.sample);
    std::vector<dspace::UnitPoint> unit;
    for (const auto &p : result.sample)
        unit.push_back(train_space_.toUnit(p));

    auto refit_and_record =
        [&](const sampling::AcquisitionStats &acquisition) {
            OBS_SPAN("adaptive.refit");
            rbf::TrainedRbf trained =
                rbf::trainRbfModel(unit, ys, options.trainer);
            result.model = std::make_shared<RbfPerformanceModel>(
                train_space_, std::move(trained));
            AdaptiveRound round;
            round.samples = static_cast<int>(result.sample.size());
            round.error =
                evaluateModel(*result.model, test_points, test_ys);
            round.acquisition = acquisition;
            result.history.push_back(round);
            return result.history.back().error.mean_error;
        };

    double err = refit_and_record({});

    while (err > options.target_mean_error &&
           static_cast<int>(result.sample.size()) <
               options.max_samples) {
        const int want = std::min(
            options.batch_size,
            options.max_samples -
                static_cast<int>(result.sample.size()));

        // Infill batch: far from the sample, in high-variance tree
        // regions. The variability proxy is the response standard
        // deviation of the leaf containing the candidate.
        sampling::AcquiredBatch batch = [&] {
            OBS_SPAN("adaptive.acquire");
            const tree::RegressionTree tree(unit, ys, 8);
            sampling::BatchAcquisitionOptions acq;
            acq.batch_size = want;
            acq.candidate_pool = options.candidate_pool;
            acq.distance_weight = options.distance_weight;
            acq.kernel_bandwidth = options.kernel_bandwidth;
            return sampling::acquireBatch(
                options.batch_strategy, train_space_, unit,
                [&tree](const dspace::UnitPoint &x) {
                    return tree.leafStd(x);
                },
                acq, rng);
        }();

        // Simulate the whole batch in one dispatch (a RemoteOracle
        // shards it across server processes) and refit.
        const std::vector<double> batch_ys = [&] {
            OBS_SPAN("adaptive.simulate_batch");
            return oracle_.evaluateAll(batch.points);
        }();
        for (std::size_t i = 0; i < batch.points.size(); ++i) {
            ys.push_back(batch_ys[i]);
            result.sample.push_back(std::move(batch.points[i]));
            unit.push_back(std::move(batch.unit[i]));
        }
        err = refit_and_record(batch.stats);
        OBS_STATIC_COUNTER(rounds, "adaptive.rounds");
        OBS_ADD(rounds, 1);
        obs::logEvent(obs::LogLevel::Info, "adaptive", "round_done",
                      {{"samples", result.sample.size()},
                       {"mean_error", err}});
    }

    result.converged = err <= options.target_mean_error;
    result.simulations = oracle_.evaluations() - evals_before;
    return result;
}

} // namespace ppm::core
