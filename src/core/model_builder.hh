/**
 * @file
 * The paper's BuildRBFmodel procedure (Sec 1):
 *
 *  1. specify the design space;
 *  2. select a discrepancy-optimized latin hypercube sample;
 *  3. obtain CPI at the sample via detailed simulation;
 *  4. fit an RBF network (regression tree + AIC_c subset selection,
 *     grid-searching p_min and alpha);
 *  5. estimate accuracy on an independent random test set;
 *  6. repeat with growing sample sizes until accurate enough.
 *
 * The same driver fits the linear baseline from the identical sample
 * for the Fig 7 comparison.
 */

#ifndef PPM_CORE_MODEL_BUILDER_HH
#define PPM_CORE_MODEL_BUILDER_HH

#include <memory>
#include <vector>

#include "core/evaluator.hh"
#include "core/oracle.hh"
#include "core/predictor.hh"
#include "dspace/design_space.hh"
#include "rbf/trainer.hh"

namespace ppm::core {

/** Options for ModelBuilder::build(). */
struct BuildOptions
{
    /**
     * Sample-size schedule; building stops at the first size whose
     * model meets target_mean_error (paper Fig 4 sizes by default).
     */
    std::vector<int> sample_sizes = {30, 50, 70, 90, 110, 200};
    /** Stop early when mean test error (%) drops below this. */
    double target_mean_error = 3.0;
    /** Candidate LHS samples scored per size (best-of-N). */
    int lhs_candidates = 50;
    /** Independent random test points (paper uses 50). */
    int num_test_points = 50;
    /** Seed controlling sampling and test-point generation. */
    std::uint64_t seed = 1;
    /** RBF hyperparameter grid and criterion. */
    rbf::TrainerOptions trainer;
    /** Also fit the linear baseline at every size (for Fig 7). */
    bool fit_linear_baseline = false;
    /** Use plain random sampling instead of LHS (ablation). */
    bool use_random_sampling = false;
};

/** Result of one sample size step. */
struct SizeResult
{
    int sample_size = 0;
    /** Centered L2 discrepancy of the training sample used. */
    double discrepancy = 0.0;
    /** Chosen method parameters and model size. */
    int p_min = 0;
    double alpha = 0.0;
    std::size_t num_centers = 0;
    /** RBF accuracy on the test set. */
    ErrorReport rbf_error;
    /** Linear baseline accuracy (when fit_linear_baseline). */
    ErrorReport linear_error;
};

/** Result of the full procedure. */
struct BuildResult
{
    /** The final RBF model (from the last size built). */
    std::shared_ptr<RbfPerformanceModel> model;
    /** Linear baseline from the last size (when requested). */
    std::shared_ptr<LinearPerformanceModel> linear_model;
    /** Per-size history. */
    std::vector<SizeResult> history;
    /** Total expensive oracle evaluations consumed. */
    std::uint64_t simulations = 0;
    /** True iff target_mean_error was reached. */
    bool converged = false;

    /** The last (most accurate) size step. */
    const SizeResult &final() const { return history.back(); }
};

/**
 * Drives BuildRBFmodel for one program against one oracle.
 */
class ModelBuilder
{
  public:
    /**
     * @param train_space Space sampled for training (paper Table 1);
     *        copied, so temporaries are safe.
     * @param test_space Space from which validation points are drawn
     *        (paper Table 2; may equal train_space); copied.
     * @param oracle CPI source (simulator or analytic); held by
     *        reference and must outlive the builder.
     */
    ModelBuilder(dspace::DesignSpace train_space,
                 dspace::DesignSpace test_space, CpiOracle &oracle);

    /** Run the procedure. @throws std::invalid_argument on bad options. */
    BuildResult build(const BuildOptions &options = {});

    /**
     * The validation set of the last build() call and its simulated
     * responses (exposed for trend analysis and benches).
     */
    const std::vector<dspace::DesignPoint> &testPoints() const
    {
        return test_points_;
    }
    const std::vector<double> &testResponses() const
    {
        return test_responses_;
    }

  private:
    // Owned copies: callers may pass temporaries (e.g.
    // paperTestSpace()) without lifetime hazards.
    dspace::DesignSpace train_space_;
    dspace::DesignSpace test_space_;
    CpiOracle &oracle_;
    std::vector<dspace::DesignPoint> test_points_;
    std::vector<double> test_responses_;
};

} // namespace ppm::core

#endif // PPM_CORE_MODEL_BUILDER_HH
