/**
 * @file
 * A single microarchitectural design parameter: its raw range, the
 * number of discrete levels it takes, and the transformation (linear or
 * log) under which the model treats it (paper Table 1, last column).
 */

#ifndef PPM_DSPACE_PARAMETER_HH
#define PPM_DSPACE_PARAMETER_HH

#include <string>

namespace ppm::dspace {

/**
 * Input transformation applied before modeling (paper Table 1).
 *
 * Cache sizes vary over two orders of magnitude and behave
 * multiplicatively, so they are modeled in log space; everything else is
 * modeled linearly.
 */
enum class Transform
{
    Linear,
    Log,
};

/** Name of a Transform value ("linear" / "log"). */
std::string transformName(Transform t);

/**
 * Number of levels used by Table 1 for parameters whose level count
 * depends on the sample size ("S" in the paper). A Parameter with
 * levels == kSampleSizeLevels takes one level per LHS sample point.
 */
inline constexpr int kSampleSizeLevels = 0;

/**
 * Definition of one design parameter.
 *
 * Ranges are stored with min <= max in raw units (e.g. KB for cache
 * sizes, cycles for latencies). The paper sometimes lists the "low
 * performance" end first (e.g. pipe_depth low=24, high=7); we keep the
 * numeric ordering and record the paper's orientation only in tables.
 */
class Parameter
{
  public:
    /**
     * @param name Short identifier, e.g. "pipe_depth".
     * @param min_value Numeric minimum (raw units).
     * @param max_value Numeric maximum (raw units).
     * @param levels Number of discrete levels, or kSampleSizeLevels for
     *               a sample-size-dependent level count.
     * @param transform Modeling transform.
     * @param integer Whether raw values must be integers.
     */
    Parameter(std::string name, double min_value, double max_value,
              int levels, Transform transform, bool integer);

    const std::string &name() const { return name_; }
    double minValue() const { return min_; }
    double maxValue() const { return max_; }
    int levels() const { return levels_; }
    Transform transform() const { return transform_; }
    bool isInteger() const { return integer_; }

    /** True iff the level count depends on the sample size. */
    bool
    sampleSizeLevels() const
    {
        return levels_ == kSampleSizeLevels;
    }

    /**
     * Map a raw value into [0, 1] under the parameter transform.
     * Values outside the range are clamped.
     */
    double toUnit(double raw) const;

    /** Inverse of toUnit(); @p unit outside [0, 1] is clamped. */
    double fromUnit(double unit) const;

    /**
     * Raw value of level @p level out of @p count levels, evenly spaced
     * in transformed space (level 0 = min, level count-1 = max).
     * Integer parameters are rounded; rounding can make adjacent levels
     * collide for dense level counts, which is harmless for sampling.
     */
    double levelValue(int level, int count) const;

    /** Snap @p raw to the nearest of @p count levels. */
    double snapToLevel(double raw, int count) const;

    /**
     * The level count to use for a sample of @p sample_size points:
     * the parameter's own count, or @p sample_size when the count is
     * sample-size dependent.
     */
    int effectiveLevels(int sample_size) const;

    /** Round to integer if the parameter is integral. */
    double quantize(double raw) const;

    /**
     * True iff @p raw lies within the closed interval [min, max].
     * Bounds are inclusive by contract — queries at exactly min or
     * max are valid — and a small tolerance (relative to both the
     * span and the endpoint magnitudes) absorbs round-trip error, so
     * a value a few ulps past an endpoint is not spuriously rejected.
     */
    bool contains(double raw) const;

  private:
    std::string name_;
    double min_;
    double max_;
    int levels_;
    Transform transform_;
    bool integer_;
};

} // namespace ppm::dspace

#endif // PPM_DSPACE_PARAMETER_HH
