/**
 * @file
 * The microarchitectural design space: an ordered set of Parameters with
 * conversion between raw design points and the normalized unit hypercube
 * in which sampling, trees, and RBF networks operate.
 */

#ifndef PPM_DSPACE_DESIGN_SPACE_HH
#define PPM_DSPACE_DESIGN_SPACE_HH

#include <string>
#include <vector>

#include "dspace/parameter.hh"
#include "math/rng.hh"

namespace ppm::dspace {

/**
 * A point in the design space in raw units, ordered like the owning
 * DesignSpace's parameters (e.g. element 0 = pipe_depth in cycles).
 */
using DesignPoint = std::vector<double>;

/**
 * The same point mapped through each parameter's transform into
 * [0, 1]^n. All statistical machinery (LHS, discrepancy, trees, RBFs)
 * operates on unit points so that parameter scales do not leak into
 * distance computations.
 */
using UnitPoint = std::vector<double>;

/**
 * An ordered collection of design parameters.
 */
class DesignSpace
{
  public:
    DesignSpace() = default;

    /** Append a parameter; returns its index. */
    std::size_t add(Parameter p);

    /** Number of parameters (the model input dimensionality n). */
    std::size_t size() const { return params_.size(); }

    /** Parameter at index @p i. */
    const Parameter &param(std::size_t i) const { return params_.at(i); }

    /** All parameters in order. */
    const std::vector<Parameter> &params() const { return params_; }

    /**
     * Index of the parameter named @p name.
     * @return Index, or size() when not found.
     */
    std::size_t indexOf(const std::string &name) const;

    /** Map a raw design point to the unit hypercube. */
    UnitPoint toUnit(const DesignPoint &raw) const;

    /** Map a unit point back to raw units (no level snapping). */
    DesignPoint fromUnit(const UnitPoint &unit) const;

    /**
     * Snap a raw point to each parameter's discrete levels for a sample
     * of @p sample_size (sample-size-dependent parameters get
     * @p sample_size levels).
     */
    DesignPoint snapToLevels(const DesignPoint &raw, int sample_size) const;

    /**
     * Uniform random point: each coordinate uniform in transformed
     * space, quantized per parameter. Used for independent test sets
     * (paper Sec 3: fifty randomly generated design points).
     */
    DesignPoint randomPoint(math::Rng &rng) const;

    /** True iff every coordinate of @p raw is inside its range. */
    bool contains(const DesignPoint &raw) const;

    /** "name=value" rendering for logs and error messages. */
    std::string describe(const DesignPoint &raw) const;

  private:
    std::vector<Parameter> params_;
};

} // namespace ppm::dspace

#endif // PPM_DSPACE_DESIGN_SPACE_HH
