/**
 * @file
 * The paper's concrete design spaces.
 *
 * Table 1 defines the 9-parameter training space (ranges, level counts
 * and transforms); Table 2 defines the narrower space from which the 50
 * random validation points are drawn. Issue queue and LSQ sizes are
 * fractions of the ROB size, so the corresponding design parameters are
 * the fractions themselves; the simulator multiplies them out.
 */

#ifndef PPM_DSPACE_PAPER_SPACE_HH
#define PPM_DSPACE_PAPER_SPACE_HH

#include "dspace/design_space.hh"

namespace ppm::dspace {

/**
 * Indices of the nine paper parameters inside paperTrainSpace() /
 * paperTestSpace(). Kept in the paper's Table 1 order.
 */
enum PaperParamIndex : std::size_t
{
    kPipeDepth = 0,  //!< front-end + back-end pipeline stages
    kRobSize,        //!< reorder buffer entries
    kIqFrac,         //!< issue queue size as a fraction of ROB size
    kLsqFrac,        //!< load-store queue size as a fraction of ROB size
    kL2SizeKB,       //!< unified L2 capacity in KB
    kL2Lat,          //!< L2 hit latency in cycles
    kIl1SizeKB,      //!< L1 instruction cache capacity in KB
    kDl1SizeKB,      //!< L1 data cache capacity in KB
    kDl1Lat,         //!< L1 data cache hit latency in cycles
    kNumPaperParams,
};

/**
 * The Table 1 training design space.
 *
 * Pipeline depth 7-24 (18 levels), ROB 24-128 (S levels), IQ and LSQ
 * fractions 0.25-0.75 of ROB (S levels), L2 256KB-8MB (6 levels, log),
 * L2 latency 5-20 (16 levels), IL1 and DL1 8-64KB (4 levels, log), DL1
 * latency 1-4 (4 levels).
 */
DesignSpace paperTrainSpace();

/**
 * The Table 2 test space used for generating validation points:
 * pipeline depth 9-22, ROB 37-115, IQ/LSQ fractions 0.31-0.69,
 * L2 256KB-8MB, L2 latency 7-18, IL1/DL1 8-64KB, DL1 latency 1-4.
 * Test points are drawn continuously (no level structure).
 */
DesignSpace paperTestSpace();

} // namespace ppm::dspace

#endif // PPM_DSPACE_PAPER_SPACE_HH
