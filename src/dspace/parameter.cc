#include "dspace/parameter.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ppm::dspace {

std::string
transformName(Transform t)
{
    return t == Transform::Log ? "log" : "linear";
}

Parameter::Parameter(std::string name, double min_value, double max_value,
                     int levels, Transform transform, bool integer)
    : name_(std::move(name)), min_(min_value), max_(max_value),
      levels_(levels), transform_(transform), integer_(integer)
{
    assert(min_ < max_ && "parameter range must be non-degenerate");
    assert(levels_ >= 0 && levels_ != 1 && "need 0 (S) or >= 2 levels");
    assert((transform_ != Transform::Log || min_ > 0.0) &&
           "log transform requires a positive range");
}

double
Parameter::toUnit(double raw) const
{
    const double clamped = std::clamp(raw, min_, max_);
    if (transform_ == Transform::Log) {
        return (std::log2(clamped) - std::log2(min_)) /
            (std::log2(max_) - std::log2(min_));
    }
    return (clamped - min_) / (max_ - min_);
}

double
Parameter::fromUnit(double unit) const
{
    const double u = std::clamp(unit, 0.0, 1.0);
    if (transform_ == Transform::Log) {
        const double lg = std::log2(min_) +
            u * (std::log2(max_) - std::log2(min_));
        return std::exp2(lg);
    }
    return min_ + u * (max_ - min_);
}

double
Parameter::levelValue(int level, int count) const
{
    assert(count >= 2);
    assert(level >= 0 && level < count);
    const double u = static_cast<double>(level) /
        static_cast<double>(count - 1);
    return quantize(fromUnit(u));
}

double
Parameter::snapToLevel(double raw, int count) const
{
    assert(count >= 2);
    const double u = toUnit(raw);
    const int level = static_cast<int>(
        std::lround(u * static_cast<double>(count - 1)));
    return levelValue(std::clamp(level, 0, count - 1), count);
}

int
Parameter::effectiveLevels(int sample_size) const
{
    if (!sampleSizeLevels())
        return levels_;
    return std::max(2, sample_size);
}

double
Parameter::quantize(double raw) const
{
    if (!integer_)
        return raw;
    return std::round(raw);
}

bool
Parameter::contains(double raw) const
{
    // Inclusive bounds: min and max themselves are always inside. The
    // tolerance has two parts — one relative to the span, and one
    // relative to the bound magnitudes — because a narrow range at a
    // large magnitude (say [999999, 1000001]) makes the span term
    // smaller than one ulp of the endpoints, and a query that went
    // through fromUnit/quantize round trips could land a few ulps
    // past an endpoint and be spuriously rejected at the boundary.
    const double tol = 1e-9 * (max_ - min_) +
        1e-12 * std::max(std::fabs(min_), std::fabs(max_));
    return raw >= min_ - tol && raw <= max_ + tol;
}

} // namespace ppm::dspace
