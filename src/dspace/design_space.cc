#include "dspace/design_space.hh"

#include <cassert>
#include <sstream>

namespace ppm::dspace {

std::size_t
DesignSpace::add(Parameter p)
{
    params_.push_back(std::move(p));
    return params_.size() - 1;
}

std::size_t
DesignSpace::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < params_.size(); ++i)
        if (params_[i].name() == name)
            return i;
    return params_.size();
}

UnitPoint
DesignSpace::toUnit(const DesignPoint &raw) const
{
    assert(raw.size() == params_.size());
    UnitPoint unit(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i)
        unit[i] = params_[i].toUnit(raw[i]);
    return unit;
}

DesignPoint
DesignSpace::fromUnit(const UnitPoint &unit) const
{
    assert(unit.size() == params_.size());
    DesignPoint raw(unit.size());
    for (std::size_t i = 0; i < unit.size(); ++i)
        raw[i] = params_[i].quantize(params_[i].fromUnit(unit[i]));
    return raw;
}

DesignPoint
DesignSpace::snapToLevels(const DesignPoint &raw, int sample_size) const
{
    assert(raw.size() == params_.size());
    DesignPoint out(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const int count = params_[i].effectiveLevels(sample_size);
        out[i] = params_[i].snapToLevel(raw[i], count);
    }
    return out;
}

DesignPoint
DesignSpace::randomPoint(math::Rng &rng) const
{
    DesignPoint raw(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i)
        raw[i] = params_[i].quantize(params_[i].fromUnit(rng.uniform()));
    return raw;
}

bool
DesignSpace::contains(const DesignPoint &raw) const
{
    if (raw.size() != params_.size())
        return false;
    for (std::size_t i = 0; i < raw.size(); ++i)
        if (!params_[i].contains(raw[i]))
            return false;
    return true;
}

std::string
DesignSpace::describe(const DesignPoint &raw) const
{
    assert(raw.size() == params_.size());
    std::ostringstream os;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        os << (i ? " " : "") << params_[i].name() << "=" << raw[i];
    }
    return os.str();
}

} // namespace ppm::dspace
