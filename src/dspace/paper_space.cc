#include "dspace/paper_space.hh"

namespace ppm::dspace {

DesignSpace
paperTrainSpace()
{
    DesignSpace space;
    space.add(Parameter("pipe_depth", 7, 24, 18, Transform::Linear, true));
    space.add(Parameter("ROB_size", 24, 128, kSampleSizeLevels,
                        Transform::Linear, true));
    space.add(Parameter("IQ_frac", 0.25, 0.75, kSampleSizeLevels,
                        Transform::Linear, false));
    space.add(Parameter("LSQ_frac", 0.25, 0.75, kSampleSizeLevels,
                        Transform::Linear, false));
    space.add(Parameter("L2_size", 256, 8192, 6, Transform::Log, true));
    space.add(Parameter("L2_lat", 5, 20, 16, Transform::Linear, true));
    space.add(Parameter("il1_size", 8, 64, 4, Transform::Log, true));
    space.add(Parameter("dl1_size", 8, 64, 4, Transform::Log, true));
    space.add(Parameter("dl1_lat", 1, 4, 4, Transform::Linear, true));
    return space;
}

DesignSpace
paperTestSpace()
{
    DesignSpace space;
    space.add(Parameter("pipe_depth", 9, 22, 14, Transform::Linear, true));
    space.add(Parameter("ROB_size", 37, 115, kSampleSizeLevels,
                        Transform::Linear, true));
    space.add(Parameter("IQ_frac", 0.31, 0.69, kSampleSizeLevels,
                        Transform::Linear, false));
    space.add(Parameter("LSQ_frac", 0.31, 0.69, kSampleSizeLevels,
                        Transform::Linear, false));
    space.add(Parameter("L2_size", 256, 8192, 6, Transform::Log, true));
    space.add(Parameter("L2_lat", 7, 18, 12, Transform::Linear, true));
    space.add(Parameter("il1_size", 8, 64, 4, Transform::Log, true));
    space.add(Parameter("dl1_size", 8, 64, 4, Transform::Log, true));
    space.add(Parameter("dl1_lat", 1, 4, 4, Transform::Linear, true));
    return space;
}

} // namespace ppm::dspace
