#include "rbf/serialize.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ppm::rbf {

namespace {

constexpr const char *kMagic = "ppm-rbfnet";
constexpr int kVersion = 1;

[[noreturn]] void
fail(const std::string &what)
{
    throw std::runtime_error("rbf::loadNetwork: " + what);
}

/**
 * Refuse to serialize a poisoned network: a NaN or infinite weight
 * (least squares on a degenerate system can produce one) would
 * round-trip through the text format and silently poison every
 * prediction served from the reloaded model.
 */
void
checkFinite(const RbfNetwork &network)
{
    for (std::size_t j = 0; j < network.numBases(); ++j) {
        const auto &basis = network.bases()[j];
        for (double c : basis.center())
            if (!std::isfinite(c))
                throw std::runtime_error(
                    "rbf::saveNetwork: non-finite center in basis " +
                    std::to_string(j));
        for (double r : basis.radius())
            if (!std::isfinite(r))
                throw std::runtime_error(
                    "rbf::saveNetwork: non-finite radius in basis " +
                    std::to_string(j));
        if (!std::isfinite(network.weights()[j]))
            throw std::runtime_error(
                "rbf::saveNetwork: non-finite weight in basis " +
                std::to_string(j));
    }
}

} // namespace

void
saveNetwork(const RbfNetwork &network, std::ostream &os)
{
    checkFinite(network);
    os << kMagic << " " << kVersion << "\n";
    os << "dims " << network.dimensions() << " bases "
       << network.numBases() << "\n";
    os << std::setprecision(17);
    for (std::size_t j = 0; j < network.numBases(); ++j) {
        const auto &basis = network.bases()[j];
        for (double c : basis.center())
            os << c << " ";
        for (double r : basis.radius())
            os << r << " ";
        os << network.weights()[j] << "\n";
    }
}

void
saveNetwork(const RbfNetwork &network, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("rbf::saveNetwork: cannot open " +
                                 path);
    saveNetwork(network, os);
    if (!os)
        throw std::runtime_error("rbf::saveNetwork: write failed: " +
                                 path);
}

RbfNetwork
loadNetwork(std::istream &is)
{
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version))
        fail("missing header");
    if (magic != kMagic)
        fail("bad magic '" + magic + "'");
    if (version != kVersion)
        fail("unsupported version " + std::to_string(version));

    std::string key;
    std::size_t dims = 0, m = 0;
    if (!(is >> key >> dims) || key != "dims")
        fail("missing dims");
    if (!(is >> key >> m) || key != "bases")
        fail("missing bases");
    if (dims == 0 || m == 0)
        fail("degenerate network");
    if (dims > 1024 || m > 1000000)
        fail("implausible sizes");

    std::vector<GaussianBasis> bases;
    std::vector<double> weights;
    bases.reserve(m);
    weights.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
        dspace::UnitPoint center(dims);
        std::vector<double> radius(dims);
        double weight = 0;
        for (auto &c : center) {
            if (!(is >> c))
                fail("truncated center in basis " + std::to_string(j));
            if (!std::isfinite(c))
                fail("non-finite center in basis " +
                     std::to_string(j));
        }
        for (auto &r : radius) {
            if (!(is >> r))
                fail("truncated radius in basis " + std::to_string(j));
            if (!std::isfinite(r))
                fail("non-finite radius in basis " +
                     std::to_string(j));
            if (r <= 0)
                fail("non-positive radius in basis " +
                     std::to_string(j));
        }
        if (!(is >> weight))
            fail("missing weight in basis " + std::to_string(j));
        if (!std::isfinite(weight))
            fail("non-finite weight in basis " + std::to_string(j));
        bases.emplace_back(std::move(center), std::move(radius));
        weights.push_back(weight);
    }
    return RbfNetwork(std::move(bases), std::move(weights));
}

RbfNetwork
loadNetwork(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("rbf::loadNetwork: cannot open " +
                                 path);
    return loadNetwork(is);
}

} // namespace ppm::rbf
