#include "rbf/rbf_rt.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "math/linalg.hh"

namespace ppm::rbf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Scores center subsets against the training data.
 *
 * The full-candidate Gram matrix G = H^T H and correlation vector
 * H^T y are computed once; scoring a subset S then only needs the
 * m x m principal submatrix G[S, S], a Cholesky solve, and
 * SSE = y^T y - w^T (H^T y)[S]. This keeps the 8-way tree-ordered
 * search affordable even with hundreds of candidates.
 */
class SubsetScorer
{
  public:
    SubsetScorer(const std::vector<GaussianBasis> &candidates,
                 const std::vector<dspace::UnitPoint> &xs,
                 const std::vector<double> &ys)
        : p_(xs.size()), h_(designMatrix(candidates, xs)), ys_(ys)
    {
        gram_ = h_.gram();
        hty_ = h_.transposeTimes(ys);
        yty_ = 0.0;
        double y_abs_max = 0.0;
        for (double y : ys) {
            yty_ += y * y;
            y_abs_max = std::max(y_abs_max, std::fabs(y));
        }
        // Subsets whose fit needs absurdly large (cancelling) weights
        // are numerically degenerate: they look perfect on the
        // training points and explode everywhere else.
        weight_cap_ = 1e4 * (y_abs_max + 1.0);
    }

    /** Number of training points. */
    std::size_t sampleSize() const { return p_; }

    /** A subset's fitted weights with fit diagnostics. */
    struct Fit
    {
        math::Vector weights;
        double sse = 0.0;
        double weight_max = 0.0;
    };

    /**
     * Least-squares fit restricted to subset @p s. The SSE is
     * computed from the actual residuals (never the y'y - w'H'y
     * shortcut, which cancels catastrophically when the subset's
     * Gram matrix is near singular).
     */
    Fit
    fitSubset(const std::vector<std::size_t> &s) const
    {
        Fit fit;
        if (s.empty()) {
            fit.sse = yty_;
            return fit;
        }
        fit.weights = solveSubset(s);
        for (double w : fit.weights)
            fit.weight_max = std::max(fit.weight_max, std::fabs(w));
        for (std::size_t i = 0; i < p_; ++i) {
            double pred = 0.0;
            const double *row = h_.rowPtr(i);
            for (std::size_t j = 0; j < s.size(); ++j)
                pred += fit.weights[j] * row[s[j]];
            const double e = ys_[i] - pred;
            fit.sse += e * e;
        }
        return fit;
    }

    /** True iff the subset's weights are numerically degenerate. */
    bool degenerate(const Fit &fit) const
    {
        return fit.weight_max > weight_cap_;
    }

    /** SSE of the least-squares fit restricted to subset @p s. */
    double
    subsetSse(const std::vector<std::size_t> &s) const
    {
        return fitSubset(s).sse;
    }

    /** Least-squares weights for subset @p s. */
    math::Vector
    solveSubset(const std::vector<std::size_t> &s) const
    {
        const std::size_t m = s.size();
        math::Matrix g(m, m);
        math::Vector b(m);
        for (std::size_t i = 0; i < m; ++i) {
            b[i] = hty_[s[i]];
            for (std::size_t j = 0; j < m; ++j)
                g(i, j) = gram_(s[i], s[j]);
        }
        auto w = math::choleskySolve(g, b);
        if (w)
            return *w;
        // Nearly collinear bases (e.g. a node and a child covering the
        // same points); regularize slightly and retry.
        for (double ridge = 1e-8; ridge <= 1e-2; ridge *= 100.0) {
            math::Matrix gr = g;
            for (std::size_t i = 0; i < m; ++i)
                gr(i, i) += ridge * (1.0 + g(i, i));
            auto wr = math::choleskySolve(gr, b);
            if (wr)
                return *wr;
        }
        return math::Vector(m, 0.0);
    }

  private:
    std::size_t p_;
    math::Matrix h_;
    std::vector<double> ys_;
    math::Matrix gram_;
    math::Vector hty_;
    double yty_ = 0.0;
    double weight_cap_ = 1e12;
};

/** Indices currently flagged as selected. */
std::vector<std::size_t>
selectedIndices(const std::vector<bool> &flags)
{
    std::vector<std::size_t> s;
    for (std::size_t i = 0; i < flags.size(); ++i)
        if (flags[i])
            s.push_back(i);
    return s;
}

double
scoreFlags(const SubsetScorer &scorer, const std::vector<bool> &flags,
           Criterion criterion, std::size_t max_centers)
{
    const auto s = selectedIndices(flags);
    if (max_centers && s.size() > max_centers)
        return kInf;
    if (s.size() + 2 >= scorer.sampleSize())
        return kInf;
    const auto fit = scorer.fitSubset(s);
    if (scorer.degenerate(fit))
        return kInf;
    return evaluateCriterion(criterion, scorer.sampleSize(), s.size(),
                             fit.sse);
}

/**
 * The paper's tree-ordered selection: walk internal nodes breadth
 * first; at each, jointly re-decide the inclusion of the node and its
 * two children among all 8 combinations.
 */
std::vector<bool>
treeOrderedSelect(const SubsetScorer &scorer,
                  const std::vector<tree::NodeInfo> &nodes,
                  const RbfRtOptions &options)
{
    std::vector<bool> flags(nodes.size(), false);
    // Start from the root center (paper Sec 2.5).
    flags[0] = true;
    double best = scoreFlags(scorer, flags, options.criterion,
                             options.max_centers);
    if (!std::isfinite(best)) {
        // Sample too small for even a one-center model under the
        // criterion guard; keep just the root.
        return flags;
    }

    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const auto &node = nodes[i];
        if (node.is_leaf)
            continue;
        const std::size_t l = node.left_child;
        const std::size_t r = node.right_child;
        assert(l < nodes.size() && r < nodes.size());

        const bool orig_i = flags[i];
        const bool orig_l = flags[l];
        const bool orig_r = flags[r];

        std::uint8_t best_combo = 0xff;
        double combo_best = best;
        for (std::uint8_t combo = 0; combo < 8; ++combo) {
            flags[i] = combo & 1;
            flags[l] = combo & 2;
            flags[r] = combo & 4;
            const double score = scoreFlags(
                scorer, flags, options.criterion, options.max_centers);
            if (score < combo_best) {
                combo_best = score;
                best_combo = combo;
            }
        }
        if (best_combo == 0xff) {
            // No combination strictly beats the incumbent (whose own
            // combo scored exactly `best` in the loop); keep it.
            flags[i] = orig_i;
            flags[l] = orig_l;
            flags[r] = orig_r;
        } else {
            flags[i] = best_combo & 1;
            flags[l] = best_combo & 2;
            flags[r] = best_combo & 4;
            best = combo_best;
        }
    }
    if (selectedIndices(flags).empty())
        flags[0] = true;
    return flags;
}

/** Greedy forward selection over all candidates (ablation). */
std::vector<bool>
greedySelect(const SubsetScorer &scorer,
             const std::vector<tree::NodeInfo> &nodes,
             const RbfRtOptions &options)
{
    std::vector<bool> flags(nodes.size(), false);
    double best = kInf;
    for (;;) {
        std::size_t best_add = tree::NodeInfo::npos;
        double round_best = best;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (flags[i])
                continue;
            flags[i] = true;
            const double score = scoreFlags(
                scorer, flags, options.criterion, options.max_centers);
            flags[i] = false;
            if (score < round_best) {
                round_best = score;
                best_add = i;
            }
        }
        if (best_add == tree::NodeInfo::npos)
            break;
        flags[best_add] = true;
        best = round_best;
    }
    if (selectedIndices(flags).empty())
        flags[0] = true;
    return flags;
}

} // namespace

std::string
selectionName(Selection s)
{
    return s == Selection::TreeOrdered ? "tree-ordered"
                                       : "greedy-forward";
}

std::vector<GaussianBasis>
candidateBases(const std::vector<tree::NodeInfo> &nodes, double alpha,
               double min_radius)
{
    assert(alpha > 0.0);
    std::vector<GaussianBasis> bases;
    bases.reserve(nodes.size());
    for (const auto &node : nodes) {
        std::vector<double> radius(node.size.size());
        for (std::size_t k = 0; k < node.size.size(); ++k)
            radius[k] = std::max(alpha * node.size[k], min_radius);
        bases.emplace_back(node.center, std::move(radius));
    }
    return bases;
}

RbfRtResult
buildRbfFromTree(const tree::RegressionTree &tree,
                 const std::vector<dspace::UnitPoint> &xs,
                 const std::vector<double> &ys,
                 const RbfRtOptions &options)
{
    assert(xs.size() == ys.size());
    assert(!xs.empty());

    const auto nodes = tree.nodes();
    const auto candidates =
        candidateBases(nodes, options.alpha, options.min_radius);
    const SubsetScorer scorer(candidates, xs, ys);

    const std::vector<bool> flags =
        options.selection == Selection::TreeOrdered
            ? treeOrderedSelect(scorer, nodes, options)
            : greedySelect(scorer, nodes, options);

    const auto selected = selectedIndices(flags);
    std::vector<GaussianBasis> bases;
    bases.reserve(selected.size());
    for (std::size_t i : selected)
        bases.push_back(candidates[i]);

    RbfRtResult result;
    result.num_candidates = candidates.size();
    const auto weights = scorer.solveSubset(selected);
    result.network = RbfNetwork(std::move(bases),
                                {weights.begin(), weights.end()});
    result.train_sse = scorer.subsetSse(selected);
    result.criterion_value = evaluateCriterion(
        options.criterion, xs.size(), selected.size(), result.train_sse);
    return result;
}

} // namespace ppm::rbf
