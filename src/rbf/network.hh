/**
 * @file
 * Radial basis function network (paper Eq 1):
 *
 *   f(x) = sum_j w_j h_j(x)
 *
 * A hidden layer of Gaussian bases feeding a linear output unit. The
 * weights are fit by least squares against the simulated responses.
 */

#ifndef PPM_RBF_NETWORK_HH
#define PPM_RBF_NETWORK_HH

#include <vector>

#include "dspace/design_space.hh"
#include "math/matrix.hh"
#include "rbf/basis.hh"

namespace ppm::rbf {

/**
 * A trained RBF network: m Gaussian bases plus output weights.
 */
class RbfNetwork
{
  public:
    RbfNetwork() = default;

    /**
     * @param bases Hidden-layer basis functions (all one
     *              dimensionality, at least one).
     * @param weights Output weights, one per basis.
     */
    RbfNetwork(std::vector<GaussianBasis> bases,
               std::vector<double> weights);

    /** Network response f(x) at a unit-space point. */
    double predict(const dspace::UnitPoint &x) const;

    /** Batch prediction. */
    std::vector<double> predict(
        const std::vector<dspace::UnitPoint> &xs) const;

    /** Number of hidden units m. */
    std::size_t numBases() const { return bases_.size(); }

    /** Input dimensionality n. */
    std::size_t dimensions() const;

    const std::vector<GaussianBasis> &bases() const { return bases_; }
    const std::vector<double> &weights() const { return weights_; }

    /** True iff the network has no bases (default constructed). */
    bool empty() const { return bases_.empty(); }

  private:
    std::vector<GaussianBasis> bases_;
    std::vector<double> weights_;
};

/**
 * Hidden-layer design matrix H with H(i, j) = h_j(xs[i]) for a set of
 * candidate bases. Column j corresponds to bases[j].
 */
math::Matrix designMatrix(const std::vector<GaussianBasis> &bases,
                          const std::vector<dspace::UnitPoint> &xs);

/**
 * Fit output weights for @p bases against responses @p ys by least
 * squares and return the resulting network.
 */
RbfNetwork fitWeights(std::vector<GaussianBasis> bases,
                      const std::vector<dspace::UnitPoint> &xs,
                      const std::vector<double> &ys);

} // namespace ppm::rbf

#endif // PPM_RBF_NETWORK_HH
