/**
 * @file
 * Radial basis function network (paper Eq 1):
 *
 *   f(x) = sum_j w_j h_j(x)
 *
 * A hidden layer of Gaussian bases feeding a linear output unit. The
 * weights are fit by least squares against the simulated responses.
 *
 * Construction compiles the network once into a BatchPlan (see
 * rbf_batch.hh): a structure-of-arrays, SIMD-dispatched evaluation
 * plan that both the single-point and the batched predict route
 * through, so predictions are bit-identical at every batch size and
 * `PPM_SIMD=off` reproduces the legacy scalar loop bit-exactly.
 */

#ifndef PPM_RBF_NETWORK_HH
#define PPM_RBF_NETWORK_HH

#include <memory>
#include <vector>

#include "dspace/design_space.hh"
#include "math/matrix.hh"
#include "rbf/basis.hh"
#include "rbf/rbf_batch.hh"

namespace ppm::rbf {

/**
 * A trained RBF network: m Gaussian bases plus output weights.
 * Copies share the immutable compiled evaluation plan.
 */
class RbfNetwork
{
  public:
    RbfNetwork() = default;

    /**
     * @param bases Hidden-layer basis functions (all one
     *              dimensionality, at least one).
     * @param weights Output weights, one per basis.
     * @throws std::invalid_argument on an empty basis set, mixed
     *         basis dimensionalities, or a weight-count mismatch —
     *         checked unconditionally so release builds fail at the
     *         construction site instead of predicting garbage.
     */
    RbfNetwork(std::vector<GaussianBasis> bases,
               std::vector<double> weights);

    /**
     * Network response f(x) at a unit-space point.
     * @throws std::logic_error on an empty network and
     *         std::invalid_argument on a dimensionality mismatch
     *         (typed errors the serve path turns into protocol Error
     *         replies; release builds previously hit UB here).
     */
    double predict(const dspace::UnitPoint &x) const;

    /**
     * Batch prediction through the compiled plan; element i is
     * bit-identical to predict(xs[i]).
     */
    std::vector<double> predict(
        const std::vector<dspace::UnitPoint> &xs) const;

    /** Number of hidden units m. */
    std::size_t numBases() const { return bases_.size(); }

    /** Input dimensionality n (0 for an empty network). */
    std::size_t dimensions() const;

    const std::vector<GaussianBasis> &bases() const { return bases_; }
    const std::vector<double> &weights() const { return weights_; }

    /** The compiled evaluation plan (null for an empty network). */
    const std::shared_ptr<const BatchPlan> &plan() const
    {
        return plan_;
    }

    /** True iff the network has no bases (default constructed). */
    bool empty() const { return bases_.empty(); }

  private:
    std::vector<GaussianBasis> bases_;
    std::vector<double> weights_;
    std::shared_ptr<const BatchPlan> plan_;
};

/**
 * Hidden-layer design matrix H with H(i, j) = h_j(xs[i]) for a set of
 * candidate bases. Column j corresponds to bases[j]. Evaluated
 * through a batched SoA plan; bit-identical to the per-element loop
 * under PPM_SIMD=off.
 *
 * Compiles a fresh BatchPlan per call — an O(m * d) transpose,
 * negligible next to the O(n * m * d) evaluation when every point is
 * scored once (the trainer builds H once and scores candidate subsets
 * off the Gram matrix). A caller that evaluates the *same* basis set
 * against many batches should compile a BatchPlan once and use its
 * designMatrix member instead.
 */
math::Matrix designMatrix(const std::vector<GaussianBasis> &bases,
                          const std::vector<dspace::UnitPoint> &xs);

/**
 * Fit output weights for @p bases against responses @p ys by least
 * squares and return the resulting network.
 */
RbfNetwork fitWeights(std::vector<GaussianBasis> bases,
                      const std::vector<dspace::UnitPoint> &xs,
                      const std::vector<double> &ys);

} // namespace ppm::rbf

#endif // PPM_RBF_NETWORK_HH
