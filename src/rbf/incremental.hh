/**
 * @file
 * Incremental (streaming) output-weight fitting for a fixed RBF basis
 * set — the numerical core of the continuous online trainer.
 *
 * For a basis set {h_1..h_m} the batch fit solves the ridge-damped
 * normal equations
 *
 *     (H^T H + lambda I) w = H^T y ,        H(i, j) = h_j(x_i)
 *
 * IncrementalFit maintains the lower Cholesky factor L of the
 * left-hand side and the right-hand side b = H^T y directly, folding
 * one training point at a time:
 *
 *     fold(x, y):  h = basis row at x            O(m d)
 *                  L <- choldate(L, h)           O(m^2)   (rank-1)
 *                  b <- b + y h                  O(m)
 *
 * so the model's output weights track a growing archive at O(m^2) per
 * point instead of the O(n m^2) Gram rebuild (let alone the full
 * tree + subset-selection retrain) a batch refit costs. solve() is
 * two triangular solves, O(m^2).
 *
 * Numerical contract
 * ------------------
 * Rank-1 Cholesky updating and a from-scratch factorization of the
 * accumulated Gram matrix are both backward stable, so the two weight
 * vectors are solutions of nearby systems and differ by at most the
 * usual condition-number amplification. Writing G = H^T H + lambda I,
 * kappa(G) <= (gersh(G) + lambda) / lambda with gersh(G) the largest
 * Gershgorin row sum of G (basis responses lie in (0, 1], so every
 * entry of G is finite and nonnegative), solve() matches the
 * from-scratch Cholesky solve of the same normal equations within
 *
 *     |w_inc[j] - w_batch[j]|
 *         <= kIncrementalUlpFactor * kappa(G) * eps
 *            * (max_k |w_batch[k]| + 1)
 *
 * norm-wise (the condition number mixes coordinates, so the error in
 * one weight scales with the largest weight; the trailing +1 is one
 * unit of absolute slack for weights near zero), with eps the double
 * machine epsilon. The bound holds
 * for every fold order, including duplicate points and
 * rank-deficient streams (where lambda alone carries the small
 * eigenvalues and kappa(G) ~ gersh(G) / lambda). The bound is
 * asserted over 10k random networks x streamed point orders by
 * tests/test_online_trainer.cc.
 *
 * Determinism: fold() and solve() are pure sequential scalar
 * arithmetic — no SIMD dispatch, no parallelism — so a given fold
 * order yields bit-identical weights on every host and thread count.
 * The online trainer feeds points in canonical (sorted-key) order per
 * epoch to pin that order; see train/online_trainer.hh.
 */

#ifndef PPM_RBF_INCREMENTAL_HH
#define PPM_RBF_INCREMENTAL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "dspace/design_space.hh"
#include "rbf/network.hh"

namespace ppm::rbf {

/**
 * Ulp-bound prefactor of the incremental-vs-batch weight contract
 * (see the file comment). Empirically the observed distance sits two
 * to three orders of magnitude below this.
 */
inline constexpr double kIncrementalUlpFactor = 512.0;

/** Default ridge damping lambda of the streamed normal equations. */
inline constexpr double kIncrementalRidge = 1e-8;

/**
 * Streaming least-squares state for one fixed basis set. Not
 * thread-safe; the online trainer serializes folds (that is what
 * makes them canonically ordered).
 */
class IncrementalFit
{
  public:
    /**
     * Start an empty fit over @p bases (at least one, uniform
     * dimensionality) with ridge damping @p ridge (> 0).
     * @throws std::invalid_argument on an empty basis set (via
     *         BatchPlan) or a non-positive ridge.
     */
    explicit IncrementalFit(std::vector<GaussianBasis> bases,
                            double ridge = kIncrementalRidge);

    /**
     * Fold one training point: rank-1-update the Cholesky factor and
     * accumulate the right-hand side. @p x must match the basis
     * dimensionality (checked by the plan's basisRow).
     */
    void fold(const dspace::UnitPoint &x, double y);

    /**
     * Network response at @p x under the *current* weights (a solve
     * over the points folded so far). Prefer predictWith() when
     * scoring many points against one solve.
     */
    double predict(const dspace::UnitPoint &x) const;

    /** Response at @p x for an externally held solve() result. */
    double predictWith(const std::vector<double> &weights,
                       const dspace::UnitPoint &x) const;

    /**
     * Output weights solving the accumulated normal equations
     * (two triangular solves; the factor is always positive definite
     * thanks to the ridge term, so this cannot fail).
     */
    std::vector<double> solve() const;

    /** The fitted network: the basis set plus solve() weights. */
    RbfNetwork network() const;

    /** Points folded so far. */
    std::size_t points() const { return points_; }

    /** Hidden-layer size m. */
    std::size_t numBases() const { return bases_.size(); }

    /** Input dimensionality. */
    std::size_t dimensions() const;

    const std::vector<GaussianBasis> &bases() const { return bases_; }

    /** The ridge damping lambda the factor was seeded with. */
    double ridge() const { return ridge_; }

  private:
    std::vector<GaussianBasis> bases_;
    std::shared_ptr<const BatchPlan> plan_;
    double ridge_ = kIncrementalRidge;
    std::size_t points_ = 0;
    /** Lower Cholesky factor, row-major, m x m (lower triangle). */
    std::vector<double> chol_;
    /** Right-hand side b = H^T y. */
    std::vector<double> rhs_;
    /** Scratch basis row (avoids an allocation per fold). */
    mutable std::vector<double> row_;
};

/**
 * Reference from-scratch solve of the same ridge-damped normal
 * equations IncrementalFit streams (Gram accumulation in point order,
 * then one fresh Cholesky factorization). This is the batch side of
 * the documented incremental-vs-batch contract; the property test
 * compares against it, and full refits use it to re-seed the
 * streaming state.
 */
std::vector<double> batchRidgeWeights(
    const std::vector<GaussianBasis> &bases,
    const std::vector<dspace::UnitPoint> &xs,
    const std::vector<double> &ys,
    double ridge = kIncrementalRidge);

} // namespace ppm::rbf

#endif // PPM_RBF_INCREMENTAL_HH
