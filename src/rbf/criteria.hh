/**
 * @file
 * Model-selection criteria balancing fit quality against model size
 * (paper Sec 2.5, Eq 9). Lower is better for all three. AIC_c is the
 * paper's choice; BIC and GCV are provided for ablation.
 */

#ifndef PPM_RBF_CRITERIA_HH
#define PPM_RBF_CRITERIA_HH

#include <cstddef>
#include <string>

namespace ppm::rbf {

/** Which criterion scores a candidate model. */
enum class Criterion
{
    AICc, //!< corrected Akaike information criterion (paper Eq 9)
    BIC,  //!< Bayesian information criterion
    GCV,  //!< generalized cross validation
};

/** Human-readable criterion name. */
std::string criterionName(Criterion c);

/**
 * Score a model.
 *
 * @param criterion Which criterion to evaluate.
 * @param p Number of training samples.
 * @param m Number of model parameters (RBF centers chosen).
 * @param sse Sum of squared training residuals.
 * @return Criterion value; +infinity when the model is degenerate for
 *         the criterion (e.g. m >= p - 1 for AIC_c, where the
 *         correction term blows up), so such models are never selected.
 */
double evaluateCriterion(Criterion criterion, std::size_t p,
                         std::size_t m, double sse);

/**
 * Corrected Akaike information criterion (Eq 9):
 *
 *   AIC_c = p log(sigma^2) + 2m + 2m(m + 1)/(p - m - 1)
 *
 * with sigma^2 = sse / p (the additive constant is dropped; only
 * differences matter for selection).
 */
double aicc(std::size_t p, std::size_t m, double sse);

/** BIC = p log(sigma^2) + m log(p). */
double bic(std::size_t p, std::size_t m, double sse);

/** GCV = p * sse / (p - m)^2. */
double gcv(std::size_t p, std::size_t m, double sse);

} // namespace ppm::rbf

#endif // PPM_RBF_CRITERIA_HH
