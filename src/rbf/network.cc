#include "rbf/network.hh"

#include <cassert>
#include <stdexcept>
#include <string>

#include "math/linalg.hh"

namespace ppm::rbf {

RbfNetwork::RbfNetwork(std::vector<GaussianBasis> bases,
                       std::vector<double> weights)
    : bases_(std::move(bases)), weights_(std::move(weights))
{
    if (bases_.empty())
        throw std::invalid_argument(
            "rbf::RbfNetwork: at least one basis required");
    if (bases_.size() != weights_.size())
        throw std::invalid_argument(
            "rbf::RbfNetwork: " + std::to_string(bases_.size()) +
            " bases but " + std::to_string(weights_.size()) +
            " weights");
    for (const auto &b : bases_)
        if (b.dimensions() != bases_.front().dimensions())
            throw std::invalid_argument(
                "rbf::RbfNetwork: mixed basis dimensionalities");
    plan_ = std::make_shared<const BatchPlan>(bases_, weights_);
}

double
RbfNetwork::predict(const dspace::UnitPoint &x) const
{
    if (empty())
        throw std::logic_error(
            "rbf::RbfNetwork::predict: empty network");
    if (x.size() != dimensions())
        throw std::invalid_argument(
            "rbf::RbfNetwork::predict: point has " +
            std::to_string(x.size()) + " dimensions, network has " +
            std::to_string(dimensions()));
    return plan_->predictOne(x);
}

std::vector<double>
RbfNetwork::predict(const std::vector<dspace::UnitPoint> &xs) const
{
    if (empty())
        throw std::logic_error(
            "rbf::RbfNetwork::predict: empty network");
    for (const auto &x : xs)
        if (x.size() != dimensions())
            throw std::invalid_argument(
                "rbf::RbfNetwork::predict: point has " +
                std::to_string(x.size()) +
                " dimensions, network has " +
                std::to_string(dimensions()));
    return plan_->predict(xs);
}

std::size_t
RbfNetwork::dimensions() const
{
    return bases_.empty() ? 0 : bases_.front().dimensions();
}

math::Matrix
designMatrix(const std::vector<GaussianBasis> &bases,
             const std::vector<dspace::UnitPoint> &xs)
{
    if (bases.empty())
        return math::Matrix(xs.size(), 0);
    const BatchPlan plan(bases, {});
    return plan.designMatrix(xs);
}

RbfNetwork
fitWeights(std::vector<GaussianBasis> bases,
           const std::vector<dspace::UnitPoint> &xs,
           const std::vector<double> &ys)
{
    assert(!bases.empty());
    assert(xs.size() == ys.size());
    assert(xs.size() >= bases.size());
    const math::Matrix h = designMatrix(bases, xs);
    const auto fit = math::leastSquares(h, ys);
    return RbfNetwork(std::move(bases), fit.coefficients);
}

} // namespace ppm::rbf
