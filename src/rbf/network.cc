#include "rbf/network.hh"

#include <cassert>

#include "math/linalg.hh"

namespace ppm::rbf {

RbfNetwork::RbfNetwork(std::vector<GaussianBasis> bases,
                       std::vector<double> weights)
    : bases_(std::move(bases)), weights_(std::move(weights))
{
    assert(!bases_.empty());
    assert(bases_.size() == weights_.size());
    for (const auto &b : bases_) {
        assert(b.dimensions() == bases_.front().dimensions());
        (void)b;
    }
}

double
RbfNetwork::predict(const dspace::UnitPoint &x) const
{
    assert(!empty());
    double acc = 0.0;
    for (std::size_t j = 0; j < bases_.size(); ++j)
        acc += weights_[j] * bases_[j].evaluate(x);
    return acc;
}

std::vector<double>
RbfNetwork::predict(const std::vector<dspace::UnitPoint> &xs) const
{
    std::vector<double> out;
    out.reserve(xs.size());
    for (const auto &x : xs)
        out.push_back(predict(x));
    return out;
}

std::size_t
RbfNetwork::dimensions() const
{
    return bases_.empty() ? 0 : bases_.front().dimensions();
}

math::Matrix
designMatrix(const std::vector<GaussianBasis> &bases,
             const std::vector<dspace::UnitPoint> &xs)
{
    math::Matrix h(xs.size(), bases.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        for (std::size_t j = 0; j < bases.size(); ++j)
            h(i, j) = bases[j].evaluate(xs[i]);
    return h;
}

RbfNetwork
fitWeights(std::vector<GaussianBasis> bases,
           const std::vector<dspace::UnitPoint> &xs,
           const std::vector<double> &ys)
{
    assert(!bases.empty());
    assert(xs.size() == ys.size());
    assert(xs.size() >= bases.size());
    const math::Matrix h = designMatrix(bases, xs);
    const auto fit = math::leastSquares(h, ys);
    return RbfNetwork(std::move(bases), fit.coefficients);
}

} // namespace ppm::rbf
