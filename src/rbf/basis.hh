/**
 * @file
 * Gaussian radial basis function with per-dimension radii (paper Eq 2):
 *
 *   h(x) = exp(-sum_k (x_k - c_k)^2 / r_k^2)
 *
 * The response peaks at the center c and decays with distance at a rate
 * controlled independently per dimension by the radius vector r.
 */

#ifndef PPM_RBF_BASIS_HH
#define PPM_RBF_BASIS_HH

#include <vector>

#include "dspace/design_space.hh"

namespace ppm::rbf {

/**
 * One Gaussian basis function over the unit design space.
 */
class GaussianBasis
{
  public:
    /**
     * @param center Center point c (unit space); finite, non-empty.
     * @param radius Per-dimension radii r; finite and strictly
     *               positive, same dimensionality as @p center.
     * @throws std::invalid_argument on any violation — validated
     *         unconditionally (not an assert), because a zero or
     *         negative radius would silently poison inv_radius_sq_
     *         with inf/NaN in release builds and every prediction
     *         made with it afterwards.
     */
    GaussianBasis(dspace::UnitPoint center, std::vector<double> radius);

    /** Basis response h(x) in (0, 1]. */
    double evaluate(const dspace::UnitPoint &x) const;

    const dspace::UnitPoint &center() const { return center_; }
    const std::vector<double> &radius() const { return radius_; }
    /** Precomputed 1 / r_k^2 (shared with batched evaluation plans). */
    const std::vector<double> &invRadiusSq() const
    {
        return inv_radius_sq_;
    }
    std::size_t dimensions() const { return center_.size(); }

  private:
    dspace::UnitPoint center_;
    std::vector<double> radius_;
    /** Precomputed 1 / r_k^2 to keep evaluate() cheap. */
    std::vector<double> inv_radius_sq_;
};

} // namespace ppm::rbf

#endif // PPM_RBF_BASIS_HH
