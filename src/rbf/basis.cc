#include "rbf/basis.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ppm::rbf {

GaussianBasis::GaussianBasis(dspace::UnitPoint center,
                             std::vector<double> radius)
    : center_(std::move(center)), radius_(std::move(radius))
{
    // Validated unconditionally: under NDEBUG an assert would let a
    // zero/negative/non-finite radius through and inv_radius_sq_
    // would silently hold inf or NaN, poisoning every later
    // prediction instead of failing at the construction site.
    if (center_.empty())
        throw std::invalid_argument("rbf::GaussianBasis: empty center");
    if (center_.size() != radius_.size())
        throw std::invalid_argument(
            "rbf::GaussianBasis: center has " +
            std::to_string(center_.size()) + " dimensions, radius " +
            std::to_string(radius_.size()));
    inv_radius_sq_.resize(radius_.size());
    for (std::size_t k = 0; k < radius_.size(); ++k) {
        if (!std::isfinite(center_[k]))
            throw std::invalid_argument(
                "rbf::GaussianBasis: non-finite center coordinate " +
                std::to_string(k));
        if (!(radius_[k] > 0.0) || !std::isfinite(radius_[k]))
            throw std::invalid_argument(
                "rbf::GaussianBasis: radius " + std::to_string(k) +
                " must be finite and strictly positive");
        inv_radius_sq_[k] = 1.0 / (radius_[k] * radius_[k]);
    }
}

double
GaussianBasis::evaluate(const dspace::UnitPoint &x) const
{
    assert(x.size() == center_.size());
    double exponent = 0.0;
    for (std::size_t k = 0; k < center_.size(); ++k) {
        const double d = x[k] - center_[k];
        exponent += d * d * inv_radius_sq_[k];
    }
    return std::exp(-exponent);
}

} // namespace ppm::rbf
