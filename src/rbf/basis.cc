#include "rbf/basis.hh"

#include <cassert>
#include <cmath>

namespace ppm::rbf {

GaussianBasis::GaussianBasis(dspace::UnitPoint center,
                             std::vector<double> radius)
    : center_(std::move(center)), radius_(std::move(radius))
{
    assert(center_.size() == radius_.size());
    assert(!center_.empty());
    inv_radius_sq_.resize(radius_.size());
    for (std::size_t k = 0; k < radius_.size(); ++k) {
        assert(radius_[k] > 0.0 && "radii must be strictly positive");
        inv_radius_sq_[k] = 1.0 / (radius_[k] * radius_[k]);
    }
}

double
GaussianBasis::evaluate(const dspace::UnitPoint &x) const
{
    assert(x.size() == center_.size());
    double exponent = 0.0;
    for (std::size_t k = 0; k < center_.size(); ++k) {
        const double d = x[k] - center_[k];
        exponent += d * d * inv_radius_sq_[k];
    }
    return std::exp(-exponent);
}

} // namespace ppm::rbf
