#include "rbf/rbf_batch.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include "obs/event_log.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"

#if defined(__x86_64__) || defined(__i386__)
#define PPM_SIMD_X86 1
#if !defined(PPM_SIMD_DISABLED)
#include <immintrin.h>
#define PPM_SIMD_HAVE_AVX2 1
#define PPM_SIMD_HAVE_AVX512 1
#endif
#elif defined(__aarch64__)
#if !defined(PPM_SIMD_DISABLED)
#include <arm_neon.h>
#define PPM_SIMD_HAVE_NEON 1
#endif
#endif

namespace ppm::rbf {

namespace {

/**
 * Pad to 16 bases: four AVX2 blocks (or eight NEON blocks) per
 * unrolled iteration. The unroll is what buys the throughput — a
 * single block is latency-bound on the exponent accumulation and the
 * Horner chain inside exp, while four independent blocks let the
 * out-of-order core overlap those chains.
 */
constexpr std::size_t kPadBases = 16;

/** exp() argument below which the result flushes to zero (< DBL_MIN). */
constexpr double kExpUnderflow = -708.39641853226408;

// --- vectorized exp ---------------------------------------------------
//
// Cody-Waite range reduction (x = n ln2 + r, |r| <= ln2/2) followed by
// a degree-12 Taylor polynomial for exp(r); the truncation error
// r^13/13! is < 2e-16 relative at |r| = 0.347, so together with the
// polynomial rounding the result stays within kExpUlpBound ulps of
// std::exp. 2^n is assembled directly in the exponent bits. Arguments
// are clamped to [-745, 709]; anything below kExpUnderflow returns 0
// (std::exp would return a denormal there).

#if defined(PPM_SIMD_HAVE_AVX2)

__attribute__((target("avx2,fma"))) inline __m256d
exp4pd(__m256d x)
{
    const __m256d log2e = _mm256_set1_pd(1.4426950408889634074);
    const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
    const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);

    x = _mm256_max_pd(x, _mm256_set1_pd(-745.0));
    x = _mm256_min_pd(x, _mm256_set1_pd(709.0));

    const __m256d n = _mm256_round_pd(
        _mm256_mul_pd(x, log2e),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m256d r = _mm256_fnmadd_pd(n, ln2_hi, x);
    r = _mm256_fnmadd_pd(n, ln2_lo, r);

    __m256d p = _mm256_set1_pd(1.0 / 479001600.0); // 1/12!
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 39916800.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 3628800.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362880.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40320.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5040.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));

    // 2^n via the exponent field; n is integral in [-1075, 1024].
    const __m128i n32 = _mm256_cvtpd_epi32(n);
    const __m256i n64 = _mm256_cvtepi32_epi64(n32);
    const __m256i bits = _mm256_slli_epi64(
        _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)), 52);
    const __m256d pow2n = _mm256_castsi256_pd(bits);

    __m256d result = _mm256_mul_pd(p, pow2n);
    const __m256d underflow = _mm256_cmp_pd(
        x, _mm256_set1_pd(kExpUnderflow), _CMP_LT_OS);
    return _mm256_andnot_pd(underflow, result);
}

#endif // PPM_SIMD_HAVE_AVX2

#if defined(PPM_SIMD_HAVE_AVX512)

/**
 * 8-lane exp, same reduction and coefficients as exp4pd, minus the
 * range clamps: the argument here is always a negated sum of squares
 * (x <= 0, or NaN on an overflowed exponent), so the overflow clamp
 * can never fire, and arguments below kExpUnderflow — where the
 * unclamped pipeline may produce garbage or NaN — are flushed to
 * exactly zero by the trailing mask, which only keeps lanes in
 * [kExpUnderflow, 0]. 2^n is applied with vscalefpd, a single
 * correctly-rounded scaling that matches the AVX2 kernel's
 * exponent-field multiply bit-for-bit on every kept lane.
 */
__attribute__((target("avx512f,avx512dq"))) inline __m512d
exp8pd(__m512d x)
{
    const __m512d log2e = _mm512_set1_pd(1.4426950408889634074);
    const __m512d ln2_hi = _mm512_set1_pd(6.93145751953125e-1);
    const __m512d ln2_lo = _mm512_set1_pd(1.42860682030941723212e-6);

    const __m512d n = _mm512_roundscale_pd(
        _mm512_mul_pd(x, log2e),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    __m512d r = _mm512_fnmadd_pd(n, ln2_hi, x);
    r = _mm512_fnmadd_pd(n, ln2_lo, r);

    __m512d p = _mm512_set1_pd(1.0 / 479001600.0); // 1/12!
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 39916800.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 3628800.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 362880.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 40320.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 5040.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 720.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 120.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 24.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0 / 6.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(0.5));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0));
    p = _mm512_fmadd_pd(p, r, _mm512_set1_pd(1.0));

    const __m512d result = _mm512_scalef_pd(p, n);
    const __mmask8 keep = _mm512_cmp_pd_mask(
        x, _mm512_set1_pd(kExpUnderflow), _CMP_GE_OS);
    return _mm512_maskz_mov_pd(keep, result);
}

#endif // PPM_SIMD_HAVE_AVX512

#if defined(PPM_SIMD_HAVE_NEON)

inline float64x2_t
exp2pd(float64x2_t x)
{
    const float64x2_t log2e = vdupq_n_f64(1.4426950408889634074);
    const float64x2_t ln2_hi = vdupq_n_f64(6.93145751953125e-1);
    const float64x2_t ln2_lo =
        vdupq_n_f64(1.42860682030941723212e-6);

    x = vmaxq_f64(x, vdupq_n_f64(-745.0));
    x = vminq_f64(x, vdupq_n_f64(709.0));

    const float64x2_t n = vrndnq_f64(vmulq_f64(x, log2e));
    // vfmsq(a, b, c) = a - b * c
    float64x2_t r = vfmsq_f64(x, n, ln2_hi);
    r = vfmsq_f64(r, n, ln2_lo);

    float64x2_t p = vdupq_n_f64(1.0 / 479001600.0);
    // vfmaq(a, b, c) = a + b * c
    p = vfmaq_f64(vdupq_n_f64(1.0 / 39916800.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0 / 3628800.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0 / 362880.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0 / 40320.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0 / 5040.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0 / 720.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0 / 120.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0 / 24.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0 / 6.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(0.5), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0), p, r);
    p = vfmaq_f64(vdupq_n_f64(1.0), p, r);

    const int64x2_t n64 = vcvtq_s64_f64(n);
    const int64x2_t bits =
        vshlq_n_s64(vaddq_s64(n64, vdupq_n_s64(1023)), 52);
    const float64x2_t pow2n = vreinterpretq_f64_s64(bits);

    float64x2_t result = vmulq_f64(p, pow2n);
    const uint64x2_t underflow =
        vcltq_f64(x, vdupq_n_f64(kExpUnderflow));
    return vbslq_f64(underflow, vdupq_n_f64(0.0), result);
}

#endif // PPM_SIMD_HAVE_NEON

double *
alignedAlloc(std::size_t doubles)
{
    return static_cast<double *>(::operator new(
        doubles * sizeof(double), std::align_val_t{64}));
}

void
alignedFree(double *p)
{
    ::operator delete(p, std::align_val_t{64});
}

} // namespace

std::string
simdKindName(SimdKind kind)
{
    switch (kind) {
      case SimdKind::Scalar:
        return "scalar";
      case SimdKind::Avx2:
        return "avx2";
      case SimdKind::Neon:
        return "neon";
      case SimdKind::Avx512:
        return "avx512";
    }
    return "unknown";
}

SimdKind
detectSimd()
{
#if defined(PPM_SIMD_HAVE_AVX512)
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq"))
        return SimdKind::Avx512;
#endif
#if defined(PPM_SIMD_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("fma"))
        return SimdKind::Avx2;
#elif defined(PPM_SIMD_HAVE_NEON)
    return SimdKind::Neon; // architectural on aarch64
#endif
    return SimdKind::Scalar;
}

SimdKind
resolveSimd(const char *env_value, SimdKind detected)
{
    if (!env_value || !*env_value)
        return detected;
    const std::string v(env_value);
    if (v == "auto" || v == "on" || v == "1")
        return detected;
    if (v == "off" || v == "scalar" || v == "0")
        return SimdKind::Scalar;
    if (v == "avx512")
        return detected == SimdKind::Avx512 ? detected
                                            : SimdKind::Scalar;
    if (v == "avx2")
        // An AVX-512 machine supports the AVX2 kernel too; the
        // request asks for the narrower one explicitly.
        return detected == SimdKind::Avx2 ||
                       detected == SimdKind::Avx512
                   ? SimdKind::Avx2
                   : SimdKind::Scalar;
    if (v == "neon")
        return detected == SimdKind::Neon ? detected
                                          : SimdKind::Scalar;
    // Unknown value: fail safe to the reference path.
    return SimdKind::Scalar;
}

SimdKind
activeSimd()
{
    static const SimdKind kind = [] {
        const SimdKind detected = detectSimd();
        const SimdKind resolved =
            resolveSimd(std::getenv("PPM_SIMD"), detected);
#if !defined(PPM_OBS_DISABLED)
        obs::Registry::instance()
            .gauge("rbf.simd_dispatch")
            .set(static_cast<std::int64_t>(resolved));
        obs::logEvent(obs::LogLevel::Info, "rbf", "simd_dispatch",
                      {{"kind", simdKindName(resolved)},
                       {"detected", simdKindName(detected)}});
#endif
        return resolved;
    }();
    return kind;
}

BatchPlan::BatchPlan(const std::vector<GaussianBasis> &bases,
                     const std::vector<double> &weights, SimdKind kind)
    : bases_(bases.size()), kind_(kind)
{
    if (bases.empty())
        throw std::invalid_argument(
            "rbf::BatchPlan: empty basis set");
    dims_ = bases.front().dimensions();
    for (const GaussianBasis &b : bases)
        if (b.dimensions() != dims_)
            throw std::invalid_argument(
                "rbf::BatchPlan: mixed basis dimensionalities");
    if (!weights.empty() && weights.size() != bases.size())
        throw std::invalid_argument(
            "rbf::BatchPlan: weight count does not match basis count");
    has_weights_ = !weights.empty();

    padded_ = (bases_ + kPadBases - 1) / kPadBases * kPadBases;
    const std::size_t total = (2 * dims_ + 1) * padded_;
    storage_ = alignedAlloc(total);
    std::memset(storage_, 0, total * sizeof(double));

    double *centers = storage_;
    double *inv_r_sq = storage_ + dims_ * padded_;
    double *w = storage_ + 2 * dims_ * padded_;
    for (std::size_t j = 0; j < bases_; ++j) {
        const GaussianBasis &b = bases[j];
        for (std::size_t k = 0; k < dims_; ++k) {
            centers[k * padded_ + j] = b.center()[k];
            inv_r_sq[k * padded_ + j] = b.invRadiusSq()[k];
        }
        w[j] = has_weights_ ? weights[j] : 0.0;
    }
    centers_ = centers;
    inv_r_sq_ = inv_r_sq;
    weights_ = w;
}

BatchPlan::~BatchPlan()
{
    alignedFree(storage_);
}

namespace {

/**
 * Bit-compatible reference: the exact operation order of the legacy
 * GaussianBasis::evaluate / RbfNetwork::predict AoS loop, read from
 * the dimension-major layout.
 */
double
predictOneScalar(const double *x, const double *centers,
                 const double *inv_r_sq, const double *weights,
                 std::size_t m, std::size_t dims, std::size_t padded)
{
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        double exponent = 0.0;
        for (std::size_t k = 0; k < dims; ++k) {
            const double d = x[k] - centers[k * padded + j];
            exponent += d * d * inv_r_sq[k * padded + j];
        }
        acc += weights[j] * std::exp(-exponent);
    }
    return acc;
}

void
basisRowScalar(const double *x, double *h, const double *centers,
               const double *inv_r_sq, std::size_t m,
               std::size_t dims, std::size_t padded)
{
    for (std::size_t j = 0; j < m; ++j) {
        double exponent = 0.0;
        for (std::size_t k = 0; k < dims; ++k) {
            const double d = x[k] - centers[k * padded + j];
            exponent += d * d * inv_r_sq[k * padded + j];
        }
        h[j] = std::exp(-exponent);
    }
}

#if defined(PPM_SIMD_HAVE_AVX2)

__attribute__((target("avx2,fma"))) double
predictOneAvx2(const double *x, const double *centers,
               const double *inv_r_sq, const double *weights,
               std::size_t dims, std::size_t padded)
{
    // Four independent 4-lane blocks per iteration (padded is a
    // multiple of 16): the exponent accumulations and the exp Horner
    // chains of the blocks carry no dependencies on each other, so
    // the out-of-order core overlaps their latency.
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    for (std::size_t jb = 0; jb < padded; jb += 16) {
        __m256d e0 = _mm256_setzero_pd();
        __m256d e1 = _mm256_setzero_pd();
        __m256d e2 = _mm256_setzero_pd();
        __m256d e3 = _mm256_setzero_pd();
        for (std::size_t k = 0; k < dims; ++k) {
            const double *c_row = centers + k * padded + jb;
            const double *ir_row = inv_r_sq + k * padded + jb;
            const __m256d xk = _mm256_set1_pd(x[k]);
            const __m256d d0 =
                _mm256_sub_pd(xk, _mm256_load_pd(c_row + 0));
            const __m256d d1 =
                _mm256_sub_pd(xk, _mm256_load_pd(c_row + 4));
            const __m256d d2 =
                _mm256_sub_pd(xk, _mm256_load_pd(c_row + 8));
            const __m256d d3 =
                _mm256_sub_pd(xk, _mm256_load_pd(c_row + 12));
            e0 = _mm256_fmadd_pd(_mm256_mul_pd(d0, d0),
                                 _mm256_load_pd(ir_row + 0), e0);
            e1 = _mm256_fmadd_pd(_mm256_mul_pd(d1, d1),
                                 _mm256_load_pd(ir_row + 4), e1);
            e2 = _mm256_fmadd_pd(_mm256_mul_pd(d2, d2),
                                 _mm256_load_pd(ir_row + 8), e2);
            e3 = _mm256_fmadd_pd(_mm256_mul_pd(d3, d3),
                                 _mm256_load_pd(ir_row + 12), e3);
        }
        const __m256d z = _mm256_setzero_pd();
        const __m256d h0 = exp4pd(_mm256_sub_pd(z, e0));
        const __m256d h1 = exp4pd(_mm256_sub_pd(z, e1));
        const __m256d h2 = exp4pd(_mm256_sub_pd(z, e2));
        const __m256d h3 = exp4pd(_mm256_sub_pd(z, e3));
        acc0 = _mm256_fmadd_pd(_mm256_load_pd(weights + jb + 0),
                               h0, acc0);
        acc1 = _mm256_fmadd_pd(_mm256_load_pd(weights + jb + 4),
                               h1, acc1);
        acc2 = _mm256_fmadd_pd(_mm256_load_pd(weights + jb + 8),
                               h2, acc2);
        acc3 = _mm256_fmadd_pd(_mm256_load_pd(weights + jb + 12),
                               h3, acc3);
    }
    // Deterministic reduction: blocks pairwise, then lanes
    // (a0+a2) + (a1+a3).
    const __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                                      _mm256_add_pd(acc2, acc3));
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/** Store one 4-lane block of responses, clipping at the real count. */
__attribute__((target("avx2,fma"))) inline void
storeBlock(double *h, std::size_t jb, std::size_t m, __m256d v)
{
    if (jb >= m)
        return;
    if (jb + 4 <= m) {
        _mm256_storeu_pd(h + jb, v);
    } else {
        double tail[4];
        _mm256_storeu_pd(tail, v);
        for (std::size_t j = jb; j < m; ++j)
            h[j] = tail[j - jb];
    }
}

__attribute__((target("avx2,fma"))) void
basisRowAvx2(const double *x, double *h, const double *centers,
             const double *inv_r_sq, std::size_t m, std::size_t dims,
             std::size_t padded)
{
    // Same four-block unroll as predictOneAvx2 (see there for why).
    for (std::size_t jb = 0; jb < padded; jb += 16) {
        __m256d e0 = _mm256_setzero_pd();
        __m256d e1 = _mm256_setzero_pd();
        __m256d e2 = _mm256_setzero_pd();
        __m256d e3 = _mm256_setzero_pd();
        for (std::size_t k = 0; k < dims; ++k) {
            const double *c_row = centers + k * padded + jb;
            const double *ir_row = inv_r_sq + k * padded + jb;
            const __m256d xk = _mm256_set1_pd(x[k]);
            const __m256d d0 =
                _mm256_sub_pd(xk, _mm256_load_pd(c_row + 0));
            const __m256d d1 =
                _mm256_sub_pd(xk, _mm256_load_pd(c_row + 4));
            const __m256d d2 =
                _mm256_sub_pd(xk, _mm256_load_pd(c_row + 8));
            const __m256d d3 =
                _mm256_sub_pd(xk, _mm256_load_pd(c_row + 12));
            e0 = _mm256_fmadd_pd(_mm256_mul_pd(d0, d0),
                                 _mm256_load_pd(ir_row + 0), e0);
            e1 = _mm256_fmadd_pd(_mm256_mul_pd(d1, d1),
                                 _mm256_load_pd(ir_row + 4), e1);
            e2 = _mm256_fmadd_pd(_mm256_mul_pd(d2, d2),
                                 _mm256_load_pd(ir_row + 8), e2);
            e3 = _mm256_fmadd_pd(_mm256_mul_pd(d3, d3),
                                 _mm256_load_pd(ir_row + 12), e3);
        }
        const __m256d z = _mm256_setzero_pd();
        storeBlock(h, jb + 0, m, exp4pd(_mm256_sub_pd(z, e0)));
        storeBlock(h, jb + 4, m, exp4pd(_mm256_sub_pd(z, e1)));
        storeBlock(h, jb + 8, m, exp4pd(_mm256_sub_pd(z, e2)));
        storeBlock(h, jb + 12, m, exp4pd(_mm256_sub_pd(z, e3)));
    }
}

#endif // PPM_SIMD_HAVE_AVX2

#if defined(PPM_SIMD_HAVE_AVX512)

__attribute__((target("avx512f,avx512dq"))) double
predictOneAvx512(const double *x, const double *centers,
                 const double *inv_r_sq, const double *weights,
                 std::size_t dims, std::size_t padded)
{
    // Two independent 8-lane blocks per iteration (padded is a
    // multiple of 16) so the exponent and Horner chains overlap.
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    for (std::size_t jb = 0; jb < padded; jb += 16) {
        __m512d e0 = _mm512_setzero_pd();
        __m512d e1 = _mm512_setzero_pd();
        for (std::size_t k = 0; k < dims; ++k) {
            const double *c_row = centers + k * padded + jb;
            const double *ir_row = inv_r_sq + k * padded + jb;
            const __m512d xk = _mm512_set1_pd(x[k]);
            const __m512d d0 =
                _mm512_sub_pd(xk, _mm512_load_pd(c_row + 0));
            const __m512d d1 =
                _mm512_sub_pd(xk, _mm512_load_pd(c_row + 8));
            // fnmadd accumulates -sum directly; round-to-nearest is
            // sign-symmetric, so this is bit-identical to negating
            // the fmadd-accumulated sum afterwards.
            e0 = _mm512_fnmadd_pd(_mm512_mul_pd(d0, d0),
                                  _mm512_load_pd(ir_row + 0), e0);
            e1 = _mm512_fnmadd_pd(_mm512_mul_pd(d1, d1),
                                  _mm512_load_pd(ir_row + 8), e1);
        }
        const __m512d h0 = exp8pd(e0);
        const __m512d h1 = exp8pd(e1);
        acc0 = _mm512_fmadd_pd(_mm512_load_pd(weights + jb + 0),
                               h0, acc0);
        acc1 = _mm512_fmadd_pd(_mm512_load_pd(weights + jb + 8),
                               h1, acc1);
    }
    // Deterministic reduction: blocks, then 256-bit halves, then the
    // AVX2 lane pattern (a0+a2) + (a1+a3).
    const __m512d acc512 = _mm512_add_pd(acc0, acc1);
    const __m256d acc =
        _mm256_add_pd(_mm512_castpd512_pd256(acc512),
                      _mm512_extractf64x4_pd(acc512, 1));
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/** Store one 8-lane block of responses, clipping at the real count. */
__attribute__((target("avx512f,avx512dq"))) inline void
storeBlock8(double *h, std::size_t jb, std::size_t m, __m512d v)
{
    if (jb >= m)
        return;
    if (jb + 8 <= m) {
        _mm512_storeu_pd(h + jb, v);
    } else {
        double tail[8];
        _mm512_storeu_pd(tail, v);
        for (std::size_t j = jb; j < m; ++j)
            h[j] = tail[j - jb];
    }
}

__attribute__((target("avx512f,avx512dq"))) void
basisRowAvx512(const double *x, double *h, const double *centers,
               const double *inv_r_sq, std::size_t m,
               std::size_t dims, std::size_t padded)
{
    // Same two-block unroll as predictOneAvx512 (see there for why).
    for (std::size_t jb = 0; jb < padded; jb += 16) {
        __m512d e0 = _mm512_setzero_pd();
        __m512d e1 = _mm512_setzero_pd();
        for (std::size_t k = 0; k < dims; ++k) {
            const double *c_row = centers + k * padded + jb;
            const double *ir_row = inv_r_sq + k * padded + jb;
            const __m512d xk = _mm512_set1_pd(x[k]);
            const __m512d d0 =
                _mm512_sub_pd(xk, _mm512_load_pd(c_row + 0));
            const __m512d d1 =
                _mm512_sub_pd(xk, _mm512_load_pd(c_row + 8));
            // -sum via fnmadd: bit-identical, see predictOneAvx512.
            e0 = _mm512_fnmadd_pd(_mm512_mul_pd(d0, d0),
                                  _mm512_load_pd(ir_row + 0), e0);
            e1 = _mm512_fnmadd_pd(_mm512_mul_pd(d1, d1),
                                  _mm512_load_pd(ir_row + 8), e1);
        }
        storeBlock8(h, jb + 0, m, exp8pd(e0));
        storeBlock8(h, jb + 8, m, exp8pd(e1));
    }
}

/**
 * Two queries per call for the batch path. Each query runs exactly
 * the operation sequence of predictOneAvx512 — interleaving the two
 * instruction streams changes scheduling, not values, so results stay
 * bit-identical to the single-query kernel. The point is latency: one
 * query only has two independent exp Horner chains in flight, which
 * leaves the FMA ports half idle; a pair keeps four chains going.
 */
__attribute__((target("avx512f,avx512dq"))) void
predictPairAvx512(const double *x0, const double *x1,
                  const double *centers, const double *inv_r_sq,
                  const double *weights, std::size_t dims,
                  std::size_t padded, double *out)
{
    __m512d acc0a = _mm512_setzero_pd();
    __m512d acc1a = _mm512_setzero_pd();
    __m512d acc0b = _mm512_setzero_pd();
    __m512d acc1b = _mm512_setzero_pd();
    for (std::size_t jb = 0; jb < padded; jb += 16) {
        __m512d e0a = _mm512_setzero_pd();
        __m512d e1a = _mm512_setzero_pd();
        __m512d e0b = _mm512_setzero_pd();
        __m512d e1b = _mm512_setzero_pd();
        for (std::size_t k = 0; k < dims; ++k) {
            const double *c_row = centers + k * padded + jb;
            const double *ir_row = inv_r_sq + k * padded + jb;
            const __m512d c0 = _mm512_load_pd(c_row + 0);
            const __m512d c1 = _mm512_load_pd(c_row + 8);
            const __m512d ir0 = _mm512_load_pd(ir_row + 0);
            const __m512d ir1 = _mm512_load_pd(ir_row + 8);
            const __m512d xka = _mm512_set1_pd(x0[k]);
            const __m512d xkb = _mm512_set1_pd(x1[k]);
            const __m512d d0a = _mm512_sub_pd(xka, c0);
            const __m512d d1a = _mm512_sub_pd(xka, c1);
            const __m512d d0b = _mm512_sub_pd(xkb, c0);
            const __m512d d1b = _mm512_sub_pd(xkb, c1);
            // -sum via fnmadd: bit-identical, see predictOneAvx512.
            e0a = _mm512_fnmadd_pd(_mm512_mul_pd(d0a, d0a), ir0, e0a);
            e1a = _mm512_fnmadd_pd(_mm512_mul_pd(d1a, d1a), ir1, e1a);
            e0b = _mm512_fnmadd_pd(_mm512_mul_pd(d0b, d0b), ir0, e0b);
            e1b = _mm512_fnmadd_pd(_mm512_mul_pd(d1b, d1b), ir1, e1b);
        }
        const __m512d h0a = exp8pd(e0a);
        const __m512d h1a = exp8pd(e1a);
        const __m512d h0b = exp8pd(e0b);
        const __m512d h1b = exp8pd(e1b);
        const __m512d w0 = _mm512_load_pd(weights + jb + 0);
        const __m512d w1 = _mm512_load_pd(weights + jb + 8);
        acc0a = _mm512_fmadd_pd(w0, h0a, acc0a);
        acc1a = _mm512_fmadd_pd(w1, h1a, acc1a);
        acc0b = _mm512_fmadd_pd(w0, h0b, acc0b);
        acc1b = _mm512_fmadd_pd(w1, h1b, acc1b);
    }
    const __m512d sa = _mm512_add_pd(acc0a, acc1a);
    const __m512d sb = _mm512_add_pd(acc0b, acc1b);
    const __m256d ra =
        _mm256_add_pd(_mm512_castpd512_pd256(sa),
                      _mm512_extractf64x4_pd(sa, 1));
    const __m256d rb =
        _mm256_add_pd(_mm512_castpd512_pd256(sb),
                      _mm512_extractf64x4_pd(sb, 1));
    const __m128d qa = _mm_add_pd(_mm256_castpd256_pd128(ra),
                                  _mm256_extractf128_pd(ra, 1));
    const __m128d qb = _mm_add_pd(_mm256_castpd256_pd128(rb),
                                  _mm256_extractf128_pd(rb, 1));
    out[0] = _mm_cvtsd_f64(_mm_add_sd(qa, _mm_unpackhi_pd(qa, qa)));
    out[1] = _mm_cvtsd_f64(_mm_add_sd(qb, _mm_unpackhi_pd(qb, qb)));
}

/**
 * Four queries per call: same per-query operation sequence again
 * (bit-identical to predictOneAvx512), eight exp chains in flight,
 * and the center/radius loads amortized over four queries.
 */
__attribute__((target("avx512f,avx512dq"))) void
predictQuadAvx512(const double *const x[4], const double *centers,
                  const double *inv_r_sq, const double *weights,
                  std::size_t dims, std::size_t padded, double *out)
{
    __m512d acc0[4], acc1[4];
    for (int q = 0; q < 4; ++q) {
        acc0[q] = _mm512_setzero_pd();
        acc1[q] = _mm512_setzero_pd();
    }
    for (std::size_t jb = 0; jb < padded; jb += 16) {
        __m512d e0[4], e1[4];
        for (int q = 0; q < 4; ++q) {
            e0[q] = _mm512_setzero_pd();
            e1[q] = _mm512_setzero_pd();
        }
        for (std::size_t k = 0; k < dims; ++k) {
            const double *c_row = centers + k * padded + jb;
            const double *ir_row = inv_r_sq + k * padded + jb;
            const __m512d c0 = _mm512_load_pd(c_row + 0);
            const __m512d c1 = _mm512_load_pd(c_row + 8);
            const __m512d ir0 = _mm512_load_pd(ir_row + 0);
            const __m512d ir1 = _mm512_load_pd(ir_row + 8);
            for (int q = 0; q < 4; ++q) {
                const __m512d xk = _mm512_set1_pd(x[q][k]);
                const __m512d d0 = _mm512_sub_pd(xk, c0);
                const __m512d d1 = _mm512_sub_pd(xk, c1);
                // -sum via fnmadd: bit-identical, see
                // predictOneAvx512.
                e0[q] = _mm512_fnmadd_pd(_mm512_mul_pd(d0, d0), ir0,
                                         e0[q]);
                e1[q] = _mm512_fnmadd_pd(_mm512_mul_pd(d1, d1), ir1,
                                         e1[q]);
            }
        }
        const __m512d w0 = _mm512_load_pd(weights + jb + 0);
        const __m512d w1 = _mm512_load_pd(weights + jb + 8);
        for (int q = 0; q < 4; ++q) {
            acc0[q] = _mm512_fmadd_pd(w0, exp8pd(e0[q]), acc0[q]);
            acc1[q] = _mm512_fmadd_pd(w1, exp8pd(e1[q]), acc1[q]);
        }
    }
    for (int q = 0; q < 4; ++q) {
        const __m512d s = _mm512_add_pd(acc0[q], acc1[q]);
        const __m256d r =
            _mm256_add_pd(_mm512_castpd512_pd256(s),
                          _mm512_extractf64x4_pd(s, 1));
        const __m128d p = _mm_add_pd(_mm256_castpd256_pd128(r),
                                     _mm256_extractf128_pd(r, 1));
        out[q] =
            _mm_cvtsd_f64(_mm_add_sd(p, _mm_unpackhi_pd(p, p)));
    }
}

#endif // PPM_SIMD_HAVE_AVX512

#if defined(PPM_SIMD_HAVE_NEON)

double
predictOneNeon(const double *x, const double *centers,
               const double *inv_r_sq, const double *weights,
               std::size_t dims, std::size_t padded)
{
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t jb = 0; jb < padded; jb += 2) {
        float64x2_t e = vdupq_n_f64(0.0);
        for (std::size_t k = 0; k < dims; ++k) {
            const float64x2_t c = vld1q_f64(centers + k * padded + jb);
            const float64x2_t ir =
                vld1q_f64(inv_r_sq + k * padded + jb);
            const float64x2_t d = vsubq_f64(vdupq_n_f64(x[k]), c);
            e = vfmaq_f64(e, vmulq_f64(d, d), ir);
        }
        const float64x2_t h = exp2pd(vnegq_f64(e));
        const float64x2_t w = vld1q_f64(weights + jb);
        acc = vfmaq_f64(acc, w, h);
    }
    return vaddvq_f64(acc);
}

void
basisRowNeon(const double *x, double *h, const double *centers,
             const double *inv_r_sq, std::size_t m, std::size_t dims,
             std::size_t padded)
{
    // Stop at m, not padded: the caller's row holds exactly m
    // doubles, so padding blocks must never be stored (the x86
    // kernels guard the same way inside storeBlock/storeBlock8).
    for (std::size_t jb = 0; jb < m; jb += 2) {
        float64x2_t e = vdupq_n_f64(0.0);
        for (std::size_t k = 0; k < dims; ++k) {
            const float64x2_t c = vld1q_f64(centers + k * padded + jb);
            const float64x2_t ir =
                vld1q_f64(inv_r_sq + k * padded + jb);
            const float64x2_t d = vsubq_f64(vdupq_n_f64(x[k]), c);
            e = vfmaq_f64(e, vmulq_f64(d, d), ir);
        }
        const float64x2_t v = exp2pd(vnegq_f64(e));
        if (jb + 2 <= m) {
            vst1q_f64(h + jb, v);
        } else {
            double tail[2];
            vst1q_f64(tail, v);
            h[jb] = tail[0];
        }
    }
}

#endif // PPM_SIMD_HAVE_NEON

} // namespace

double
BatchPlan::predictOneImpl(const double *x) const
{
    switch (kind_) {
#if defined(PPM_SIMD_HAVE_AVX2)
      case SimdKind::Avx2:
        return predictOneAvx2(x, centers_, inv_r_sq_, weights_, dims_,
                              padded_);
#endif
#if defined(PPM_SIMD_HAVE_AVX512)
      case SimdKind::Avx512:
        return predictOneAvx512(x, centers_, inv_r_sq_, weights_,
                                dims_, padded_);
#endif
#if defined(PPM_SIMD_HAVE_NEON)
      case SimdKind::Neon:
        return predictOneNeon(x, centers_, inv_r_sq_, weights_, dims_,
                              padded_);
#endif
      default:
        return predictOneScalar(x, centers_, inv_r_sq_, weights_,
                                bases_, dims_, padded_);
    }
}

void
BatchPlan::basisRowImpl(const double *x, double *h) const
{
    switch (kind_) {
#if defined(PPM_SIMD_HAVE_AVX2)
      case SimdKind::Avx2:
        basisRowAvx2(x, h, centers_, inv_r_sq_, bases_, dims_,
                     padded_);
        return;
#endif
#if defined(PPM_SIMD_HAVE_AVX512)
      case SimdKind::Avx512:
        basisRowAvx512(x, h, centers_, inv_r_sq_, bases_, dims_,
                       padded_);
        return;
#endif
#if defined(PPM_SIMD_HAVE_NEON)
      case SimdKind::Neon:
        basisRowNeon(x, h, centers_, inv_r_sq_, bases_, dims_,
                     padded_);
        return;
#endif
      default:
        basisRowScalar(x, h, centers_, inv_r_sq_, bases_, dims_,
                       padded_);
    }
}

double
BatchPlan::predictOne(const dspace::UnitPoint &x) const
{
    if (!has_weights_)
        throw std::logic_error(
            "rbf::BatchPlan::predictOne: plan compiled without "
            "weights");
    if (x.size() != dims_)
        throw std::invalid_argument(
            "rbf::BatchPlan::predictOne: point has " +
            std::to_string(x.size()) + " dimensions, plan has " +
            std::to_string(dims_));
    return predictOneImpl(x.data());
}

std::vector<double>
BatchPlan::predict(const std::vector<dspace::UnitPoint> &xs) const
{
    OBS_SPAN("rbf.batch");
    OBS_STATIC_COUNTER(batch_calls, "rbf.batch.calls");
    OBS_ADD(batch_calls, 1);
    OBS_STATIC_COUNTER(batch_points, "rbf.batch.points");
    OBS_ADD(batch_points, xs.size());
    std::vector<double> out(xs.size());
    std::size_t i = 0;
#if defined(PPM_SIMD_HAVE_AVX512)
    // Pair queries on AVX-512 to keep four exp chains in flight
    // (bit-identical to predictOne; see predictPairAvx512). A point
    // with the wrong dimensionality ends the fast path, and the
    // predictOne loop below reports it with the usual error.
    if (kind_ == SimdKind::Avx512 && has_weights_) {
        for (; i + 4 <= xs.size() && xs[i].size() == dims_ &&
               xs[i + 1].size() == dims_ &&
               xs[i + 2].size() == dims_ && xs[i + 3].size() == dims_;
             i += 4) {
            const double *quad[4] = {xs[i].data(), xs[i + 1].data(),
                                     xs[i + 2].data(),
                                     xs[i + 3].data()};
            predictQuadAvx512(quad, centers_, inv_r_sq_, weights_,
                              dims_, padded_, &out[i]);
        }
        for (; i + 2 <= xs.size() && xs[i].size() == dims_ &&
               xs[i + 1].size() == dims_;
             i += 2)
            predictPairAvx512(xs[i].data(), xs[i + 1].data(),
                              centers_, inv_r_sq_, weights_, dims_,
                              padded_, &out[i]);
    }
#endif
    for (; i < xs.size(); ++i)
        out[i] = predictOne(xs[i]);
    return out;
}

void
BatchPlan::basisRow(const dspace::UnitPoint &x, double *row) const
{
    if (x.size() != dims_)
        throw std::invalid_argument(
            "rbf::BatchPlan::basisRow: point has " +
            std::to_string(x.size()) + " dimensions, plan has " +
            std::to_string(dims_));
    basisRowImpl(x.data(), row);
}

math::Matrix
BatchPlan::designMatrix(const std::vector<dspace::UnitPoint> &xs) const
{
    OBS_SPAN("rbf.batch");
    OBS_STATIC_COUNTER(batch_calls, "rbf.batch.calls");
    OBS_ADD(batch_calls, 1);
    OBS_STATIC_COUNTER(batch_points, "rbf.batch.points");
    OBS_ADD(batch_points, xs.size());
    math::Matrix h(xs.size(), bases_);
    for (std::size_t i = 0; i < xs.size(); ++i)
        basisRow(xs[i], h.rowPtr(i));
    return h;
}

} // namespace ppm::rbf
