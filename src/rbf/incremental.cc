#include "rbf/incremental.hh"

#include <cmath>
#include <stdexcept>

#include "obs/trace_span.hh"

namespace ppm::rbf {

namespace {

/**
 * Rank-1 Cholesky update (choldate): given lower-triangular L with
 * L L^T = G, rewrite it in place so that L L^T = G + h h^T. Destroys
 * @p h. The diagonal stays strictly positive for any input because it
 * was seeded at sqrt(ridge) and each step only grows it.
 */
void
cholUpdate(std::vector<double> &chol, std::vector<double> &h,
           std::size_t m)
{
    for (std::size_t k = 0; k < m; ++k) {
        double *row_k = chol.data() + k * m;
        const double lkk = row_k[k];
        const double hk = h[k];
        const double r = std::sqrt(lkk * lkk + hk * hk);
        const double c = r / lkk;
        const double s = hk / lkk;
        row_k[k] = r;
        for (std::size_t i = k + 1; i < m; ++i) {
            double *lik = chol.data() + i * m + k;
            *lik = (*lik + s * h[i]) / c;
            h[i] = c * h[i] - s * *lik;
        }
    }
}

} // namespace

IncrementalFit::IncrementalFit(std::vector<GaussianBasis> bases,
                               double ridge)
    : bases_(std::move(bases)), ridge_(ridge)
{
    if (!(ridge > 0.0))
        throw std::invalid_argument(
            "IncrementalFit: ridge must be positive");
    // Pin the scalar kernel: the SIMD basis rows differ from scalar
    // by a few ulps per host capability, which would leak the host's
    // CPUID into the streamed weights and break the trainer's
    // bit-identical-snapshot guarantee.
    plan_ = std::make_shared<const BatchPlan>(
        bases_, std::vector<double>{}, SimdKind::Scalar);
    const std::size_t m = bases_.size();
    chol_.assign(m * m, 0.0);
    const double seed = std::sqrt(ridge_);
    for (std::size_t j = 0; j < m; ++j)
        chol_[j * m + j] = seed;
    rhs_.assign(m, 0.0);
    row_.assign(m, 0.0);
}

std::size_t
IncrementalFit::dimensions() const
{
    return plan_->dimensions();
}

void
IncrementalFit::fold(const dspace::UnitPoint &x, double y)
{
    OBS_SPAN("train.fold");
    const std::size_t m = bases_.size();
    plan_->basisRow(x, row_.data());
    for (std::size_t j = 0; j < m; ++j)
        rhs_[j] += y * row_[j];
    cholUpdate(chol_, row_, m); // destroys row_ (scratch)
    ++points_;
}

std::vector<double>
IncrementalFit::solve() const
{
    const std::size_t m = bases_.size();
    // Forward solve L z = b, then back solve L^T w = z.
    std::vector<double> w(rhs_);
    for (std::size_t i = 0; i < m; ++i) {
        const double *row_i = chol_.data() + i * m;
        double acc = w[i];
        for (std::size_t j = 0; j < i; ++j)
            acc -= row_i[j] * w[j];
        w[i] = acc / row_i[i];
    }
    for (std::size_t ii = m; ii-- > 0;) {
        double acc = w[ii];
        for (std::size_t j = ii + 1; j < m; ++j)
            acc -= chol_[j * m + ii] * w[j];
        w[ii] = acc / chol_[ii * m + ii];
    }
    return w;
}

double
IncrementalFit::predictWith(const std::vector<double> &weights,
                            const dspace::UnitPoint &x) const
{
    const std::size_t m = bases_.size();
    if (weights.size() != m)
        throw std::invalid_argument(
            "IncrementalFit::predictWith: weight count mismatch");
    plan_->basisRow(x, row_.data());
    double acc = 0.0;
    for (std::size_t j = 0; j < m; ++j)
        acc += weights[j] * row_[j];
    return acc;
}

double
IncrementalFit::predict(const dspace::UnitPoint &x) const
{
    return predictWith(solve(), x);
}

RbfNetwork
IncrementalFit::network() const
{
    return RbfNetwork(bases_, solve());
}

std::vector<double>
batchRidgeWeights(const std::vector<GaussianBasis> &bases,
                  const std::vector<dspace::UnitPoint> &xs,
                  const std::vector<double> &ys, double ridge)
{
    if (xs.size() != ys.size())
        throw std::invalid_argument(
            "batchRidgeWeights: xs/ys size mismatch");
    const std::size_t m = bases.size();
    const BatchPlan plan(bases, {}, SimdKind::Scalar);
    std::vector<double> gram(m * m, 0.0);
    std::vector<double> rhs(m, 0.0);
    std::vector<double> row(m);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        plan.basisRow(xs[i], row.data());
        for (std::size_t a = 0; a < m; ++a) {
            rhs[a] += ys[i] * row[a];
            // Lower triangle only; G is symmetric.
            for (std::size_t b = 0; b <= a; ++b)
                gram[a * m + b] += row[a] * row[b];
        }
    }
    for (std::size_t j = 0; j < m; ++j)
        gram[j * m + j] += ridge;

    // Fresh Cholesky factorization (lower triangle in place).
    for (std::size_t k = 0; k < m; ++k) {
        double d = gram[k * m + k];
        for (std::size_t j = 0; j < k; ++j)
            d -= gram[k * m + j] * gram[k * m + j];
        const double lkk = std::sqrt(d);
        gram[k * m + k] = lkk;
        for (std::size_t i = k + 1; i < m; ++i) {
            double acc = gram[i * m + k];
            for (std::size_t j = 0; j < k; ++j)
                acc -= gram[i * m + j] * gram[k * m + j];
            gram[i * m + k] = acc / lkk;
        }
    }
    std::vector<double> w(rhs);
    for (std::size_t i = 0; i < m; ++i) {
        double acc = w[i];
        for (std::size_t j = 0; j < i; ++j)
            acc -= gram[i * m + j] * w[j];
        w[i] = acc / gram[i * m + i];
    }
    for (std::size_t ii = m; ii-- > 0;) {
        double acc = w[ii];
        for (std::size_t j = ii + 1; j < m; ++j)
            acc -= gram[j * m + ii] * w[j];
        w[ii] = acc / gram[ii * m + ii];
    }
    return w;
}

} // namespace ppm::rbf
