/**
 * @file
 * Hyperparameter search for RBF model construction.
 *
 * The paper (Sec 2.6) determines the method parameters p_min (tree leaf
 * size) and alpha (radius scale) per benchmark by choosing the values
 * that minimize AIC_c. The trainer grid-searches both, building a
 * regression tree and running subset selection for each combination.
 */

#ifndef PPM_RBF_TRAINER_HH
#define PPM_RBF_TRAINER_HH

#include <vector>

#include "dspace/design_space.hh"
#include "rbf/rbf_rt.hh"

namespace ppm::rbf {

/** Grid and strategy options for trainRbfModel(). */
struct TrainerOptions
{
    /** Candidate tree leaf sizes. */
    std::vector<int> p_min_grid = {1, 2, 4};
    /** Candidate radius scales (paper finds best alpha in 5-12). */
    std::vector<double> alpha_grid = {2, 4, 6, 8, 10, 12};
    /** Criterion for subset selection and grid choice. */
    Criterion criterion = Criterion::AICc;
    /** Subset selection strategy. */
    Selection selection = Selection::TreeOrdered;
    /** Cap on selected centers (0 = criterion-limited only). */
    std::size_t max_centers = 0;
};

/** A trained RBF model with its chosen method parameters. */
struct TrainedRbf
{
    /** The final network. */
    RbfNetwork network;
    /** Chosen tree leaf size. */
    int p_min = 0;
    /** Chosen radius scale. */
    double alpha = 0.0;
    /** Criterion value of the winning model. */
    double criterion_value = 0.0;
    /** Training SSE of the winning model. */
    double train_sse = 0.0;
    /** Number of RBF centers in the winning model (Table 4 row). */
    std::size_t num_centers = 0;
};

/**
 * Grid-search (p_min, alpha) and return the model with the lowest
 * criterion value.
 *
 * @param xs Training inputs in unit space.
 * @param ys Training responses (CPI).
 * @param options Grid and strategy options.
 */
TrainedRbf trainRbfModel(const std::vector<dspace::UnitPoint> &xs,
                         const std::vector<double> &ys,
                         const TrainerOptions &options = {});

} // namespace ppm::rbf

#endif // PPM_RBF_TRAINER_HH
