/**
 * @file
 * Text serialization of trained RBF networks, so a model built from
 * hours of simulation can be archived and reloaded without refitting
 * (e.g. shipped alongside a design-space study).
 *
 * Format (whitespace-separated, one basis per line):
 *
 *   ppm-rbfnet 1
 *   dims <n> bases <m>
 *   <c_1 ... c_n> <r_1 ... r_n> <w>     (m lines)
 */

#ifndef PPM_RBF_SERIALIZE_HH
#define PPM_RBF_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "rbf/network.hh"

namespace ppm::rbf {

/** Write @p network to @p os. */
void saveNetwork(const RbfNetwork &network, std::ostream &os);

/** Write @p network to @p path. @throws std::runtime_error on I/O. */
void saveNetwork(const RbfNetwork &network, const std::string &path);

/**
 * Read a network from @p is.
 * @throws std::runtime_error on malformed input.
 */
RbfNetwork loadNetwork(std::istream &is);

/** Read a network from @p path. @throws std::runtime_error. */
RbfNetwork loadNetwork(const std::string &path);

} // namespace ppm::rbf

#endif // PPM_RBF_SERIALIZE_HH
