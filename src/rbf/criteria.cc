#include "rbf/criteria.hh"

#include <cassert>
#include <cmath>
#include <limits>

namespace ppm::rbf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Guarded log of the error variance. A perfect fit (sse == 0) would
 * give log(0) = -inf and dominate every criterion regardless of model
 * size, so the variance is floored at a tiny positive value.
 */
double
logSigmaSq(std::size_t p, double sse)
{
    assert(p > 0);
    const double sigma_sq =
        std::max(sse / static_cast<double>(p), 1e-12);
    return std::log(sigma_sq);
}

} // namespace

std::string
criterionName(Criterion c)
{
    switch (c) {
      case Criterion::AICc:
        return "AICc";
      case Criterion::BIC:
        return "BIC";
      case Criterion::GCV:
        return "GCV";
    }
    return "unknown";
}

double
aicc(std::size_t p, std::size_t m, double sse)
{
    assert(p > 0);
    if (m + 1 >= p)
        return kInf;
    const double pd = static_cast<double>(p);
    const double md = static_cast<double>(m);
    return pd * logSigmaSq(p, sse) + 2.0 * md
        + 2.0 * md * (md + 1.0) / (pd - md - 1.0);
}

double
bic(std::size_t p, std::size_t m, double sse)
{
    assert(p > 0);
    if (m >= p)
        return kInf;
    const double pd = static_cast<double>(p);
    return pd * logSigmaSq(p, sse)
        + static_cast<double>(m) * std::log(pd);
}

double
gcv(std::size_t p, std::size_t m, double sse)
{
    assert(p > 0);
    if (m >= p)
        return kInf;
    const double pd = static_cast<double>(p);
    const double denom = pd - static_cast<double>(m);
    return pd * std::max(sse, 1e-12) / (denom * denom);
}

double
evaluateCriterion(Criterion criterion, std::size_t p, std::size_t m,
                  double sse)
{
    switch (criterion) {
      case Criterion::AICc:
        return aicc(p, m, sse);
      case Criterion::BIC:
        return bic(p, m, sse);
      case Criterion::GCV:
        return gcv(p, m, sse);
    }
    return kInf;
}

} // namespace ppm::rbf
