/**
 * @file
 * Batched structure-of-arrays evaluation of trained RBF networks.
 *
 * The naive inference path walks an array-of-structures — one heap
 * vector per basis for the center and another for the radii — and
 * calls std::exp once per (query, basis) pair. BatchPlan restructures
 * a trained network once into dimension-major arrays (centers and
 * inverse-squared radii laid out per dimension, 64-byte aligned,
 * padded to the SIMD lane width) and evaluates the Gaussian basis
 * (paper Eq 2) four bases at a time with AVX2+FMA kernels (two on
 * NEON), including a vectorized exp. Kernel selection is a runtime
 * CPUID dispatch with the scalar reference kept bit-compatible with
 * the legacy GaussianBasis path.
 *
 * Numerical contract
 * ------------------
 *  - The scalar kernel (SimdKind::Scalar) reproduces the legacy
 *    AoS loop bit-for-bit: same subtraction/multiply/add order, same
 *    std::exp. `PPM_SIMD=off` forces it process-wide, so any run can
 *    be reproduced bit-exactly.
 *  - The SIMD kernels evaluate each query independently of its batch
 *    position: predictions are bit-identical for a point whether it
 *    is evaluated alone, in any batch, at any batch size. This keeps
 *    the serve plane's shard-count bit-equality intact.
 *  - SIMD vs scalar: the exponent e_j = sum_k (x_k-c_k)^2/r_k^2
 *    accumulates through FMAs, so it can differ from the scalar value
 *    by a few ulps *of e_j*; exp() turns an argument perturbation
 *    delta into a relative response change of ~delta, so the error of
 *    h_j is proportional to e_j itself, not just to machine epsilon.
 *    Together with the vector exp's own rounding (Cody-Waite +
 *    degree-12 polynomial, kExpUlpBound ulps) each basis satisfies
 *      |h_simd - h_scalar| <= ((d + 2) e_j + kExpUlpBound) eps h_j
 *    with d the dimensionality (responses below DBL_MIN flush to
 *    exactly zero). The weighted sum reduces lane-wise, so a full
 *    prediction obeys
 *      |f_simd - f_scalar|
 *        <= eps sum_j |w_j| h_j ((d + 2) e_j + kExpUlpBound + m + 4)
 *           + DBL_MIN,
 *    with m the basis count and eps = DBL_EPSILON (the DBL_MIN floor
 *    admits the flush-to-zero of denormal responses).
 *    tests/test_rbf_batch.cc asserts this bound over 10k random
 *    networks and batches.
 *
 * Dispatch policy: the strongest kernel the build and the CPU both
 * support (AVX-512 > AVX2 on x86), overridable through PPM_SIMD
 * (off|scalar|avx2|avx512|neon|auto). The resolved kind is exported
 * as the `rbf.simd_dispatch` gauge (0 scalar, 1 AVX2, 2 NEON,
 * 3 AVX-512); batch evaluations run under `span.rbf.batch`. Building
 * with -DPPM_SIMD=OFF compiles the vector kernels out entirely
 * (PPM_SIMD_DISABLED).
 */

#ifndef PPM_RBF_RBF_BATCH_HH
#define PPM_RBF_RBF_BATCH_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dspace/design_space.hh"
#include "math/matrix.hh"
#include "rbf/basis.hh"

namespace ppm::rbf {

/** Which basis-evaluation kernel a plan runs. */
enum class SimdKind
{
    Scalar, //!< bit-compatible reference path (legacy AoS semantics)
    Avx2,   //!< AVX2 + FMA, 4 bases per lane step
    Neon,   //!< aarch64 NEON, 2 bases per lane step
    Avx512, //!< AVX-512F/DQ, 8 bases per lane step
};

/** "scalar" / "avx2" / "neon" / "avx512". */
std::string simdKindName(SimdKind kind);

/** Per-basis ulp bound of the vectorized exp versus std::exp. */
inline constexpr double kExpUlpBound = 4.0;

/**
 * Strongest kernel compiled into this binary that the running CPU
 * supports (CPUID probe on x86; NEON is architectural on aarch64).
 */
SimdKind detectSimd();

/**
 * Dispatch decision for an explicit PPM_SIMD value against a detected
 * capability. Pure (exposed for tests): nullptr/"auto"/"on" pick
 * @p detected; "off"/"scalar"/"0" force Scalar;
 * "avx512"/"avx2"/"neon" request that kernel and fall back to Scalar
 * when it is not available ("avx2" on an AVX-512 machine is
 * available — it requests the narrower kernel).
 */
SimdKind resolveSimd(const char *env_value, SimdKind detected);

/**
 * The process-wide kernel: resolveSimd(getenv("PPM_SIMD"),
 * detectSimd()), resolved once on first use and exported as the
 * `rbf.simd_dispatch` gauge.
 */
SimdKind activeSimd();

/**
 * A trained network (or candidate basis set) compiled for batched
 * evaluation: dimension-major centers and inverse-squared radii,
 * 64-byte aligned and zero-padded to a lane-width multiple, plus the
 * output weights. Immutable after construction; safe to share across
 * threads.
 */
class BatchPlan
{
  public:
    /**
     * Compile @p bases (all of one dimensionality, at least one) and
     * optional output @p weights (empty, or one per basis) into an
     * evaluation plan running the @p kind kernel.
     *
     * @throws std::invalid_argument on an empty basis set, mixed
     *         dimensionalities, or a weight-count mismatch.
     */
    BatchPlan(const std::vector<GaussianBasis> &bases,
              const std::vector<double> &weights,
              SimdKind kind = activeSimd());

    BatchPlan(const BatchPlan &) = delete;
    BatchPlan &operator=(const BatchPlan &) = delete;
    ~BatchPlan();

    std::size_t numBases() const { return bases_; }
    std::size_t dimensions() const { return dims_; }
    /** Basis count padded to the lane-width multiple. */
    std::size_t paddedBases() const { return padded_; }
    /** The kernel this plan runs. */
    SimdKind kind() const { return kind_; }
    /** True iff output weights were supplied at compile time. */
    bool hasWeights() const { return has_weights_; }

    /**
     * Network response sum_j w_j h_j(x) at one unit point
     * (bit-identical to the same point inside any batch).
     * Requires hasWeights(); x.size() must equal dimensions().
     */
    double predictOne(const dspace::UnitPoint &x) const;

    /** Batched predictOne over @p xs (span.rbf.batch). */
    std::vector<double> predict(
        const std::vector<dspace::UnitPoint> &xs) const;

    /**
     * Basis responses h_j(x) for all j into @p row (numBases()
     * doubles). Works with or without weights.
     */
    void basisRow(const dspace::UnitPoint &x, double *row) const;

    /**
     * Design matrix H with H(i, j) = h_j(xs[i]), evaluated batched
     * (span.rbf.batch).
     */
    math::Matrix designMatrix(
        const std::vector<dspace::UnitPoint> &xs) const;

  private:
    double predictOneImpl(const double *x) const;
    void basisRowImpl(const double *x, double *h) const;

    std::size_t bases_ = 0;
    std::size_t dims_ = 0;
    std::size_t padded_ = 0;
    bool has_weights_ = false;
    SimdKind kind_ = SimdKind::Scalar;

    /**
     * One 64-byte-aligned block: dims_ rows of padded_ centers,
     * dims_ rows of padded_ inverse-squared radii, then padded_
     * weights (zero-filled padding throughout, so padded lanes
     * evaluate to h = exp(0) = 1 with weight 0).
     */
    double *storage_ = nullptr;
    const double *centers_ = nullptr;    //!< centers_[k * padded_ + j]
    const double *inv_r_sq_ = nullptr;   //!< inv_r_sq_[k * padded_ + j]
    const double *weights_ = nullptr;    //!< weights_[j]
};

} // namespace ppm::rbf

#endif // PPM_RBF_RBF_BATCH_HH
