/**
 * @file
 * RBF network construction from a regression tree — a clean-room C++
 * implementation of the scheme in Orr et al. (2000) / Orr's MATLAB
 * rbf_rt_1, updated (as in the paper, Sec 2.6) to select the center
 * subset with AIC_c.
 *
 * Every tree node contributes one candidate Gaussian basis whose center
 * is the node's hyper-rectangle center and whose radii are the
 * rectangle's edge lengths scaled by alpha (paper Eq 8). Centers are
 * then admitted with tree-ordered selection: starting at the root,
 * each internal node's {parent, left child, right child} inclusion
 * flags are jointly re-chosen among the 8 possibilities to minimize the
 * model-selection criterion (paper Sec 2.5).
 */

#ifndef PPM_RBF_RBF_RT_HH
#define PPM_RBF_RBF_RT_HH

#include <cstddef>
#include <vector>

#include "dspace/design_space.hh"
#include "rbf/criteria.hh"
#include "rbf/network.hh"
#include "tree/regression_tree.hh"

namespace ppm::rbf {

/** How candidate centers are admitted into the network. */
enum class Selection
{
    /** Orr's tree-ordered 8-way local search (the paper's method). */
    TreeOrdered,
    /** Greedy forward selection over all candidates (ablation). */
    GreedyForward,
};

/** Name of a Selection value. */
std::string selectionName(Selection s);

/** Options for buildRbfFromTree(). */
struct RbfRtOptions
{
    /** Radius scale alpha in r = alpha * s (paper Eq 8). */
    double alpha = 7.0;
    /** Criterion minimized during subset selection. */
    Criterion criterion = Criterion::AICc;
    /** Selection strategy. */
    Selection selection = Selection::TreeOrdered;
    /**
     * Floor on any radius component. Deep tree nodes can be very thin
     * along a repeatedly-split dimension; a zero-width radius would
     * make the basis a spike that cannot generalize.
     */
    double min_radius = 1e-3;
    /**
     * Optional cap on the number of selected centers (0 = no cap
     * beyond what the criterion itself imposes).
     */
    std::size_t max_centers = 0;
};

/** Result of RBF construction. */
struct RbfRtResult
{
    /** The selected and weighted network. */
    RbfNetwork network;
    /** Criterion value of the selected subset. */
    double criterion_value = 0.0;
    /** Training sum of squared errors of the final fit. */
    double train_sse = 0.0;
    /** Number of candidate centers considered (tree nodes). */
    std::size_t num_candidates = 0;
};

/**
 * Build an RBF network from a fitted regression tree and its training
 * data.
 *
 * @param tree Regression tree fitted to (xs, ys).
 * @param xs Training inputs (unit space).
 * @param ys Training responses.
 * @param options Construction options.
 */
RbfRtResult buildRbfFromTree(const tree::RegressionTree &tree,
                             const std::vector<dspace::UnitPoint> &xs,
                             const std::vector<double> &ys,
                             const RbfRtOptions &options = {});

/**
 * Turn tree nodes into candidate bases (centers at hyper-rectangle
 * centers, radii alpha * size, floored at min_radius). Exposed for
 * testing and for the greedy ablation path.
 */
std::vector<GaussianBasis> candidateBases(
    const std::vector<tree::NodeInfo> &nodes, double alpha,
    double min_radius);

} // namespace ppm::rbf

#endif // PPM_RBF_RBF_RT_HH
