#include "rbf/trainer.hh"

#include <cassert>
#include <limits>
#include <memory>

#include "obs/trace_span.hh"
#include "tree/regression_tree.hh"
#include "util/thread_pool.hh"

namespace ppm::rbf {

namespace {

/** One (p_min, alpha) cell of the hyperparameter grid. */
struct GridCell
{
    int p_min = 0;
    double alpha = 0.0;
    std::size_t tree_index = 0;
};

} // namespace

TrainedRbf
trainRbfModel(const std::vector<dspace::UnitPoint> &xs,
              const std::vector<double> &ys,
              const TrainerOptions &options)
{
    assert(!xs.empty());
    assert(xs.size() == ys.size());
    assert(!options.p_min_grid.empty());
    assert(!options.alpha_grid.empty());

    OBS_SPAN("rbf.grid_search");

    // Phase 1: the tree depends only on p_min; build one per grid row
    // in parallel and share it across alphas.
    const auto trees = util::parallelMap(
        options.p_min_grid, [&](int p_min) {
            OBS_SPAN("rbf.build_tree");
            return std::make_shared<const tree::RegressionTree>(
                xs, ys, p_min);
        });

    // Phase 2: fit every (p_min, alpha) cell in parallel. Training is
    // deterministic (no RNG), so each cell's result is independent of
    // scheduling.
    std::vector<GridCell> cells;
    cells.reserve(options.p_min_grid.size() *
                  options.alpha_grid.size());
    for (std::size_t i = 0; i < options.p_min_grid.size(); ++i)
        for (double alpha : options.alpha_grid)
            cells.push_back({options.p_min_grid[i], alpha, i});

    auto fits = util::parallelMap(cells, [&](const GridCell &cell) {
        OBS_SPAN("rbf.grid_cell");
        RbfRtOptions rt;
        rt.alpha = cell.alpha;
        rt.criterion = options.criterion;
        rt.selection = options.selection;
        rt.max_centers = options.max_centers;
        return buildRbfFromTree(*trees[cell.tree_index], xs, ys, rt);
    });

    // Serial reduction in grid order (p_min-major, then alpha)
    // reproduces the serial loop's tie-break: the first strictly
    // better cell wins.
    TrainedRbf best;
    best.criterion_value = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < cells.size(); ++k) {
        if (fits[k].criterion_value < best.criterion_value) {
            best.network = std::move(fits[k].network);
            best.p_min = cells[k].p_min;
            best.alpha = cells[k].alpha;
            best.criterion_value = fits[k].criterion_value;
            best.train_sse = fits[k].train_sse;
            best.num_centers = best.network.numBases();
        }
    }

    // With a degenerate sample every candidate can score +inf; fall
    // back to the first grid point's root-only model so callers always
    // get a usable network.
    if (best.network.empty()) {
        const tree::RegressionTree tree(xs, ys,
                                        options.p_min_grid.front());
        RbfRtOptions rt;
        rt.alpha = options.alpha_grid.front();
        rt.criterion = options.criterion;
        rt.selection = options.selection;
        RbfRtResult result = buildRbfFromTree(tree, xs, ys, rt);
        best.network = std::move(result.network);
        best.p_min = options.p_min_grid.front();
        best.alpha = options.alpha_grid.front();
        best.criterion_value = result.criterion_value;
        best.train_sse = result.train_sse;
        best.num_centers = best.network.numBases();
    }
    return best;
}

} // namespace ppm::rbf
