#include "rbf/trainer.hh"

#include <cassert>
#include <limits>

#include "tree/regression_tree.hh"

namespace ppm::rbf {

TrainedRbf
trainRbfModel(const std::vector<dspace::UnitPoint> &xs,
              const std::vector<double> &ys,
              const TrainerOptions &options)
{
    assert(!xs.empty());
    assert(xs.size() == ys.size());
    assert(!options.p_min_grid.empty());
    assert(!options.alpha_grid.empty());

    TrainedRbf best;
    best.criterion_value = std::numeric_limits<double>::infinity();

    for (int p_min : options.p_min_grid) {
        // The tree depends only on p_min; share it across alphas.
        const tree::RegressionTree tree(xs, ys, p_min);
        for (double alpha : options.alpha_grid) {
            RbfRtOptions rt;
            rt.alpha = alpha;
            rt.criterion = options.criterion;
            rt.selection = options.selection;
            rt.max_centers = options.max_centers;

            RbfRtResult result = buildRbfFromTree(tree, xs, ys, rt);
            if (result.criterion_value < best.criterion_value) {
                best.network = std::move(result.network);
                best.p_min = p_min;
                best.alpha = alpha;
                best.criterion_value = result.criterion_value;
                best.train_sse = result.train_sse;
                best.num_centers = best.network.numBases();
            }
        }
    }

    // With a degenerate sample every candidate can score +inf; fall
    // back to the first grid point's root-only model so callers always
    // get a usable network.
    if (best.network.empty()) {
        const tree::RegressionTree tree(xs, ys,
                                        options.p_min_grid.front());
        RbfRtOptions rt;
        rt.alpha = options.alpha_grid.front();
        rt.criterion = options.criterion;
        rt.selection = options.selection;
        RbfRtResult result = buildRbfFromTree(tree, xs, ys, rt);
        best.network = std::move(result.network);
        best.p_min = options.p_min_grid.front();
        best.alpha = options.alpha_grid.front();
        best.criterion_value = result.criterion_value;
        best.train_sse = result.train_sse;
        best.num_centers = best.network.numBases();
    }
    return best;
}

} // namespace ppm::rbf
