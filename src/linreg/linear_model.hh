/**
 * @file
 * Linear regression baseline (paper Sec 4.2, after Joseph et al.
 * HPCA'06): CPI modeled as a linear combination of the transformed
 * parameters (main effects) and all two-parameter interactions. This is
 * the model class whose prediction accuracy Fig 7 compares against RBF
 * networks.
 */

#ifndef PPM_LINREG_LINEAR_MODEL_HH
#define PPM_LINREG_LINEAR_MODEL_HH

#include <string>
#include <vector>

#include "dspace/design_space.hh"
#include "math/matrix.hh"

namespace ppm::linreg {

/**
 * One model term: the intercept, a main effect x_i, or a two-factor
 * interaction x_i * x_j.
 */
struct Term
{
    /** Sentinel index for "no factor". */
    static constexpr int kNone = -1;

    int i = kNone; //!< first factor index, kNone for the intercept
    int j = kNone; //!< second factor index, kNone for main effects

    bool isIntercept() const { return i == kNone; }
    bool isMainEffect() const { return i != kNone && j == kNone; }
    bool isInteraction() const { return j != kNone; }

    /** Value of this term at unit point @p x. */
    double value(const dspace::UnitPoint &x) const;

    /** Render as "1", "x3" or "x1*x4". */
    std::string toString() const;

    bool operator==(const Term &other) const = default;
};

/**
 * Construct the full term list for an @p dims -dimensional space:
 * intercept, all main effects, and all two-factor interactions
 * ("main effects and all two-parameter interactions only", Sec 4.2).
 */
std::vector<Term> fullTwoFactorTerms(std::size_t dims);

/**
 * A fitted linear model over unit-space inputs.
 */
class LinearModel
{
  public:
    LinearModel() = default;

    /**
     * Fit by least squares.
     *
     * @param terms Model terms.
     * @param xs Training inputs (unit space), xs.size() >= terms.size().
     * @param ys Training responses.
     */
    LinearModel(std::vector<Term> terms,
                const std::vector<dspace::UnitPoint> &xs,
                const std::vector<double> &ys);

    /**
     * Rebuild a fitted model from its terms and coefficients (e.g.
     * when loading a serialized model). No fitting happens; trainSse()
     * is zero.
     *
     * @param terms Model terms.
     * @param coefficients One coefficient per term.
     */
    LinearModel(std::vector<Term> terms,
                std::vector<double> coefficients);

    /** Model response at @p x. */
    double predict(const dspace::UnitPoint &x) const;

    /** Batch prediction. */
    std::vector<double> predict(
        const std::vector<dspace::UnitPoint> &xs) const;

    const std::vector<Term> &terms() const { return terms_; }
    const std::vector<double> &coefficients() const { return coeffs_; }

    /** Training sum of squared errors. */
    double trainSse() const { return train_sse_; }

    /** Number of fitted coefficients. */
    std::size_t numTerms() const { return terms_.size(); }

    bool empty() const { return terms_.empty(); }

  private:
    std::vector<Term> terms_;
    std::vector<double> coeffs_;
    double train_sse_ = 0.0;
};

/** Design matrix with one column per term. */
math::Matrix termDesignMatrix(const std::vector<Term> &terms,
                              const std::vector<dspace::UnitPoint> &xs);

} // namespace ppm::linreg

#endif // PPM_LINREG_LINEAR_MODEL_HH
