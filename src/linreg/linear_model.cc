#include "linreg/linear_model.hh"

#include <cassert>
#include <sstream>

#include "math/linalg.hh"

namespace ppm::linreg {

double
Term::value(const dspace::UnitPoint &x) const
{
    if (isIntercept())
        return 1.0;
    assert(static_cast<std::size_t>(i) < x.size());
    double v = x[static_cast<std::size_t>(i)];
    if (isInteraction()) {
        assert(static_cast<std::size_t>(j) < x.size());
        v *= x[static_cast<std::size_t>(j)];
    }
    return v;
}

std::string
Term::toString() const
{
    if (isIntercept())
        return "1";
    std::ostringstream os;
    os << "x" << i;
    if (isInteraction())
        os << "*x" << j;
    return os.str();
}

std::vector<Term>
fullTwoFactorTerms(std::size_t dims)
{
    std::vector<Term> terms;
    terms.push_back(Term{});
    for (std::size_t a = 0; a < dims; ++a)
        terms.push_back(Term{static_cast<int>(a), Term::kNone});
    for (std::size_t a = 0; a < dims; ++a)
        for (std::size_t b = a + 1; b < dims; ++b)
            terms.push_back(
                Term{static_cast<int>(a), static_cast<int>(b)});
    return terms;
}

math::Matrix
termDesignMatrix(const std::vector<Term> &terms,
                 const std::vector<dspace::UnitPoint> &xs)
{
    math::Matrix a(xs.size(), terms.size());
    for (std::size_t r = 0; r < xs.size(); ++r)
        for (std::size_t c = 0; c < terms.size(); ++c)
            a(r, c) = terms[c].value(xs[r]);
    return a;
}

LinearModel::LinearModel(std::vector<Term> terms,
                         const std::vector<dspace::UnitPoint> &xs,
                         const std::vector<double> &ys)
    : terms_(std::move(terms))
{
    assert(!terms_.empty());
    assert(xs.size() == ys.size());
    assert(xs.size() >= terms_.size());
    const math::Matrix a = termDesignMatrix(terms_, xs);
    const auto fit = math::leastSquares(a, ys);
    coeffs_ = fit.coefficients;
    train_sse_ = fit.residual_sum_squares;
}

LinearModel::LinearModel(std::vector<Term> terms,
                         std::vector<double> coefficients)
    : terms_(std::move(terms)), coeffs_(std::move(coefficients))
{
    assert(!terms_.empty());
    assert(terms_.size() == coeffs_.size());
}

double
LinearModel::predict(const dspace::UnitPoint &x) const
{
    assert(!empty());
    double acc = 0.0;
    for (std::size_t t = 0; t < terms_.size(); ++t)
        acc += coeffs_[t] * terms_[t].value(x);
    return acc;
}

std::vector<double>
LinearModel::predict(const std::vector<dspace::UnitPoint> &xs) const
{
    std::vector<double> out;
    out.reserve(xs.size());
    for (const auto &x : xs)
        out.push_back(predict(x));
    return out;
}

} // namespace ppm::linreg
