#include "linreg/model_selection.hh"

#include <cassert>
#include <cmath>
#include <limits>

#include "math/linalg.hh"

namespace ppm::linreg {

namespace {

/** SSE of the least-squares fit of @p terms to the data. */
double
fitSse(const std::vector<Term> &terms,
       const std::vector<dspace::UnitPoint> &xs,
       const std::vector<double> &ys)
{
    const math::Matrix a = termDesignMatrix(terms, xs);
    return math::leastSquares(a, ys).residual_sum_squares;
}

} // namespace

double
linearAic(std::size_t p, std::size_t m, double sse)
{
    assert(p > 0);
    if (m >= p)
        return std::numeric_limits<double>::infinity();
    const double pd = static_cast<double>(p);
    const double sigma_sq = std::max(sse / pd, 1e-12);
    return pd * std::log(sigma_sq) + 2.0 * static_cast<double>(m);
}

SelectedLinearModel
fitSelectedLinearModel(const std::vector<dspace::UnitPoint> &xs,
                       const std::vector<double> &ys,
                       const LinearSelectionOptions &options)
{
    assert(!xs.empty());
    assert(xs.size() == ys.size());
    const std::size_t dims = xs.front().size();
    const std::size_t p = xs.size();

    std::vector<Term> terms = fullTwoFactorTerms(dims);
    // Keep the system overdetermined: drop trailing interaction terms
    // when the sample is too small for the full model.
    const std::size_t max_terms = std::max<std::size_t>(
        dims + 1,
        static_cast<std::size_t>(options.sample_fraction
                                 * static_cast<double>(p)));
    if (terms.size() > max_terms)
        terms.resize(max_terms);

    double best_aic = linearAic(p, terms.size(), fitSse(terms, xs, ys));
    std::size_t eliminated = 0;

    // Backward elimination: drop the term whose removal lowers AIC the
    // most; stop when every removal hurts.
    bool improved = true;
    while (improved && terms.size() > 1) {
        improved = false;
        std::size_t best_drop = terms.size();
        double round_best = best_aic;
        for (std::size_t t = 0; t < terms.size(); ++t) {
            if (terms[t].isIntercept())
                continue;
            std::vector<Term> reduced;
            reduced.reserve(terms.size() - 1);
            for (std::size_t u = 0; u < terms.size(); ++u)
                if (u != t)
                    reduced.push_back(terms[u]);
            const double aic =
                linearAic(p, reduced.size(), fitSse(reduced, xs, ys));
            if (aic < round_best) {
                round_best = aic;
                best_drop = t;
            }
        }
        if (best_drop < terms.size()) {
            terms.erase(terms.begin()
                        + static_cast<std::ptrdiff_t>(best_drop));
            best_aic = round_best;
            ++eliminated;
            improved = true;
        }
    }

    SelectedLinearModel out;
    out.model = LinearModel(terms, xs, ys);
    out.aic = best_aic;
    out.eliminated = eliminated;
    return out;
}

} // namespace ppm::linreg
