/**
 * @file
 * AIC-based variable selection for the linear baseline. The paper
 * (Sec 4.2) builds the full main-effects + two-factor-interaction model
 * and then "uses variable selection based on the AIC criteria to
 * eliminate insignificant factors from the model".
 */

#ifndef PPM_LINREG_MODEL_SELECTION_HH
#define PPM_LINREG_MODEL_SELECTION_HH

#include <vector>

#include "linreg/linear_model.hh"

namespace ppm::linreg {

/** Options for fitSelectedLinearModel(). */
struct LinearSelectionOptions
{
    /**
     * When the sample is smaller than the full term count, the full
     * model is unfittable; the selector first truncates interactions
     * so that terms <= sample_fraction * p, then eliminates backward.
     */
    double sample_fraction = 0.75;
};

/** Result of AIC-driven selection. */
struct SelectedLinearModel
{
    /** The final fitted model. */
    LinearModel model;
    /** AIC of the final model. */
    double aic = 0.0;
    /** Terms eliminated from the initial model. */
    std::size_t eliminated = 0;
};

/** Classical AIC = p log(sse / p) + 2 m (constant dropped). */
double linearAic(std::size_t p, std::size_t m, double sse);

/**
 * Fit the full two-factor linear model and prune it by backward
 * elimination: repeatedly drop the term (never the intercept) whose
 * removal lowers AIC the most, until no removal improves.
 *
 * @param xs Training inputs (unit space).
 * @param ys Training responses.
 */
SelectedLinearModel fitSelectedLinearModel(
    const std::vector<dspace::UnitPoint> &xs,
    const std::vector<double> &ys,
    const LinearSelectionOptions &options = {});

} // namespace ppm::linreg

#endif // PPM_LINREG_MODEL_SELECTION_HH
