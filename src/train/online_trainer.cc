#include "train/online_trainer.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/event_log.hh"
#include "obs/trace_span.hh"
#include "serve/wire_codec.hh"
#include "util/crc32.hh"

namespace ppm::train {

namespace {

/**
 * Relative-error floor of the prequential refit trigger: with a tiny
 * training set the k-fold CV error can be 0 (unknown), and without a
 * floor every fresh point would trigger a full refit.
 */
constexpr double kErrorFloor = 0.02;

/** State files are small; cap guards against garbage length words. */
constexpr std::uint32_t kMaxStatePayload = 1u << 28;

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw TrainerStateError(what + ": " + std::strerror(errno));
}

/** Invert a memo key (llround(v * 1e6) per coordinate) to a point. */
dspace::DesignPoint
keyToPoint(const core::ResultStore::Key &key)
{
    dspace::DesignPoint point(key.size());
    for (std::size_t d = 0; d < key.size(); ++d)
        point[d] = static_cast<double>(key[d]) / 1e6;
    return point;
}

/**
 * Deterministic k-fold CV mean relative error at the already chosen
 * (p_min, alpha): the exact procedure ppm_publish runs at batch
 * publish time (round-robin split, no RNG), so an online refit and an
 * offline publish of the same data store the same baseline
 * bit-for-bit.
 */
double
deterministicCvError(const std::vector<dspace::UnitPoint> &xs,
                     const std::vector<double> &ys,
                     const rbf::TrainerOptions &base, int p_min,
                     double alpha)
{
    const std::size_t folds = std::min<std::size_t>(5, xs.size() / 2);
    if (folds < 2)
        return 0.0;
    rbf::TrainerOptions fold_options = base;
    fold_options.p_min_grid = {p_min};
    fold_options.alpha_grid = {alpha};
    double err_sum = 0.0;
    std::size_t err_n = 0;
    for (std::size_t f = 0; f < folds; ++f) {
        std::vector<dspace::UnitPoint> train_xs, test_xs;
        std::vector<double> train_ys, test_ys;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if (i % folds == f) {
                test_xs.push_back(xs[i]);
                test_ys.push_back(ys[i]);
            } else {
                train_xs.push_back(xs[i]);
                train_ys.push_back(ys[i]);
            }
        }
        try {
            const rbf::TrainedRbf fold =
                rbf::trainRbfModel(train_xs, train_ys, fold_options);
            for (std::size_t i = 0; i < test_xs.size(); ++i) {
                const double pred = fold.network.predict(test_xs[i]);
                err_sum += std::abs(pred - test_ys[i]) /
                           std::max(std::abs(test_ys[i]), 1e-12);
                ++err_n;
            }
        } catch (const std::exception &) {
            // A fold too small to fit leaves the estimate to the
            // remaining folds (mirrors ppm_publish).
        }
    }
    return err_n > 0 ? err_sum / static_cast<double>(err_n) : 0.0;
}

} // namespace

rbf::TrainerOptions
onlineRefitOptions(std::size_t points)
{
    rbf::TrainerOptions options; // the paper's full grids
    if (points > 256) {
        // Candidate centers scale ~ 2 n / p_min; growing p_min with n
        // and capping selected centers bounds the refit cost so the
        // trainer keeps up with an unbounded archive. Model capacity
        // between refits comes from the incremental fold path.
        const int p = static_cast<int>(points / 256);
        options.p_min_grid = {p, 2 * p};
        options.alpha_grid = {4, 8, 12};
        options.max_centers = 256;
    }
    return options;
}

OnlineTrainer::OnlineTrainer(dspace::DesignSpace space,
                             OnlineTrainerOptions options)
    : space_(std::move(space)), options_(std::move(options))
{
    context_ = options_.benchmark + "|t" +
               std::to_string(options_.trace_length) + "|w" +
               std::to_string(options_.warmup) + "|" +
               core::metricName(options_.metric);
    loadState();
    folds_ = points_.size();
    if (points_.size() >= options_.min_train_points) {
        // Rebuild the model deterministically from the persisted
        // points: the incremental Cholesky state is derived, never
        // stored, so a restart cannot resurrect stale weights.
        fullRefit();
    }
}

void
OnlineTrainer::addArchive(const std::string &path)
{
    auto tailer =
        std::make_unique<serve::ArchiveTailer>(path, context_);
    const auto it = offsets_.find(path);
    if (it != offsets_.end())
        tailer->seek(it->second);
    else
        offsets_.emplace(path, 0);
    tailers_.push_back(std::move(tailer));
}

bool
OnlineTrainer::acceptRecord(const Key &key, double value,
                            std::vector<const Key *> &fresh)
{
    if (key.size() != space_.size())
        return false; // foreign record
    if (!space_.contains(keyToPoint(key)))
        return false; // out-of-space record
    const auto [it, inserted] = points_.emplace(key, value);
    if (!inserted)
        return false; // duplicate point (another shard got it first)
    fresh.push_back(&it->first);
    return true;
}

std::size_t
OnlineTrainer::step()
{
    OBS_SPAN("train.step");
    std::vector<const Key *> fresh;
    for (const auto &tailer : tailers_) {
        for (const auto &record : tailer->poll())
            acceptRecord(record.key, record.value, fresh);
        offsets_[tailer->path()] = tailer->offset();
    }
    // Canonical fold order: sorted by memo key, independent of shard
    // count and append interleaving within the epoch.
    std::sort(fresh.begin(), fresh.end(),
              [](const Key *a, const Key *b) { return *a < *b; });

    if (fit_) {
        OBS_SPAN("train.fold");
        for (const Key *key : fresh) {
            const dspace::UnitPoint x =
                space_.toUnit(keyToPoint(*key));
            const double y = points_.at(*key);
            // Prequential (test-then-train) scoring: the model is
            // judged on each point before learning from it.
            const double pred = fit_->predict(x);
            preq_err_sum_ +=
                std::abs(pred - y) / std::max(std::abs(y), 1e-12);
            ++preq_n_;
            fit_->fold(x, y);
            model_dirty_ = true;
        }
    }
    folds_ = points_.size();
    if (!fresh.empty()) {
        OBS_STATIC_COUNTER(fold_count, "train.folds");
        OBS_ADD(fold_count, fresh.size());
    }

    bool refit_needed = false;
    if (!fit_) {
        refit_needed = points_.size() >= options_.min_train_points;
    } else if (!fresh.empty()) {
        const auto growth_at = static_cast<std::size_t>(
            options_.refit_growth *
            static_cast<double>(points_at_refit_));
        if (points_.size() >= growth_at &&
            points_.size() > points_at_refit_)
            refit_needed = true;
        else if (preq_n_ >= options_.refit_error_min &&
                 prequentialError() >
                     options_.refit_error_ratio *
                         std::max(cv_error_, kErrorFloor))
            refit_needed = true;
    }
    if (refit_needed)
        fullRefit();

    if (!fresh.empty() || refit_needed)
        persistState();
    if (model_dirty_ && armed_ && !options_.out_path.empty())
        publish();
    return fresh.size();
}

double
OnlineTrainer::prequentialError() const
{
    return preq_n_ > 0
               ? preq_err_sum_ / static_cast<double>(preq_n_)
               : 0.0;
}

std::uint64_t
OnlineTrainer::tailRetries() const
{
    std::uint64_t total = 0;
    for (const auto &tailer : tailers_)
        total += tailer->retries();
    return total;
}

void
OnlineTrainer::fullRefit()
{
    OBS_SPAN("train.refit");
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
    xs.reserve(points_.size());
    ys.reserve(points_.size());
    for (const auto &[key, value] : points_) {
        xs.push_back(space_.toUnit(keyToPoint(key)));
        ys.push_back(value);
    }
    const rbf::TrainerOptions refit_options =
        options_.refit_options
            ? *options_.refit_options
            : onlineRefitOptions(points_.size());
    rbf::TrainedRbf trained;
    try {
        trained = rbf::trainRbfModel(xs, ys, refit_options);
    } catch (const std::exception &e) {
        // A degenerate sample (e.g. duplicates only) can defeat tree
        // construction. With a live model we keep folding on the old
        // centers; without one there is nothing to fall back to.
        obs::logEvent(obs::LogLevel::Warn, "train", "refit_failed",
                      {{"error", e.what()},
                       {"points", points_.size()}});
        if (!fit_)
            throw;
        points_at_refit_ = points_.size();
        preq_err_sum_ = 0.0;
        preq_n_ = 0;
        return;
    }
    p_min_ = trained.p_min;
    alpha_ = trained.alpha;
    linear_ = linreg::fitSelectedLinearModel(xs, ys).model;
    cv_error_ = deterministicCvError(xs, ys, refit_options,
                                     trained.p_min, trained.alpha);

    // Re-seed the streaming state over the new centers by refolding
    // the whole canonical point set: the published weights always
    // come from the same rank-1 path later folds extend, so every
    // snapshot is reproducible from the point set alone. The
    // selection pass's least-squares weights are discarded.
    fit_ = std::make_unique<rbf::IncrementalFit>(
        trained.network.bases(), options_.ridge);
    for (const auto &[key, value] : points_)
        fit_->fold(space_.toUnit(keyToPoint(key)), value);

    points_at_refit_ = points_.size();
    preq_err_sum_ = 0.0;
    preq_n_ = 0;
    ++refits_;
    model_dirty_ = true;
    OBS_STATIC_COUNTER(refit_count, "train.refits");
    OBS_ADD(refit_count, 1);
    obs::logEvent(obs::LogLevel::Info, "train", "refit",
                  {{"points", points_.size()},
                   {"centers", fit_->numBases()},
                   {"cv_error", cv_error_}});
}

void
OnlineTrainer::publish()
{
    OBS_SPAN("train.publish");
    std::uint64_t version = options_.model_version;
    if (version == 0) {
        version = model_version_;
        try {
            version = std::max(
                version,
                serve::loadSnapshot(options_.out_path).model_version);
        } catch (const serve::SnapshotError &) {
            // absent or unreadable: derive from trainer state alone
        }
        ++version;
    }

    serve::ModelSnapshot snap;
    snap.model_version = version;
    snap.benchmark = options_.benchmark;
    snap.metric = options_.metric;
    snap.trace_length = options_.trace_length;
    snap.warmup = options_.warmup;
    snap.train_points = static_cast<std::uint32_t>(points_.size());
    snap.p_min = static_cast<std::uint32_t>(p_min_);
    snap.alpha = alpha_;
    snap.cv_error = cv_error_;
    snap.space = space_;
    snap.network = fit_->network();
    snap.linear = linear_;
    serve::saveSnapshot(snap, options_.out_path);

    model_version_ = version;
    last_published_ = std::move(snap);
    ++publishes_;
    model_dirty_ = false;
    OBS_STATIC_COUNTER(publish_count, "train.publishes");
    OBS_ADD(publish_count, 1);
    obs::logEvent(obs::LogLevel::Info, "train", "publish",
                  {{"version", model_version_},
                   {"points", points_.size()},
                   {"cv_error", cv_error_}});
    // Record the published version in the checkpoint so a restart
    // derives a strictly newer one even if the snapshot file is
    // replaced out from under us.
    persistState();
}

void
OnlineTrainer::loadState()
{
    if (options_.state_path.empty())
        return;
    const int fd =
        ::open(options_.state_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (errno == ENOENT)
            return; // first run
        throwErrno("open " + options_.state_path);
    }
    std::vector<std::uint8_t> bytes;
    {
        struct stat st{};
        if (::fstat(fd, &st) < 0) {
            const int err = errno;
            ::close(fd);
            errno = err;
            throwErrno("fstat " + options_.state_path);
        }
        bytes.resize(static_cast<std::size_t>(st.st_size));
        std::size_t got = 0;
        while (got < bytes.size()) {
            const ssize_t n =
                ::pread(fd, bytes.data() + got, bytes.size() - got,
                        static_cast<off_t>(got));
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break;
            }
            got += static_cast<std::size_t>(n);
        }
        ::close(fd);
        bytes.resize(got);
    }

    try {
        serve::PayloadReader header(bytes.data(), bytes.size());
        if (header.u32() != kStateMagic)
            throw TrainerStateError("not a trainer state file: " +
                                    options_.state_path);
        if (header.u16() != kStateVersion)
            throw TrainerStateError(
                "unsupported trainer state version in " +
                options_.state_path);
        const std::uint32_t payload_len = header.u32();
        if (payload_len > kMaxStatePayload ||
            payload_len > header.remaining())
            throw TrainerStateError("trainer state truncated: " +
                                    options_.state_path);
        const std::uint8_t *payload =
            bytes.data() + (bytes.size() - header.remaining());
        serve::PayloadReader crc_tail(payload + payload_len,
                                      header.remaining() -
                                          payload_len);
        if (crc_tail.u32() != util::crc32(payload, payload_len))
            throw TrainerStateError("trainer state corrupt: " +
                                    options_.state_path);
        crc_tail.expectEnd();

        serve::PayloadReader in(payload, payload_len);
        if (in.str() != context_)
            throw TrainerStateError(
                "trainer state context mismatch in " +
                options_.state_path);
        model_version_ = in.u64();
        const std::uint64_t folds = in.u64();
        const std::uint32_t num_archives = in.u32();
        for (std::uint32_t i = 0; i < num_archives; ++i) {
            std::string path = in.str();
            const std::uint64_t offset = in.u64();
            offsets_[std::move(path)] = offset;
        }
        const std::uint64_t num_points = in.u64();
        for (std::uint64_t i = 0; i < num_points; ++i) {
            const std::uint32_t key_len = in.u32();
            Key key(key_len);
            for (auto &k : key)
                k = static_cast<std::int64_t>(in.u64());
            const double value = in.f64();
            points_.emplace(std::move(key), value);
        }
        in.expectEnd();
        if (folds != points_.size())
            throw TrainerStateError(
                "trainer state fold count mismatch in " +
                options_.state_path);
    } catch (const serve::ProtocolError &e) {
        throw TrainerStateError("trainer state corrupt (" +
                                std::string(e.what()) + "): " +
                                options_.state_path);
    }
}

void
OnlineTrainer::persistState() const
{
    if (options_.state_path.empty())
        return;
    serve::PayloadWriter out;
    out.str(context_);
    out.u64(model_version_);
    out.u64(points_.size());
    out.u32(static_cast<std::uint32_t>(offsets_.size()));
    for (const auto &[path, offset] : offsets_) {
        out.str(path);
        out.u64(offset);
    }
    out.u64(points_.size());
    for (const auto &[key, value] : points_) {
        out.u32(static_cast<std::uint32_t>(key.size()));
        for (std::int64_t k : key)
            out.u64(static_cast<std::uint64_t>(k));
        out.f64(value);
    }
    const std::vector<std::uint8_t> payload = out.take();

    serve::PayloadWriter image;
    image.u32(kStateMagic);
    image.u16(kStateVersion);
    image.u32(static_cast<std::uint32_t>(payload.size()));
    const std::vector<std::uint8_t> head = image.take();

    // Atomic checkpoint: temp file in the same directory, fsync,
    // rename — a SIGKILL at any instant leaves either the complete
    // old state or the complete new one (mirrors saveSnapshot).
    const std::string tmp = options_.state_path + ".tmp." +
                            std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        throwErrno("open " + tmp);
    const auto write_all = [&](const std::uint8_t *data,
                               std::size_t size) {
        std::size_t done = 0;
        while (done < size) {
            const ssize_t n = ::write(fd, data + done, size - done);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                const int err = errno;
                ::close(fd);
                ::unlink(tmp.c_str());
                errno = err;
                throwErrno("write " + tmp);
            }
            done += static_cast<std::size_t>(n);
        }
    };
    write_all(head.data(), head.size());
    write_all(payload.data(), payload.size());
    serve::PayloadWriter crc;
    crc.u32(util::crc32(payload.data(), payload.size()));
    const std::vector<std::uint8_t> tail = crc.take();
    write_all(tail.data(), tail.size());
    if (::fsync(fd) < 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        errno = err;
        throwErrno("fsync " + tmp);
    }
    ::close(fd);
    if (::rename(tmp.c_str(), options_.state_path.c_str()) < 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        errno = err;
        throwErrno("rename " + tmp);
    }
}

} // namespace ppm::train
