/**
 * @file
 * OnlineTrainer: the producer-side continuous-training subsystem.
 *
 * ppm_serve shards append every simulation result to per-shard
 * ResultArchive files; the serve plane's DriftMonitor can tell when
 * the published model has fallen behind that stream but cannot heal
 * it. OnlineTrainer closes the loop:
 *
 *     archive tail -> incremental refit -> snapshot republish
 *
 * Each step() polls an ArchiveTailer per shard archive from a
 * persisted byte offset, folds the *new unique* design points into
 * the RBF output weights by rank-1 Cholesky updates
 * (rbf::IncrementalFit — O(m^2) per point instead of a full
 * tree-build + subset-selection retrain), and republishes a format-2
 * `.ppmm` snapshot through the same atomic temp+fsync+rename path
 * ppm_publish uses, so a watching `ppm_serve --predict` hot-swaps to
 * it with zero downtime.
 *
 * Canonical fold ordering
 * -----------------------
 * Points accumulate in a std::map keyed by the archive's integer
 * memo key (lexicographic order); each epoch folds its fresh points
 * in sorted-key order, and full refits refold the entire map in that
 * same order. The fold sequence — and therefore every weight and
 * every published snapshot byte — depends only on the *set* of
 * points per epoch, not on shard count, append interleaving, thread
 * count, or poll timing within the epoch. Duplicate keys (the same
 * point simulated by several shards) fold exactly once; simulation
 * is deterministic so later duplicates carry the same value and are
 * dropped.
 *
 * Full-refit triggers (center re-selection)
 * -----------------------------------------
 * Incremental folds reuse the current centers; two triggers force a
 * full trainRbfModel() pass (new tree, new subset selection, fresh
 * deterministic k-fold CV error, new linear baseline):
 *
 *   - growth: the point count reached refit_growth x the count at
 *     the previous refit (first fit at min_train_points), or
 *   - error: the prequential (test-then-train: each fresh point is
 *     predicted *before* being folded) mean relative error since the
 *     last refit exceeds refit_error_ratio x that refit's CV error,
 *     over at least refit_error_min fresh points.
 *
 * Crash safety
 * ------------
 * After folding, step() atomically persists a state file (offsets +
 * accumulated point set + counters, CRC-checked; see kStateMagic)
 * and only then republishes. A restart loads the state, seeks each
 * tailer to its persisted offset, and rebuilds the model from the
 * persisted points with one deterministic full refit — so a SIGKILL
 * at any instant (mid-fold, mid-persist, mid-publish) never double
 * counts or skips a point: folds() always equals the number of
 * distinct points ever tailed. Snapshot and state writes are both
 * temp+fsync+rename, so neither file is ever observed torn.
 *
 * Metrics: train.folds / train.refits / train.publishes /
 * train.tail.records / train.tail.retries counters; spans
 * train.step, train.fold, train.refit, train.publish, train.tail.
 */

#ifndef PPM_TRAIN_ONLINE_TRAINER_HH
#define PPM_TRAIN_ONLINE_TRAINER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/oracle.hh"
#include "dspace/design_space.hh"
#include "linreg/model_selection.hh"
#include "rbf/incremental.hh"
#include "rbf/trainer.hh"
#include "serve/archive_tail.hh"
#include "serve/model_snapshot.hh"

namespace ppm::train {

/** Magic of the trainer state (checkpoint) file: "PPMT". */
inline constexpr std::uint32_t kStateMagic = 0x50504D54u;

/** State-file format version this build reads and writes. */
inline constexpr std::uint16_t kStateVersion = 1;

/** Corrupt or mismatched trainer state file. */
class TrainerStateError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

struct OnlineTrainerOptions
{
    /** Oracle identity; must match the tailed archives' context. */
    std::string benchmark = "twolf";
    std::uint64_t trace_length = 100000;
    std::uint64_t warmup = 0;
    core::Metric metric = core::Metric::Cpi;

    /**
     * Checkpoint file for offsets + points + counters; empty keeps
     * state in memory only (no crash resume).
     */
    std::string state_path;

    /**
     * Snapshot to republish after each epoch that changed the model;
     * empty trains without publishing.
     */
    std::string out_path;

    /**
     * Fixed model_version to publish (determinism harnesses); 0
     * derives a monotone version from the state file and any
     * existing out_path snapshot, +1 per publish.
     */
    std::uint64_t model_version = 0;

    /** Points required before the first full fit. */
    std::size_t min_train_points = 8;

    /** Growth-trigger factor (see file comment). */
    double refit_growth = 2.0;

    /** Error-trigger ratio over the last refit's CV error. */
    double refit_error_ratio = 2.0;

    /** Minimum prequential samples before the error trigger fires. */
    std::size_t refit_error_min = 16;

    /** Ridge damping of the streamed normal equations. */
    double ridge = rbf::kIncrementalRidge;

    /**
     * Hyperparameter grids for full refits. The default shrinks with
     * sample size (see onlineRefitOptions()); pin it here to
     * override.
     */
    std::optional<rbf::TrainerOptions> refit_options;
};

/**
 * Full-refit hyperparameter grids scaled to @p points: the paper's
 * full grid for small samples, then a coarser grid with p_min
 * growing ~ points/256 and capped centers, keeping the refit cost
 * bounded as the archive grows (the incremental fold path is what
 * tracks the stream between refits).
 */
rbf::TrainerOptions onlineRefitOptions(std::size_t points);

class OnlineTrainer
{
  public:
    /**
     * @param space   The design space archive points must lie in
     *                (foreign records are skipped, as in
     *                ppm_publish --archive).
     * @param options See OnlineTrainerOptions. Loads state_path if
     *                it exists (rebuilding the model deterministically
     *                from the persisted points) and validates its
     *                context against the oracle identity.
     * @throws TrainerStateError on a corrupt or mismatched state
     *         file.
     */
    OnlineTrainer(dspace::DesignSpace space,
                  OnlineTrainerOptions options);

    OnlineTrainer(const OnlineTrainer &) = delete;
    OnlineTrainer &operator=(const OnlineTrainer &) = delete;

    /**
     * Tail @p path (created lazily by its shard; may not exist yet),
     * resuming from the state file's persisted offset for that path.
     */
    void addArchive(const std::string &path);

    /**
     * One epoch: poll every archive, fold fresh unique points in
     * canonical order (with prequential scoring), run a full refit if
     * a trigger fired, persist state, republish the snapshot if the
     * model changed and publishing is armed. Returns the number of
     * fresh points folded this epoch.
     * @throws serve::ArchiveError / TrainerStateError /
     *         serve::SnapshotError on unrecoverable failures.
     */
    std::size_t step();

    /**
     * Publishing gate (the drift-event arming hook): while disarmed,
     * step() keeps tailing, folding, and persisting state but leaves
     * the snapshot untouched; arming makes the next step() republish
     * the accumulated model. Trainers start armed; `ppm_trainer
     * --arm-on-drift` starts disarmed and arms on a drift event.
     */
    void setArmed(bool armed) { armed_ = armed; }
    bool armed() const { return armed_; }

    /** Distinct design points ever folded (== exact unique tailed). */
    std::uint64_t folds() const { return folds_; }

    /** Full center re-selection passes run (including restarts). */
    std::uint64_t refits() const { return refits_; }

    /** Snapshots published. */
    std::uint64_t publishes() const { return publishes_; }

    /** Version of the last published snapshot (0 = none yet). */
    std::uint64_t modelVersion() const { return model_version_; }

    /** Deterministic k-fold CV error of the last full refit. */
    double cvError() const { return cv_error_; }

    /** Prequential mean relative error since the last refit. */
    double prequentialError() const;

    /** True once a model exists (first full fit has run). */
    bool hasModel() const { return fit_ != nullptr; }

    /** Partial-tail retries across all tailed archives. */
    std::uint64_t tailRetries() const;

    /** The snapshot most recently published (for --push). */
    const serve::ModelSnapshot &lastPublished() const
    {
        return last_published_;
    }

    const std::string &context() const { return context_; }

  private:
    using Key = core::ResultStore::Key;

    void loadState();
    void persistState() const;
    void fullRefit();
    void publish();
    bool acceptRecord(const Key &key, double value,
                      std::vector<const Key *> &fresh);

    dspace::DesignSpace space_;
    OnlineTrainerOptions options_;
    std::string context_;

    std::vector<std::unique_ptr<serve::ArchiveTailer>> tailers_;
    /** Persisted resume offsets, including not-yet-added archives. */
    std::map<std::string, std::uint64_t> offsets_;

    /** All accepted points, canonically ordered by memo key. */
    std::map<Key, double> points_;

    /** Streaming weight state over the current centers. */
    std::unique_ptr<rbf::IncrementalFit> fit_;
    /** Hyperparameters of the current centers (snapshot metadata). */
    int p_min_ = 0;
    double alpha_ = 0.0;
    /** Linear baseline fitted at the last full refit. */
    linreg::LinearModel linear_;

    std::uint64_t folds_ = 0;
    std::uint64_t refits_ = 0;
    std::uint64_t publishes_ = 0;
    std::uint64_t model_version_ = 0;
    double cv_error_ = 0.0;
    std::size_t points_at_refit_ = 0;
    double preq_err_sum_ = 0.0;
    std::uint64_t preq_n_ = 0;
    bool armed_ = true;
    bool model_dirty_ = false;
    serve::ModelSnapshot last_published_;
};

} // namespace ppm::train

#endif // PPM_TRAIN_ONLINE_TRAINER_HH
