#include "tree/flat_tree.hh"

#include <cassert>
#include <deque>
#include <stdexcept>
#include <string>

#include "tree/regression_tree.hh"

namespace ppm::tree {

FlatTree::FlatTree(const RegressionTree &tree)
    : dims_(tree.dimensions()), depth_(tree.depth())
{
    // Breadth-first flatten, so every level occupies a contiguous
    // index range and children always sit at higher indices than
    // their parents (the batch descent walks the arrays forward).
    const std::size_t n = tree.nodeCount();
    split_param_.reserve(n);
    split_value_.reserve(n);
    left_.reserve(n);
    right_.reserve(n);
    mean_.reserve(n);
    stddev_.reserve(n);

    using Node = RegressionTree::Node;
    std::deque<const Node *> queue{tree.root_.get()};
    std::uint32_t next_index = 1;
    while (!queue.empty()) {
        const Node *node = queue.front();
        queue.pop_front();

        const std::uint32_t self =
            static_cast<std::uint32_t>(split_param_.size());
        if (node->isLeaf()) {
            split_param_.push_back(kLeaf);
            split_value_.push_back(0.0);
            // Self-referential children: a leaf that is "advanced"
            // another level stays put, which lets the batch descent
            // run a fixed depth_ passes without per-query early-out.
            left_.push_back(self);
            right_.push_back(self);
        } else {
            split_param_.push_back(
                static_cast<std::int32_t>(node->split_param));
            split_value_.push_back(node->split_value);
            left_.push_back(next_index++);
            right_.push_back(next_index++);
            queue.push_back(node->left.get());
            queue.push_back(node->right.get());
        }
        mean_.push_back(node->mean);
        stddev_.push_back(node->stddev);
    }
    assert(split_param_.size() == n);
}

std::size_t
FlatTree::leafIndex(const double *x) const
{
    std::uint32_t i = 0;
    std::int32_t p;
    while ((p = split_param_[i]) != kLeaf)
        i = x[p] <= split_value_[i] ? left_[i] : right_[i];
    return i;
}

void
FlatTree::leafIndicesBatch(const std::vector<dspace::UnitPoint> &xs,
                           std::vector<std::uint32_t> &idx) const
{
    // Checked unconditionally (not just assert): a short point would
    // read xs[q][p] out of bounds in release builds. Typed to match
    // RbfNetwork::predict so the serve path reports it the same way.
    for (const auto &x : xs)
        if (x.size() != dims_)
            throw std::invalid_argument(
                "tree::FlatTree: batch point has " +
                std::to_string(x.size()) + " dimensions, tree has " +
                std::to_string(dims_));
    idx.assign(xs.size(), 0);
    // Level-synchronous descent: every pass advances all queries one
    // level. Leaves self-reference, so queries that land early just
    // idle; comparisons are identical to the pointer-chasing walk,
    // hence the same leaf is selected bit-for-bit.
    for (int level = 0; level < depth_; ++level) {
        for (std::size_t q = 0; q < xs.size(); ++q) {
            const std::uint32_t i = idx[q];
            const std::int32_t p = split_param_[i];
            if (p == kLeaf)
                continue;
            idx[q] = xs[q][p] <= split_value_[i] ? left_[i] : right_[i];
        }
    }
}

double
FlatTree::predict(const dspace::UnitPoint &x) const
{
    assert(x.size() == dims_);
    return mean_[leafIndex(x.data())];
}

double
FlatTree::leafStd(const dspace::UnitPoint &x) const
{
    assert(x.size() == dims_);
    return stddev_[leafIndex(x.data())];
}

std::vector<double>
FlatTree::predictBatch(const std::vector<dspace::UnitPoint> &xs) const
{
    std::vector<std::uint32_t> idx;
    leafIndicesBatch(xs, idx);
    std::vector<double> out(xs.size());
    for (std::size_t q = 0; q < xs.size(); ++q)
        out[q] = mean_[idx[q]];
    return out;
}

std::vector<double>
FlatTree::leafStdBatch(const std::vector<dspace::UnitPoint> &xs) const
{
    std::vector<std::uint32_t> idx;
    leafIndicesBatch(xs, idx);
    std::vector<double> out(xs.size());
    for (std::size_t q = 0; q < xs.size(); ++q)
        out[q] = stddev_[idx[q]];
    return out;
}

} // namespace ppm::tree
