/**
 * @file
 * Diagnostics over regression-tree splits: the "most significant
 * splits" ranking of paper Table 5 and the per-parameter split-value
 * distribution of paper Fig 5, both reported in raw parameter units.
 */

#ifndef PPM_TREE_SPLIT_REPORT_HH
#define PPM_TREE_SPLIT_REPORT_HH

#include <string>
#include <vector>

#include "dspace/design_space.hh"
#include "tree/regression_tree.hh"

namespace ppm::tree {

/** One split rendered in raw parameter units. */
struct RawSplit
{
    /** Parameter name from the design space. */
    std::string parameter;
    /** Parameter index. */
    std::size_t parameter_index = 0;
    /** Boundary value converted back to raw units. */
    double raw_value = 0.0;
    /** Depth of the split (root split = 1, as in Table 5). */
    int depth = 0;
    /** SSE reduction achieved (the significance measure). */
    double error_reduction = 0.0;
};

/**
 * The @p top_n most significant splits — ranked by error reduction,
 * ties broken toward shallower depth — in raw units (Table 5).
 */
std::vector<RawSplit> significantSplits(const RegressionTree &tree,
                                        const dspace::DesignSpace &space,
                                        std::size_t top_n);

/** All splits of the tree in raw units, in construction order. */
std::vector<RawSplit> allSplits(const RegressionTree &tree,
                                const dspace::DesignSpace &space);

/**
 * Count of splits per parameter (Fig 5's x-axis grouping).
 * Element i corresponds to space.param(i).
 */
std::vector<std::size_t> splitCountPerParameter(
    const RegressionTree &tree, const dspace::DesignSpace &space);

} // namespace ppm::tree

#endif // PPM_TREE_SPLIT_REPORT_HH
