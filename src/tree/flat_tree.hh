/**
 * @file
 * Flattened regression-tree traversal plan: the pointer tree
 * restructured into level-ordered structure-of-arrays node tables so
 * whole query batches descend one level per pass with contiguous,
 * branch-light accesses instead of per-query pointer chasing.
 *
 * Traversal is bit-identical to RegressionTree::predict / leafStd:
 * the same `x[param] <= value` comparisons select the same leaves;
 * only the memory layout changes (predictions are leaf statistics, so
 * there is no floating-point reassociation at all).
 */

#ifndef PPM_TREE_FLAT_TREE_HH
#define PPM_TREE_FLAT_TREE_HH

#include <cstdint>
#include <cstddef>
#include <vector>

#include "dspace/design_space.hh"

namespace ppm::tree {

class RegressionTree;

/**
 * Structure-of-arrays snapshot of a built RegressionTree, nodes in
 * breadth-first (level) order — node 0 is the root and every level's
 * nodes are contiguous, so a level-synchronous batch descent walks
 * the arrays front to back. Immutable after construction; safe to
 * share across threads.
 */
class FlatTree
{
  public:
    /** Compile @p tree into level-ordered SoA node arrays. */
    explicit FlatTree(const RegressionTree &tree);

    std::size_t nodeCount() const { return split_param_.size(); }
    std::size_t dimensions() const { return dims_; }
    /** Depth of the deepest node (root = 0). */
    int depth() const { return depth_; }

    /** Leaf mean at @p x; bit-identical to RegressionTree::predict. */
    double predict(const dspace::UnitPoint &x) const;

    /** Leaf response std-dev at @p x (RegressionTree::leafStd). */
    double leafStd(const dspace::UnitPoint &x) const;

    /**
     * Batched leaf means: all queries descend level by level, one
     * pass over the (contiguous) active node window per level.
     */
    std::vector<double> predictBatch(
        const std::vector<dspace::UnitPoint> &xs) const;

    /** Batched leaf std-devs. */
    std::vector<double> leafStdBatch(
        const std::vector<dspace::UnitPoint> &xs) const;

  private:
    /** Leaf marker in split_param_. */
    static constexpr std::int32_t kLeaf = -1;

    /** Index of the leaf whose region contains @p x. */
    std::size_t leafIndex(const double *x) const;

    void leafIndicesBatch(const std::vector<dspace::UnitPoint> &xs,
                          std::vector<std::uint32_t> &idx) const;

    std::size_t dims_ = 0;
    int depth_ = 0;
    /** Split parameter per node; kLeaf marks terminal nodes. */
    std::vector<std::int32_t> split_param_;
    /** Split boundary (unit space) per node; 0 for leaves. */
    std::vector<double> split_value_;
    /** Left/right child indices; self-referential for leaves. */
    std::vector<std::uint32_t> left_;
    std::vector<std::uint32_t> right_;
    /** Mean response per node (the prediction at leaves). */
    std::vector<double> mean_;
    /** Response std-dev per node (population convention). */
    std::vector<double> stddev_;
};

} // namespace ppm::tree

#endif // PPM_TREE_FLAT_TREE_HH
