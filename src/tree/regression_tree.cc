#include "tree/regression_tree.hh"

#include "tree/flat_tree.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>

namespace ppm::tree {

namespace {

/** Summed square error about the mean for the given responses. */
double
sumSquaredError(const std::vector<std::size_t> &indices,
                const std::vector<double> &ys)
{
    if (indices.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i : indices)
        sum += ys[i];
    const double mean = sum / static_cast<double>(indices.size());
    double sse = 0.0;
    for (std::size_t i : indices)
        sse += (ys[i] - mean) * (ys[i] - mean);
    return sse;
}

} // namespace

RegressionTree::RegressionTree(const std::vector<dspace::UnitPoint> &xs,
                               const std::vector<double> &ys, int p_min)
{
    assert(!xs.empty());
    assert(xs.size() == ys.size());
    assert(p_min >= 1);
    dims_ = xs.front().size();

    root_ = std::make_unique<Node>();
    root_->lower.assign(dims_, 0.0);
    root_->upper.assign(dims_, 1.0);
    root_->depth = 0;

    std::vector<std::size_t> all(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        all[i] = i;

    // Breadth-first construction so splits_ lists shallow splits first.
    struct WorkItem
    {
        Node *node;
        std::vector<std::size_t> indices;
    };
    std::deque<WorkItem> queue;
    queue.push_back({root_.get(), std::move(all)});

    while (!queue.empty()) {
        WorkItem item = std::move(queue.front());
        queue.pop_front();
        Node *node = item.node;
        const auto &indices = item.indices;

        ++node_count_;
        max_depth_ = std::max(max_depth_, node->depth);

        double sum = 0.0, sum_sq = 0.0;
        for (std::size_t i : indices) {
            sum += ys[i];
            sum_sq += ys[i] * ys[i];
        }
        node->count = indices.size();
        if (!indices.empty()) {
            const double n = static_cast<double>(indices.size());
            node->mean = sum / n;
            node->stddev = std::sqrt(
                std::max(0.0, sum_sq / n - node->mean * node->mean));
        }

        if (indices.size() <= static_cast<std::size_t>(p_min)) {
            ++leaf_count_;
            continue;
        }

        const BestSplit best = findBestSplit(indices, xs, ys);
        if (!best.found) {
            // All points coincide along every dimension; cannot split.
            ++leaf_count_;
            continue;
        }

        node->split_param = best.parameter;
        node->split_value = best.value;

        SplitRecord rec;
        rec.parameter = best.parameter;
        rec.value = best.value;
        rec.depth = node->depth + 1;
        rec.error_reduction = best.error_reduction;
        rec.count = indices.size();
        splits_.push_back(rec);

        auto make_child = [&](bool is_left) {
            auto child = std::make_unique<Node>();
            child->lower = node->lower;
            child->upper = node->upper;
            if (is_left)
                child->upper[best.parameter] = best.value;
            else
                child->lower[best.parameter] = best.value;
            child->depth = node->depth + 1;
            return child;
        };
        node->left = make_child(true);
        node->right = make_child(false);

        std::vector<std::size_t> left_idx, right_idx;
        left_idx.reserve(indices.size());
        right_idx.reserve(indices.size());
        for (std::size_t i : indices) {
            if (xs[i][best.parameter] <= best.value)
                left_idx.push_back(i);
            else
                right_idx.push_back(i);
        }
        assert(!left_idx.empty() && !right_idx.empty());

        queue.push_back({node->left.get(), std::move(left_idx)});
        queue.push_back({node->right.get(), std::move(right_idx)});
    }

    flat_ = std::make_shared<const FlatTree>(*this);
}

std::vector<double>
RegressionTree::predictBatch(
    const std::vector<dspace::UnitPoint> &xs) const
{
    return flat_->predictBatch(xs);
}

std::vector<double>
RegressionTree::leafStdBatch(
    const std::vector<dspace::UnitPoint> &xs) const
{
    return flat_->leafStdBatch(xs);
}

RegressionTree::BestSplit
RegressionTree::findBestSplit(const std::vector<std::size_t> &indices,
                              const std::vector<dspace::UnitPoint> &xs,
                              const std::vector<double> &ys) const
{
    BestSplit best;
    double best_sse = std::numeric_limits<double>::infinity();
    const double node_sse = sumSquaredError(indices, ys);

    std::vector<std::size_t> sorted(indices);
    for (std::size_t k = 0; k < dims_; ++k) {
        std::sort(sorted.begin(), sorted.end(),
                  [&](std::size_t a, std::size_t b) {
                      return xs[a][k] < xs[b][k];
                  });

        // Scan boundaries between consecutive distinct values, keeping
        // running sums so each candidate costs O(1).
        double left_sum = 0.0, left_sq = 0.0;
        double total_sum = 0.0, total_sq = 0.0;
        for (std::size_t i : sorted) {
            total_sum += ys[i];
            total_sq += ys[i] * ys[i];
        }
        const double n_total = static_cast<double>(sorted.size());

        for (std::size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
            const double y = ys[sorted[pos]];
            left_sum += y;
            left_sq += y * y;
            const double xv = xs[sorted[pos]][k];
            const double xnext = xs[sorted[pos + 1]][k];
            if (xnext <= xv)
                continue;

            const double n_left = static_cast<double>(pos + 1);
            const double n_right = n_total - n_left;
            const double right_sum = total_sum - left_sum;
            const double right_sq = total_sq - left_sq;
            const double sse =
                (left_sq - left_sum * left_sum / n_left) +
                (right_sq - right_sum * right_sum / n_right);
            if (sse < best_sse) {
                best_sse = sse;
                best.found = true;
                best.parameter = k;
                best.value = 0.5 * (xv + xnext);
                best.error_reduction = node_sse - sse;
            }
        }
    }
    return best;
}

double
RegressionTree::predict(const dspace::UnitPoint &x) const
{
    assert(x.size() == dims_);
    const Node *node = root_.get();
    while (!node->isLeaf()) {
        node = x[node->split_param] <= node->split_value
            ? node->left.get() : node->right.get();
    }
    return node->mean;
}

double
RegressionTree::leafStd(const dspace::UnitPoint &x) const
{
    assert(x.size() == dims_);
    const Node *node = root_.get();
    while (!node->isLeaf()) {
        node = x[node->split_param] <= node->split_value
            ? node->left.get() : node->right.get();
    }
    return node->stddev;
}

std::vector<NodeInfo>
RegressionTree::nodes() const
{
    std::vector<NodeInfo> out;
    out.reserve(node_count_);
    std::deque<const Node *> queue{root_.get()};
    std::size_t next_index = 1;
    while (!queue.empty()) {
        const Node *node = queue.front();
        queue.pop_front();

        NodeInfo info;
        info.center.resize(dims_);
        info.size.resize(dims_);
        for (std::size_t k = 0; k < dims_; ++k) {
            info.center[k] = 0.5 * (node->lower[k] + node->upper[k]);
            info.size[k] = node->upper[k] - node->lower[k];
        }
        info.depth = node->depth;
        info.count = node->count;
        info.mean_response = node->mean;
        info.std_response = node->stddev;
        info.is_leaf = node->isLeaf();

        if (!node->isLeaf()) {
            info.left_child = next_index++;
            info.right_child = next_index++;
            queue.push_back(node->left.get());
            queue.push_back(node->right.get());
        }
        out.push_back(std::move(info));
    }
    return out;
}

} // namespace ppm::tree
