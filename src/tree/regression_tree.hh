/**
 * @file
 * Regression trees over the unit design space (paper Sec 2.4).
 *
 * The tree recursively bifurcates the sample along one input parameter
 * at a boundary value chosen to minimize the residual square error
 * E(k, b) between the partition means and the data (Eq 3-7). Splitting
 * stops when every terminal node holds at most p_min points. Each node
 * corresponds to a hyper-rectangle of the design space; those
 * hyper-rectangles later seed RBF centers and radii (Sec 2.5).
 */

#ifndef PPM_TREE_REGRESSION_TREE_HH
#define PPM_TREE_REGRESSION_TREE_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "dspace/design_space.hh"

namespace ppm::tree {

class FlatTree;

/**
 * Description of one tree node's region of the design space, exported
 * for RBF center generation and diagnostics. Coordinates are in unit
 * space.
 */
struct NodeInfo
{
    /** Centre of the node's hyper-rectangle. */
    dspace::UnitPoint center;
    /** Edge lengths of the hyper-rectangle. */
    std::vector<double> size;
    /** Depth in the tree; the root has depth 0. */
    int depth = 0;
    /** Number of sample points inside the region. */
    std::size_t count = 0;
    /** Mean response of those points. */
    double mean_response = 0.0;
    /** Population standard deviation of those points' responses. */
    double std_response = 0.0;
    /** True iff the node was not split further. */
    bool is_leaf = false;
    /** Sentinel for absent children. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    /** Index of the left child in the breadth-first node list. */
    std::size_t left_child = npos;
    /** Index of the right child in the breadth-first node list. */
    std::size_t right_child = npos;
};

/**
 * Record of one executed split, for significance analysis
 * (paper Table 5 and Fig 5).
 */
struct SplitRecord
{
    /** Input parameter index the node was split on. */
    std::size_t parameter = 0;
    /** Boundary value in unit space. */
    double value = 0.0;
    /** Depth of the split node; the root split has depth 1 (paper). */
    int depth = 0;
    /**
     * Reduction in summed square error achieved by the split
     * (SSE_parent - SSE_left - SSE_right); the significance measure.
     */
    double error_reduction = 0.0;
    /** Number of points in the split node. */
    std::size_t count = 0;
};

/**
 * Binary regression tree fitted to (unit point -> response) data.
 */
class RegressionTree
{
  public:
    /**
     * Build a tree.
     *
     * @param xs Sample inputs in the unit hypercube; all of equal
     *           dimensionality, at least one point.
     * @param ys Responses, ys.size() == xs.size().
     * @param p_min Maximum number of points allowed in a terminal node
     *              (the paper's p_min method parameter, >= 1).
     */
    RegressionTree(const std::vector<dspace::UnitPoint> &xs,
                   const std::vector<double> &ys, int p_min);

    /** Input dimensionality. */
    std::size_t dimensions() const { return dims_; }

    /** Number of nodes (internal + leaves). */
    std::size_t nodeCount() const { return node_count_; }

    /** Number of terminal nodes. */
    std::size_t leafCount() const { return leaf_count_; }

    /** Depth of the deepest node (root = 0). */
    int depth() const { return max_depth_; }

    /**
     * Predict the response at @p x: the mean of the leaf region
     * containing it.
     */
    double predict(const dspace::UnitPoint &x) const;

    /**
     * Standard deviation of the training responses inside the leaf
     * region containing @p x (population convention; 0 for singleton
     * leaves). The adaptive sampler uses this as its
     * response-variability proxy.
     */
    double leafStd(const dspace::UnitPoint &x) const;

    /**
     * Batched predictions through the compiled level-order SoA plan
     * (see flat_tree.hh); element i is bit-identical to
     * predict(xs[i]).
     */
    std::vector<double> predictBatch(
        const std::vector<dspace::UnitPoint> &xs) const;

    /** Batched leafStd through the compiled plan. */
    std::vector<double> leafStdBatch(
        const std::vector<dspace::UnitPoint> &xs) const;

    /**
     * The flattened traversal plan compiled at construction time.
     * Immutable and shared by copies; safe for concurrent readers.
     */
    const FlatTree &flat() const { return *flat_; }

    /**
     * All node regions in breadth-first order (root first). This is the
     * candidate-center ordering used by tree-ordered RBF subset
     * selection.
     */
    std::vector<NodeInfo> nodes() const;

    /**
     * All executed splits. Ordered breadth-first, i.e. shallow,
     * high-variance splits first — the paper's "most significant"
     * splits are the earliest entries when re-sorted by
     * error_reduction.
     */
    const std::vector<SplitRecord> &splits() const { return splits_; }

  private:
    /** FlatTree reads the pointer tree directly when flattening. */
    friend class FlatTree;

    struct Node
    {
        dspace::UnitPoint lower;
        dspace::UnitPoint upper;
        double mean = 0.0;
        double stddev = 0.0;
        std::size_t count = 0;
        int depth = 0;
        // Split description; parameter == npos for leaves.
        std::size_t split_param = npos;
        double split_value = 0.0;
        std::unique_ptr<Node> left;
        std::unique_ptr<Node> right;

        static constexpr std::size_t npos = static_cast<std::size_t>(-1);

        bool isLeaf() const { return split_param == npos; }
    };

    /** Result of the exhaustive split search over (k, b). */
    struct BestSplit
    {
        bool found = false;
        std::size_t parameter = 0;
        double value = 0.0;
        double error_reduction = 0.0;
    };

    void build(Node *node, std::vector<std::size_t> &indices,
               const std::vector<dspace::UnitPoint> &xs,
               const std::vector<double> &ys, int p_min);

    BestSplit findBestSplit(const std::vector<std::size_t> &indices,
                            const std::vector<dspace::UnitPoint> &xs,
                            const std::vector<double> &ys) const;

    std::unique_ptr<Node> root_;
    std::size_t dims_ = 0;
    std::size_t node_count_ = 0;
    std::size_t leaf_count_ = 0;
    int max_depth_ = 0;
    std::vector<SplitRecord> splits_;
    /** Level-order SoA traversal plan, compiled once after build. */
    std::shared_ptr<const FlatTree> flat_;
};

} // namespace ppm::tree

#endif // PPM_TREE_REGRESSION_TREE_HH
