#include "tree/split_report.hh"

#include <algorithm>
#include <cassert>

namespace ppm::tree {

namespace {

RawSplit
toRaw(const SplitRecord &rec, const dspace::DesignSpace &space)
{
    RawSplit out;
    out.parameter = space.param(rec.parameter).name();
    out.parameter_index = rec.parameter;
    // Boundary values live between levels, so no quantization here.
    out.raw_value = space.param(rec.parameter).fromUnit(rec.value);
    out.depth = rec.depth;
    out.error_reduction = rec.error_reduction;
    return out;
}

} // namespace

std::vector<RawSplit>
significantSplits(const RegressionTree &tree,
                  const dspace::DesignSpace &space, std::size_t top_n)
{
    std::vector<SplitRecord> recs = tree.splits();
    std::sort(recs.begin(), recs.end(),
              [](const SplitRecord &a, const SplitRecord &b) {
                  if (a.error_reduction != b.error_reduction)
                      return a.error_reduction > b.error_reduction;
                  return a.depth < b.depth;
              });
    if (recs.size() > top_n)
        recs.resize(top_n);

    std::vector<RawSplit> out;
    out.reserve(recs.size());
    for (const auto &rec : recs)
        out.push_back(toRaw(rec, space));
    return out;
}

std::vector<RawSplit>
allSplits(const RegressionTree &tree, const dspace::DesignSpace &space)
{
    std::vector<RawSplit> out;
    out.reserve(tree.splits().size());
    for (const auto &rec : tree.splits())
        out.push_back(toRaw(rec, space));
    return out;
}

std::vector<std::size_t>
splitCountPerParameter(const RegressionTree &tree,
                       const dspace::DesignSpace &space)
{
    std::vector<std::size_t> counts(space.size(), 0);
    for (const auto &rec : tree.splits()) {
        assert(rec.parameter < counts.size());
        ++counts[rec.parameter];
    }
    return counts;
}

} // namespace ppm::tree
