#include "serve/oracle_factory.hh"

#include <cstdlib>
#include <filesystem>

namespace ppm::serve {

namespace {

/** The archive context string; must match SimServer's context key. */
std::string
contextFor(const std::string &benchmark, std::uint64_t trace_length,
           std::uint64_t warmup, core::Metric metric)
{
    return benchmark + "|t" + std::to_string(trace_length) + "|w" +
           std::to_string(warmup) + "|" + core::metricName(metric);
}

} // namespace

FactoryOptions
factoryOptionsFromEnv()
{
    FactoryOptions options;
    options.sockets = socketsFromEnv();
    if (const char *dir = std::getenv(kArchiveEnvVar))
        options.archive_dir = dir;
    return options;
}

std::shared_ptr<ResultArchive>
archiveFor(const std::string &dir, const std::string &benchmark,
           std::uint64_t trace_length, std::uint64_t warmup,
           core::Metric metric)
{
    std::filesystem::create_directories(dir);
    const std::string file =
        dir + "/" +
        ResultArchive::fileNameFor(benchmark, trace_length, warmup,
                                   metric);
    return std::make_shared<ResultArchive>(
        file, contextFor(benchmark, trace_length, warmup, metric));
}

std::unique_ptr<core::CpiOracle>
makeOracle(const dspace::DesignSpace &space,
           const std::string &benchmark, const trace::Trace &trace,
           const sim::SimOptions &sim_options, core::Metric metric,
           const FactoryOptions &options)
{
    const auto attachArchive = [&](core::SimulatorOracle &oracle) {
        if (options.archive_dir.empty())
            return;
        oracle.attachStore(archiveFor(
            options.archive_dir, benchmark, trace.size(),
            sim_options.warmup_instructions, metric));
    };

    if (options.sockets.empty()) {
        auto oracle = std::make_unique<core::SimulatorOracle>(
            space, trace, sim_options, metric);
        attachArchive(*oracle);
        return oracle;
    }
    RemoteOptions remote = options.remote;
    remote.sockets = options.sockets;
    auto oracle = std::make_unique<RemoteOracle>(
        space, benchmark, trace, sim_options, metric,
        std::move(remote));
    attachArchive(oracle->fallbackOracle());
    return oracle;
}

std::unique_ptr<core::CpiOracle>
makeOracle(const dspace::DesignSpace &space,
           const std::string &benchmark, const trace::Trace &trace,
           const sim::SimOptions &sim_options, core::Metric metric)
{
    return makeOracle(space, benchmark, trace, sim_options, metric,
                      factoryOptionsFromEnv());
}

} // namespace ppm::serve
