#include "serve/result_archive.hh"

#include <bit>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/event_log.hh"
#include "obs/trace_span.hh"
#include "util/crc32.hh"

namespace ppm::serve {

namespace {

constexpr std::uint32_t kArchiveMagic = 0x50504D41u; // "PPMA"
constexpr std::uint16_t kArchiveVersion = 1;
constexpr std::uint32_t kMaxRecordPayload = 1u << 20;
constexpr std::uint32_t kMaxContext = 4096;

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw ArchiveError(what + ": " + std::strerror(errno));
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>(v >> shift));
}

/** Little-endian reads over a byte range; false = out of bytes. */
struct ByteCursor
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    bool
    u32(std::uint32_t &out)
    {
        if (size - pos < 4)
            return false;
        out = 0;
        for (int i = 3; i >= 0; --i)
            out = (out << 8) | data[pos + static_cast<std::size_t>(i)];
        pos += 4;
        return true;
    }

    bool
    u16(std::uint16_t &out)
    {
        if (size - pos < 2)
            return false;
        out = static_cast<std::uint16_t>(data[pos] |
                                         (data[pos + 1] << 8));
        pos += 2;
        return true;
    }

    bool
    u64(std::uint64_t &out)
    {
        if (size - pos < 8)
            return false;
        out = 0;
        for (int i = 7; i >= 0; --i)
            out = (out << 8) | data[pos + static_cast<std::size_t>(i)];
        pos += 8;
        return true;
    }

    bool
    bytes(const std::uint8_t *&out, std::size_t n)
    {
        if (size - pos < n)
            return false;
        out = data + pos;
        pos += n;
        return true;
    }
};

std::vector<std::uint8_t>
encodeHeader(const std::string &context)
{
    std::vector<std::uint8_t> out;
    putU32(out, kArchiveMagic);
    putU16(out, kArchiveVersion);
    putU32(out, static_cast<std::uint32_t>(context.size()));
    out.insert(out.end(), context.begin(), context.end());
    putU32(out, util::crc32(context.data(), context.size()));
    return out;
}

std::vector<std::uint8_t>
encodeRecord(const core::ResultStore::Key &key, double value)
{
    std::vector<std::uint8_t> payload;
    putU32(payload, static_cast<std::uint32_t>(key.size()));
    for (std::int64_t k : key)
        putU64(payload, static_cast<std::uint64_t>(k));
    putU64(payload, std::bit_cast<std::uint64_t>(value));

    std::vector<std::uint8_t> record;
    putU32(record, static_cast<std::uint32_t>(payload.size()));
    record.insert(record.end(), payload.begin(), payload.end());
    putU32(record, util::crc32(payload.data(), payload.size()));
    return record;
}

/** RAII flock; the archive fd is locked for load/repair and appends. */
class FileLock
{
  public:
    explicit FileLock(int fd) : fd_(fd)
    {
        while (::flock(fd_, LOCK_EX) < 0) {
            if (errno != EINTR)
                throwErrno("flock");
        }
    }
    ~FileLock() { ::flock(fd_, LOCK_UN); }
    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    int fd_;
};

void
writeAllAt(int fd, const std::vector<std::uint8_t> &bytes, off_t off)
{
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n =
            ::pwrite(fd, bytes.data() + done, bytes.size() - done,
                     off + static_cast<off_t>(done));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("pwrite");
        }
        done += static_cast<std::size_t>(n);
    }
}

} // namespace

ResultArchive::ResultArchive(std::string path, std::string context)
    : path_(std::move(path)), context_(std::move(context))
{
    if (context_.size() > kMaxContext)
        throw ArchiveError("archive context string too long");
    openAndRecover();
}

ResultArchive::~ResultArchive()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ResultArchive::openAndRecover()
{
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0)
        throwErrno("open " + path_);
    FileLock lock(fd_);

    // Read the whole file; archives are modest (tens of bytes per
    // simulation result) and this keeps recovery logic simple.
    struct stat st{};
    if (::fstat(fd_, &st) < 0)
        throwErrno("fstat " + path_);
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(st.st_size));
    std::size_t got = 0;
    while (got < bytes.size()) {
        const ssize_t n = ::pread(fd_, bytes.data() + got,
                                  bytes.size() - got,
                                  static_cast<off_t>(got));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("pread " + path_);
        }
        if (n == 0)
            break;
        got += static_cast<std::size_t>(n);
    }
    bytes.resize(got);

    if (bytes.empty()) {
        // Fresh archive: write the context header.
        writeAllAt(fd_, encodeHeader(context_), 0);
        return;
    }

    // Validate the header. A valid header with a different context is
    // a caller error (mixing result sets); an unreadable header on a
    // non-empty file means the file is not an archive.
    ByteCursor cur{bytes.data(), bytes.size()};
    std::uint32_t magic = 0, ctx_len = 0, ctx_crc = 0;
    std::uint16_t version = 0;
    const std::uint8_t *ctx_bytes = nullptr;
    if (!cur.u32(magic) || magic != kArchiveMagic ||
        !cur.u16(version) || version != kArchiveVersion ||
        !cur.u32(ctx_len) || ctx_len > kMaxContext ||
        !cur.bytes(ctx_bytes, ctx_len) || !cur.u32(ctx_crc) ||
        util::crc32(ctx_bytes, ctx_len) != ctx_crc)
        throw ArchiveError("not a result archive (bad header): " +
                           path_);
    if (std::string(reinterpret_cast<const char *>(ctx_bytes),
                    ctx_len) != context_)
        throw ArchiveError("archive context mismatch in " + path_);

    // Scan records; the first inconsistency ends the recovered log.
    std::size_t good_end = cur.pos;
    while (cur.pos < cur.size) {
        std::uint32_t len = 0, crc = 0;
        const std::uint8_t *payload = nullptr;
        if (!cur.u32(len) || len > kMaxRecordPayload ||
            !cur.bytes(payload, len) || !cur.u32(crc) ||
            util::crc32(payload, len) != crc) {
            ++skipped_;
            break;
        }
        ByteCursor rec{payload, len};
        std::uint32_t key_len = 0;
        if (!rec.u32(key_len) ||
            rec.size - rec.pos != std::size_t{key_len} * 8 + 8) {
            ++skipped_;
            break;
        }
        Key key(key_len);
        for (auto &k : key) {
            std::uint64_t raw = 0;
            rec.u64(raw);
            k = static_cast<std::int64_t>(raw);
        }
        std::uint64_t raw_value = 0;
        rec.u64(raw_value);
        entries_.emplace_back(std::move(key),
                              std::bit_cast<double>(raw_value));
        good_end = cur.pos;
    }

    // Truncate away the corrupt tail so appends continue a clean log.
    if (good_end < bytes.size() &&
        ::ftruncate(fd_, static_cast<off_t>(good_end)) < 0)
        throwErrno("ftruncate " + path_);

    OBS_STATIC_COUNTER(preloads, "archive.preloaded");
    OBS_ADD(preloads, entries_.size());
    if (skipped_ > 0) {
        OBS_STATIC_COUNTER(corrupt, "archive.corrupt_records");
        OBS_ADD(corrupt, skipped_);
        obs::logEvent(obs::LogLevel::Warn, "archive", "corrupt_tail",
                      {{"path", path_},
                       {"recovered", entries_.size()},
                       {"skipped", skipped_}});
    }
}

void
ResultArchive::load(
    const std::function<void(const Key &, double)> &sink)
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (const auto &[key, value] : entries_)
        sink(key, value);
}

void
ResultArchive::append(const Key &key, double value)
{
    OBS_SPAN("archive.append");
    OBS_STATIC_COUNTER(appends, "archive.appends");
    OBS_ADD(appends, 1);
    const std::vector<std::uint8_t> record = encodeRecord(key, value);
    std::lock_guard<std::mutex> guard(mutex_);
    FileLock lock(fd_);
    // Append at the current end under the lock: other processes may
    // have grown the file since we loaded it.
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0)
        throwErrno("lseek " + path_);
    writeAllAt(fd_, record, end);
}

std::string
ResultArchive::fileNameFor(const std::string &benchmark,
                           std::uint64_t trace_length,
                           std::uint64_t warmup, core::Metric metric)
{
    std::string name = benchmark;
    for (char &c : name) {
        if (c == '/' || c == '\\' || c == '|')
            c = '_';
    }
    return name + "_t" + std::to_string(trace_length) + "_w" +
           std::to_string(warmup) + "_" + core::metricName(metric) +
           ".ppma";
}

} // namespace ppm::serve
