/**
 * @file
 * PredictOracle: a CpiOracle whose answers come from a trained model
 * snapshot instead of the cycle-level simulator — the client half of
 * the prediction-serving plane. Batches are chunked and sharded
 * across PREDICT servers exactly like RemoteOracle shards simulation
 * batches (same ShardedClient: endpoint grammar, retry/backoff
 * schedule, dead latch, fault-injection coverage, remote.* counters),
 * and every chunk that cannot be served remotely is evaluated locally
 * against the oracle's own copy of the snapshot.
 *
 * Bit-equivalence contract: a remote server evaluates the same
 * snapshot bytes through the same predictWithSnapshot() code path as
 * the local fallback, and IEEE-754 evaluation is deterministic in
 * (snapshot, point) — so results are bit-identical for every shard
 * count, socket list, and failure pattern, provided the servers host
 * the same snapshot version this oracle holds.
 */

#ifndef PPM_SERVE_PREDICT_ORACLE_HH
#define PPM_SERVE_PREDICT_ORACLE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/oracle.hh"
#include "dspace/design_space.hh"
#include "serve/model_snapshot.hh"
#include "serve/protocol.hh"
#include "serve/sharded_client.hh"

namespace ppm::serve {

class PredictOracle final : public core::CpiOracle
{
  public:
    /**
     * @param snapshot The model to predict with; also the local
     *        fallback when no server (or no healthy server) is
     *        configured.
     * @param options Sharding/retry options; options.sockets empty =
     *        always predict locally.
     * @param model Which trained model family the oracle queries —
     *        the RBF network or the linear baseline.
     */
    explicit PredictOracle(ModelSnapshot snapshot,
                           RemoteOptions options = {},
                           ModelKind model = ModelKind::Rbf);

    double cpi(const dspace::DesignPoint &point) override;
    std::vector<double> evaluateAll(
        const std::vector<dspace::DesignPoint> &points) override;

    /** Total points predicted (remote and local alike). */
    std::uint64_t evaluations() const override;

    /** Points answered by PREDICT servers so far. */
    std::uint64_t
    remotePoints() const
    {
        return remote_points_.load(std::memory_order_relaxed);
    }

    /** Points predicted by the local snapshot fallback. */
    std::uint64_t
    fallbackPoints() const
    {
        return fallback_points_.load(std::memory_order_relaxed);
    }

    /**
     * Greatest model version any server echoed so far (0 = none
     * seen). A value differing from snapshot().model_version means a
     * server hot-swapped past the local copy.
     */
    std::uint64_t
    serverVersion() const
    {
        return server_version_.load(std::memory_order_relaxed);
    }

    const ModelSnapshot &snapshot() const { return snapshot_; }
    const RemoteOptions &options() const { return client_.options(); }

  private:
    std::optional<PredictResponse> requestChunk(
        std::size_t socket_index,
        const std::vector<dspace::DesignPoint> &points);

    ModelSnapshot snapshot_;
    ModelKind model_;
    ShardedClient client_;

    std::atomic<std::uint64_t> remote_points_{0};
    std::atomic<std::uint64_t> fallback_points_{0};
    std::atomic<std::uint64_t> server_version_{0};
};

} // namespace ppm::serve

#endif // PPM_SERVE_PREDICT_ORACLE_HH
