#include "serve/archive_tail.hh"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/trace_span.hh"
#include "util/crc32.hh"

namespace ppm::serve {

namespace {

// Mirrors the writer-side format constants in result_archive.cc.
constexpr std::uint32_t kArchiveMagic = 0x50504D41u; // "PPMA"
constexpr std::uint16_t kArchiveVersion = 1;
constexpr std::uint32_t kMaxRecordPayload = 1u << 20;
constexpr std::uint32_t kMaxContext = 4096;

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw ArchiveError(what + ": " + std::strerror(errno));
}

/** Little-endian reads over a byte range; false = out of bytes. */
struct ByteCursor
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    bool
    u32(std::uint32_t &out)
    {
        if (size - pos < 4)
            return false;
        out = 0;
        for (int i = 3; i >= 0; --i)
            out = (out << 8) | data[pos + static_cast<std::size_t>(i)];
        pos += 4;
        return true;
    }

    bool
    u16(std::uint16_t &out)
    {
        if (size - pos < 2)
            return false;
        out = static_cast<std::uint16_t>(data[pos] |
                                         (data[pos + 1] << 8));
        pos += 2;
        return true;
    }

    bool
    u64(std::uint64_t &out)
    {
        if (size - pos < 8)
            return false;
        out = 0;
        for (int i = 7; i >= 0; --i)
            out = (out << 8) | data[pos + static_cast<std::size_t>(i)];
        pos += 8;
        return true;
    }

    bool
    bytes(const std::uint8_t *&out, std::size_t n)
    {
        if (size - pos < n)
            return false;
        out = data + pos;
        pos += n;
        return true;
    }
};

/** pread [off, off + want) fully; short only at EOF. */
std::vector<std::uint8_t>
readRange(int fd, const std::string &path, std::uint64_t off,
          std::size_t want)
{
    std::vector<std::uint8_t> bytes(want);
    std::size_t got = 0;
    while (got < bytes.size()) {
        const ssize_t n = ::pread(
            fd, bytes.data() + got, bytes.size() - got,
            static_cast<off_t>(off + got));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("pread " + path);
        }
        if (n == 0)
            break;
        got += static_cast<std::size_t>(n);
    }
    bytes.resize(got);
    return bytes;
}

} // namespace

ArchiveTailer::ArchiveTailer(std::string path, std::string context)
    : path_(std::move(path)), context_(std::move(context))
{
    if (context_.size() > kMaxContext)
        throw ArchiveError("archive context string too long");
}

ArchiveTailer::~ArchiveTailer()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
ArchiveTailer::ensureOpen()
{
    if (fd_ >= 0)
        return true;
    fd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) {
        if (errno == ENOENT)
            return false; // shard has not created its archive yet
        throwErrno("open " + path_);
    }
    return true;
}

void
ArchiveTailer::seek(std::uint64_t off)
{
    offset_ = off;
    if (header_ok_ && offset_ < header_end_)
        offset_ = header_end_;
}

std::vector<ArchiveTailer::Record>
ArchiveTailer::poll()
{
    OBS_SPAN("train.tail");
    std::vector<Record> out;
    if (!ensureOpen())
        return out;

    struct stat st{};
    if (::fstat(fd_, &st) < 0)
        throwErrno("fstat " + path_);
    const auto size = static_cast<std::uint64_t>(st.st_size);

    if (!header_ok_) {
        // The header is bounded; read at most its maximal encoding.
        const std::size_t max_header =
            4 + 2 + 4 + std::size_t{kMaxContext} + 4;
        const std::vector<std::uint8_t> bytes = readRange(
            fd_, path_, 0, std::min<std::uint64_t>(size, max_header));
        ByteCursor cur{bytes.data(), bytes.size()};
        std::uint32_t magic = 0, ctx_len = 0, ctx_crc = 0;
        std::uint16_t version = 0;
        const std::uint8_t *ctx_bytes = nullptr;
        if (!cur.u32(magic)) {
            ++retries_; // file created, header bytes still in flight
            return out;
        }
        if (magic != kArchiveMagic)
            throw ArchiveError("not a result archive (bad magic): " +
                               path_);
        if (!cur.u16(version) || !cur.u32(ctx_len)) {
            ++retries_;
            return out;
        }
        if (version != kArchiveVersion)
            throw ArchiveError("unsupported archive version in " +
                               path_);
        if (ctx_len > kMaxContext)
            throw ArchiveError("not a result archive (bad header): " +
                               path_);
        if (!cur.bytes(ctx_bytes, ctx_len) || !cur.u32(ctx_crc)) {
            ++retries_;
            return out;
        }
        if (util::crc32(ctx_bytes, ctx_len) != ctx_crc) {
            ++retries_; // torn read of an in-flight header
            return out;
        }
        if (std::string(reinterpret_cast<const char *>(ctx_bytes),
                        ctx_len) != context_)
            throw ArchiveError("archive context mismatch in " +
                               path_);
        header_ok_ = true;
        header_end_ = cur.pos;
        if (offset_ < header_end_)
            offset_ = header_end_;
    }

    if (size <= offset_)
        return out; // nothing new (or the owner truncated a bad tail)

    const std::vector<std::uint8_t> bytes = readRange(
        fd_, path_, offset_, static_cast<std::size_t>(size - offset_));
    ByteCursor cur{bytes.data(), bytes.size()};
    bool partial = false;
    while (cur.pos < cur.size) {
        const std::size_t record_start = cur.pos;
        std::uint32_t len = 0, crc = 0;
        const std::uint8_t *payload = nullptr;
        if (!cur.u32(len) || len > kMaxRecordPayload ||
            !cur.bytes(payload, len) || !cur.u32(crc) ||
            util::crc32(payload, len) != crc) {
            // Short, absurd, or checksum-failing tail: either a
            // concurrent writer's bytes have not all landed or the
            // tail is corrupt and the owning server will truncate it.
            // Both heal by retrying from this record next poll.
            partial = true;
            cur.pos = record_start;
            break;
        }
        ByteCursor rec{payload, len};
        std::uint32_t key_len = 0;
        if (!rec.u32(key_len) ||
            rec.size - rec.pos != std::size_t{key_len} * 8 + 8) {
            partial = true;
            cur.pos = record_start;
            break;
        }
        Record record;
        record.key.resize(key_len);
        for (auto &k : record.key) {
            std::uint64_t raw = 0;
            rec.u64(raw);
            k = static_cast<std::int64_t>(raw);
        }
        std::uint64_t raw_value = 0;
        rec.u64(raw_value);
        record.value = std::bit_cast<double>(raw_value);
        record.end_offset = offset_ + cur.pos;
        out.push_back(std::move(record));
    }
    offset_ += cur.pos;
    records_ += out.size();
    if (partial)
        ++retries_;

    OBS_STATIC_COUNTER(tail_records, "train.tail.records");
    OBS_ADD(tail_records, out.size());
    if (partial) {
        OBS_STATIC_COUNTER(tail_retries, "train.tail.retries");
        OBS_ADD(tail_retries, 1);
    }
    return out;
}

} // namespace ppm::serve
