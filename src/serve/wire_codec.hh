/**
 * @file
 * Shared little-endian byte codec of the serve plane: the
 * bounds-checked writer/reader behind both the wire protocol
 * (protocol.cc) and the model snapshot format (model_snapshot.cc).
 *
 * Everything is encoded explicitly byte by byte, so images are
 * endianness-independent: a snapshot published on a big-endian host
 * loads bit-identically on a little-endian one. Every read
 * bounds-checks and throws ProtocolError on truncation; no malformed
 * input is undefined behaviour.
 */

#ifndef PPM_SERVE_WIRE_CODEC_HH
#define PPM_SERVE_WIRE_CODEC_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace ppm::serve {

/** Append-only little-endian byte writer. */
class PayloadWriter
{
  public:
    void u8(std::uint8_t v) { put<1>(v); }
    void u16(std::uint16_t v) { put<2>(v); }
    void u32(std::uint32_t v) { put<4>(v); }
    void u64(std::uint64_t v) { put<8>(v); }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    void
    str(const std::string &s)
    {
        if (s.size() > kMaxString)
            throw ProtocolError("string too long to encode");
        u32(static_cast<std::uint32_t>(s.size()));
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    template <int N>
    void
    put(std::uint64_t v)
    {
        std::uint8_t le[N];
        for (int i = 0; i < N; ++i)
            le[i] = static_cast<std::uint8_t>(v >> (8 * i));
        bytes_.insert(bytes_.end(), le, le + N);
    }

    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked little-endian byte reader. */
class PayloadReader
{
  public:
    PayloadReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = static_cast<std::uint16_t>(
            data_[pos_] | (data_[pos_ + 1] << 8));
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
        pos_ += 8;
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (len > kMaxString)
            throw ProtocolError("encoded string too long");
        need(len);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      len);
        pos_ += len;
        return s;
    }

    std::size_t remaining() const { return size_ - pos_; }

    void
    expectEnd() const
    {
        if (pos_ != size_)
            throw ProtocolError("trailing bytes in payload");
    }

  private:
    void
    need(std::size_t n) const
    {
        if (size_ - pos_ < n)
            throw ProtocolError("payload truncated");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace ppm::serve

#endif // PPM_SERVE_WIRE_CODEC_HH
