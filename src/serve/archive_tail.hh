/**
 * @file
 * ArchiveTailer: a read-only follower of a live ResultArchive file.
 *
 * The online trainer tails every shard's archive from a persisted
 * byte offset: each poll() parses whatever *complete* records have
 * appeared past the offset and advances it record-by-record. Unlike
 * ResultArchive::openAndRecover — which owns the file and may
 * truncate a corrupt tail — the tailer never writes. Anything
 * inconsistent at the tail is treated as a concurrent writer's
 * partially flushed record: poll() stops before it, reports what it
 * has, and retries from the same offset next time (counted in
 * retries()). A writer flushes a record with a single pwrite, but
 * nothing guarantees a reader observes those bytes atomically, so a
 * torn read can surface as a short record, an absurd length word, or
 * a CRC mismatch — all of which heal on a later poll once the bytes
 * land. Genuinely corrupt tails are the owning server's problem: its
 * next open truncates them, the file shrinks back to a clean record
 * boundary at or past our offset, and appends resume; the tailer
 * meanwhile just keeps waiting without consuming garbage.
 *
 * The archive file may not exist yet (a shard that has not produced a
 * result); poll() simply returns nothing until it appears. A header
 * carrying a *different* context, or a wrong magic on a non-empty
 * file, is a configuration error and throws ArchiveError — silently
 * folding another oracle's results into a model must not happen.
 *
 * offset() is the byte offset one past the last fully consumed
 * record (or past the header when no record has been consumed yet;
 * 0 before the header has been seen). It is exactly what the trainer
 * persists; seek() restores it on restart.
 */

#ifndef PPM_SERVE_ARCHIVE_TAIL_HH
#define PPM_SERVE_ARCHIVE_TAIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/result_archive.hh"

namespace ppm::serve {

class ArchiveTailer
{
  public:
    /** One complete record pulled past the tail offset. */
    struct Record
    {
        core::ResultStore::Key key;
        double value = 0.0;
        /** Absolute byte offset one past this record in the file. */
        std::uint64_t end_offset = 0;
    };

    /**
     * Follow the archive at @p path for oracle @p context. The file
     * need not exist yet; nothing is opened until the first poll().
     * @throws ArchiveError only for an over-long context string.
     */
    ArchiveTailer(std::string path, std::string context);
    ~ArchiveTailer();

    ArchiveTailer(const ArchiveTailer &) = delete;
    ArchiveTailer &operator=(const ArchiveTailer &) = delete;

    /**
     * Parse every complete record currently on disk past offset(),
     * advancing the offset past each. Returns the records in file
     * order; empty when the file is absent, ends exactly at the
     * offset, or ends in a partially flushed record (retry later).
     * @throws ArchiveError on I/O failure, a non-archive file, or a
     *         context mismatch.
     */
    std::vector<Record> poll();

    /**
     * Resume position: restart tailing at absolute byte offset
     * @p off, as previously returned by offset(). Offsets inside the
     * header region are clamped up to the first record boundary once
     * the header has been read.
     */
    void seek(std::uint64_t off);

    /** Byte offset one past the last fully consumed record. */
    std::uint64_t offset() const { return offset_; }

    /**
     * Polls that ended in a partially flushed (or not yet readable)
     * tail record and will retry from the same offset.
     */
    std::uint64_t retries() const { return retries_; }

    /** Complete records consumed over the tailer's lifetime. */
    std::uint64_t records() const { return records_; }

    const std::string &path() const { return path_; }
    const std::string &context() const { return context_; }

  private:
    bool ensureOpen();

    std::string path_;
    std::string context_;
    int fd_ = -1;
    bool header_ok_ = false;
    std::uint64_t header_end_ = 0;
    std::uint64_t offset_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t records_ = 0;
};

} // namespace ppm::serve

#endif // PPM_SERVE_ARCHIVE_TAIL_HH
