#include "serve/transport.hh"

#include <cctype>

#include <netinet/in.h>
#include <sys/socket.h>

namespace ppm::serve {

std::string
Endpoint::display() const
{
    if (kind == Kind::Unix)
        return path;
    return host + ":" + std::to_string(port);
}

Endpoint
parseEndpoint(const std::string &spec)
{
    if (spec.empty())
        throw IoError("empty endpoint spec");
    if (spec.find('/') == std::string::npos) {
        const std::size_t colon = spec.rfind(':');
        if (colon != std::string::npos && colon + 1 < spec.size()) {
            bool digits = true;
            for (std::size_t i = colon + 1; i < spec.size(); ++i)
                digits = digits && std::isdigit(static_cast<unsigned
                                                char>(spec[i])) != 0;
            if (digits) {
                if (colon == 0)
                    throw IoError("TCP endpoint needs an explicit "
                                  "host (use 0.0.0.0:port to listen "
                                  "on every interface): " + spec);
                if (spec.size() - colon - 1 > 5)
                    throw IoError("TCP port out of range: " + spec);
                const unsigned long port =
                    std::stoul(spec.substr(colon + 1));
                if (port > 65535)
                    throw IoError("TCP port out of range: " + spec);
                Endpoint ep;
                ep.kind = Endpoint::Kind::Tcp;
                ep.host = spec.substr(0, colon);
                ep.port = static_cast<std::uint16_t>(port);
                return ep;
            }
        }
    }
    Endpoint ep;
    ep.kind = Endpoint::Kind::Unix;
    ep.path = spec;
    return ep;
}

std::vector<Endpoint>
parseEndpointList(const std::string &specs)
{
    std::vector<Endpoint> endpoints;
    std::size_t start = 0;
    while (start <= specs.size()) {
        std::size_t comma = specs.find(',', start);
        if (comma == std::string::npos)
            comma = specs.size();
        if (comma > start)
            endpoints.push_back(
                parseEndpoint(specs.substr(start, comma - start)));
        start = comma + 1;
    }
    return endpoints;
}

FdGuard
listenEndpoint(const Endpoint &endpoint, int backlog)
{
    if (endpoint.kind == Endpoint::Kind::Unix)
        return listenUnix(endpoint.path, backlog);
    return listenTcp(endpoint.host, endpoint.port, backlog);
}

FdGuard
connectEndpoint(const Endpoint &endpoint, int timeout_ms)
{
    if (endpoint.kind == Endpoint::Kind::Unix)
        return connectUnix(endpoint.path, timeout_ms);
    return connectTcp(endpoint.host, endpoint.port, timeout_ms);
}

} // namespace ppm::serve
