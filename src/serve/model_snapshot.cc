#include "serve/model_snapshot.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "serve/wire_codec.hh"
#include "util/crc32.hh"

namespace ppm::serve {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw SnapshotError("model snapshot: " + what);
}

void
checkFinite(double v, const char *what)
{
    if (!std::isfinite(v))
        fail(std::string("non-finite ") + what);
}

std::uint8_t
transformCode(dspace::Transform t)
{
    return t == dspace::Transform::Log ? 1 : 0;
}

/** Encode a Term factor index: 0 = kNone, else index + 1. */
std::uint32_t
termCode(int factor)
{
    return factor == linreg::Term::kNone
               ? 0
               : static_cast<std::uint32_t>(factor) + 1;
}

} // namespace

std::vector<std::uint8_t>
encodeSnapshot(const ModelSnapshot &snap)
{
    const std::size_t dims = snap.space.size();
    if (dims == 0 || dims > kMaxSnapshotDims)
        fail("design space has " + std::to_string(dims) +
             " parameters");
    if (snap.network.empty())
        fail("empty RBF network");
    if (snap.network.dimensions() != dims)
        fail("network dimensionality does not match the space");
    if (snap.network.numBases() > kMaxSnapshotBases)
        fail("too many RBF bases");
    if (snap.model_version == 0)
        fail("model_version must be >= 1");

    PayloadWriter w;
    w.u64(snap.model_version);
    w.str(snap.benchmark);
    w.u16(static_cast<std::uint16_t>(snap.metric));
    w.u64(snap.trace_length);
    w.u64(snap.warmup);
    w.u32(snap.train_points);
    w.u32(snap.p_min);
    checkFinite(snap.alpha, "alpha");
    w.f64(snap.alpha);
    checkFinite(snap.cv_error, "cv_error");
    if (snap.cv_error < 0.0)
        fail("negative cv_error");
    w.f64(snap.cv_error);

    w.u32(static_cast<std::uint32_t>(dims));
    for (std::size_t k = 0; k < dims; ++k) {
        const dspace::Parameter &p = snap.space.param(k);
        if (p.name().empty())
            fail("parameter " + std::to_string(k) + " has no name");
        checkFinite(p.minValue(), "parameter minimum");
        checkFinite(p.maxValue(), "parameter maximum");
        w.str(p.name());
        w.f64(p.minValue());
        w.f64(p.maxValue());
        w.u32(static_cast<std::uint32_t>(p.levels()));
        w.u8(transformCode(p.transform()));
        w.u8(p.isInteger() ? 1 : 0);
    }

    w.u32(static_cast<std::uint32_t>(snap.network.numBases()));
    for (const rbf::GaussianBasis &basis : snap.network.bases()) {
        for (double c : basis.center()) {
            checkFinite(c, "basis center");
            w.f64(c);
        }
        for (double r : basis.radius()) {
            checkFinite(r, "basis radius");
            if (r <= 0.0)
                fail("non-positive basis radius");
            w.f64(r);
        }
    }
    for (double weight : snap.network.weights()) {
        checkFinite(weight, "output weight");
        w.f64(weight);
    }

    if (snap.linear.empty()) {
        w.u8(0);
    } else {
        w.u8(1);
        const auto &terms = snap.linear.terms();
        if (terms.size() > kMaxSnapshotTerms)
            fail("too many linear terms");
        w.u32(static_cast<std::uint32_t>(terms.size()));
        for (const linreg::Term &t : terms) {
            if (t.i != linreg::Term::kNone &&
                static_cast<std::size_t>(t.i) >= dims)
                fail("linear term factor out of range");
            if (t.j != linreg::Term::kNone &&
                static_cast<std::size_t>(t.j) >= dims)
                fail("linear term factor out of range");
            w.u32(termCode(t.i));
            w.u32(termCode(t.j));
        }
        for (double c : snap.linear.coefficients()) {
            checkFinite(c, "linear coefficient");
            w.f64(c);
        }
    }

    const std::vector<std::uint8_t> payload = w.take();
    if (payload.size() > kMaxModelBytes)
        fail("snapshot image exceeds kMaxModelBytes");

    PayloadWriter out;
    out.u32(kSnapshotMagic);
    out.u16(kSnapshotFormat);
    out.u16(0); // flags, reserved
    out.u32(static_cast<std::uint32_t>(payload.size()));
    std::vector<std::uint8_t> image = out.take();
    image.insert(image.end(), payload.begin(), payload.end());
    PayloadWriter trailer;
    trailer.u32(util::crc32(payload.data(), payload.size()));
    const auto crc = trailer.take();
    image.insert(image.end(), crc.begin(), crc.end());
    return image;
}

ModelSnapshot
decodeSnapshot(const std::uint8_t *data, std::size_t size)
{
    try {
        if (size < kSnapshotHeaderSize + 4)
            fail("image truncated");
        PayloadReader header(data, kSnapshotHeaderSize);
        if (header.u32() != kSnapshotMagic)
            fail("bad magic");
        const std::uint16_t format = header.u16();
        if (format < kMinSnapshotFormat || format > kSnapshotFormat)
            fail("unsupported format version " +
                 std::to_string(format));
        if (header.u16() != 0)
            fail("nonzero reserved flags");
        const std::uint32_t payload_len = header.u32();
        if (payload_len > kMaxModelBytes)
            fail("payload oversized: " + std::to_string(payload_len) +
                 " bytes");
        if (size != kSnapshotHeaderSize + payload_len + 4)
            fail("image size does not match payload_len");
        const std::uint8_t *payload = data + kSnapshotHeaderSize;
        PayloadReader trailer(payload + payload_len, 4);
        if (util::crc32(payload, payload_len) != trailer.u32())
            fail("payload CRC mismatch");

        PayloadReader r(payload, payload_len);
        ModelSnapshot snap;
        snap.model_version = r.u64();
        if (snap.model_version == 0)
            fail("model_version must be >= 1");
        snap.benchmark = r.str();
        const std::uint16_t metric = r.u16();
        if (metric > static_cast<std::uint16_t>(
                         core::Metric::EnergyDelaySquared))
            fail("unknown metric " + std::to_string(metric));
        snap.metric = static_cast<core::Metric>(metric);
        snap.trace_length = r.u64();
        snap.warmup = r.u64();
        snap.train_points = r.u32();
        snap.p_min = r.u32();
        snap.alpha = r.f64();
        checkFinite(snap.alpha, "alpha");
        if (format >= 2) {
            snap.cv_error = r.f64();
            checkFinite(snap.cv_error, "cv_error");
            if (snap.cv_error < 0.0)
                fail("negative cv_error");
        }

        const std::uint32_t dims = r.u32();
        if (dims == 0 || dims > kMaxSnapshotDims)
            fail("implausible dimensionality " + std::to_string(dims));
        for (std::uint32_t k = 0; k < dims; ++k) {
            const std::string name = r.str();
            if (name.empty())
                fail("parameter " + std::to_string(k) +
                     " has no name");
            const double min = r.f64();
            const double max = r.f64();
            checkFinite(min, "parameter minimum");
            checkFinite(max, "parameter maximum");
            if (!(min < max))
                fail("degenerate range of parameter '" + name + "'");
            const std::uint32_t levels = r.u32();
            if (levels == 1 || levels > 1u << 20)
                fail("implausible level count of parameter '" + name +
                     "'");
            const std::uint8_t transform = r.u8();
            if (transform > 1)
                fail("unknown transform of parameter '" + name + "'");
            if (transform == 1 && min <= 0.0)
                fail("log transform of parameter '" + name +
                     "' needs a positive range");
            const std::uint8_t integer = r.u8();
            if (integer > 1)
                fail("bad integer flag of parameter '" + name + "'");
            snap.space.add(dspace::Parameter(
                name, min, max, static_cast<int>(levels),
                transform == 1 ? dspace::Transform::Log
                               : dspace::Transform::Linear,
                integer == 1));
        }

        const std::uint32_t num_bases = r.u32();
        if (num_bases == 0 || num_bases > kMaxSnapshotBases)
            fail("implausible basis count " +
                 std::to_string(num_bases));
        // All fixed-width data left: bases, weights, and at least the
        // has_linear flag. Checked up front so a count lie fails here
        // instead of allocating first.
        const std::size_t basis_bytes =
            std::size_t{num_bases} * (2 * dims + 1) * sizeof(double);
        if (r.remaining() < basis_bytes + 1)
            fail("basis data truncated");
        std::vector<rbf::GaussianBasis> bases;
        bases.reserve(num_bases);
        for (std::uint32_t j = 0; j < num_bases; ++j) {
            dspace::UnitPoint center(dims);
            std::vector<double> radius(dims);
            for (auto &c : center) {
                c = r.f64();
                checkFinite(c, "basis center");
            }
            for (auto &rad : radius) {
                rad = r.f64();
                checkFinite(rad, "basis radius");
                if (rad <= 0.0)
                    fail("non-positive radius in basis " +
                         std::to_string(j));
            }
            bases.emplace_back(std::move(center), std::move(radius));
        }
        std::vector<double> weights;
        weights.reserve(num_bases);
        for (std::uint32_t j = 0; j < num_bases; ++j) {
            const double weight = r.f64();
            checkFinite(weight, "output weight");
            weights.push_back(weight);
        }
        snap.network =
            rbf::RbfNetwork(std::move(bases), std::move(weights));

        const std::uint8_t has_linear = r.u8();
        if (has_linear > 1)
            fail("bad linear-baseline flag");
        if (has_linear == 1) {
            const std::uint32_t num_terms = r.u32();
            if (num_terms == 0 || num_terms > kMaxSnapshotTerms)
                fail("implausible linear term count " +
                     std::to_string(num_terms));
            if (r.remaining() !=
                std::size_t{num_terms} * (8 + sizeof(double)))
                fail("linear baseline data size mismatch");
            std::vector<linreg::Term> terms;
            terms.reserve(num_terms);
            for (std::uint32_t t = 0; t < num_terms; ++t) {
                const std::uint32_t ci = r.u32();
                const std::uint32_t cj = r.u32();
                if (ci > dims || cj > dims)
                    fail("linear term factor out of range");
                if (ci == 0 && cj != 0)
                    fail("linear interaction without first factor");
                terms.push_back(linreg::Term{
                    ci == 0 ? linreg::Term::kNone
                            : static_cast<int>(ci) - 1,
                    cj == 0 ? linreg::Term::kNone
                            : static_cast<int>(cj) - 1});
            }
            std::vector<double> coeffs;
            coeffs.reserve(num_terms);
            for (std::uint32_t t = 0; t < num_terms; ++t) {
                const double c = r.f64();
                checkFinite(c, "linear coefficient");
                coeffs.push_back(c);
            }
            snap.linear = linreg::LinearModel(std::move(terms),
                                              std::move(coeffs));
        }
        r.expectEnd();
        return snap;
    } catch (const SnapshotError &) {
        throw;
    } catch (const ProtocolError &e) {
        // Reader-level truncation inside the payload.
        throw SnapshotError(std::string("model snapshot: ") +
                            e.what());
    }
}

ModelSnapshot
decodeSnapshot(const std::vector<std::uint8_t> &bytes)
{
    return decodeSnapshot(bytes.data(), bytes.size());
}

void
saveSnapshot(const ModelSnapshot &snap, const std::string &path)
{
    const std::vector<std::uint8_t> image = encodeSnapshot(snap);

    // Unique temp name in the target directory: rename() is only
    // atomic within a filesystem, and a fixed name would let two
    // publishers clobber each other's half-written files.
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(snap.model_version);
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        fail("cannot create " + tmp + ": " + std::strerror(errno));
    std::size_t written = 0;
    while (written < image.size()) {
        const ssize_t n =
            ::write(fd, image.data() + written,
                    image.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int saved = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            fail("write to " + tmp + " failed: " +
                 std::strerror(saved));
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) < 0) {
        const int saved = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        fail("fsync of " + tmp + " failed: " + std::strerror(saved));
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) < 0) {
        const int saved = errno;
        ::unlink(tmp.c_str());
        fail("rename to " + path + " failed: " +
             std::strerror(saved));
    }
}

ModelSnapshot
loadSnapshot(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        fail("cannot open " + path + ": " + std::strerror(errno));
    struct stat st;
    if (::fstat(fd, &st) < 0 || st.st_size < 0) {
        ::close(fd);
        fail("cannot stat " + path);
    }
    if (static_cast<std::uint64_t>(st.st_size) >
        std::uint64_t{kMaxModelBytes} + kSnapshotHeaderSize + 4) {
        ::close(fd);
        fail("file oversized: " + path);
    }
    std::vector<std::uint8_t> image(
        static_cast<std::size_t>(st.st_size));
    std::size_t got = 0;
    while (got < image.size()) {
        const ssize_t n =
            ::read(fd, image.data() + got, image.size() - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int saved = errno;
            ::close(fd);
            fail("read of " + path + " failed: " +
                 std::strerror(saved));
        }
        if (n == 0)
            break; // concurrent truncation: decode reports it
        got += static_cast<std::size_t>(n);
    }
    ::close(fd);
    image.resize(got);
    return decodeSnapshot(image);
}

std::vector<double>
predictWithSnapshot(const ModelSnapshot &snap,
                    const std::vector<dspace::DesignPoint> &points,
                    ModelKind model)
{
    if (model == ModelKind::Linear && snap.linear.empty())
        fail("snapshot carries no linear baseline");
    // Decoded snapshots always carry a network, but a hand-assembled
    // ModelSnapshot may not; fail typed here rather than letting the
    // network throw logic_error below.
    if (model == ModelKind::Rbf && snap.network.empty())
        fail("snapshot carries no RBF network");
    std::vector<dspace::UnitPoint> units;
    units.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const dspace::DesignPoint &p = points[i];
        if (p.size() != snap.space.size())
            fail("point " + std::to_string(i) + " has " +
                 std::to_string(p.size()) + " coordinates, model has " +
                 std::to_string(snap.space.size()));
        if (!snap.space.contains(p))
            fail("point " + std::to_string(i) +
                 " is outside the trained design space: " +
                 snap.space.describe(p));
        units.push_back(snap.space.toUnit(p));
    }
    return model == ModelKind::Linear ? snap.linear.predict(units)
                                      : snap.network.predict(units);
}

ModelInfo
describeSnapshot(const ModelSnapshot &snap)
{
    ModelInfo info;
    info.loaded = true;
    info.model_version = snap.model_version;
    info.benchmark = snap.benchmark;
    info.metric = snap.metric;
    info.trace_length = snap.trace_length;
    info.warmup = snap.warmup;
    info.num_bases =
        static_cast<std::uint32_t>(snap.network.numBases());
    info.num_linear_terms =
        static_cast<std::uint32_t>(snap.linear.numTerms());
    info.param_names.reserve(snap.space.size());
    for (const dspace::Parameter &p : snap.space.params())
        info.param_names.push_back(p.name());
    return info;
}

} // namespace ppm::serve
