/**
 * @file
 * Online model-drift monitoring for the prediction plane: a
 * deterministic 1-in-N sample of served PREDICT points is
 * shadow-checked against ground truth the serve plane already has —
 * the server's shared result cache (fed by live EvalRequests and the
 * archive spill/reload path) — so drift detection never runs a
 * duplicate simulation. Points whose truth is not cached are simply
 * not scored.
 *
 * Per snapshot version the monitor keeps streaming error statistics
 * (Welford mean/variance of relative error, a power-of-two residual
 * histogram for P90) and exports them as `model.drift.*` metrics.
 * When the observed mean relative error of a version degrades past
 * `threshold_ratio x baseline` — where baseline is the snapshot's
 * training-time cross-validation error (`ModelSnapshot::cv_error`,
 * snapshot format 2) or `baseline_floor` when unknown — a `drift`
 * event is emitted once per version to the JSONL event log and the
 * `model.drift.events` counter increments.
 *
 * Determinism: sampling is a relaxed point counter (never an RNG —
 * the zero-perturbation rule), so a serialized request stream yields
 * bit-identical statistics at any PPM_THREADS.
 */

#ifndef PPM_SERVE_DRIFT_MONITOR_HH
#define PPM_SERVE_DRIFT_MONITOR_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "cache/result_cache.hh"
#include "dspace/design_space.hh"

namespace ppm::serve {

struct DriftOptions
{
    /** Shadow-check every Nth served PREDICT point; 0 = off. */
    std::uint32_t sample_every = 0;
    /** Degraded when mean rel. error > threshold_ratio x baseline. */
    double threshold_ratio = 2.0;
    /** Baseline when the snapshot carries no cv_error (format 1). */
    double baseline_floor = 0.02;
    /** Residuals required before a version can fire the event. */
    std::uint64_t min_samples = 32;
};

/** Streaming error state of one snapshot version (test/API view). */
struct DriftStats
{
    std::uint64_t sampled = 0; //!< points probed against the cache
    std::uint64_t scored = 0;  //!< residuals recorded (cache hits)
    double mean_rel_err = 0.0;
    double variance = 0.0; //!< Welford population variance
    double p90_rel_err = 0.0;
    bool fired = false; //!< drift event emitted for this version
};

class DriftMonitor
{
  public:
    DriftMonitor() = default;

    void configure(const DriftOptions &options);
    bool enabled() const
    {
        return sample_every_.load(std::memory_order_relaxed) != 0;
    }

    /**
     * Shadow-check a served batch: deterministically sample points,
     * probe @p cache for their ground truth (keys are the oracle memo
     * keys: @p context_word then llround(coord * 1e6) per coordinate)
     * and fold |predicted - truth| / |truth| into the stats of
     * @p model_version. @p cv_error is the snapshot's training-time
     * baseline (0 = unknown).
     */
    void observeBatch(const cache::ResultCache &cache,
                      std::int64_t context_word,
                      std::uint64_t model_version, double cv_error,
                      const std::vector<dspace::DesignPoint> &points,
                      const std::vector<double> &predicted);

    /** Snapshot the stats of @p model_version (zeros if unseen). */
    DriftStats statsFor(std::uint64_t model_version) const;

  private:
    struct VersionStats
    {
        std::uint64_t sampled = 0;
        std::uint64_t scored = 0;
        // Welford accumulators, updated in arrival order.
        double mean = 0.0;
        double m2 = 0.0;
        // Power-of-two histogram of rel. error scaled by 1e9: bucket
        // b counts residuals with bit_width(rel * 1e9) == b.
        std::uint64_t buckets[64] = {};
        bool fired = false;
    };

    static double p90FromBuckets(const VersionStats &vs);

    std::atomic<std::uint32_t> sample_every_{0};
    double threshold_ratio_ = 2.0;
    double baseline_floor_ = 0.02;
    std::uint64_t min_samples_ = 32;

    /** Deterministic sampler: counts every served point. */
    std::atomic<std::uint64_t> seen_points_{0};

    mutable std::mutex mutex_;
    std::map<std::uint64_t, VersionStats> stats_;
};

} // namespace ppm::serve

#endif // PPM_SERVE_DRIFT_MONITOR_HH
