/**
 * @file
 * Oracle factory: the one-line entry point benches and examples use
 * to get a CpiOracle that honours the service environment —
 *
 *   PPM_SERVE_SOCKET  comma-separated ppm_serve endpoints — Unix
 *                     socket paths and TCP host:port specs mix freely
 *                     (see transport.hh); when set the factory
 *                     returns a RemoteOracle sharding batches across
 *                     them (with in-process fallback), else a plain
 *                     SimulatorOracle
 *   PPM_ARCHIVE_DIR   directory of ResultArchive files; when set the
 *                     local oracle (or the remote oracle's fallback)
 *                     persists every simulation, so re-running any
 *                     bench replays archived results for free
 */

#ifndef PPM_SERVE_ORACLE_FACTORY_HH
#define PPM_SERVE_ORACLE_FACTORY_HH

#include <memory>
#include <string>

#include "core/oracle.hh"
#include "dspace/design_space.hh"
#include "serve/remote_oracle.hh"
#include "serve/result_archive.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace ppm::serve {

/** Name of the environment variable naming the archive directory. */
inline constexpr const char *kArchiveEnvVar = "PPM_ARCHIVE_DIR";

/** Explicit factory configuration (the env-free overload). */
struct FactoryOptions
{
    /** Server sockets; empty = local simulation. */
    std::vector<std::string> sockets;
    /** ResultArchive directory; empty = no persistence. */
    std::string archive_dir;
    /** Tuning for the remote path (sockets field is overwritten). */
    RemoteOptions remote;
};

/** FactoryOptions from PPM_SERVE_SOCKET / PPM_ARCHIVE_DIR. */
FactoryOptions factoryOptionsFromEnv();

/**
 * Open (creating the directory if needed) the archive for one oracle
 * context under @p dir.
 */
std::shared_ptr<ResultArchive> archiveFor(
    const std::string &dir, const std::string &benchmark,
    std::uint64_t trace_length, std::uint64_t warmup,
    core::Metric metric);

/**
 * Build an oracle per @p options: a RemoteOracle when sockets are
 * configured, else a SimulatorOracle; either way with a ResultArchive
 * attached (to the fallback, for the remote case) when archive_dir is
 * set. @p benchmark must name the profile @p trace was generated
 * from; @p trace must outlive the oracle.
 */
std::unique_ptr<core::CpiOracle> makeOracle(
    const dspace::DesignSpace &space, const std::string &benchmark,
    const trace::Trace &trace, const sim::SimOptions &sim_options,
    core::Metric metric, const FactoryOptions &options);

/** Environment-driven overload: factoryOptionsFromEnv(). */
std::unique_ptr<core::CpiOracle> makeOracle(
    const dspace::DesignSpace &space, const std::string &benchmark,
    const trace::Trace &trace, const sim::SimOptions &sim_options = {},
    core::Metric metric = core::Metric::Cpi);

} // namespace ppm::serve

#endif // PPM_SERVE_ORACLE_FACTORY_HH
