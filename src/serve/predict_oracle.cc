#include "serve/predict_oracle.hh"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace_span.hh"

namespace ppm::serve {

PredictOracle::PredictOracle(ModelSnapshot snapshot,
                             RemoteOptions options, ModelKind model)
    : snapshot_(std::move(snapshot)), model_(model),
      client_(std::move(options))
{
}

double
PredictOracle::cpi(const dspace::DesignPoint &point)
{
    return evaluateAll({point}).front();
}

std::optional<PredictResponse>
PredictOracle::requestChunk(
    std::size_t socket_index,
    const std::vector<dspace::DesignPoint> &points)
{
    PredictRequest req;
    req.model = model_;
    req.points = points;
    const std::vector<std::uint8_t> frame = encodePredictRequest(req);

    std::optional<PredictResponse> resp;
    std::optional<Frame> reply = client_.exchange(
        socket_index, frame, MsgType::PredictResponse,
        [&](const Frame &f) {
            PredictResponse r = parsePredictResponse(f.payload);
            if (r.values.size() != points.size())
                throw ProtocolError("response batch size mismatch");
            resp = std::move(r);
        });
    if (!reply)
        return std::nullopt;
    return resp;
}

std::vector<double>
PredictOracle::evaluateAll(
    const std::vector<dspace::DesignPoint> &points)
{
    const std::size_t n = points.size();
    std::vector<double> out(n);
    if (n == 0)
        return out;

    // Root of the distributed trace: when sampled, every chunk frame
    // (and thus every shard-side span) inherits this trace id.
    obs::TraceRoot trace_root("predict.evaluate_all");

    const std::size_t chunk = client_.options().chunk_points;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    const std::size_t num_sockets = client_.numEndpoints();

    auto runChunk = [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        std::vector<dspace::DesignPoint> part(
            points.begin() + static_cast<std::ptrdiff_t>(begin),
            points.begin() + static_cast<std::ptrdiff_t>(end));
        std::optional<PredictResponse> resp;
        if (num_sockets > 0)
            resp = requestChunk(c % num_sockets, part);
        if (resp) {
            std::copy(resp->values.begin(), resp->values.end(),
                      out.begin() + static_cast<std::ptrdiff_t>(begin));
            remote_points_.fetch_add(end - begin,
                                     std::memory_order_relaxed);
            // Track the newest version any shard reports; lets
            // callers notice a fleet that hot-swapped past them.
            std::uint64_t seen =
                server_version_.load(std::memory_order_relaxed);
            while (seen < resp->model_version &&
                   !server_version_.compare_exchange_weak(
                       seen, resp->model_version,
                       std::memory_order_relaxed))
                ;
            return;
        }
        OBS_SPAN("predict.fallback_chunk");
        const std::vector<double> local =
            predictWithSnapshot(snapshot_, part, model_);
        std::copy(local.begin(), local.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(begin));
        fallback_points_.fetch_add(end - begin,
                                   std::memory_order_relaxed);
        OBS_STATIC_COUNTER(fallback_points, "predict.fallback_points");
        OBS_ADD(fallback_points, end - begin);
    };

    client_.forEachChunk(num_chunks, runChunk);
    return out;
}

std::uint64_t
PredictOracle::evaluations() const
{
    return remote_points_.load(std::memory_order_relaxed) +
           fallback_points_.load(std::memory_order_relaxed);
}

} // namespace ppm::serve
