#include "serve/remote_oracle.hh"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace_span.hh"

namespace ppm::serve {

RemoteOracle::RemoteOracle(const dspace::DesignSpace &space,
                           std::string benchmark,
                           const trace::Trace &trace,
                           const sim::SimOptions &sim_options,
                           core::Metric metric, RemoteOptions options)
    : benchmark_(std::move(benchmark)), trace_(trace),
      sim_options_(sim_options), metric_(metric),
      client_(std::move(options)),
      fallback_(space, trace, sim_options, metric)
{
}

double
RemoteOracle::cpi(const dspace::DesignPoint &point)
{
    return evaluateAll({point}).front();
}

std::optional<EvalResponse>
RemoteOracle::requestChunk(
    std::size_t socket_index,
    const std::vector<dspace::DesignPoint> &points)
{
    EvalRequest req;
    req.benchmark = benchmark_;
    req.metric = metric_;
    req.trace_length = trace_.size();
    req.warmup = sim_options_.warmup_instructions;
    req.seed = client_.options().seed;
    req.points = points;
    const std::vector<std::uint8_t> frame = encodeEvalRequest(req);

    // Parse inside the retry loop: a well-framed reply carrying the
    // wrong batch size is as suspect as a corrupt one.
    std::optional<EvalResponse> resp;
    std::optional<Frame> reply = client_.exchange(
        socket_index, frame, MsgType::EvalResponse,
        [&](const Frame &f) {
            EvalResponse r = parseEvalResponse(f.payload);
            if (r.values.size() != points.size())
                throw ProtocolError("response batch size mismatch");
            resp = std::move(r);
        });
    if (!reply)
        return std::nullopt;
    return resp;
}

std::vector<double>
RemoteOracle::evaluateAll(
    const std::vector<dspace::DesignPoint> &points)
{
    const std::size_t n = points.size();
    std::vector<double> out(n);
    if (n == 0)
        return out;

    // Root of the distributed trace: when sampled, every chunk frame
    // (and thus every shard-side span) inherits this trace id.
    obs::TraceRoot trace_root("remote.evaluate_all");

    const std::size_t chunk = client_.options().chunk_points;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    const std::size_t num_sockets = client_.numEndpoints();

    // Chunk c covers points [c*chunk, min(n, (c+1)*chunk)) and is
    // pinned to socket c % num_sockets.
    auto runChunk = [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        std::vector<dspace::DesignPoint> part(
            points.begin() + static_cast<std::ptrdiff_t>(begin),
            points.begin() + static_cast<std::ptrdiff_t>(end));
        std::optional<EvalResponse> resp;
        if (num_sockets > 0)
            resp = requestChunk(c % num_sockets, part);
        if (resp) {
            std::copy(resp->values.begin(), resp->values.end(),
                      out.begin() + static_cast<std::ptrdiff_t>(begin));
            remote_points_.fetch_add(end - begin,
                                     std::memory_order_relaxed);
            remote_chunks_.fetch_add(1, std::memory_order_relaxed);
            remote_fresh_.fetch_add(resp->fresh_evaluations,
                                    std::memory_order_relaxed);
            return;
        }
        // Transparent fallback: simulate in-process. cpi() is
        // thread-safe, so concurrent dispatch threads fan the
        // fallback work out naturally.
        OBS_SPAN("remote.fallback_chunk");
        for (std::size_t i = begin; i < end; ++i)
            out[i] = fallback_.cpi(points[i]);
        fallback_points_.fetch_add(end - begin,
                                   std::memory_order_relaxed);
        OBS_STATIC_COUNTER(fallback_points, "remote.fallback_points");
        OBS_ADD(fallback_points, end - begin);
    };

    client_.forEachChunk(num_chunks, runChunk);
    return out;
}

std::uint64_t
RemoteOracle::evaluations() const
{
    return remote_fresh_.load(std::memory_order_relaxed) +
           fallback_.evaluations();
}

} // namespace ppm::serve
