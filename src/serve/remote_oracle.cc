#include "serve/remote_oracle.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/event_log.hh"
#include "obs/trace_span.hh"
#include "serve/socket_io.hh"

namespace ppm::serve {

std::vector<std::string>
socketsFromEnv()
{
    std::vector<std::string> sockets;
    const char *env = std::getenv(kSocketEnvVar);
    if (env == nullptr)
        return sockets;
    std::string value(env);
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        const std::string item = value.substr(start, comma - start);
        if (!item.empty())
            sockets.push_back(item);
        start = comma + 1;
    }
    return sockets;
}

RemoteOracle::RemoteOracle(const dspace::DesignSpace &space,
                           std::string benchmark,
                           const trace::Trace &trace,
                           const sim::SimOptions &sim_options,
                           core::Metric metric, RemoteOptions options)
    : benchmark_(std::move(benchmark)), trace_(trace),
      sim_options_(sim_options), metric_(metric),
      options_(std::move(options)),
      fallback_(space, trace, sim_options, metric),
      socket_dead_(options_.sockets.size())
{
    if (options_.chunk_points == 0)
        options_.chunk_points = 1;
    if (options_.max_connections == 0)
        options_.max_connections = 1;
    if (options_.max_attempts < 1)
        options_.max_attempts = 1;
    endpoints_.reserve(options_.sockets.size());
    for (const std::string &spec : options_.sockets)
        endpoints_.push_back(parseEndpoint(spec));
#ifndef PPM_OBS_DISABLED
    endpoint_metrics_.reserve(endpoints_.size());
    for (const Endpoint &ep : endpoints_) {
        const std::string prefix = "remote.ep." + ep.display();
        EndpointMetrics m;
        m.connects = &obs::Registry::instance().counter(
            prefix + ".connects");
        m.connect_failures = &obs::Registry::instance().counter(
            prefix + ".connect_failures");
        m.retries = &obs::Registry::instance().counter(
            prefix + ".retries");
        endpoint_metrics_.push_back(m);
    }
#endif
}

double
RemoteOracle::cpi(const dspace::DesignPoint &point)
{
    return evaluateAll({point}).front();
}

std::optional<EvalResponse>
RemoteOracle::requestChunk(
    std::size_t socket_index,
    const std::vector<dspace::DesignPoint> &points)
{
    if (options_.sockets.empty() ||
        socket_dead_[socket_index].load(std::memory_order_relaxed))
        return std::nullopt;
    const Endpoint &endpoint = endpoints_[socket_index];
    const std::string socket = endpoint.display();

    EvalRequest req;
    req.benchmark = benchmark_;
    req.metric = metric_;
    req.trace_length = trace_.size();
    req.warmup = sim_options_.warmup_instructions;
    req.seed = options_.seed;
    req.points = points;
    const std::vector<std::uint8_t> frame = encodeEvalRequest(req);

    OBS_SPAN("remote.chunk");
    OBS_STATIC_COUNTER(retries, "remote.retries");
    OBS_STATIC_COUNTER(backoff_sleeps, "remote.backoff_sleeps");
    int backoff_ms = options_.backoff_initial_ms;
    for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
        if (attempt > 0) {
            OBS_ADD(retries, 1);
            OBS_ADD(backoff_sleeps, 1);
#ifndef PPM_OBS_DISABLED
            endpoint_metrics_[socket_index].retries->add(1);
#endif
            obs::logEvent(obs::LogLevel::Debug, "remote", "backoff",
                          {{"socket", socket},
                           {"attempt", attempt},
                           {"sleep_ms", std::min(backoff_ms,
                                                 options_.backoff_max_ms)}});
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(backoff_ms, options_.backoff_max_ms)));
            backoff_ms =
                nextBackoffMs(backoff_ms, options_.backoff_max_ms);
        }
        try {
            FdGuard fd = [&] {
                OBS_SPAN("remote.connect");
                try {
                    FdGuard conn = connectEndpoint(
                        endpoint, options_.connect_timeout_ms);
#ifndef PPM_OBS_DISABLED
                    endpoint_metrics_[socket_index].connects->add(1);
#endif
                    return conn;
                } catch (const IoError &) {
#ifndef PPM_OBS_DISABLED
                    endpoint_metrics_[socket_index]
                        .connect_failures->add(1);
#endif
                    throw;
                }
            }();
            writeFrame(fd.get(), frame, options_.io_timeout_ms);
            const Frame reply =
                readFrame(fd.get(), options_.io_timeout_ms);
            if (reply.type == MsgType::Error) {
                // A semantic rejection (unknown benchmark, bad
                // dimensionality) will not improve with retries;
                // evaluate locally, where the same condition raises
                // a meaningful exception.
                break;
            }
            if (reply.type != MsgType::EvalResponse)
                throw ProtocolError("unexpected reply type");
            EvalResponse resp = parseEvalResponse(reply.payload);
            if (resp.values.size() != points.size())
                throw ProtocolError("response batch size mismatch");
            return resp;
        } catch (const IoError &) {
            // Unreachable, reset, or timed out: retry with backoff.
        } catch (const ProtocolError &) {
            // Corrupt reply: the transport is suspect; retry too.
        }
    }
    socket_dead_[socket_index].store(true,
                                     std::memory_order_relaxed);
    OBS_STATIC_COUNTER(dead_latches, "remote.dead_latches");
    OBS_ADD(dead_latches, 1);
    obs::logEvent(obs::LogLevel::Warn, "remote", "socket_dead",
                  {{"socket", socket},
                   {"attempts", options_.max_attempts}});
    return std::nullopt;
}

std::vector<double>
RemoteOracle::evaluateAll(
    const std::vector<dspace::DesignPoint> &points)
{
    const std::size_t n = points.size();
    std::vector<double> out(n);
    if (n == 0)
        return out;

    const std::size_t chunk = options_.chunk_points;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    const std::size_t num_sockets = options_.sockets.size();

    // Chunk c covers points [c*chunk, min(n, (c+1)*chunk)) and is
    // pinned to socket c % num_sockets.
    auto runChunk = [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        std::vector<dspace::DesignPoint> part(
            points.begin() + static_cast<std::ptrdiff_t>(begin),
            points.begin() + static_cast<std::ptrdiff_t>(end));
        std::optional<EvalResponse> resp;
        if (num_sockets > 0)
            resp = requestChunk(c % num_sockets, part);
        if (resp) {
            std::copy(resp->values.begin(), resp->values.end(),
                      out.begin() + static_cast<std::ptrdiff_t>(begin));
            remote_points_.fetch_add(end - begin,
                                     std::memory_order_relaxed);
            remote_chunks_.fetch_add(1, std::memory_order_relaxed);
            remote_fresh_.fetch_add(resp->fresh_evaluations,
                                    std::memory_order_relaxed);
            return;
        }
        // Transparent fallback: simulate in-process. cpi() is
        // thread-safe, so concurrent dispatch threads fan the
        // fallback work out naturally.
        OBS_SPAN("remote.fallback_chunk");
        for (std::size_t i = begin; i < end; ++i)
            out[i] = fallback_.cpi(points[i]);
        fallback_points_.fetch_add(end - begin,
                                   std::memory_order_relaxed);
        OBS_STATIC_COUNTER(fallback_points, "remote.fallback_points");
        OBS_ADD(fallback_points, end - begin);
    };

    const std::size_t num_threads = std::min<std::size_t>(
        options_.max_connections, num_chunks);
    if (num_threads <= 1 || num_sockets == 0) {
        for (std::size_t c = 0; c < num_chunks; ++c)
            runChunk(c);
        return out;
    }

    // Dedicated dispatch threads (see file comment); thread t owns
    // chunks t, t+T, t+2T, ... so slot writes never overlap.
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
        threads.emplace_back([&, t] {
            try {
                for (std::size_t c = t; c < num_chunks;
                     c += num_threads)
                    runChunk(c);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return out;
}

std::uint64_t
RemoteOracle::evaluations() const
{
    return remote_fresh_.load(std::memory_order_relaxed) +
           fallback_.evaluations();
}

} // namespace ppm::serve
