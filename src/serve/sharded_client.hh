/**
 * @file
 * ShardedClient: the transport-and-retry core shared by every client
 * of the serve plane (RemoteOracle for simulation batches,
 * PredictOracle for model predictions). One place owns endpoint
 * parsing, per-endpoint health counters, the bounded
 * exponential-backoff retry schedule, the per-socket dead latch, and
 * the dedicated dispatch-thread fan-out — so fault-injection chaos
 * coverage and the remote.* observability counters apply to every
 * frame family without duplication.
 *
 * Dispatch deliberately uses dedicated threads, NOT the process-wide
 * util::ThreadPool: a chunk blocks on socket I/O, and parking blocked
 * work inside the pool could starve a same-process SimServer (tests,
 * benches) whose oracles need the pool to make progress.
 */

#ifndef PPM_SERVE_SHARDED_CLIENT_HH
#define PPM_SERVE_SHARDED_CLIENT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "serve/protocol.hh"
#include "serve/transport.hh"

namespace ppm::serve {

/** Name of the environment variable naming server endpoints. */
inline constexpr const char *kSocketEnvVar = "PPM_SERVE_SOCKET";

/**
 * Endpoint specs from PPM_SERVE_SOCKET (comma-separated; empty when
 * unset). One running ppm_serve process per endpoint; Unix socket
 * paths and TCP host:port specs can be mixed freely.
 */
std::vector<std::string> socketsFromEnv();

/**
 * Next delay of a bounded exponential-backoff schedule: doubles
 * @p backoff_ms, saturating at @p backoff_max_ms. Saturation is
 * checked before the doubling, so the schedule can never overflow
 * however many attempts are configured.
 */
constexpr int
nextBackoffMs(int backoff_ms, int backoff_max_ms)
{
    return backoff_ms > backoff_max_ms / 2 ? backoff_max_ms
                                           : backoff_ms * 2;
}

struct RemoteOptions
{
    /**
     * Server endpoints (Unix paths and/or TCP host:port specs) to
     * shard across; chunk c goes to sockets[c % sockets.size()].
     * Empty = always evaluate locally.
     */
    std::vector<std::string> sockets;
    /** Per-connection-attempt timeout. */
    int connect_timeout_ms = 2'000;
    /** Per-request I/O timeout (covers the simulations themselves). */
    int io_timeout_ms = 120'000;
    /** Attempts per chunk before falling back locally (>= 1). */
    int max_attempts = 3;
    /** First retry delay; doubles per attempt up to backoff_max_ms. */
    int backoff_initial_ms = 25;
    int backoff_max_ms = 500;
    /** Points per request frame. */
    std::size_t chunk_points = 8;
    /** Concurrent in-flight requests (dispatch threads). */
    unsigned max_connections = 4;
    /** Base seed carried in requests (see protocol::EvalRequest). */
    std::uint64_t seed = 0;
};

class ShardedClient
{
  public:
    /**
     * Parse the endpoints of @p options and register per-endpoint
     * health counters (remote.ep.<spec>.*). Also normalizes the
     * options: chunk_points, max_connections, max_attempts >= 1.
     */
    explicit ShardedClient(RemoteOptions options);

    const RemoteOptions &options() const { return options_; }
    std::size_t numEndpoints() const { return endpoints_.size(); }

    /** True once @p endpoint_index exhausted its retries for good. */
    bool
    endpointDead(std::size_t endpoint_index) const
    {
        return socket_dead_[endpoint_index].load(
            std::memory_order_relaxed);
    }

    /**
     * One request/reply exchange against an endpoint, with the full
     * connect-timeout / retry / backoff / dead-latch schedule. Every
     * attempt opens a fresh connection. An Error reply aborts without
     * further retries (a semantic rejection will not improve); any
     * other reply type than @p expect — or a @p validate callback
     * throwing ProtocolError — marks the transport suspect and
     * retries.
     *
     * @return The reply frame (type == @p expect), or nullopt when
     *         the endpoint is dead, all attempts failed (the endpoint
     *         is then latched dead), or the server replied Error —
     *         the caller falls back locally.
     */
    std::optional<Frame> exchange(
        std::size_t endpoint_index,
        const std::vector<std::uint8_t> &request, MsgType expect,
        const std::function<void(const Frame &)> &validate = {});

    /**
     * Run @p run(c) for every chunk index in [0, num_chunks) across
     * min(options().max_connections, num_chunks) dedicated threads;
     * thread t owns chunks t, t+T, t+2T, ... so per-chunk output
     * slots never overlap. With one thread (or zero endpoints) runs
     * inline. Rethrows the first exception any chunk raised.
     */
    void forEachChunk(std::size_t num_chunks,
                      const std::function<void(std::size_t)> &run);

  private:
    RemoteOptions options_;

    /** Parsed options_.sockets, one per shard slot. */
    std::vector<Endpoint> endpoints_;

    /**
     * Per-endpoint registry counters, named
     * remote.ep.<spec>.{connects,connect_failures,retries}, so
     * ppm_stats (and the merged multi-client view) can tell a flaky
     * shard from a healthy one. Empty when obs is compiled out.
     */
    struct EndpointMetrics
    {
        obs::Counter *connects = nullptr;
        obs::Counter *connect_failures = nullptr;
        obs::Counter *retries = nullptr;
    };
    std::vector<EndpointMetrics> endpoint_metrics_;

    /**
     * Latched per-socket failure flags: once a socket exhausts its
     * retries it is not attempted again for the client's lifetime, so
     * a killed server degrades to local evaluation instead of paying
     * the full retry schedule on every remaining chunk.
     */
    std::vector<std::atomic<bool>> socket_dead_;
};

} // namespace ppm::serve

#endif // PPM_SERVE_SHARDED_CLIENT_HH
