#include "serve/socket_io.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ppm::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw IoError(what + ": " + std::strerror(errno));
}

/** Milliseconds left before @p deadline, clamped to >= 0. */
int
remainingMs(Clock::time_point deadline)
{
    const auto left = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - Clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/**
 * Wait until @p fd is ready for @p events or @p deadline passes.
 * @throws IoError on poll failure or timeout.
 */
void
waitReady(int fd, short events, Clock::time_point deadline)
{
    for (;;) {
        struct pollfd pfd = {fd, events, 0};
        const int ms = remainingMs(deadline);
        const int rc = ::poll(&pfd, 1, ms);
        if (rc > 0)
            return;
        if (rc == 0)
            throw IoError("socket operation timed out");
        if (errno != EINTR)
            throwErrno("poll");
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throwErrno("fcntl(O_NONBLOCK)");
}

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw IoError("unix socket path invalid or too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

} // namespace

void
FdGuard::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

FdGuard
listenUnix(const std::string &path, int backlog)
{
    const sockaddr_un addr = unixAddress(path);
    FdGuard fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        throwErrno("socket");
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0)
        throwErrno("bind " + path);
    if (::listen(fd.get(), backlog) < 0)
        throwErrno("listen " + path);
    setNonBlocking(fd.get());
    return fd;
}

FdGuard
connectUnix(const std::string &path, int timeout_ms)
{
    const sockaddr_un addr = unixAddress(path);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    FdGuard fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        throwErrno("socket");
    setNonBlocking(fd.get());
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) == 0)
        return fd;
    if (errno != EINPROGRESS && errno != EAGAIN)
        throwErrno("connect " + path);
    waitReady(fd.get(), POLLOUT, deadline);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0)
        throwErrno("getsockopt(SO_ERROR)");
    if (err != 0) {
        errno = err;
        throwErrno("connect " + path);
    }
    return fd;
}

void
sendAll(int fd, const void *data, std::size_t size, int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        // MSG_NOSIGNAL: a peer that died mid-write must surface as
        // EPIPE (an IoError the caller retries), not kill the process.
        const ssize_t n = ::send(fd, bytes + sent, size - sent,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            waitReady(fd, POLLOUT, deadline);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        throwErrno("send");
    }
}

void
recvAll(int fd, void *data, std::size_t size, int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    auto *bytes = static_cast<std::uint8_t *>(data);
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, bytes + got, size - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)
            throw IoError("connection closed by peer");
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            waitReady(fd, POLLIN, deadline);
            continue;
        }
        if (errno == EINTR)
            continue;
        throwErrno("recv");
    }
}

void
writeFrame(int fd, const std::vector<std::uint8_t> &frame,
           int timeout_ms)
{
    sendAll(fd, frame.data(), frame.size(), timeout_ms);
}

Frame
readFrame(int fd, int timeout_ms)
{
    // Read the fixed header first: it bounds the rest of the read, so
    // an oversized or version-mismatched frame is rejected before any
    // payload allocation.
    std::vector<std::uint8_t> buf(kHeaderSize);
    recvAll(fd, buf.data(), kHeaderSize, timeout_ms);
    const FrameHeader header = decodeHeader(buf.data(), buf.size());
    const std::size_t rest = header.payload_len + kTrailerSize;
    buf.resize(kHeaderSize + rest);
    recvAll(fd, buf.data() + kHeaderSize, rest, timeout_ms);
    return decodeFrame(buf);
}

} // namespace ppm::serve
