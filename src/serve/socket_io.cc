#include "serve/socket_io.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/fault_injector.hh"

namespace ppm::serve {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw IoError(what + ": " + std::strerror(errno));
}

/** Milliseconds left before @p deadline, clamped to >= 0. */
int
remainingMs(Clock::time_point deadline)
{
    const auto left = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - Clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/**
 * Wait until @p fd is ready for @p events or @p deadline passes.
 * @throws IoError on poll failure or timeout.
 */
void
waitReady(int fd, short events, Clock::time_point deadline)
{
    for (;;) {
        struct pollfd pfd = {fd, events, 0};
        const int ms = remainingMs(deadline);
        const int rc = ::poll(&pfd, 1, ms);
        if (rc > 0)
            return;
        if (rc == 0)
            throw IoError("socket operation timed out");
        if (errno != EINTR)
            throwErrno("poll");
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throwErrno("fcntl(O_NONBLOCK)");
}

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw IoError("unix socket path invalid or too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/** RAII owner of a getaddrinfo result list. */
struct AddrInfoGuard
{
    addrinfo *list = nullptr;
    ~AddrInfoGuard()
    {
        if (list != nullptr)
            ::freeaddrinfo(list);
    }
};

AddrInfoGuard
resolveTcp(const std::string &host, std::uint16_t port, bool passive)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
    const std::string service = std::to_string(port);
    AddrInfoGuard result;
    const int rc = ::getaddrinfo(host.c_str(), service.c_str(),
                                 &hints, &result.list);
    if (rc != 0)
        throw IoError("resolve " + host + ":" + service + ": " +
                      ::gai_strerror(rc));
    return result;
}

/**
 * Finish a non-blocking connect on @p fd: wait for writability, then
 * surface the socket error if the connect failed.
 */
void
finishConnect(int fd, Clock::time_point deadline,
              const std::string &what)
{
    waitReady(fd, POLLOUT, deadline);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0)
        throwErrno("getsockopt(SO_ERROR)");
    if (err != 0) {
        errno = err;
        throwErrno("connect " + what);
    }
}

} // namespace

void
FdGuard::reset(int fd)
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = fd;
}

FdGuard
listenUnix(const std::string &path, int backlog)
{
    const sockaddr_un addr = unixAddress(path);
    FdGuard fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        throwErrno("socket");
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0)
        throwErrno("bind " + path);
    if (::listen(fd.get(), backlog) < 0)
        throwErrno("listen " + path);
    setNonBlocking(fd.get());
    return fd;
}

FdGuard
connectUnix(const std::string &path, int timeout_ms)
{
    const sockaddr_un addr = unixAddress(path);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    FdGuard fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        throwErrno("socket");
    setNonBlocking(fd.get());
    if (::connect(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) == 0)
        return fd;
    if (errno != EINPROGRESS && errno != EAGAIN)
        throwErrno("connect " + path);
    finishConnect(fd.get(), deadline, path);
    return fd;
}

FdGuard
listenTcp(const std::string &host, std::uint16_t port, int backlog)
{
    const AddrInfoGuard addrs = resolveTcp(host, port, true);
    std::string last_error = "no addresses resolved";
    for (const addrinfo *ai = addrs.list; ai != nullptr;
         ai = ai->ai_next) {
        FdGuard fd(::socket(ai->ai_family,
                            ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol));
        if (!fd.valid()) {
            last_error = std::string("socket: ") +
                         std::strerror(errno);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) < 0 ||
            ::listen(fd.get(), backlog) < 0) {
            last_error = std::string("bind/listen: ") +
                         std::strerror(errno);
            continue;
        }
        setNonBlocking(fd.get());
        return fd;
    }
    throw IoError("listen " + host + ":" + std::to_string(port) +
                  ": " + last_error);
}

FdGuard
connectTcp(const std::string &host, std::uint16_t port,
           int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    const AddrInfoGuard addrs = resolveTcp(host, port, false);
    const std::string what = host + ":" + std::to_string(port);
    std::string last_error = "no addresses resolved";
    for (const addrinfo *ai = addrs.list; ai != nullptr;
         ai = ai->ai_next) {
        FdGuard fd(::socket(ai->ai_family,
                            ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol));
        if (!fd.valid()) {
            last_error = std::string("socket: ") +
                         std::strerror(errno);
            continue;
        }
        setNonBlocking(fd.get());
        try {
            if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
                if (errno != EINPROGRESS && errno != EAGAIN)
                    throwErrno("connect " + what);
                finishConnect(fd.get(), deadline, what);
            }
        } catch (const IoError &e) {
            last_error = e.what();
            continue;
        }
        setTcpNoDelay(fd.get());
        return fd;
    }
    throw IoError("connect " + what + ": " + last_error);
}

std::uint16_t
boundTcpPort(int fd)
{
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0)
        throwErrno("getsockname");
    if (addr.ss_family == AF_INET)
        return ntohs(
            reinterpret_cast<const sockaddr_in *>(&addr)->sin_port);
    if (addr.ss_family == AF_INET6)
        return ntohs(
            reinterpret_cast<const sockaddr_in6 *>(&addr)->sin6_port);
    throw IoError("getsockname: not a TCP socket");
}

void
setTcpNoDelay(int fd)
{
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
}

void
sendAll(int fd, const void *data, std::size_t size, int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        // MSG_NOSIGNAL: a peer that died mid-write must surface as
        // EPIPE (an IoError the caller retries), not kill the process.
        const ssize_t n = ::send(fd, bytes + sent, size - sent,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            waitReady(fd, POLLOUT, deadline);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        throwErrno("send");
    }
}

void
recvAll(int fd, void *data, std::size_t size, int timeout_ms)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    auto *bytes = static_cast<std::uint8_t *>(data);
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd, bytes + got, size - got, 0);
        if (n > 0) {
            got += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)
            throw IoError("connection closed by peer");
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            waitReady(fd, POLLIN, deadline);
            continue;
        }
        if (errno == EINTR)
            continue;
        throwErrno("recv");
    }
}

void
writeFrame(int fd, const std::vector<std::uint8_t> &frame,
           int timeout_ms)
{
    const std::shared_ptr<FaultInjector> injector =
        FaultInjector::active();
    if (!injector) {
        sendAll(fd, frame.data(), frame.size(), timeout_ms);
        return;
    }
    const FaultInjector::Decision d =
        injector->nextSendFault(frame.size());
    switch (d.kind) {
      case FaultKind::None:
        sendAll(fd, frame.data(), frame.size(), timeout_ms);
        return;
      case FaultKind::Drop:
        // Swallowed: the sender believes it succeeded, the peer's
        // read runs into its timeout.
        return;
      case FaultKind::Delay:
      case FaultKind::Stall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(d.sleep_ms));
        // A stall sized past the peer's read timeout typically makes
        // this send fail with EPIPE once the peer gave up — exactly
        // the IoError the retry machinery expects.
        sendAll(fd, frame.data(), frame.size(), timeout_ms);
        return;
      case FaultKind::Truncate:
        sendAll(fd, frame.data(),
                static_cast<std::size_t>(d.target), timeout_ms);
        // EOF mid-frame on the peer, instead of a silent short frame
        // that would stall it until timeout.
        ::shutdown(fd, SHUT_WR);
        return;
      case FaultKind::BitFlip: {
        std::vector<std::uint8_t> corrupted = frame;
        corrupted[d.target / 8] ^= static_cast<std::uint8_t>(
            1u << (d.target % 8));
        sendAll(fd, corrupted.data(), corrupted.size(), timeout_ms);
        return;
      }
      case FaultKind::Reset:
        ::shutdown(fd, SHUT_RDWR);
        throw IoError("fault injection: connection reset");
    }
}

Frame
readFrame(int fd, int timeout_ms)
{
    // Read the fixed header first: it bounds the rest of the read, so
    // an oversized or version-mismatched frame is rejected before any
    // payload allocation.
    std::vector<std::uint8_t> buf(kHeaderSize);
    recvAll(fd, buf.data(), kHeaderSize, timeout_ms);
    const FrameHeader header = decodeHeader(buf.data(), buf.size());
    // v4 frames carry a trace-context block between header and
    // payload; the version in the validated header sizes it.
    const std::size_t rest = traceBlockSize(header.version) +
                             header.payload_len + kTrailerSize;
    buf.resize(kHeaderSize + rest);
    recvAll(fd, buf.data() + kHeaderSize, rest, timeout_ms);
    return decodeFrame(buf);
}

} // namespace ppm::serve
