/**
 * @file
 * ResultArchive: an append-only on-disk memo log of simulation
 * results (design-point key → metric value), CRC-checked per record.
 *
 * File format (all integers little-endian):
 *
 *     header:  u32 magic 'PPMA'    (0x50504D41)
 *              u16 version
 *              u32 context_len, context bytes, u32 crc(context)
 *     record:  u32 payload_len, payload, u32 crc(payload)
 *     payload: u32 key_len, i64 key[key_len], f64 value
 *
 * The context string names the oracle the archive belongs to
 * (benchmark, trace length, warmup, metric); opening an archive with
 * a different context fails rather than silently mixing result sets.
 *
 * Crash recovery: on open, records are scanned sequentially; the
 * first truncated or CRC-corrupted record marks the recovered end of
 * the log — earlier records load normally, the corrupt tail is
 * counted in recordsSkipped() and truncated away so subsequent
 * appends re-establish a clean log.
 *
 * Concurrency: appends are single write() calls made under an
 * exclusive flock(), so multiple oracles — including oracles in
 * different processes (the sharded simulation servers) — can share
 * one archive file.
 */

#ifndef PPM_SERVE_RESULT_ARCHIVE_HH
#define PPM_SERVE_RESULT_ARCHIVE_HH

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/oracle.hh"

namespace ppm::serve {

/** Archive cannot be opened, is for another context, or I/O failed. */
class ArchiveError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

class ResultArchive final : public core::ResultStore
{
  public:
    /**
     * Open (creating if absent) the archive at @p path for
     * @p context, loading every intact record and truncating any
     * corrupt tail.
     * @throws ArchiveError on I/O failure or context mismatch.
     */
    ResultArchive(std::string path, std::string context);
    ~ResultArchive() override;

    ResultArchive(const ResultArchive &) = delete;
    ResultArchive &operator=(const ResultArchive &) = delete;

    /** Replay the records loaded at open time. */
    void load(const std::function<void(const Key &, double)> &sink)
        override;

    /** Durably append one record (single write under flock). */
    void append(const Key &key, double value) override;

    /** Intact records loaded at open time. */
    std::size_t recordsLoaded() const { return entries_.size(); }

    /**
     * Corrupt or truncated trailing records detected (and truncated
     * away) at open time.
     */
    std::size_t recordsSkipped() const { return skipped_; }

    const std::string &path() const { return path_; }
    const std::string &context() const { return context_; }

    /**
     * Canonical archive file name for one oracle context, e.g.
     * "mcf_t100000_w15000_CPI.ppma".
     */
    static std::string fileNameFor(const std::string &benchmark,
                                   std::uint64_t trace_length,
                                   std::uint64_t warmup,
                                   core::Metric metric);

  private:
    void openAndRecover();

    std::string path_;
    std::string context_;
    int fd_ = -1;
    std::vector<std::pair<Key, double>> entries_;
    std::size_t skipped_ = 0;
    std::mutex mutex_;
};

} // namespace ppm::serve

#endif // PPM_SERVE_RESULT_ARCHIVE_HH
