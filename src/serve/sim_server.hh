/**
 * @file
 * SimServer: the process-level sharding backend. Listens on a
 * Unix-domain socket or a TCP endpoint (see transport.hh for the
 * spec grammar), owns one memoizing SimulatorOracle per
 * benchmark-trace context, and services EvalRequest batches from a
 * pool of worker threads (every worker accepts connections, so
 * num_workers requests proceed concurrently; each oracle additionally
 * fans its batch across the process-wide thread pool).
 *
 * Clients shard batches across one or more servers (one ppm_serve
 * process per socket) with RemoteOracle; results are bit-identical to
 * local evaluation because the cycle-level simulator is deterministic
 * in (trace, config, options) and traces are regenerated from the
 * benchmark profile on the server side.
 *
 * With ServerOptions::archive_dir set, every oracle persists its
 * results through a ResultArchive, so simulations survive server
 * restarts and are shared between servers pointed at the same
 * directory.
 *
 * The same server is also the prediction plane: with
 * ServerOptions::predict_snapshot and/or model_dir set it hosts a
 * trained model snapshot (see model_snapshot.hh) behind a
 * hot-swappable ModelHost and answers PREDICT / MODEL frames — batch
 * predictions with a model-version echo, snapshot metadata queries,
 * and snapshot pushes that swap the model with zero downtime.
 */

#ifndef PPM_SERVE_SIM_SERVER_HH
#define PPM_SERVE_SIM_SERVER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hh"
#include "core/oracle.hh"
#include "dspace/design_space.hh"
#include "serve/drift_monitor.hh"
#include "serve/model_host.hh"
#include "serve/protocol.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"
#include "trace/trace.hh"

namespace ppm::serve {

struct ServerOptions
{
    /**
     * Endpoint to listen on: a Unix-domain socket path or a TCP
     * "host:port" spec (port 0 = kernel-assigned; read the bound
     * endpoint back with endpointSpec()). Required.
     */
    std::string socket_path;
    /** Concurrent request-serving workers (>= 1). */
    unsigned num_workers = 1;
    /**
     * Directory for per-context ResultArchive files; empty disables
     * persistence. Created if absent.
     */
    std::string archive_dir;
    /** Per-socket-operation timeout for request/response I/O. */
    int io_timeout_ms = 120'000;
    /** Reject requests asking for traces longer than this. */
    std::uint64_t max_trace_length = 50'000'000;
    /** Log accepted requests and errors to stderr. */
    bool verbose = false;
    /**
     * Model snapshot to serve PREDICT queries from; empty = no model
     * preloaded (one may still arrive via ModelPush or model_dir).
     * start() throws SnapshotError when the file does not decode.
     */
    std::string predict_snapshot;
    /**
     * Directory watched for "*.ppmm" snapshots; any new or changed
     * file carrying a greater model_version is hot-swapped in. Empty
     * disables the watcher.
     */
    std::string model_dir;
    /** Poll interval of the model_dir watcher. */
    int model_poll_ms = 200;
    /**
     * Memory budget of the server's shared result cache in MiB;
     * 0 = PPM_CACHE_MB (or its built-in default). All the server's
     * oracles memoize through this one table, so contexts that differ
     * only in Metric share each other's simulations.
     */
    std::size_t cache_mb = 0;
    /**
     * Model-drift monitoring of served PREDICT queries (off unless
     * drift.sample_every > 0); see drift_monitor.hh.
     */
    DriftOptions drift;
};

class SimServer
{
  public:
    explicit SimServer(ServerOptions options);

    /** Stops the server if still running. */
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /**
     * Bind the socket and spawn the worker pool. Returns once the
     * server accepts connections.
     * @throws IoError when the socket cannot be created.
     */
    void start();

    /**
     * Shut down: stop accepting, sever in-flight connections, join
     * all workers, unlink the socket path. Idempotent.
     */
    void stop();

    bool running() const { return started_; }
    const std::string &socketPath() const
    {
        return options_.socket_path;
    }

    /**
     * The endpoint actually bound, valid after start(). For a TCP
     * spec with port 0 this carries the kernel-assigned port, so it
     * is the string clients should connect to.
     */
    std::string endpointSpec() const { return endpoint_.display(); }

    /** EvalRequests answered (successfully) so far. */
    std::uint64_t
    requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /** Fresh simulations executed across all oracles. */
    std::uint64_t totalEvaluations() const;

    /** Distinct (benchmark, trace, options, metric) oracles created. */
    std::uint64_t oracleCount() const;

    /** Active model version (0 = no model hosted). */
    std::uint64_t modelVersion() const { return model_host_.version(); }

    /** Times the hosted model was hot-swapped (first load excluded). */
    std::uint64_t modelSwaps() const { return model_host_.swaps(); }

    /** The hot-swappable model slot (tests install models directly). */
    ModelHost &modelHost() { return model_host_; }

    /** The shared result cache every backend memoizes through. */
    const cache::ResultCache &resultCache() const { return *cache_; }

    /** The PREDICT shadow-sampling drift monitor (tests inspect it). */
    const DriftMonitor &driftMonitor() const { return drift_; }

  private:
    /** One benchmark-trace oracle and the trace backing it. */
    struct Backend
    {
        trace::Trace trace;
        std::unique_ptr<core::SimulatorOracle> oracle;
    };

    Backend &backendFor(const EvalRequest &req);
    void workerLoop();
    void serveConnection(int fd);
    std::vector<std::uint8_t> handleRequest(const Frame &frame);
    std::vector<std::uint8_t> handlePredict(const Frame &frame);
    std::vector<std::uint8_t> handleModelInfo(const Frame &frame);
    std::vector<std::uint8_t> handleModelPush(const Frame &frame);
    std::vector<std::uint8_t> handleTrace(const Frame &frame);
    /** Cache context id of a simulation context key (allocating). */
    std::int64_t contextIdFor(const std::string &sim_key);

    ServerOptions options_;
    dspace::DesignSpace space_;
    Endpoint endpoint_;
    FdGuard listen_fd_;
    int stop_pipe_[2] = {-1, -1};
    std::vector<std::thread> workers_;
    std::atomic<bool> stopping_{false};
    bool started_ = false;

    mutable std::mutex backends_mutex_;
    std::map<std::string, std::unique_ptr<Backend>> backends_;
    /**
     * One table for every backend. Oracles sharing a simulation
     * context (benchmark, trace length, warmup) get the same context
     * id — differing only in Metric — so one oracle's simulation
     * fills its siblings' entries.
     */
    std::shared_ptr<cache::ResultCache> cache_;
    std::map<std::string, std::int64_t> sim_context_ids_;

    std::mutex conns_mutex_;
    std::set<int> conns_;

    std::atomic<std::uint64_t> requests_{0};
    ModelHost model_host_;
    DriftMonitor drift_;
};

} // namespace ppm::serve

#endif // PPM_SERVE_SIM_SERVER_HH
