#include "serve/fault_injector.hh"

#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "math/rng.hh"

namespace ppm::serve {

namespace {

std::mutex g_active_mutex;
std::shared_ptr<FaultInjector> g_active;
bool g_env_checked = false;

double
parseProbability(const std::string &key, const std::string &value)
{
    std::size_t used = 0;
    double p = 0.0;
    try {
        p = std::stod(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != value.size() || p < 0.0 || p > 1.0)
        throw std::invalid_argument("fault spec: " + key +
                                    " must be a probability in "
                                    "[0, 1], got '" + value + "'");
    return p;
}

long
parseInteger(const std::string &key, const std::string &value)
{
    std::size_t used = 0;
    long n = 0;
    try {
        n = std::stol(value, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != value.size() || n < 0)
        throw std::invalid_argument("fault spec: " + key +
                                    " must be a non-negative "
                                    "integer, got '" + value + "'");
    return n;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::Drop:
        return "drop";
      case FaultKind::Delay:
        return "delay";
      case FaultKind::Stall:
        return "stall";
      case FaultKind::Truncate:
        return "truncate";
      case FaultKind::BitFlip:
        return "bitflip";
      case FaultKind::Reset:
        return "reset";
    }
    return "unknown";
}

FaultSpec
FaultSpec::parse(const std::string &text)
{
    FaultSpec spec;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t sep = text.find_first_of(";,", start);
        if (sep == std::string::npos)
            sep = text.size();
        const std::string item = text.substr(start, sep - start);
        start = sep + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "fault spec: expected key=value, got '" + item + "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "seed")
            spec.seed = static_cast<std::uint64_t>(
                parseInteger(key, value));
        else if (key == "drop")
            spec.drop = parseProbability(key, value);
        else if (key == "delay")
            spec.delay = parseProbability(key, value);
        else if (key == "stall")
            spec.stall = parseProbability(key, value);
        else if (key == "truncate")
            spec.truncate = parseProbability(key, value);
        else if (key == "bitflip")
            spec.bitflip = parseProbability(key, value);
        else if (key == "reset")
            spec.reset = parseProbability(key, value);
        else if (key == "delay_ms")
            spec.delay_ms = static_cast<int>(parseInteger(key, value));
        else if (key == "stall_ms")
            spec.stall_ms = static_cast<int>(parseInteger(key, value));
        else
            throw std::invalid_argument(
                "fault spec: unknown key '" + key + "'");
    }
    const double total = spec.drop + spec.delay + spec.stall +
                         spec.truncate + spec.bitflip + spec.reset;
    if (total > 1.0)
        throw std::invalid_argument(
            "fault spec: fault probabilities sum to " +
            std::to_string(total) + " > 1");
    return spec;
}

FaultInjector::Decision
FaultInjector::decide(std::uint64_t index,
                      std::size_t frame_size) const
{
    math::Rng rng = math::Rng::stream(spec_.seed, index);
    const double u = rng.uniform();
    // The aux draw happens unconditionally so a decision's shape
    // never depends on which faults are enabled around it.
    const std::uint64_t aux = rng.next();

    Decision d;
    double edge = spec_.drop;
    if (u < edge) {
        d.kind = FaultKind::Drop;
        return d;
    }
    edge += spec_.delay;
    if (u < edge) {
        d.kind = FaultKind::Delay;
        d.sleep_ms = spec_.delay_ms;
        return d;
    }
    edge += spec_.stall;
    if (u < edge) {
        d.kind = FaultKind::Stall;
        d.sleep_ms = spec_.stall_ms;
        return d;
    }
    edge += spec_.truncate;
    if (u < edge) {
        d.kind = FaultKind::Truncate;
        d.target = frame_size > 0 ? aux % frame_size : 0;
        return d;
    }
    edge += spec_.bitflip;
    if (u < edge) {
        d.kind = FaultKind::BitFlip;
        d.target = frame_size > 0 ? aux % (frame_size * 8) : 0;
        return d;
    }
    edge += spec_.reset;
    if (u < edge) {
        d.kind = FaultKind::Reset;
        return d;
    }
    return d;
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t total = 0;
    for (int k = 1; k < kFaultKinds; ++k)
        total += counts_[k].load(std::memory_order_relaxed);
    return total;
}

void
FaultInjector::install(std::shared_ptr<FaultInjector> injector)
{
    std::lock_guard<std::mutex> lock(g_active_mutex);
    g_env_checked = true; // explicit install overrides the env path
    g_active = std::move(injector);
}

std::shared_ptr<FaultInjector>
FaultInjector::active()
{
    std::lock_guard<std::mutex> lock(g_active_mutex);
    if (!g_env_checked) {
        g_env_checked = true;
        if (const char *text = std::getenv(kFaultSpecEnvVar);
            text != nullptr && *text != '\0')
            g_active = std::make_shared<FaultInjector>(
                FaultSpec::parse(text));
    }
    return g_active;
}

} // namespace ppm::serve
