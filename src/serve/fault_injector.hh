/**
 * @file
 * Deterministic transport-layer fault injection: the test seam the
 * chaos suite drives, and a field tool for rehearsing network
 * failures against real deployments.
 *
 * A FaultSpec describes independent per-frame fault probabilities.
 * When an injector is installed (explicitly via install(), or from
 * the PPM_FAULT_SPEC environment variable on first use), every frame
 * written through serve::writeFrame — client requests and server
 * replies on both Unix and TCP transports — consults it and may be:
 *
 *     drop       swallowed entirely (the peer's read times out)
 *     delay      sent after sleeping delay_ms (still within timeout)
 *     stall      sent after sleeping stall_ms (sized to overrun the
 *                peer's read timeout)
 *     truncate   cut short, then the write side is shut down so the
 *                peer sees EOF mid-frame
 *     bitflip    one bit of the encoded frame inverted (the CRC or
 *                header validation must catch it on the peer)
 *     reset      the connection torn down and IoError raised at the
 *                sender
 *
 * Decisions are a pure function of (spec.seed, frame sequence
 * number) via math::Rng::stream, so a given spec always produces the
 * same decision sequence — and because every fault surfaces as an
 * IoError/ProtocolError that the retry/backoff/dead-latch/fallback
 * machinery already handles, results stay bit-identical to a
 * fault-free run no matter which frames are hit.
 *
 * Spec grammar (key=value, ';' or ',' separated):
 *
 *     seed=42;drop=0.2;delay=0.1;delay_ms=5;stall=0.05;stall_ms=700;
 *     truncate=0.1;bitflip=0.1;reset=0.1
 *
 * Probabilities must lie in [0, 1] and sum to at most 1.
 */

#ifndef PPM_SERVE_FAULT_INJECTOR_HH
#define PPM_SERVE_FAULT_INJECTOR_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace ppm::serve {

/** Environment variable holding the fault spec. */
inline constexpr const char *kFaultSpecEnvVar = "PPM_FAULT_SPEC";

enum class FaultKind : int
{
    None = 0,
    Drop,
    Delay,
    Stall,
    Truncate,
    BitFlip,
    Reset,
};

/** Number of FaultKind values (for counters). */
inline constexpr int kFaultKinds = 7;

const char *faultKindName(FaultKind kind);

/** Per-frame fault probabilities and fault shaping knobs. */
struct FaultSpec
{
    std::uint64_t seed = 1;
    double drop = 0.0;
    double delay = 0.0;
    double stall = 0.0;
    double truncate = 0.0;
    double bitflip = 0.0;
    double reset = 0.0;
    /** Sleep before sending a delayed frame (keep under timeouts). */
    int delay_ms = 5;
    /** Sleep before sending a stalled frame (size past timeouts). */
    int stall_ms = 700;

    /**
     * Parse the grammar in the file comment.
     * @throws std::invalid_argument on unknown keys, unparsable
     *         values, probabilities outside [0, 1], or a total fault
     *         probability above 1.
     */
    static FaultSpec parse(const std::string &text);
};

class FaultInjector
{
  public:
    explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

    /** What to do to one frame. */
    struct Decision
    {
        FaultKind kind = FaultKind::None;
        int sleep_ms = 0;       //!< Delay/Stall: sleep before sending
        std::uint64_t target = 0; //!< BitFlip: bit, Truncate: length
    };

    /**
     * Pure decision function: the fate of frame @p index of
     * @p frame_size bytes. Depends only on (spec.seed, index), never
     * on thread or wall clock.
     */
    Decision decide(std::uint64_t index,
                    std::size_t frame_size) const;

    /** Decision for the next frame (advances the sequence). */
    Decision
    nextSendFault(std::size_t frame_size)
    {
        const std::uint64_t index =
            frames_.fetch_add(1, std::memory_order_relaxed);
        const Decision d = decide(index, frame_size);
        counts_[static_cast<int>(d.kind)].fetch_add(
            1, std::memory_order_relaxed);
        return d;
    }

    /** Frames that consulted the injector so far. */
    std::uint64_t
    framesSeen() const
    {
        return frames_.load(std::memory_order_relaxed);
    }

    /** Frames that drew @p kind so far. */
    std::uint64_t
    count(FaultKind kind) const
    {
        return counts_[static_cast<int>(kind)].load(
            std::memory_order_relaxed);
    }

    /** Frames that drew any fault (everything but None). */
    std::uint64_t injectedTotal() const;

    const FaultSpec &spec() const { return spec_; }

    /**
     * Install @p injector as the process-wide interposer consulted by
     * writeFrame (nullptr uninstalls). Overrides any env-configured
     * injector.
     */
    static void install(std::shared_ptr<FaultInjector> injector);

    /**
     * The active interposer, or nullptr. On first call, constructs
     * one from PPM_FAULT_SPEC if set (a malformed spec throws
     * std::invalid_argument once, loudly, then stays disabled).
     */
    static std::shared_ptr<FaultInjector> active();

  private:
    FaultSpec spec_;
    std::atomic<std::uint64_t> frames_{0};
    std::array<std::atomic<std::uint64_t>, kFaultKinds> counts_{};
};

} // namespace ppm::serve

#endif // PPM_SERVE_FAULT_INJECTOR_HH
