/**
 * @file
 * Wire protocol of the sharded simulation service: length-prefixed,
 * versioned, CRC-checked binary frames carrying simulation requests
 * (benchmark, metric, seed, design points) and their results.
 *
 * Frame layout (all integers little-endian):
 *
 *     u32  magic        'PPMS' (0x50504D53)
 *     u16  version      kMinVersion..kVersion; others are rejected
 *     u16  type         MsgType
 *     u32  payload_len  <= kMaxPayload; oversized frames are rejected
 *                       before any allocation
 *     u8   trace[25]    v4+ only: trace context block (see below)
 *     u8   payload[payload_len]
 *     u32  crc          CRC-32 of trace block + payload (v4+), or of
 *                       the payload alone (v3)
 *
 * v4 extends the header with a W3C-traceparent-style trace context —
 * u64 trace_id_hi, u64 trace_id_lo, u64 parent_span_id, u8 flags
 * (bit 0 = sampled) — present in every v4 frame (all-zero when no
 * trace is active) so framing stays fixed-size per version. The block
 * is covered by the frame CRC, so corrupted trace bytes are rejected
 * exactly like corrupted payload bytes. v3 frames (no trace block)
 * are still accepted and replied to in kind: a v3 poller can sit on a
 * v4 server (see ScopedWireVersion).
 *
 * This layer is pure buffer encoding/decoding — no I/O — so malformed
 * frames can be unit-tested byte by byte. Every decode path
 * bounds-checks through PayloadReader and throws ProtocolError on any
 * inconsistency; no malformed input is undefined behaviour.
 */

#ifndef PPM_SERVE_PROTOCOL_HH
#define PPM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/oracle.hh"
#include "dspace/design_space.hh"
#include "obs/metrics.hh"
#include "obs/trace_context.hh"

namespace ppm::serve {

/** Malformed, oversized or version-mismatched wire data. */
class ProtocolError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** First four bytes of every frame. */
inline constexpr std::uint32_t kMagic = 0x50504D53u; // "PPMS"

/**
 * Protocol version of frames this build emits by default.
 * v2 added the Stats request/response pair; v3 added the PREDICT and
 * MODEL frame families of the prediction-serving plane; v4 added the
 * trace-context header block and the TRACE frame pair.
 */
inline constexpr std::uint16_t kVersion = 4;

/** Oldest version still accepted (v3 pollers poll v4 servers). */
inline constexpr std::uint16_t kMinVersion = 3;

/** Bytes before the payload: magic + version + type + payload_len. */
inline constexpr std::size_t kHeaderSize = 12;

/** v4+ trace block: trace_id hi/lo + parent_span_id + flags. */
inline constexpr std::size_t kTraceBlockSize = 25;

/** Bytes of trace block between header and payload for @p version. */
inline constexpr std::size_t
traceBlockSize(std::uint16_t version)
{
    return version >= 4 ? kTraceBlockSize : 0;
}

/** Bytes after the payload: the payload CRC. */
inline constexpr std::size_t kTrailerSize = 4;

/** Hard cap on payload_len; larger frames are rejected unread. */
inline constexpr std::uint32_t kMaxPayload = 16u << 20;

/** Hard cap on design points per request. */
inline constexpr std::uint32_t kMaxPoints = 1u << 20;

/** Hard cap on encoded strings (benchmark names, error messages). */
inline constexpr std::uint32_t kMaxString = 4096;

/**
 * Schema version of the Stats payload, carried inside the payload so
 * the metric layout can evolve without a whole-protocol bump.
 */
inline constexpr std::uint16_t kStatsVersion = 1;

/** Hard cap on metrics per section of a Stats payload. */
inline constexpr std::uint32_t kMaxStatsEntries = 4096;

/** Hard cap on histogram buckets in a Stats payload. */
inline constexpr std::uint32_t kMaxStatsBuckets = 64;

/**
 * Hard cap on an encoded model snapshot image carried in a ModelPush
 * frame (and on snapshot files; see model_snapshot.hh).
 */
inline constexpr std::uint32_t kMaxModelBytes = 8u << 20;

/** Schema version of the Trace payload (inside-payload, like Stats). */
inline constexpr std::uint16_t kTraceVersion = 1;

/** Hard cap on spans in one TraceResponse. */
inline constexpr std::uint32_t kMaxTraceSpans = 1u << 16;

enum class MsgType : std::uint16_t
{
    EvalRequest = 1,   //!< evaluate a batch of design points
    EvalResponse = 2,  //!< values for a batch, in request order
    Error = 3,         //!< request failed server-side; message inside
    Ping = 4,          //!< liveness probe, echoes a nonce
    Pong = 5,          //!< reply to Ping with the same nonce
    StatsRequest = 6,  //!< poll the server's metric registry
    StatsResponse = 7, //!< snapshot of the server's metric registry
    // v3: the prediction-serving plane.
    PredictRequest = 8,    //!< predict a batch from the loaded model
    PredictResponse = 9,   //!< predictions + model version echo
    ModelInfoRequest = 10, //!< query loaded-model metadata/version
    ModelInfoResponse = 11, //!< loaded-model metadata/version
    ModelPush = 12,        //!< push a snapshot image for hot-swap
    ModelPushAck = 13,     //!< result of a ModelPush
    // v4: distributed tracing.
    TraceRequest = 14,  //!< pull the server's sampled-span buffer
    TraceResponse = 15, //!< span buffer, stamped with pid/endpoint
};

/** A batch of design points to evaluate on a benchmark trace. */
struct EvalRequest
{
    std::string benchmark;      //!< profile name, e.g. "mcf"
    core::Metric metric = core::Metric::Cpi;
    std::uint64_t trace_length = 0; //!< instructions in the trace
    std::uint64_t warmup = 0;       //!< SimOptions::warmup_instructions
    /**
     * Base seed of the requesting sweep. The simulator is
     * deterministic so v1 servers do not consume it; it is carried so
     * stochastic backends can derive per-item streams with
     * Rng::stream(seed, index) without a protocol bump.
     */
    std::uint64_t seed = 0;
    std::vector<dspace::DesignPoint> points;
};

/** Result of an EvalRequest. */
struct EvalResponse
{
    std::vector<double> values; //!< one per request point, in order
    /**
     * Simulations actually executed for this request (points served
     * from the memo cache or archive cost none). Approximate when
     * other clients hit the same oracle concurrently.
     */
    std::uint64_t fresh_evaluations = 0;
    /** Oracle-lifetime simulation count after this request. */
    std::uint64_t total_evaluations = 0;
};

/** Server-side failure description. */
struct ErrorReply
{
    std::string message;
};

/** Which trained model a PredictRequest asks to evaluate. */
enum class ModelKind : std::uint16_t
{
    Rbf = 0,    //!< the RBF network (the paper's model)
    Linear = 1, //!< the linear regression baseline
};

/** A batch of raw design points to predict from the loaded model. */
struct PredictRequest
{
    ModelKind model = ModelKind::Rbf;
    std::vector<dspace::DesignPoint> points;
};

/** Result of a PredictRequest. */
struct PredictResponse
{
    /** Version of the snapshot that produced the values. */
    std::uint64_t model_version = 0;
    std::vector<double> values; //!< one per request point, in order
};

/** Metadata of the server's loaded model (ModelInfoResponse). */
struct ModelInfo
{
    bool loaded = false; //!< false = no snapshot installed yet
    std::uint64_t model_version = 0;
    std::string benchmark;
    core::Metric metric = core::Metric::Cpi;
    std::uint64_t trace_length = 0;
    std::uint64_t warmup = 0;
    std::uint32_t num_bases = 0;        //!< RBF hidden units
    std::uint32_t num_linear_terms = 0; //!< 0 = no linear baseline
    /** Design-space parameter names, in point order. */
    std::vector<std::string> param_names;
};

/** Result of a ModelPush. */
struct ModelPushAck
{
    /** True iff the pushed snapshot was installed (hot-swapped). */
    bool accepted = false;
    /** Active model version after the push (0 = none loaded). */
    std::uint64_t model_version = 0;
    /** Human-readable disposition ("installed", rejection reason). */
    std::string message;
};

/** One span pulled over the wire (TraceResponse body). */
struct TraceSpan
{
    std::uint64_t trace_hi = 0;
    std::uint64_t trace_lo = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    std::string name;
    std::uint64_t start_unix_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
};

/** Ask a server for its sampled spans. */
struct TraceRequest
{
    std::uint64_t nonce = 0;
    bool drain = false; //!< true: clear the server buffer after copy
};

/** A server's span buffer, stamped for cross-process merging. */
struct TraceDump
{
    std::uint32_t pid = 0;
    std::uint64_t dropped = 0;  //!< spans lost to the buffer cap
    std::string endpoint;       //!< server's listen spec ("" = local)
    std::vector<TraceSpan> spans;
};

/** A decoded frame: its type, trace context and raw payload bytes. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::uint16_t version = kVersion; //!< wire version it arrived in
    obs::TraceContext trace;          //!< zero for v3 frames
    std::vector<std::uint8_t> payload;
};

/** Header fields needed to size the rest of a frame read. */
struct FrameHeader
{
    MsgType type = MsgType::Error;
    std::uint16_t version = kVersion;
    std::uint32_t payload_len = 0;
};

/**
 * Pin the wire version encodeFrame() emits on this thread for a
 * scope — how a v4 server answers a v3 poller in v3 so the old
 * binary can parse the reply.
 */
class ScopedWireVersion
{
  public:
    explicit ScopedWireVersion(std::uint16_t version);
    ~ScopedWireVersion();

    ScopedWireVersion(const ScopedWireVersion &) = delete;
    ScopedWireVersion &operator=(const ScopedWireVersion &) = delete;

  private:
    std::uint16_t saved_;
};

/** The version encodeFrame() currently emits on this thread. */
std::uint16_t wireVersion();

// --- encoding ---------------------------------------------------------

std::vector<std::uint8_t> encodeEvalRequest(const EvalRequest &req);
std::vector<std::uint8_t> encodeEvalResponse(const EvalResponse &resp);
std::vector<std::uint8_t> encodeError(const ErrorReply &err);
std::vector<std::uint8_t> encodePing(std::uint64_t nonce);
std::vector<std::uint8_t> encodePong(std::uint64_t nonce);
std::vector<std::uint8_t> encodeStatsRequest(std::uint64_t nonce);
std::vector<std::uint8_t> encodeStatsResponse(const obs::Snapshot &snap);
std::vector<std::uint8_t> encodePredictRequest(
    const PredictRequest &req);
std::vector<std::uint8_t> encodePredictResponse(
    const PredictResponse &resp);
std::vector<std::uint8_t> encodeModelInfoRequest(std::uint64_t nonce);
std::vector<std::uint8_t> encodeModelInfoResponse(const ModelInfo &info);
std::vector<std::uint8_t> encodeModelPush(
    const std::vector<std::uint8_t> &snapshot_bytes);
std::vector<std::uint8_t> encodeModelPushAck(const ModelPushAck &ack);
std::vector<std::uint8_t> encodeTraceRequest(const TraceRequest &req);
std::vector<std::uint8_t> encodeTraceResponse(const TraceDump &dump);

/** Frame an arbitrary payload (building block of the encoders). */
std::vector<std::uint8_t> encodeFrame(
    MsgType type, const std::vector<std::uint8_t> &payload);

// --- decoding ---------------------------------------------------------

/**
 * Validate the first kHeaderSize bytes of a frame. Throws
 * ProtocolError on short input, bad magic, version mismatch, unknown
 * type, or a payload_len above kMaxPayload.
 */
FrameHeader decodeHeader(const std::uint8_t *data, std::size_t size);

/**
 * Decode one complete frame (header + payload + CRC trailer). The
 * buffer must contain exactly one frame; trailing bytes are rejected.
 */
Frame decodeFrame(const std::uint8_t *data, std::size_t size);
Frame decodeFrame(const std::vector<std::uint8_t> &bytes);

EvalRequest parseEvalRequest(const std::vector<std::uint8_t> &payload);
EvalResponse parseEvalResponse(const std::vector<std::uint8_t> &payload);
ErrorReply parseError(const std::vector<std::uint8_t> &payload);
std::uint64_t parsePing(const std::vector<std::uint8_t> &payload);
std::uint64_t parsePong(const std::vector<std::uint8_t> &payload);
std::uint64_t parseStatsRequest(const std::vector<std::uint8_t> &payload);
obs::Snapshot parseStatsResponse(const std::vector<std::uint8_t> &payload);
PredictRequest parsePredictRequest(
    const std::vector<std::uint8_t> &payload);
PredictResponse parsePredictResponse(
    const std::vector<std::uint8_t> &payload);
std::uint64_t parseModelInfoRequest(
    const std::vector<std::uint8_t> &payload);
ModelInfo parseModelInfoResponse(
    const std::vector<std::uint8_t> &payload);
std::vector<std::uint8_t> parseModelPush(
    const std::vector<std::uint8_t> &payload);
ModelPushAck parseModelPushAck(
    const std::vector<std::uint8_t> &payload);
TraceRequest parseTraceRequest(
    const std::vector<std::uint8_t> &payload);
TraceDump parseTraceResponse(
    const std::vector<std::uint8_t> &payload);

} // namespace ppm::serve

#endif // PPM_SERVE_PROTOCOL_HH
