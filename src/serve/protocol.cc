#include "serve/protocol.hh"

#include <cstring>

#include "serve/wire_codec.hh"
#include "util/crc32.hh"

namespace ppm::serve {

namespace {

bool
knownType(std::uint16_t t)
{
    return t >= static_cast<std::uint16_t>(MsgType::EvalRequest) &&
           t <= static_cast<std::uint16_t>(MsgType::TraceResponse);
}

thread_local std::uint16_t t_wire_version = kVersion;

std::vector<std::uint8_t>
encodeNonce(MsgType type, std::uint64_t nonce)
{
    PayloadWriter w;
    w.u64(nonce);
    return encodeFrame(type, w.take());
}

std::uint64_t
parseNonce(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    const std::uint64_t nonce = r.u64();
    r.expectEnd();
    return nonce;
}

} // namespace

ScopedWireVersion::ScopedWireVersion(std::uint16_t version)
    : saved_(t_wire_version)
{
    if (version < kMinVersion || version > kVersion)
        throw ProtocolError("unsupported wire version " +
                            std::to_string(version));
    t_wire_version = version;
}

ScopedWireVersion::~ScopedWireVersion() { t_wire_version = saved_; }

std::uint16_t
wireVersion()
{
    return t_wire_version;
}

std::vector<std::uint8_t>
encodeFrame(MsgType type, const std::vector<std::uint8_t> &payload)
{
    if (payload.size() > kMaxPayload)
        throw ProtocolError("payload exceeds kMaxPayload");
    const std::uint16_t version = t_wire_version;
    PayloadWriter w;
    w.u32(kMagic);
    w.u16(version);
    w.u16(static_cast<std::uint16_t>(type));
    w.u32(static_cast<std::uint32_t>(payload.size()));
    if (version >= 4) {
        // The trace block is CRC-covered header material: the CRC
        // runs over trace block + payload, so corrupted trace bytes
        // are rejected exactly like corrupted payload bytes.
        const obs::TraceContext ctx = obs::currentTraceContext();
        w.u64(ctx.trace_hi);
        w.u64(ctx.trace_lo);
        w.u64(ctx.parent_span_id);
        w.u8(ctx.flags);
    }
    std::vector<std::uint8_t> frame = w.take();
    frame.insert(frame.end(), payload.begin(), payload.end());
    PayloadWriter trailer;
    trailer.u32(util::crc32(frame.data() + kHeaderSize,
                            frame.size() - kHeaderSize));
    const auto crc = trailer.take();
    frame.insert(frame.end(), crc.begin(), crc.end());
    return frame;
}

FrameHeader
decodeHeader(const std::uint8_t *data, std::size_t size)
{
    if (size < kHeaderSize)
        throw ProtocolError("frame header truncated");
    PayloadReader r(data, kHeaderSize);
    if (r.u32() != kMagic)
        throw ProtocolError("bad frame magic");
    const std::uint16_t version = r.u16();
    if (version < kMinVersion || version > kVersion)
        throw ProtocolError("protocol version mismatch: got " +
                            std::to_string(version) + ", want " +
                            std::to_string(kMinVersion) + ".." +
                            std::to_string(kVersion));
    const std::uint16_t type = r.u16();
    if (!knownType(type))
        throw ProtocolError("unknown message type " +
                            std::to_string(type));
    const std::uint32_t payload_len = r.u32();
    if (payload_len > kMaxPayload)
        throw ProtocolError("frame payload oversized: " +
                            std::to_string(payload_len) + " bytes");
    return FrameHeader{static_cast<MsgType>(type), version,
                       payload_len};
}

Frame
decodeFrame(const std::uint8_t *data, std::size_t size)
{
    const FrameHeader header = decodeHeader(data, size);
    const std::size_t trace_size = traceBlockSize(header.version);
    const std::size_t want = kHeaderSize + trace_size +
                             header.payload_len + kTrailerSize;
    if (size < want)
        throw ProtocolError("frame truncated");
    if (size > want)
        throw ProtocolError("trailing bytes after frame");
    const std::uint8_t *body = data + kHeaderSize;
    const std::uint8_t *payload = body + trace_size;
    PayloadReader trailer(payload + header.payload_len, kTrailerSize);
    const std::uint32_t want_crc = trailer.u32();
    if (util::crc32(body, trace_size + header.payload_len) != want_crc)
        throw ProtocolError("frame CRC mismatch");
    Frame frame;
    frame.type = header.type;
    frame.version = header.version;
    if (trace_size != 0) {
        PayloadReader t(body, trace_size);
        frame.trace.trace_hi = t.u64();
        frame.trace.trace_lo = t.u64();
        frame.trace.parent_span_id = t.u64();
        frame.trace.flags = t.u8();
    }
    frame.payload.assign(payload, payload + header.payload_len);
    return frame;
}

Frame
decodeFrame(const std::vector<std::uint8_t> &bytes)
{
    return decodeFrame(bytes.data(), bytes.size());
}

std::vector<std::uint8_t>
encodeEvalRequest(const EvalRequest &req)
{
    PayloadWriter w;
    w.str(req.benchmark);
    w.u16(static_cast<std::uint16_t>(req.metric));
    w.u64(req.trace_length);
    w.u64(req.warmup);
    w.u64(req.seed);
    if (req.points.size() > kMaxPoints)
        throw ProtocolError("too many points in request");
    w.u32(static_cast<std::uint32_t>(req.points.size()));
    const std::size_t dims =
        req.points.empty() ? 0 : req.points.front().size();
    w.u32(static_cast<std::uint32_t>(dims));
    for (const auto &p : req.points) {
        if (p.size() != dims)
            throw ProtocolError("ragged point batch");
        for (double v : p)
            w.f64(v);
    }
    return encodeFrame(MsgType::EvalRequest, w.take());
}

EvalRequest
parseEvalRequest(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    EvalRequest req;
    req.benchmark = r.str();
    const std::uint16_t metric = r.u16();
    if (metric > static_cast<std::uint16_t>(
                     core::Metric::EnergyDelaySquared))
        throw ProtocolError("unknown metric " + std::to_string(metric));
    req.metric = static_cast<core::Metric>(metric);
    req.trace_length = r.u64();
    req.warmup = r.u64();
    req.seed = r.u64();
    const std::uint32_t n = r.u32();
    const std::uint32_t dims = r.u32();
    if (n > kMaxPoints)
        throw ProtocolError("too many points in request");
    if (dims > 256)
        throw ProtocolError("point dimensionality too large");
    if (r.remaining() != std::size_t{n} * dims * sizeof(double))
        throw ProtocolError("point data size mismatch");
    req.points.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        dspace::DesignPoint p(dims);
        for (auto &v : p)
            v = r.f64();
        req.points.push_back(std::move(p));
    }
    r.expectEnd();
    return req;
}

std::vector<std::uint8_t>
encodeEvalResponse(const EvalResponse &resp)
{
    PayloadWriter w;
    if (resp.values.size() > kMaxPoints)
        throw ProtocolError("too many values in response");
    w.u32(static_cast<std::uint32_t>(resp.values.size()));
    for (double v : resp.values)
        w.f64(v);
    w.u64(resp.fresh_evaluations);
    w.u64(resp.total_evaluations);
    return encodeFrame(MsgType::EvalResponse, w.take());
}

EvalResponse
parseEvalResponse(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    EvalResponse resp;
    const std::uint32_t n = r.u32();
    if (n > kMaxPoints)
        throw ProtocolError("too many values in response");
    if (r.remaining() != std::size_t{n} * sizeof(double) + 16)
        throw ProtocolError("response size mismatch");
    resp.values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        resp.values.push_back(r.f64());
    resp.fresh_evaluations = r.u64();
    resp.total_evaluations = r.u64();
    r.expectEnd();
    return resp;
}

std::vector<std::uint8_t>
encodeError(const ErrorReply &err)
{
    PayloadWriter w;
    w.str(err.message.size() <= kMaxString
              ? err.message
              : err.message.substr(0, kMaxString));
    return encodeFrame(MsgType::Error, w.take());
}

ErrorReply
parseError(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    ErrorReply err;
    err.message = r.str();
    r.expectEnd();
    return err;
}

std::vector<std::uint8_t>
encodePing(std::uint64_t nonce)
{
    return encodeNonce(MsgType::Ping, nonce);
}

std::vector<std::uint8_t>
encodePong(std::uint64_t nonce)
{
    return encodeNonce(MsgType::Pong, nonce);
}

std::uint64_t
parsePing(const std::vector<std::uint8_t> &payload)
{
    return parseNonce(payload);
}

std::uint64_t
parsePong(const std::vector<std::uint8_t> &payload)
{
    return parseNonce(payload);
}

std::vector<std::uint8_t>
encodeStatsRequest(std::uint64_t nonce)
{
    return encodeNonce(MsgType::StatsRequest, nonce);
}

std::uint64_t
parseStatsRequest(const std::vector<std::uint8_t> &payload)
{
    return parseNonce(payload);
}

std::vector<std::uint8_t>
encodeStatsResponse(const obs::Snapshot &snap)
{
    if (snap.counters.size() > kMaxStatsEntries ||
        snap.gauges.size() > kMaxStatsEntries ||
        snap.histograms.size() > kMaxStatsEntries)
        throw ProtocolError("too many metrics in stats response");
    PayloadWriter w;
    w.u16(kStatsVersion);
    w.u32(static_cast<std::uint32_t>(snap.counters.size()));
    for (const auto &c : snap.counters) {
        w.str(c.name);
        w.u64(c.value);
    }
    w.u32(static_cast<std::uint32_t>(snap.gauges.size()));
    for (const auto &g : snap.gauges) {
        w.str(g.name);
        w.u64(static_cast<std::uint64_t>(g.value));
    }
    w.u32(static_cast<std::uint32_t>(snap.histograms.size()));
    for (const auto &h : snap.histograms) {
        if (h.buckets.size() > kMaxStatsBuckets)
            throw ProtocolError("too many histogram buckets");
        w.str(h.name);
        w.u64(h.count);
        w.u64(h.total_ns);
        w.u32(static_cast<std::uint32_t>(h.buckets.size()));
        for (std::uint64_t b : h.buckets)
            w.u64(b);
    }
    return encodeFrame(MsgType::StatsResponse, w.take());
}

obs::Snapshot
parseStatsResponse(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    const std::uint16_t version = r.u16();
    if (version != kStatsVersion)
        throw ProtocolError("stats schema version mismatch: got " +
                            std::to_string(version) + ", want " +
                            std::to_string(kStatsVersion));
    obs::Snapshot snap;
    const std::uint32_t n_counters = r.u32();
    if (n_counters > kMaxStatsEntries)
        throw ProtocolError("too many counters in stats response");
    snap.counters.reserve(n_counters);
    for (std::uint32_t i = 0; i < n_counters; ++i) {
        obs::CounterValue c;
        c.name = r.str();
        c.value = r.u64();
        snap.counters.push_back(std::move(c));
    }
    const std::uint32_t n_gauges = r.u32();
    if (n_gauges > kMaxStatsEntries)
        throw ProtocolError("too many gauges in stats response");
    snap.gauges.reserve(n_gauges);
    for (std::uint32_t i = 0; i < n_gauges; ++i) {
        obs::GaugeValue g;
        g.name = r.str();
        g.value = static_cast<std::int64_t>(r.u64());
        snap.gauges.push_back(std::move(g));
    }
    const std::uint32_t n_hists = r.u32();
    if (n_hists > kMaxStatsEntries)
        throw ProtocolError("too many histograms in stats response");
    snap.histograms.reserve(n_hists);
    for (std::uint32_t i = 0; i < n_hists; ++i) {
        obs::HistogramValue h;
        h.name = r.str();
        h.count = r.u64();
        h.total_ns = r.u64();
        const std::uint32_t n_buckets = r.u32();
        if (n_buckets > kMaxStatsBuckets)
            throw ProtocolError("too many histogram buckets");
        if (r.remaining() <
            std::size_t{n_buckets} * sizeof(std::uint64_t))
            throw ProtocolError("histogram bucket data truncated");
        h.buckets.reserve(n_buckets);
        for (std::uint32_t b = 0; b < n_buckets; ++b)
            h.buckets.push_back(r.u64());
        snap.histograms.push_back(std::move(h));
    }
    r.expectEnd();
    return snap;
}

std::vector<std::uint8_t>
encodePredictRequest(const PredictRequest &req)
{
    PayloadWriter w;
    w.u16(static_cast<std::uint16_t>(req.model));
    if (req.points.size() > kMaxPoints)
        throw ProtocolError("too many points in request");
    w.u32(static_cast<std::uint32_t>(req.points.size()));
    const std::size_t dims =
        req.points.empty() ? 0 : req.points.front().size();
    w.u32(static_cast<std::uint32_t>(dims));
    for (const auto &p : req.points) {
        if (p.size() != dims)
            throw ProtocolError("ragged point batch");
        for (double v : p)
            w.f64(v);
    }
    return encodeFrame(MsgType::PredictRequest, w.take());
}

PredictRequest
parsePredictRequest(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    PredictRequest req;
    const std::uint16_t model = r.u16();
    if (model > static_cast<std::uint16_t>(ModelKind::Linear))
        throw ProtocolError("unknown model kind " +
                            std::to_string(model));
    req.model = static_cast<ModelKind>(model);
    const std::uint32_t n = r.u32();
    const std::uint32_t dims = r.u32();
    if (n > kMaxPoints)
        throw ProtocolError("too many points in request");
    if (dims > 256)
        throw ProtocolError("point dimensionality too large");
    if (r.remaining() != std::size_t{n} * dims * sizeof(double))
        throw ProtocolError("point data size mismatch");
    req.points.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        dspace::DesignPoint p(dims);
        for (auto &v : p)
            v = r.f64();
        req.points.push_back(std::move(p));
    }
    r.expectEnd();
    return req;
}

std::vector<std::uint8_t>
encodePredictResponse(const PredictResponse &resp)
{
    PayloadWriter w;
    w.u64(resp.model_version);
    if (resp.values.size() > kMaxPoints)
        throw ProtocolError("too many values in response");
    w.u32(static_cast<std::uint32_t>(resp.values.size()));
    for (double v : resp.values)
        w.f64(v);
    return encodeFrame(MsgType::PredictResponse, w.take());
}

PredictResponse
parsePredictResponse(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    PredictResponse resp;
    resp.model_version = r.u64();
    const std::uint32_t n = r.u32();
    if (n > kMaxPoints)
        throw ProtocolError("too many values in response");
    if (r.remaining() != std::size_t{n} * sizeof(double))
        throw ProtocolError("response size mismatch");
    resp.values.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        resp.values.push_back(r.f64());
    r.expectEnd();
    return resp;
}

std::vector<std::uint8_t>
encodeModelInfoRequest(std::uint64_t nonce)
{
    return encodeNonce(MsgType::ModelInfoRequest, nonce);
}

std::uint64_t
parseModelInfoRequest(const std::vector<std::uint8_t> &payload)
{
    return parseNonce(payload);
}

std::vector<std::uint8_t>
encodeModelInfoResponse(const ModelInfo &info)
{
    PayloadWriter w;
    w.u16(info.loaded ? 1 : 0);
    w.u64(info.model_version);
    w.str(info.benchmark);
    w.u16(static_cast<std::uint16_t>(info.metric));
    w.u64(info.trace_length);
    w.u64(info.warmup);
    w.u32(info.num_bases);
    w.u32(info.num_linear_terms);
    if (info.param_names.size() > 256)
        throw ProtocolError("too many parameter names");
    w.u32(static_cast<std::uint32_t>(info.param_names.size()));
    for (const std::string &name : info.param_names)
        w.str(name);
    return encodeFrame(MsgType::ModelInfoResponse, w.take());
}

ModelInfo
parseModelInfoResponse(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    ModelInfo info;
    const std::uint16_t loaded = r.u16();
    if (loaded > 1)
        throw ProtocolError("bad loaded flag in model info");
    info.loaded = loaded == 1;
    info.model_version = r.u64();
    info.benchmark = r.str();
    const std::uint16_t metric = r.u16();
    if (metric > static_cast<std::uint16_t>(
                     core::Metric::EnergyDelaySquared))
        throw ProtocolError("unknown metric " + std::to_string(metric));
    info.metric = static_cast<core::Metric>(metric);
    info.trace_length = r.u64();
    info.warmup = r.u64();
    info.num_bases = r.u32();
    info.num_linear_terms = r.u32();
    const std::uint32_t n_params = r.u32();
    if (n_params > 256)
        throw ProtocolError("too many parameter names");
    info.param_names.reserve(n_params);
    for (std::uint32_t i = 0; i < n_params; ++i)
        info.param_names.push_back(r.str());
    r.expectEnd();
    return info;
}

std::vector<std::uint8_t>
encodeModelPush(const std::vector<std::uint8_t> &snapshot_bytes)
{
    if (snapshot_bytes.size() > kMaxModelBytes)
        throw ProtocolError("snapshot image exceeds kMaxModelBytes");
    PayloadWriter w;
    w.u32(static_cast<std::uint32_t>(snapshot_bytes.size()));
    std::vector<std::uint8_t> payload = w.take();
    payload.insert(payload.end(), snapshot_bytes.begin(),
                   snapshot_bytes.end());
    return encodeFrame(MsgType::ModelPush, payload);
}

std::vector<std::uint8_t>
parseModelPush(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    const std::uint32_t len = r.u32();
    if (len > kMaxModelBytes)
        throw ProtocolError("snapshot image exceeds kMaxModelBytes");
    if (r.remaining() != len)
        throw ProtocolError("snapshot image size mismatch");
    const std::size_t offset = payload.size() - len;
    return std::vector<std::uint8_t>(
        payload.begin() + static_cast<std::ptrdiff_t>(offset),
        payload.end());
}

std::vector<std::uint8_t>
encodeModelPushAck(const ModelPushAck &ack)
{
    PayloadWriter w;
    w.u16(ack.accepted ? 1 : 0);
    w.u64(ack.model_version);
    w.str(ack.message.size() <= kMaxString
              ? ack.message
              : ack.message.substr(0, kMaxString));
    return encodeFrame(MsgType::ModelPushAck, w.take());
}

ModelPushAck
parseModelPushAck(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    ModelPushAck ack;
    const std::uint16_t accepted = r.u16();
    if (accepted > 1)
        throw ProtocolError("bad accepted flag in push ack");
    ack.accepted = accepted == 1;
    ack.model_version = r.u64();
    ack.message = r.str();
    r.expectEnd();
    return ack;
}

std::vector<std::uint8_t>
encodeTraceRequest(const TraceRequest &req)
{
    PayloadWriter w;
    w.u64(req.nonce);
    w.u8(req.drain ? 1 : 0);
    return encodeFrame(MsgType::TraceRequest, w.take());
}

TraceRequest
parseTraceRequest(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    TraceRequest req;
    req.nonce = r.u64();
    const std::uint8_t drain = r.u8();
    if (drain > 1)
        throw ProtocolError("bad drain flag in trace request");
    req.drain = drain == 1;
    r.expectEnd();
    return req;
}

std::vector<std::uint8_t>
encodeTraceResponse(const TraceDump &dump)
{
    if (dump.spans.size() > kMaxTraceSpans)
        throw ProtocolError("too many spans in trace response");
    PayloadWriter w;
    w.u16(kTraceVersion);
    w.u32(dump.pid);
    w.u64(dump.dropped);
    w.str(dump.endpoint.size() <= kMaxString
              ? dump.endpoint
              : dump.endpoint.substr(0, kMaxString));
    w.u32(static_cast<std::uint32_t>(dump.spans.size()));
    for (const TraceSpan &s : dump.spans) {
        w.u64(s.trace_hi);
        w.u64(s.trace_lo);
        w.u64(s.span_id);
        w.u64(s.parent_span_id);
        w.str(s.name.size() <= kMaxString
                  ? s.name
                  : s.name.substr(0, kMaxString));
        w.u64(s.start_unix_ns);
        w.u64(s.dur_ns);
        w.u32(s.tid);
    }
    return encodeFrame(MsgType::TraceResponse, w.take());
}

TraceDump
parseTraceResponse(const std::vector<std::uint8_t> &payload)
{
    PayloadReader r(payload.data(), payload.size());
    const std::uint16_t version = r.u16();
    if (version != kTraceVersion)
        throw ProtocolError("trace schema version mismatch: got " +
                            std::to_string(version) + ", want " +
                            std::to_string(kTraceVersion));
    TraceDump dump;
    dump.pid = r.u32();
    dump.dropped = r.u64();
    dump.endpoint = r.str();
    const std::uint32_t n = r.u32();
    if (n > kMaxTraceSpans)
        throw ProtocolError("too many spans in trace response");
    dump.spans.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        TraceSpan s;
        s.trace_hi = r.u64();
        s.trace_lo = r.u64();
        s.span_id = r.u64();
        s.parent_span_id = r.u64();
        s.name = r.str();
        s.start_unix_ns = r.u64();
        s.dur_ns = r.u64();
        s.tid = r.u32();
        dump.spans.push_back(std::move(s));
    }
    r.expectEnd();
    return dump;
}

} // namespace ppm::serve
