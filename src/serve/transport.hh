/**
 * @file
 * Transport abstraction of the simulation service: one endpoint
 * grammar covering Unix-domain sockets and TCP, and listen/connect
 * entry points that dispatch to the right socket family. Everything
 * above this layer (frame I/O, SimServer, RemoteOracle, the tools) is
 * transport-agnostic: an endpoint string is either
 *
 *     /path/to/server.sock        Unix-domain socket path
 *     host:port                   TCP (port may be 0 to let the
 *                                 kernel pick one when listening)
 *
 * A spec is TCP when it contains no '/' and ends in ":<digits>";
 * anything else is a Unix path, so existing socket-path configuration
 * keeps working unchanged. PPM_SERVE_SOCKET accepts a comma-separated
 * mix of both kinds.
 *
 * TCP specifics handled here so callers never see them: poll-driven
 * connect with an explicit timeout, TCP_NODELAY on every connected
 * socket (request/response frames are latency-bound, never bulk), and
 * SO_REUSEADDR on listeners so a restarted server rebinds instantly.
 *
 * Security note: TCP mode carries no authentication or encryption —
 * bind to loopback or a trusted network only (see README).
 */

#ifndef PPM_SERVE_TRANSPORT_HH
#define PPM_SERVE_TRANSPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/socket_io.hh"

namespace ppm::serve {

/** A parsed server address: Unix path or TCP host:port. */
struct Endpoint
{
    enum class Kind
    {
        Unix,
        Tcp,
    };

    Kind kind = Kind::Unix;
    std::string path;        //!< Unix: the socket path
    std::string host;        //!< TCP: numeric address or hostname
    std::uint16_t port = 0;  //!< TCP: port (0 = kernel-assigned)

    /** Canonical spec string ("/path" or "host:port"). */
    std::string display() const;
};

/**
 * Parse an endpoint spec (see file comment for the grammar).
 * @throws IoError on an empty spec, an empty TCP host, or a port
 *         outside [0, 65535].
 */
Endpoint parseEndpoint(const std::string &spec);

/** Parse a comma-separated endpoint list (empty items skipped). */
std::vector<Endpoint> parseEndpointList(const std::string &specs);

/**
 * Create a non-blocking listening socket for @p endpoint: a
 * Unix-domain socket (stale file unlinked first) or a TCP listener
 * with SO_REUSEADDR. @throws IoError on any failure.
 */
FdGuard listenEndpoint(const Endpoint &endpoint, int backlog = 64);

/**
 * Connect to @p endpoint within @p timeout_ms. TCP connections get
 * TCP_NODELAY. Returns a non-blocking connected fd.
 * @throws IoError when absent, refused, unresolvable, or timed out.
 */
FdGuard connectEndpoint(const Endpoint &endpoint, int timeout_ms);

} // namespace ppm::serve

#endif // PPM_SERVE_TRANSPORT_HH
