/**
 * @file
 * ModelHost: the hot-swappable model slot of a prediction server.
 *
 * The active snapshot lives behind a shared_ptr that handlers copy at
 * request start, so a swap is one pointer store: in-flight batches
 * finish on the model they started with, new requests see the new
 * version, and no request ever observes a torn model. Swaps are
 * version-gated — a snapshot is installed only when its
 * model_version is strictly greater than the active one — so
 * replayed or stale pushes can never roll a server backwards.
 *
 * New snapshots arrive two ways: a ModelPush frame (install()), or a
 * watched directory (watch()) polled for changed "*.ppmm" files — the
 * PPM_MODEL_DIR deployment path, where publishing is an atomic
 * rename into the directory (see model_snapshot.hh) and every
 * serving process picks the new model up within one poll interval.
 */

#ifndef PPM_SERVE_MODEL_HOST_HH
#define PPM_SERVE_MODEL_HOST_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "serve/model_snapshot.hh"

namespace ppm::serve {

/** File suffix the directory watcher considers a snapshot. */
inline constexpr const char *kSnapshotSuffix = ".ppmm";

class ModelHost
{
  public:
    ModelHost() = default;

    /** Stops the watcher if running. */
    ~ModelHost();

    ModelHost(const ModelHost &) = delete;
    ModelHost &operator=(const ModelHost &) = delete;

    /**
     * The active model, or nullptr when none is installed. The
     * returned pointer stays valid (and immutable) for as long as the
     * caller holds it, across any number of swaps.
     */
    std::shared_ptr<const ModelSnapshot> current() const;

    /**
     * Install @p snap if it is the first model or carries a strictly
     * greater model_version than the active one; @p origin names the
     * source for the event log ("file:...", "push").
     * @return true iff the snapshot became the active model.
     */
    bool install(ModelSnapshot snap, const std::string &origin);

    /**
     * Decode the snapshot at @p path and install() it.
     * @return true iff it became the active model; false on a decode
     *         failure (counted in loadFailures()) or a stale version.
     */
    bool loadFile(const std::string &path);

    /**
     * Start polling @p dir every @p poll_ms for new or modified
     * "*.ppmm" files, installing whichever load to a newer version.
     * One synchronous scan runs before this returns, so a directory
     * that already holds a snapshot serves it immediately.
     */
    void watch(std::string dir, int poll_ms);

    /** Stop the watcher thread. Idempotent. */
    void stopWatching();

    /** Times the active model was replaced (first install excluded). */
    std::uint64_t
    swaps() const
    {
        return swaps_.load(std::memory_order_relaxed);
    }

    /** Snapshot files or pushes that failed to decode/validate. */
    std::uint64_t
    loadFailures() const
    {
        return load_failures_.load(std::memory_order_relaxed);
    }

    /** Active model version (0 = none installed). */
    std::uint64_t version() const;

  private:
    void scanDirectory();

    mutable std::mutex mutex_;
    std::shared_ptr<const ModelSnapshot> model_;

    std::atomic<std::uint64_t> swaps_{0};
    std::atomic<std::uint64_t> load_failures_{0};

    std::string watch_dir_;
    int poll_ms_ = 200;
    std::thread watcher_;
    std::mutex watch_mutex_;
    std::condition_variable watch_cv_;
    bool watch_stop_ = false;
    /** Per-file (mtime ns, size) seen by the last scan. */
    std::map<std::string, std::pair<std::int64_t, std::uint64_t>>
        seen_;
};

} // namespace ppm::serve

#endif // PPM_SERVE_MODEL_HOST_HH
