/**
 * @file
 * RemoteOracle: a CpiOracle that shards evaluation batches across one
 * or more SimServer processes over Unix-domain sockets, TCP
 * endpoints, or any mix of the two (see transport.hh for the
 * endpoint grammar), with per-request timeouts, bounded
 * exponential-backoff retry, and transparent fallback to in-process
 * simulation when a server is unreachable — so every caller of the
 * CpiOracle interface works unchanged against a remote backend.
 *
 * Determinism contract: results are returned in input order and are
 * bit-identical to local evaluation for every shard count and socket
 * list, because the cycle-level simulator is deterministic in
 * (trace, config, options) and the server regenerates the identical
 * trace from (benchmark, trace length). Chunk c of a batch always
 * goes to socket c % sockets.size(); which chunks end up served
 * remotely versus locally can vary with failures, but never the
 * values.
 *
 * Dispatch deliberately uses dedicated threads, NOT the process-wide
 * util::ThreadPool: a chunk blocks on socket I/O, and parking blocked
 * work inside the pool could starve a same-process SimServer (tests,
 * benches) whose oracles need the pool to make progress.
 */

#ifndef PPM_SERVE_REMOTE_ORACLE_HH
#define PPM_SERVE_REMOTE_ORACLE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/oracle.hh"
#include "dspace/design_space.hh"
#include "obs/metrics.hh"
#include "serve/protocol.hh"
#include "serve/transport.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace ppm::serve {

/** Name of the environment variable naming server endpoints. */
inline constexpr const char *kSocketEnvVar = "PPM_SERVE_SOCKET";

/**
 * Endpoint specs from PPM_SERVE_SOCKET (comma-separated; empty when
 * unset). One running ppm_serve process per endpoint; Unix socket
 * paths and TCP host:port specs can be mixed freely.
 */
std::vector<std::string> socketsFromEnv();

/**
 * Next delay of a bounded exponential-backoff schedule: doubles
 * @p backoff_ms, saturating at @p backoff_max_ms. Saturation is
 * checked before the doubling, so the schedule can never overflow
 * however many attempts are configured.
 */
constexpr int
nextBackoffMs(int backoff_ms, int backoff_max_ms)
{
    return backoff_ms > backoff_max_ms / 2 ? backoff_max_ms
                                           : backoff_ms * 2;
}

struct RemoteOptions
{
    /**
     * Server endpoints (Unix paths and/or TCP host:port specs) to
     * shard across; chunk c goes to sockets[c % sockets.size()].
     * Empty = always evaluate locally.
     */
    std::vector<std::string> sockets;
    /** Per-connection-attempt timeout. */
    int connect_timeout_ms = 2'000;
    /** Per-request I/O timeout (covers the simulations themselves). */
    int io_timeout_ms = 120'000;
    /** Attempts per chunk before falling back locally (>= 1). */
    int max_attempts = 3;
    /** First retry delay; doubles per attempt up to backoff_max_ms. */
    int backoff_initial_ms = 25;
    int backoff_max_ms = 500;
    /** Points per request frame. */
    std::size_t chunk_points = 8;
    /** Concurrent in-flight requests (dispatch threads). */
    unsigned max_connections = 4;
    /** Base seed carried in requests (see protocol::EvalRequest). */
    std::uint64_t seed = 0;
};

class RemoteOracle final : public core::CpiOracle
{
  public:
    /**
     * @param space Design space of the points (paper layout).
     * @param benchmark Profile name; the server regenerates the trace
     *        from it, so it must name the same profile @p trace was
     *        generated from.
     * @param trace The local trace, used for fallback simulation and
     *        to derive the trace length sent to servers (must outlive
     *        the oracle).
     */
    RemoteOracle(const dspace::DesignSpace &space,
                 std::string benchmark, const trace::Trace &trace,
                 const sim::SimOptions &sim_options = {},
                 core::Metric metric = core::Metric::Cpi,
                 RemoteOptions options = {});

    double cpi(const dspace::DesignPoint &point) override;
    std::vector<double> evaluateAll(
        const std::vector<dspace::DesignPoint> &points) override;

    /**
     * Fresh simulations attributable to this oracle: server-reported
     * fresh counts plus local fallback simulations. Server counts are
     * approximate when unrelated clients hit the same server oracle
     * concurrently.
     */
    std::uint64_t evaluations() const override;

    /** Points answered by servers so far. */
    std::uint64_t
    remotePoints() const
    {
        return remote_points_.load(std::memory_order_relaxed);
    }

    /** Request chunks successfully served remotely. */
    std::uint64_t
    remoteChunksServed() const
    {
        return remote_chunks_.load(std::memory_order_relaxed);
    }

    /** Points evaluated by the in-process fallback oracle. */
    std::uint64_t
    fallbackPoints() const
    {
        return fallback_points_.load(std::memory_order_relaxed);
    }

    /**
     * The in-process fallback oracle (e.g. to attach a ResultArchive
     * so even fallback simulations persist).
     */
    core::SimulatorOracle &fallbackOracle() { return fallback_; }

    const RemoteOptions &options() const { return options_; }

  private:
    /**
     * One chunk against its socket, with retry/backoff. nullopt =
     * all attempts failed (socket marked dead) or server reported an
     * error; the caller falls back locally.
     */
    std::optional<EvalResponse> requestChunk(
        std::size_t socket_index,
        const std::vector<dspace::DesignPoint> &points);

    std::string benchmark_;
    const trace::Trace &trace_;
    sim::SimOptions sim_options_;
    core::Metric metric_;
    RemoteOptions options_;
    core::SimulatorOracle fallback_;

    /** Parsed options_.sockets, one per shard slot. */
    std::vector<Endpoint> endpoints_;

    /**
     * Per-endpoint registry counters, named
     * remote.ep.<spec>.{connects,connect_failures,retries}, so
     * ppm_stats (and the merged multi-client view) can tell a flaky
     * shard from a healthy one. Empty when obs is compiled out.
     */
    struct EndpointMetrics
    {
        obs::Counter *connects = nullptr;
        obs::Counter *connect_failures = nullptr;
        obs::Counter *retries = nullptr;
    };
    std::vector<EndpointMetrics> endpoint_metrics_;

    /**
     * Latched per-socket failure flags: once a socket exhausts its
     * retries it is not attempted again for the oracle's lifetime, so
     * a killed server degrades to local evaluation instead of paying
     * the full retry schedule on every remaining chunk.
     */
    std::vector<std::atomic<bool>> socket_dead_;

    std::atomic<std::uint64_t> remote_fresh_{0};
    std::atomic<std::uint64_t> remote_points_{0};
    std::atomic<std::uint64_t> remote_chunks_{0};
    std::atomic<std::uint64_t> fallback_points_{0};
};

} // namespace ppm::serve

#endif // PPM_SERVE_REMOTE_ORACLE_HH
