/**
 * @file
 * RemoteOracle: a CpiOracle that shards evaluation batches across one
 * or more SimServer processes over Unix-domain sockets, TCP
 * endpoints, or any mix of the two (see transport.hh for the
 * endpoint grammar), with per-request timeouts, bounded
 * exponential-backoff retry, and transparent fallback to in-process
 * simulation when a server is unreachable — so every caller of the
 * CpiOracle interface works unchanged against a remote backend.
 *
 * Determinism contract: results are returned in input order and are
 * bit-identical to local evaluation for every shard count and socket
 * list, because the cycle-level simulator is deterministic in
 * (trace, config, options) and the server regenerates the identical
 * trace from (benchmark, trace length). Chunk c of a batch always
 * goes to socket c % sockets.size(); which chunks end up served
 * remotely versus locally can vary with failures, but never the
 * values.
 *
 * The transport mechanics — connect/retry/backoff schedule, the
 * per-socket dead latch, endpoint health counters, and the dedicated
 * dispatch-thread fan-out — live in ShardedClient, shared with the
 * prediction-serving client (PredictOracle).
 */

#ifndef PPM_SERVE_REMOTE_ORACLE_HH
#define PPM_SERVE_REMOTE_ORACLE_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/oracle.hh"
#include "dspace/design_space.hh"
#include "serve/protocol.hh"
#include "serve/sharded_client.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace ppm::serve {

class RemoteOracle final : public core::CpiOracle
{
  public:
    /**
     * @param space Design space of the points (paper layout).
     * @param benchmark Profile name; the server regenerates the trace
     *        from it, so it must name the same profile @p trace was
     *        generated from.
     * @param trace The local trace, used for fallback simulation and
     *        to derive the trace length sent to servers (must outlive
     *        the oracle).
     */
    RemoteOracle(const dspace::DesignSpace &space,
                 std::string benchmark, const trace::Trace &trace,
                 const sim::SimOptions &sim_options = {},
                 core::Metric metric = core::Metric::Cpi,
                 RemoteOptions options = {});

    double cpi(const dspace::DesignPoint &point) override;
    std::vector<double> evaluateAll(
        const std::vector<dspace::DesignPoint> &points) override;

    /**
     * Fresh simulations attributable to this oracle: server-reported
     * fresh counts plus local fallback simulations. Server counts are
     * approximate when unrelated clients hit the same server oracle
     * concurrently.
     */
    std::uint64_t evaluations() const override;

    /** Points answered by servers so far. */
    std::uint64_t
    remotePoints() const
    {
        return remote_points_.load(std::memory_order_relaxed);
    }

    /** Request chunks successfully served remotely. */
    std::uint64_t
    remoteChunksServed() const
    {
        return remote_chunks_.load(std::memory_order_relaxed);
    }

    /** Points evaluated by the in-process fallback oracle. */
    std::uint64_t
    fallbackPoints() const
    {
        return fallback_points_.load(std::memory_order_relaxed);
    }

    /**
     * The in-process fallback oracle (e.g. to attach a ResultArchive
     * so even fallback simulations persist).
     */
    core::SimulatorOracle &fallbackOracle() { return fallback_; }

    const RemoteOptions &options() const { return client_.options(); }

  private:
    /**
     * One chunk against its socket, with retry/backoff. nullopt =
     * all attempts failed (socket marked dead) or server reported an
     * error; the caller falls back locally.
     */
    std::optional<EvalResponse> requestChunk(
        std::size_t socket_index,
        const std::vector<dspace::DesignPoint> &points);

    std::string benchmark_;
    const trace::Trace &trace_;
    sim::SimOptions sim_options_;
    core::Metric metric_;
    ShardedClient client_;
    core::SimulatorOracle fallback_;

    std::atomic<std::uint64_t> remote_fresh_{0};
    std::atomic<std::uint64_t> remote_points_{0};
    std::atomic<std::uint64_t> remote_chunks_{0};
    std::atomic<std::uint64_t> fallback_points_{0};
};

} // namespace ppm::serve

#endif // PPM_SERVE_REMOTE_ORACLE_HH
