#include "serve/sharded_client.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/event_log.hh"
#include "obs/trace_span.hh"
#include "serve/socket_io.hh"

namespace ppm::serve {

std::vector<std::string>
socketsFromEnv()
{
    std::vector<std::string> sockets;
    const char *env = std::getenv(kSocketEnvVar);
    if (env == nullptr)
        return sockets;
    std::string value(env);
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        const std::string item = value.substr(start, comma - start);
        if (!item.empty())
            sockets.push_back(item);
        start = comma + 1;
    }
    return sockets;
}

ShardedClient::ShardedClient(RemoteOptions options)
    : options_(std::move(options)),
      socket_dead_(options_.sockets.size())
{
    if (options_.chunk_points == 0)
        options_.chunk_points = 1;
    if (options_.max_connections == 0)
        options_.max_connections = 1;
    if (options_.max_attempts < 1)
        options_.max_attempts = 1;
    endpoints_.reserve(options_.sockets.size());
    for (const std::string &spec : options_.sockets)
        endpoints_.push_back(parseEndpoint(spec));
#ifndef PPM_OBS_DISABLED
    endpoint_metrics_.reserve(endpoints_.size());
    for (const Endpoint &ep : endpoints_) {
        const std::string prefix = "remote.ep." + ep.display();
        EndpointMetrics m;
        m.connects = &obs::Registry::instance().counter(
            prefix + ".connects");
        m.connect_failures = &obs::Registry::instance().counter(
            prefix + ".connect_failures");
        m.retries = &obs::Registry::instance().counter(
            prefix + ".retries");
        endpoint_metrics_.push_back(m);
    }
#endif
}

std::optional<Frame>
ShardedClient::exchange(
    std::size_t endpoint_index,
    const std::vector<std::uint8_t> &request, MsgType expect,
    const std::function<void(const Frame &)> &validate)
{
    if (endpoints_.empty() ||
        socket_dead_[endpoint_index].load(std::memory_order_relaxed))
        return std::nullopt;
    const Endpoint &endpoint = endpoints_[endpoint_index];
    const std::string socket = endpoint.display();

    OBS_SPAN("remote.chunk");
    OBS_STATIC_COUNTER(retries, "remote.retries");
    OBS_STATIC_COUNTER(backoff_sleeps, "remote.backoff_sleeps");
    int backoff_ms = options_.backoff_initial_ms;
    for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
        if (attempt > 0) {
            OBS_ADD(retries, 1);
            OBS_ADD(backoff_sleeps, 1);
#ifndef PPM_OBS_DISABLED
            endpoint_metrics_[endpoint_index].retries->add(1);
#endif
            obs::logEvent(obs::LogLevel::Debug, "remote", "backoff",
                          {{"socket", socket},
                           {"attempt", attempt},
                           {"sleep_ms", std::min(backoff_ms,
                                                 options_.backoff_max_ms)}});
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(backoff_ms, options_.backoff_max_ms)));
            backoff_ms =
                nextBackoffMs(backoff_ms, options_.backoff_max_ms);
        }
        try {
            FdGuard fd = [&] {
                OBS_SPAN("remote.connect");
                try {
                    FdGuard conn = connectEndpoint(
                        endpoint, options_.connect_timeout_ms);
#ifndef PPM_OBS_DISABLED
                    endpoint_metrics_[endpoint_index].connects->add(1);
#endif
                    return conn;
                } catch (const IoError &) {
#ifndef PPM_OBS_DISABLED
                    endpoint_metrics_[endpoint_index]
                        .connect_failures->add(1);
#endif
                    throw;
                }
            }();
            writeFrame(fd.get(), request, options_.io_timeout_ms);
            Frame reply = readFrame(fd.get(), options_.io_timeout_ms);
            if (reply.type == MsgType::Error) {
                // A semantic rejection (unknown benchmark, bad
                // dimensionality) will not improve with retries;
                // evaluate locally, where the same condition raises
                // a meaningful exception.
                break;
            }
            if (reply.type != expect)
                throw ProtocolError("unexpected reply type");
            if (validate)
                validate(reply);
            return reply;
        } catch (const IoError &) {
            // Unreachable, reset, or timed out: retry with backoff.
        } catch (const ProtocolError &) {
            // Corrupt reply: the transport is suspect; retry too.
        }
    }
    socket_dead_[endpoint_index].store(true,
                                       std::memory_order_relaxed);
    OBS_STATIC_COUNTER(dead_latches, "remote.dead_latches");
    OBS_ADD(dead_latches, 1);
    obs::logEvent(obs::LogLevel::Warn, "remote", "socket_dead",
                  {{"socket", socket},
                   {"attempts", options_.max_attempts}});
    return std::nullopt;
}

void
ShardedClient::forEachChunk(std::size_t num_chunks,
                            const std::function<void(std::size_t)> &run)
{
    const std::size_t num_threads = std::min<std::size_t>(
        options_.max_connections, num_chunks);
    if (num_threads <= 1 || endpoints_.empty()) {
        for (std::size_t c = 0; c < num_chunks; ++c)
            run(c);
        return;
    }

    // Dedicated dispatch threads (see file comment); thread t owns
    // chunks t, t+T, t+2T, ... so slot writes never overlap. The
    // caller's trace context is re-installed in each thread so chunk
    // frames carry the request's trace id to the shards.
    const obs::TraceContext trace = obs::currentTraceContext();
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
        threads.emplace_back([&, t] {
            obs::ScopedTraceContext trace_scope(trace);
            try {
                for (std::size_t c = t; c < num_chunks;
                     c += num_threads)
                    run(c);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace ppm::serve
