/**
 * @file
 * Versioned, CRC-checked binary model snapshots: everything a
 * prediction server needs to answer CPI queries without a simulator —
 * the trained RBF network (centers, per-dimension radii, output
 * weights), the linear regression baseline, and the design-space
 * metadata (parameter names, ranges, levels, transforms) the model
 * was trained on, so incoming query points can be validated against
 * the trained space.
 *
 * Image layout (all integers little-endian, see wire_codec.hh):
 *
 *     u32  magic        'PPMM' (0x50504D4D)
 *     u16  format       kMinSnapshotFormat..kSnapshotFormat
 *     u16  flags        reserved, must be zero
 *     u32  payload_len  <= kMaxModelBytes
 *     u8   payload[payload_len]
 *     u32  crc          CRC-32 of the payload bytes
 *
 * Payload:
 *
 *     u64  model_version          (monotonic; drives hot-swap)
 *     str  benchmark   u16 metric   u64 trace_length   u64 warmup
 *     u32  train_points   u32 p_min   f64 alpha
 *     f64  cv_error               (format >= 2; see ModelSnapshot)
 *     u32  dims
 *     dims x { str name  f64 min  f64 max  u32 levels
 *              u8 transform  u8 integer }
 *     u32  num_bases
 *     num_bases x { dims x f64 center, dims x f64 radius }
 *     num_bases x f64 weight
 *     u8   has_linear
 *     [ u32 num_terms; num_terms x { u32 i+1, u32 j+1 };
 *       num_terms x f64 coefficient ]
 *
 * Decoding validates everything semantically — finite floats, strictly
 * positive radii, coherent ranges and term indices — so a loaded
 * snapshot can never serve NaNs or crash the predictor; any violation
 * raises SnapshotError. Publishing is crash-safe: saveSnapshot()
 * writes to a temporary file and atomically rename()s it into place,
 * so a reader (or a SIGKILL mid-publish) only ever sees a complete
 * old or complete new image.
 */

#ifndef PPM_SERVE_MODEL_SNAPSHOT_HH
#define PPM_SERVE_MODEL_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/oracle.hh"
#include "dspace/design_space.hh"
#include "linreg/linear_model.hh"
#include "rbf/network.hh"
#include "serve/protocol.hh"

namespace ppm::serve {

/**
 * Malformed, corrupt, or semantically invalid snapshot data. Derives
 * from ProtocolError so transport code that already rejects malformed
 * frames rejects malformed snapshots the same way.
 */
class SnapshotError : public ProtocolError
{
  public:
    using ProtocolError::ProtocolError;
};

/** First four bytes of every snapshot image. */
inline constexpr std::uint32_t kSnapshotMagic = 0x50504D4Du; // "PPMM"

/**
 * Snapshot format version this build writes. Format 2 added the
 * training-time cross-validation error (the drift-monitor baseline);
 * format-1 images still load with cv_error = 0 (unknown).
 */
inline constexpr std::uint16_t kSnapshotFormat = 2;

/** Oldest snapshot format still accepted. */
inline constexpr std::uint16_t kMinSnapshotFormat = 1;

/** Bytes before the payload: magic + format + flags + payload_len. */
inline constexpr std::size_t kSnapshotHeaderSize = 12;

/** Hard cap on snapshot dimensionality. */
inline constexpr std::uint32_t kMaxSnapshotDims = 256;

/** Hard cap on RBF bases in a snapshot. */
inline constexpr std::uint32_t kMaxSnapshotBases = 65536;

/** Hard cap on linear baseline terms in a snapshot. */
inline constexpr std::uint32_t kMaxSnapshotTerms = 65536;

/**
 * A loaded (or about-to-be-published) model snapshot: the trained
 * models plus the provenance needed to validate queries against the
 * trained space and to tell versions apart when hot-swapping.
 */
struct ModelSnapshot
{
    /**
     * Monotonic version of this model. A server hot-swaps only to a
     * strictly greater version, so republishing an old image can
     * never roll an active server backwards.
     */
    std::uint64_t model_version = 0;

    /** Benchmark profile the training responses came from. */
    std::string benchmark;
    core::Metric metric = core::Metric::Cpi;
    std::uint64_t trace_length = 0;
    std::uint64_t warmup = 0;

    /** Training-set size (provenance; Table 4 reporting). */
    std::uint32_t train_points = 0;
    /** Chosen tree leaf size of the winning RBF model. */
    std::uint32_t p_min = 0;
    /** Chosen radius scale of the winning RBF model. */
    double alpha = 0.0;
    /**
     * Training-time cross-validation mean relative error of the
     * published model — the accuracy the model demonstrated on
     * held-out training data. The serve-plane drift monitor compares
     * live shadow-simulated error against this baseline to decide
     * when the model has degraded. 0 = unknown (format-1 snapshots,
     * or publishers that skipped CV).
     */
    double cv_error = 0.0;

    /** The design space the model was trained on. */
    dspace::DesignSpace space;
    /** The trained RBF network (paper Eq 1), over unit points. */
    rbf::RbfNetwork network;
    /** The linear baseline; empty() when not published. */
    linreg::LinearModel linear;
};

/** Encode @p snap to a self-contained CRC-checked image. */
std::vector<std::uint8_t> encodeSnapshot(const ModelSnapshot &snap);

/**
 * Decode and fully validate a snapshot image.
 * @throws SnapshotError on any structural or semantic violation.
 */
ModelSnapshot decodeSnapshot(const std::uint8_t *data,
                             std::size_t size);
ModelSnapshot decodeSnapshot(const std::vector<std::uint8_t> &bytes);

/**
 * Atomically publish @p snap to @p path: the image is written to a
 * unique temporary file in the same directory, fsync()ed, and
 * rename()d over @p path, so concurrent readers (and crashes at any
 * instant) see either the complete old file or the complete new one.
 * @throws SnapshotError on encoding or I/O failure.
 */
void saveSnapshot(const ModelSnapshot &snap, const std::string &path);

/** Load and validate the snapshot at @p path. @throws SnapshotError. */
ModelSnapshot loadSnapshot(const std::string &path);

/**
 * Predict a batch of raw design points from a loaded snapshot:
 * validates each point's dimensionality and range against the
 * snapshot's design space, maps it to the unit hypercube, and
 * evaluates the requested model. Bit-identical to calling
 * space.toUnit() + network.predict() by hand — the remote PREDICT
 * path and the local fallback both route through here, which is what
 * makes shard-count-independent bit-equality hold.
 *
 * Range checks are inclusive: a coordinate at exactly the parameter
 * minimum or maximum is in-space (Parameter::contains additionally
 * absorbs a few ulps of round-trip error at the boundary), so
 * querying the corners of the trained design space always succeeds.
 *
 * @throws SnapshotError on a dimensionality mismatch, an
 *         out-of-space point, an empty RBF network, or
 *         ModelKind::Linear without a published baseline.
 */
std::vector<double> predictWithSnapshot(
    const ModelSnapshot &snap,
    const std::vector<dspace::DesignPoint> &points,
    ModelKind model = ModelKind::Rbf);

/** Wire metadata describing @p snap (for ModelInfoResponse). */
ModelInfo describeSnapshot(const ModelSnapshot &snap);

} // namespace ppm::serve

#endif // PPM_SERVE_MODEL_SNAPSHOT_HH
