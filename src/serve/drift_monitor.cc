#include "serve/drift_monitor.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <memory>

#include "obs/event_log.hh"
#include "obs/trace_span.hh"

namespace ppm::serve {

namespace {

/** Gauges export doubles as integers; parts-per-million keeps 6
 * significant digits of relative error in an int64. */
std::int64_t
toPpm(double v)
{
    return static_cast<std::int64_t>(std::llround(v * 1e6));
}

} // namespace

void
DriftMonitor::configure(const DriftOptions &options)
{
    threshold_ratio_ = options.threshold_ratio;
    baseline_floor_ = options.baseline_floor;
    min_samples_ = options.min_samples;
    sample_every_.store(options.sample_every,
                        std::memory_order_relaxed);
}

void
DriftMonitor::observeBatch(
    const cache::ResultCache &cache, std::int64_t context_word,
    std::uint64_t model_version, double cv_error,
    const std::vector<dspace::DesignPoint> &points,
    const std::vector<double> &predicted)
{
    const std::uint32_t every =
        sample_every_.load(std::memory_order_relaxed);
    if (every == 0 || points.empty() ||
        points.size() != predicted.size())
        return;

    // One counter window covers the whole batch, so the set of
    // sampled points depends only on the arrival order of points —
    // not on threads, timing, or any RNG.
    const std::uint64_t base = seen_points_.fetch_add(
        points.size(), std::memory_order_relaxed);
    std::vector<std::size_t> picked;
    for (std::size_t i = 0; i < points.size(); ++i)
        if ((base + i) % every == 0)
            picked.push_back(i);
    if (picked.empty())
        return;

    OBS_SPAN("drift.probe");

    // Rebuild the oracle memo keys and probe the shared cache: truth
    // is whatever the serve plane already simulated (live requests or
    // archive reload) — never a fresh simulation.
    const std::size_t dims = points.front().size();
    std::vector<cache::ResultCache::Key> keys;
    keys.reserve(picked.size());
    for (std::size_t i : picked) {
        cache::ResultCache::Key key;
        key.reserve(dims + 1);
        key.push_back(context_word);
        for (double v : points[i])
            key.push_back(static_cast<std::int64_t>(
                std::llround(v * 1e6)));
        keys.push_back(std::move(key));
    }
    std::vector<double> truths(picked.size(), 0.0);
    // lookupBatch takes raw arrays; std::vector<bool> is packed, so
    // probe through a plain buffer.
    const std::unique_ptr<bool[]> found(new bool[picked.size()]());
    cache.lookupBatch(keys.data(), keys.size(), truths.data(),
                      found.get());

    OBS_STATIC_COUNTER(sampled_counter, "model.drift.sampled");
    OBS_ADD(sampled_counter, picked.size());

    double mean = 0.0;
    std::uint64_t scored_now = 0;
    bool fire = false;
    std::uint64_t fire_scored = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        VersionStats &vs = stats_[model_version];
        vs.sampled += picked.size();
        for (std::size_t k = 0; k < picked.size(); ++k) {
            if (!found[k])
                continue;
            const double truth = truths[k];
            const double pred = predicted[picked[k]];
            const double rel =
                std::abs(pred - truth) /
                std::max(std::abs(truth), 1e-12);
            ++vs.scored;
            ++scored_now;
            const double delta = rel - vs.mean;
            vs.mean += delta / static_cast<double>(vs.scored);
            vs.m2 += delta * (rel - vs.mean);
            const std::uint64_t scaled = static_cast<std::uint64_t>(
                std::llround(rel * 1e9));
            vs.buckets[std::min<std::uint64_t>(
                std::bit_width(scaled), 63)] += 1;
        }
        mean = vs.mean;
        const double baseline =
            cv_error > 0.0 ? cv_error : baseline_floor_;
        if (!vs.fired && vs.scored >= min_samples_ &&
            vs.mean > threshold_ratio_ * baseline) {
            vs.fired = true;
            fire = true;
            fire_scored = vs.scored;
        }
    }
    if (scored_now != 0) {
        OBS_STATIC_COUNTER(scored_counter, "model.drift.scored");
        OBS_ADD(scored_counter, scored_now);
        obs::Registry::instance()
            .gauge("model.drift.mean_rel_err_ppm")
            .set(toPpm(mean));
        obs::Registry::instance()
            .gauge("model.drift.p90_rel_err_ppm")
            .set(toPpm(statsFor(model_version).p90_rel_err));
        obs::Registry::instance()
            .gauge("model.drift.version")
            .set(static_cast<std::int64_t>(model_version));
    }
    if (fire) {
        OBS_STATIC_COUNTER(events_counter, "model.drift.events");
        OBS_ADD(events_counter, 1);
        const double baseline =
            cv_error > 0.0 ? cv_error : baseline_floor_;
        obs::logEvent(obs::LogLevel::Warn, "drift", "model_drift",
                      {{"model_version", model_version},
                       {"scored", fire_scored},
                       {"mean_rel_err", mean},
                       {"baseline", baseline},
                       {"threshold", threshold_ratio_ * baseline}});
    }
}

double
DriftMonitor::p90FromBuckets(const VersionStats &vs)
{
    if (vs.scored == 0)
        return 0.0;
    // Smallest bucket upper bound covering >= 90% of residuals. The
    // bound is 2^b - 1 in 1e-9 units (bit_width(x) == b means
    // x <= 2^b - 1).
    const std::uint64_t want = (vs.scored * 9 + 9) / 10;
    std::uint64_t cum = 0;
    for (int b = 0; b < 64; ++b) {
        cum += vs.buckets[b];
        if (cum >= want)
            return static_cast<double>((std::uint64_t{1} << b) - 1) /
                   1e9;
    }
    return 0.0;
}

DriftStats
DriftMonitor::statsFor(std::uint64_t model_version) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = stats_.find(model_version);
    DriftStats out;
    if (it == stats_.end())
        return out;
    const VersionStats &vs = it->second;
    out.sampled = vs.sampled;
    out.scored = vs.scored;
    out.mean_rel_err = vs.mean;
    out.variance = vs.scored > 0
                       ? vs.m2 / static_cast<double>(vs.scored)
                       : 0.0;
    out.p90_rel_err = p90FromBuckets(vs);
    out.fired = vs.fired;
    return out;
}

} // namespace ppm::serve
