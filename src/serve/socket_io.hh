/**
 * @file
 * Socket plumbing for the simulation service: RAII fd ownership,
 * Unix-domain and TCP listen/connect with explicit timeouts, and
 * poll-driven whole-frame reads and writes on non-blocking
 * descriptors.
 *
 * All timeouts are in milliseconds and apply to the entire operation
 * (a frame read must finish within one timeout, not one timeout per
 * syscall). Failures — timeouts, resets, clean EOF mid-frame — raise
 * IoError; malformed bytes raise protocol::ProtocolError.
 *
 * writeFrame is also the fault-injection seam: when a
 * serve::FaultInjector is installed (PPM_FAULT_SPEC or an explicit
 * install()), every outgoing frame — client requests and server
 * replies alike — passes through it and may be dropped, delayed,
 * stalled, truncated, bit-flipped, or reset before it reaches the
 * wire. See fault_injector.hh.
 */

#ifndef PPM_SERVE_SOCKET_IO_HH
#define PPM_SERVE_SOCKET_IO_HH

#include <cstddef>
#include <stdexcept>
#include <string>

#include "serve/protocol.hh"

namespace ppm::serve {

/** Socket-level failure: connect/send/recv error, timeout, or EOF. */
class IoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Move-only owner of a file descriptor; closes on destruction. */
class FdGuard
{
  public:
    explicit FdGuard(int fd = -1) : fd_(fd) {}
    ~FdGuard() { reset(); }

    FdGuard(FdGuard &&other) noexcept : fd_(other.release()) {}
    FdGuard &
    operator=(FdGuard &&other) noexcept
    {
        if (this != &other)
            reset(other.release());
        return *this;
    }

    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void reset(int fd = -1);

  private:
    int fd_;
};

/**
 * Create a non-blocking Unix-domain listening socket bound to
 * @p path. A stale socket file at @p path is unlinked first.
 * @throws IoError on any failure (including a path too long for
 *         sockaddr_un).
 */
FdGuard listenUnix(const std::string &path, int backlog = 64);

/**
 * Connect to the Unix-domain socket at @p path, waiting at most
 * @p timeout_ms. Returns a non-blocking connected fd.
 * @throws IoError when the server is absent, refuses, or times out.
 */
FdGuard connectUnix(const std::string &path, int timeout_ms);

/**
 * Create a non-blocking TCP listening socket bound to
 * @p host:@p port (port 0 lets the kernel pick; read it back with
 * boundTcpPort). SO_REUSEADDR is set so restarts rebind instantly.
 * @throws IoError on resolution or bind/listen failure.
 */
FdGuard listenTcp(const std::string &host, std::uint16_t port,
                  int backlog = 64);

/**
 * Connect to @p host:@p port within @p timeout_ms. The connected
 * socket is non-blocking with TCP_NODELAY set (frames are
 * latency-bound request/response exchanges, never bulk streams).
 * @throws IoError when unresolvable, refused, or timed out.
 */
FdGuard connectTcp(const std::string &host, std::uint16_t port,
                   int timeout_ms);

/** Port a TCP listener actually bound (resolves a port-0 bind). */
std::uint16_t boundTcpPort(int fd);

/** Best-effort TCP_NODELAY (no-op on non-TCP descriptors). */
void setTcpNoDelay(int fd);

/** Send all @p size bytes within @p timeout_ms. @throws IoError */
void sendAll(int fd, const void *data, std::size_t size,
             int timeout_ms);

/**
 * Receive exactly @p size bytes within @p timeout_ms.
 * @throws IoError on timeout, error, or EOF before @p size bytes.
 */
void recvAll(int fd, void *data, std::size_t size, int timeout_ms);

/**
 * Write one encoded frame. When a FaultInjector is installed the
 * frame first passes through it and may be perturbed or swallowed
 * (see file comment). @throws IoError
 */
void writeFrame(int fd, const std::vector<std::uint8_t> &frame,
                int timeout_ms);

/**
 * Read and validate one complete frame.
 * @throws IoError on socket failure, ProtocolError on malformed data.
 */
Frame readFrame(int fd, int timeout_ms);

} // namespace ppm::serve

#endif // PPM_SERVE_SOCKET_IO_HH
