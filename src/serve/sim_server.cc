#include "serve/sim_server.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dspace/paper_space.hh"
#include "obs/event_log.hh"
#include "obs/trace_span.hh"
#include "serve/result_archive.hh"
#include "sim/simulator.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace ppm::serve {

namespace {

/** Request context key: one oracle (and archive file) per value. */
std::string
contextKey(const EvalRequest &req)
{
    return req.benchmark + "|t" + std::to_string(req.trace_length) +
           "|w" + std::to_string(req.warmup) + "|" +
           core::metricName(req.metric);
}

/**
 * Simulation context key: the design-space config without the metric.
 * Oracles sharing it run identical simulations, so they share one
 * cache context id and populate each other's metric entries.
 */
std::string
simContextKey(const EvalRequest &req)
{
    return req.benchmark + "|t" + std::to_string(req.trace_length) +
           "|w" + std::to_string(req.warmup);
}

} // namespace

SimServer::SimServer(ServerOptions options)
    : options_(std::move(options)), space_(dspace::paperTrainSpace())
{
    if (options_.num_workers == 0)
        options_.num_workers = 1;
    cache::CacheConfig cache_config;
    cache_config.key_words = space_.size() + 1;
    if (options_.cache_mb != 0)
        cache_config.budget_bytes = options_.cache_mb * 1024 * 1024;
    cache_ = std::make_shared<cache::ResultCache>(cache_config);
    drift_.configure(options_.drift);
}

SimServer::~SimServer()
{
    stop();
}

void
SimServer::start()
{
    if (started_)
        throw std::logic_error("SimServer already started");
    if (!options_.archive_dir.empty())
        std::filesystem::create_directories(options_.archive_dir);
    // Host the model before accepting connections, so the very first
    // PREDICT query already sees it. An unreadable preload snapshot
    // is a startup error (throws); the watched directory tolerates
    // bad files (they only count model.load_failures).
    if (!options_.predict_snapshot.empty())
        model_host_.install(loadSnapshot(options_.predict_snapshot),
                            "file:" + options_.predict_snapshot);
    if (!options_.model_dir.empty())
        model_host_.watch(options_.model_dir, options_.model_poll_ms);
    endpoint_ = parseEndpoint(options_.socket_path);
    listen_fd_ = listenEndpoint(endpoint_);
    if (endpoint_.kind == Endpoint::Kind::Tcp && endpoint_.port == 0)
        endpoint_.port = boundTcpPort(listen_fd_.get());
    if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) < 0) {
        listen_fd_.reset();
        throw IoError(std::string("pipe2: ") + std::strerror(errno));
    }
    stopping_.store(false, std::memory_order_relaxed);
    workers_.reserve(options_.num_workers);
    for (unsigned i = 0; i < options_.num_workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    started_ = true;
}

void
SimServer::stop()
{
    model_host_.stopWatching();
    if (!started_)
        return;
    stopping_.store(true, std::memory_order_relaxed);
    // Wake workers blocked in poll() on the listening socket...
    const char byte = 1;
    (void)!::write(stop_pipe_[1], &byte, 1);
    // ...and sever in-flight connections so blocked reads see EOF.
    {
        std::lock_guard<std::mutex> lock(conns_mutex_);
        for (int fd : conns_)
            ::shutdown(fd, SHUT_RDWR);
    }
    for (auto &worker : workers_)
        worker.join();
    workers_.clear();
    listen_fd_.reset();
    ::close(stop_pipe_[0]);
    ::close(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    if (endpoint_.kind == Endpoint::Kind::Unix)
        ::unlink(endpoint_.path.c_str());
    started_ = false;
}

std::uint64_t
SimServer::totalEvaluations() const
{
    std::lock_guard<std::mutex> lock(backends_mutex_);
    std::uint64_t total = 0;
    for (const auto &[key, backend] : backends_)
        total += backend->oracle->evaluations();
    return total;
}

std::uint64_t
SimServer::oracleCount() const
{
    std::lock_guard<std::mutex> lock(backends_mutex_);
    return backends_.size();
}

std::int64_t
SimServer::contextIdFor(const std::string &sim_key)
{
    std::lock_guard<std::mutex> lock(backends_mutex_);
    const auto [it, inserted] = sim_context_ids_.try_emplace(
        sim_key, static_cast<std::int64_t>(sim_context_ids_.size()));
    (void)inserted;
    return it->second;
}

SimServer::Backend &
SimServer::backendFor(const EvalRequest &req)
{
    const std::string key = contextKey(req);
    std::lock_guard<std::mutex> lock(backends_mutex_);
    auto it = backends_.find(key);
    if (it != backends_.end())
        return *it->second;

    // First request for this context: generate the trace and build
    // the oracle. Generation runs under the lock — concurrent
    // requests for the same context must not race to create two
    // oracles (and double-simulate).
    const auto &profile = trace::profileByName(req.benchmark);
    auto backend = std::make_unique<Backend>();
    backend->trace = trace::generateTrace(
        profile, static_cast<std::size_t>(req.trace_length));
    sim::SimOptions sim_options;
    sim_options.warmup_instructions = req.warmup;
    backend->oracle = std::make_unique<core::SimulatorOracle>(
        space_, backend->trace, sim_options, req.metric);
    // All oracles memoize through the server's shared table; oracles
    // differing only in Metric share a context id, so one simulation
    // answers all three metrics of its simulation context.
    const auto [ctx_it, ctx_inserted] = sim_context_ids_.try_emplace(
        simContextKey(req),
        static_cast<std::int64_t>(sim_context_ids_.size()));
    (void)ctx_inserted;
    backend->oracle->attachSharedCache(cache_, ctx_it->second);
    if (!options_.archive_dir.empty()) {
        const std::string file =
            options_.archive_dir + "/" +
            ResultArchive::fileNameFor(req.benchmark, req.trace_length,
                                       req.warmup, req.metric);
        auto archive = std::make_shared<ResultArchive>(file, key);
        // Sibling-metric entries for this context are published dirty
        // by whichever oracle simulates; evicting them spills here.
        cache_->registerSpillStore(
            cache::contextWord(ctx_it->second,
                               core::metricIndex(req.metric)),
            archive);
        backend->oracle->attachStore(std::move(archive));
    }
    it = backends_.emplace(key, std::move(backend)).first;
    if (options_.verbose)
        std::fprintf(stderr, "ppm_serve: new oracle [%s]\n",
                     key.c_str());
    return *it->second;
}

std::vector<std::uint8_t>
SimServer::handleRequest(const Frame &frame)
{
    const EvalRequest req = parseEvalRequest(frame.payload);
    if (req.points.empty())
        return encodeError({"empty point batch"});
    if (req.points.front().size() != space_.size())
        return encodeError(
            {"point dimensionality " +
             std::to_string(req.points.front().size()) +
             " does not match the paper space (" +
             std::to_string(space_.size()) + ")"});
    if (req.trace_length == 0 ||
        req.trace_length > options_.max_trace_length)
        return encodeError({"trace length out of range"});

    OBS_SPAN("serve.request");
    OBS_STATIC_COUNTER(points_served, "serve.points");
    OBS_ADD(points_served, req.points.size());
    Backend &backend = backendFor(req);
    const std::uint64_t before = backend.oracle->evaluations();
    EvalResponse resp;
    resp.values = backend.oracle->evaluateAll(req.points);
    resp.total_evaluations = backend.oracle->evaluations();
    resp.fresh_evaluations = resp.total_evaluations - before;
    requests_.fetch_add(1, std::memory_order_relaxed);
    OBS_STATIC_COUNTER(requests_served, "serve.requests");
    OBS_ADD(requests_served, 1);
    obs::logEvent(obs::LogLevel::Info, "serve", "request_done",
                  {{"points", req.points.size()},
                   {"fresh", resp.fresh_evaluations}});
    if (options_.verbose)
        std::fprintf(stderr,
                     "ppm_serve: [%s] %zu points, %llu fresh\n",
                     contextKey(req).c_str(), req.points.size(),
                     static_cast<unsigned long long>(
                         resp.fresh_evaluations));
    return encodeEvalResponse(resp);
}

std::vector<std::uint8_t>
SimServer::handlePredict(const Frame &frame)
{
    const PredictRequest req = parsePredictRequest(frame.payload);
    if (req.points.empty())
        return encodeError({"empty point batch"});
    // Pin the model for the whole batch: a concurrent hot-swap
    // cannot tear it, and the version echoed below is exactly the
    // model every value was computed with.
    const std::shared_ptr<const ModelSnapshot> model =
        model_host_.current();
    if (!model)
        return encodeError({"no model loaded"});

    OBS_SPAN("span.predict");
    OBS_STATIC_COUNTER(predict_requests, "predict.requests");
    OBS_ADD(predict_requests, 1);
    OBS_STATIC_COUNTER(predict_points, "predict.points");
    OBS_ADD(predict_points, req.points.size());
    PredictResponse resp;
    resp.model_version = model->model_version;
    resp.values = predictWithSnapshot(*model, req.points, req.model);
    if (drift_.enabled() && req.model == ModelKind::Rbf) {
        // Shadow-check a deterministic sample of the served values
        // against ground truth already in the shared cache; the
        // context word is exactly what an EvalRequest for the
        // snapshot's simulation context would memoize under.
        const std::string sim_key =
            model->benchmark + "|t" +
            std::to_string(model->trace_length) + "|w" +
            std::to_string(model->warmup);
        drift_.observeBatch(
            *cache_,
            cache::contextWord(contextIdFor(sim_key),
                               core::metricIndex(model->metric)),
            model->model_version, model->cv_error, req.points,
            resp.values);
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (options_.verbose)
        std::fprintf(stderr,
                     "ppm_serve: predict v%llu, %zu points\n",
                     static_cast<unsigned long long>(
                         resp.model_version),
                     req.points.size());
    return encodePredictResponse(resp);
}

std::vector<std::uint8_t>
SimServer::handleModelInfo(const Frame &frame)
{
    const std::uint64_t nonce = parseModelInfoRequest(frame.payload);
    const std::shared_ptr<const ModelSnapshot> model =
        model_host_.current();
    ModelInfo info;
    if (model)
        info = describeSnapshot(*model);
    (void)nonce; // request/reply pairing is per-connection
    return encodeModelInfoResponse(info);
}

std::vector<std::uint8_t>
SimServer::handleModelPush(const Frame &frame)
{
    const std::vector<std::uint8_t> blob =
        parseModelPush(frame.payload);
    ModelPushAck ack;
    try {
        ModelSnapshot snap = decodeSnapshot(blob);
        const std::uint64_t version = snap.model_version;
        ack.accepted = model_host_.install(std::move(snap), "push");
        ack.model_version = model_host_.version();
        if (!ack.accepted)
            ack.message = "stale version " + std::to_string(version) +
                          " (active " +
                          std::to_string(ack.model_version) + ")";
    } catch (const SnapshotError &e) {
        ack.accepted = false;
        ack.model_version = model_host_.version();
        ack.message = e.what();
    }
    if (options_.verbose)
        std::fprintf(stderr, "ppm_serve: model push %s (v%llu)%s%s\n",
                     ack.accepted ? "accepted" : "rejected",
                     static_cast<unsigned long long>(
                         ack.model_version),
                     ack.message.empty() ? "" : ": ",
                     ack.message.c_str());
    return encodeModelPushAck(ack);
}

std::vector<std::uint8_t>
SimServer::handleTrace(const Frame &frame)
{
    const TraceRequest req = parseTraceRequest(frame.payload);
    TraceDump dump;
    dump.pid = static_cast<std::uint32_t>(::getpid());
    obs::SpanBuffer &buffer = obs::SpanBuffer::instance();
    std::vector<obs::SpanRecord> spans = buffer.snapshot(req.drain);
    dump.dropped = buffer.droppedCount();
    if (spans.size() > kMaxTraceSpans) {
        // Ship the newest spans; the overflow joins the drop count.
        dump.dropped += spans.size() - kMaxTraceSpans;
        spans.erase(spans.begin(),
                    spans.end() - static_cast<std::ptrdiff_t>(
                                      kMaxTraceSpans));
    }
    dump.endpoint = endpointSpec();
    dump.spans.reserve(spans.size());
    for (const obs::SpanRecord &s : spans) {
        TraceSpan out;
        out.trace_hi = s.trace_hi;
        out.trace_lo = s.trace_lo;
        out.span_id = s.span_id;
        out.parent_span_id = s.parent_span_id;
        out.name = s.name;
        out.start_unix_ns = s.start_unix_ns;
        out.dur_ns = s.dur_ns;
        out.tid = s.tid;
        dump.spans.push_back(std::move(out));
    }
    return encodeTraceResponse(dump);
}

namespace {

/** Per-frame-family SLO latency histogram (served request time). */
obs::Histogram &
sloHistogramFor(MsgType type)
{
    auto &reg = obs::Registry::instance();
    static obs::Histogram &eval = reg.histogram("slo.eval");
    static obs::Histogram &predict = reg.histogram("slo.predict");
    static obs::Histogram &stats = reg.histogram("slo.stats");
    static obs::Histogram &model = reg.histogram("slo.model");
    static obs::Histogram &other = reg.histogram("slo.other");
    switch (type) {
      case MsgType::EvalRequest:
        return eval;
      case MsgType::PredictRequest:
        return predict;
      case MsgType::StatsRequest:
        return stats;
      case MsgType::ModelInfoRequest:
      case MsgType::ModelPush:
        return model;
      default:
        return other;
    }
}

/** Is this encoded reply an Error frame? (type field at offset 6) */
bool
isErrorReply(const std::vector<std::uint8_t> &reply)
{
    if (reply.size() < kHeaderSize)
        return false;
    const std::uint16_t type = static_cast<std::uint16_t>(
        reply[6] | (static_cast<std::uint16_t>(reply[7]) << 8));
    return type == static_cast<std::uint16_t>(MsgType::Error);
}

} // namespace

void
SimServer::serveConnection(int fd)
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        Frame frame;
        try {
            frame = readFrame(fd, options_.io_timeout_ms);
        } catch (const IoError &) {
            break; // EOF, timeout or reset: drop the connection
        } catch (const ProtocolError &e) {
            // Framing is lost; report once and drop the connection.
            OBS_STATIC_COUNTER(protocol_errors,
                               "slo.errors.protocol");
            OBS_ADD(protocol_errors, 1);
            try {
                writeFrame(fd, encodeError({e.what()}),
                           options_.io_timeout_ms);
            } catch (const IoError &) {
            }
            break;
        }

        // The requester's trace context rides the v4 header: install
        // it so every span this request touches (cache, RBF kernel,
        // nested oracles) joins the distributed trace. The reply is
        // encoded in the requester's wire version, so a v3 poller
        // gets v3 frames back from a v4 server.
        obs::ScopedTraceContext trace_scope(frame.trace);
        ScopedWireVersion wire_version(frame.version);
        const std::uint64_t slo_start = obs::monotonicNs();

        std::vector<std::uint8_t> reply;
        switch (frame.type) {
          case MsgType::Ping:
            try {
                reply = encodePong(parsePing(frame.payload));
            } catch (const ProtocolError &e) {
                reply = encodeError({e.what()});
            }
            break;
          case MsgType::StatsRequest:
            try {
                (void)parseStatsRequest(frame.payload);
                reply = encodeStatsResponse(
                    obs::Registry::instance().snapshot());
            } catch (const ProtocolError &e) {
                reply = encodeError({e.what()});
            }
            break;
          case MsgType::PredictRequest:
            try {
                reply = handlePredict(frame);
            } catch (const std::exception &e) {
                // Point outside the trained space, wrong
                // dimensionality, no linear baseline, ... — the
                // client falls back to its own snapshot copy.
                if (options_.verbose)
                    std::fprintf(stderr, "ppm_serve: error: %s\n",
                                 e.what());
                reply = encodeError({e.what()});
            }
            break;
          case MsgType::ModelInfoRequest:
            try {
                reply = handleModelInfo(frame);
            } catch (const ProtocolError &e) {
                reply = encodeError({e.what()});
            }
            break;
          case MsgType::ModelPush:
            try {
                reply = handleModelPush(frame);
            } catch (const ProtocolError &e) {
                reply = encodeError({e.what()});
            }
            break;
          case MsgType::EvalRequest:
            try {
                reply = handleRequest(frame);
            } catch (const std::exception &e) {
                // Unknown benchmark, invalid configuration, archive
                // failure, ... — reported to the client, which falls
                // back to local simulation (where the same error
                // surfaces as an exception).
                if (options_.verbose)
                    std::fprintf(stderr, "ppm_serve: error: %s\n",
                                 e.what());
                reply = encodeError({e.what()});
            }
            break;
          case MsgType::TraceRequest:
            try {
                reply = handleTrace(frame);
            } catch (const ProtocolError &e) {
                reply = encodeError({e.what()});
            }
            break;
          default:
            reply = encodeError({"unexpected message type"});
            break;
        }
        sloHistogramFor(frame.type).observe(obs::monotonicNs() -
                                            slo_start);
        if (isErrorReply(reply)) {
            OBS_STATIC_COUNTER(error_replies, "slo.errors.replies");
            OBS_ADD(error_replies, 1);
        }
        try {
            writeFrame(fd, reply, options_.io_timeout_ms);
        } catch (const IoError &) {
            OBS_STATIC_COUNTER(io_errors, "slo.errors.io");
            OBS_ADD(io_errors, 1);
            break;
        }
    }
}

void
SimServer::workerLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        struct pollfd pfds[2] = {
            {listen_fd_.get(), POLLIN, 0},
            {stop_pipe_[0], POLLIN, 0},
        };
        const int rc = ::poll(pfds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (pfds[1].revents != 0)
            break; // stop() rang the bell
        if ((pfds[0].revents & POLLIN) == 0)
            continue;
        // The listening fd is non-blocking: another worker may win
        // the race for this connection. Connections are non-blocking
        // too so frame I/O can enforce io_timeout_ms via poll.
        const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                                 SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (fd < 0)
            continue;
        if (endpoint_.kind == Endpoint::Kind::Tcp)
            setTcpNoDelay(fd);
        // A worker serves one connection at a time, so the number of
        // connections in conns_ is also the number of busy workers —
        // the live proxy for queue depth exported to ppm_stats.
        OBS_STATIC_GAUGE(active_conns, "serve.active_connections");
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conns_.insert(fd);
        }
        OBS_GAUGE_ADD(active_conns, 1);
        serveConnection(fd);
        OBS_GAUGE_SUB(active_conns, 1);
        {
            std::lock_guard<std::mutex> lock(conns_mutex_);
            conns_.erase(fd);
        }
        ::close(fd);
    }
}

} // namespace ppm::serve
