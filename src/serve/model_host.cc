#include "serve/model_host.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <vector>

#include "obs/event_log.hh"
#include "obs/trace_span.hh"
#include "rbf/rbf_batch.hh"

namespace ppm::serve {

namespace fs = std::filesystem;

ModelHost::~ModelHost()
{
    stopWatching();
}

std::shared_ptr<const ModelSnapshot>
ModelHost::current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return model_;
}

std::uint64_t
ModelHost::version() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return model_ ? model_->model_version : 0;
}

bool
ModelHost::install(ModelSnapshot snap, const std::string &origin)
{
    auto next = std::make_shared<const ModelSnapshot>(std::move(snap));
    bool replaced = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (model_ &&
            next->model_version <= model_->model_version)
            return false;
        replaced = model_ != nullptr;
        // The swap: one pointer store. Handlers that copied the old
        // shared_ptr keep a live, immutable model until their batch
        // completes.
        model_ = std::move(next);
    }
    if (replaced) {
        swaps_.fetch_add(1, std::memory_order_relaxed);
        OBS_STATIC_COUNTER(model_swaps, "model.swaps");
        OBS_ADD(model_swaps, 1);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        OBS_STATIC_GAUGE(model_version, "model.version");
#ifndef PPM_OBS_DISABLED
        model_version.set(
            static_cast<std::int64_t>(model_->model_version));
#endif
        // The network's batched evaluation plan was compiled when the
        // snapshot was decoded, i.e. at install time — record which
        // SIMD path this model will serve with.
        const std::string simd =
            model_->network.plan()
                ? rbf::simdKindName(model_->network.plan()->kind())
                : std::string("none");
        obs::logEvent(obs::LogLevel::Info, "model", "installed",
                      {{"version", model_->model_version},
                       {"origin", origin},
                       {"simd", simd},
                       {"swap", replaced ? 1 : 0}});
    }
    return true;
}

bool
ModelHost::loadFile(const std::string &path)
{
    try {
        return install(loadSnapshot(path), "file:" + path);
    } catch (const SnapshotError &e) {
        load_failures_.fetch_add(1, std::memory_order_relaxed);
        OBS_STATIC_COUNTER(load_failures, "model.load_failures");
        OBS_ADD(load_failures, 1);
        obs::logEvent(obs::LogLevel::Warn, "model", "load_failed",
                      {{"path", path}, {"error", e.what()}});
        return false;
    }
}

void
ModelHost::scanDirectory()
{
    // Deterministic name order so concurrent publishes of several
    // versions converge on the greatest one regardless of readdir
    // order (install() is version-gated anyway).
    std::vector<fs::path> candidates;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(watch_dir_, ec)) {
        if (ec)
            return;
        if (!entry.is_regular_file(ec) || ec)
            continue;
        const fs::path &p = entry.path();
        if (p.extension() == kSnapshotSuffix)
            candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const fs::path &p : candidates) {
        const auto mtime = fs::last_write_time(p, ec);
        if (ec)
            continue;
        const auto size = fs::file_size(p, ec);
        if (ec)
            continue;
        const std::pair<std::int64_t, std::uint64_t> stamp{
            mtime.time_since_epoch().count(),
            static_cast<std::uint64_t>(size)};
        auto it = seen_.find(p.string());
        if (it != seen_.end() && it->second == stamp)
            continue;
        seen_[p.string()] = stamp;
        loadFile(p.string());
    }
}

void
ModelHost::watch(std::string dir, int poll_ms)
{
    stopWatching();
    watch_dir_ = std::move(dir);
    poll_ms_ = poll_ms < 1 ? 1 : poll_ms;
    // Synchronous first scan: a snapshot already sitting in the
    // directory is active before the server answers its first query.
    scanDirectory();
    {
        std::lock_guard<std::mutex> lock(watch_mutex_);
        watch_stop_ = false;
    }
    watcher_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(watch_mutex_);
        while (!watch_stop_) {
            watch_cv_.wait_for(
                lock, std::chrono::milliseconds(poll_ms_),
                [this] { return watch_stop_; });
            if (watch_stop_)
                break;
            lock.unlock();
            scanDirectory();
            lock.lock();
        }
    });
}

void
ModelHost::stopWatching()
{
    {
        std::lock_guard<std::mutex> lock(watch_mutex_);
        watch_stop_ = true;
    }
    watch_cv_.notify_all();
    if (watcher_.joinable())
        watcher_.join();
}

} // namespace ppm::serve
