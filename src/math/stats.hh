/**
 * @file
 * Summary statistics and error metrics. The paper reports model quality
 * as the mean / maximum / standard deviation of the absolute percentage
 * error in predicted CPI (Table 3, Figures 4 and 7).
 */

#ifndef PPM_MATH_STATS_HH
#define PPM_MATH_STATS_HH

#include <cstddef>
#include <vector>

namespace ppm::math {

/** Mean of @p v; returns 0 for an empty vector. */
double mean(const std::vector<double> &v);

/**
 * Sample variance of @p v (divides by n - 1).
 * Returns 0 when fewer than two elements are present.
 */
double variance(const std::vector<double> &v);

/** Sample standard deviation (square root of variance()). */
double stddev(const std::vector<double> &v);

/** Smallest element; 0 for an empty vector. */
double minValue(const std::vector<double> &v);

/** Largest element; 0 for an empty vector. */
double maxValue(const std::vector<double> &v);

/**
 * Linear-interpolated percentile.
 *
 * @param v Values (copied and sorted internally).
 * @param pct Percentile in [0, 100].
 */
double percentile(std::vector<double> v, double pct);

/**
 * Accumulated description of a set of observations.
 */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Compute all Summary fields in one pass over @p v. */
Summary summarize(const std::vector<double> &v);

/**
 * Absolute percentage errors 100 * |pred - actual| / |actual|,
 * elementwise. Entries with |actual| below 1e-12 contribute 0 (the CPI
 * response is bounded away from zero, so this never triggers in
 * practice but keeps the metric total).
 */
std::vector<double> absolutePercentageErrors(
    const std::vector<double> &actual, const std::vector<double> &predicted);

/** Mean of absolutePercentageErrors(). */
double meanAbsolutePercentageError(const std::vector<double> &actual,
                                   const std::vector<double> &predicted);

/** Root mean square of (pred - actual). */
double rmsError(const std::vector<double> &actual,
                const std::vector<double> &predicted);

/**
 * Coefficient of determination R^2 of predictions against actuals.
 * Returns 1 when the actuals are constant and perfectly matched.
 */
double rSquared(const std::vector<double> &actual,
                const std::vector<double> &predicted);

} // namespace ppm::math

#endif // PPM_MATH_STATS_HH
