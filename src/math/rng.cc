#include "math/rng.hh"

#include <cassert>
#include <cmath>

namespace ppm::math {

namespace {

/** splitmix64 step used to expand the user seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce
    // four zero outputs in a row, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0ULL - n) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::gaussian()
{
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    // Box-Muller transform producing two deviates per pair of uniforms.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double sd)
{
    return mean + sd * gaussian();
}

double
Rng::exponential(double mean_value)
{
    assert(mean_value > 0.0);
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return -mean_value * std::log(u);
}

std::uint64_t
Rng::geometric(double p)
{
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 1;
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    const double k = std::ceil(std::log(u) / std::log(1.0 - p));
    return k < 1.0 ? 1 : static_cast<std::uint64_t>(k);
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    assert(total > 0.0);
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa0761d6478bd642fULL);
}

Rng
Rng::stream(std::uint64_t base_seed, std::uint64_t index)
{
    std::uint64_t sm = base_seed;
    const std::uint64_t a = splitmix64(sm);
    sm = index ^ 0x9e3779b97f4a7c15ULL;
    const std::uint64_t b = splitmix64(sm);
    // The Rng constructor expands this mix through splitmix64 again,
    // so even (0, 0), (0, 1), (1, 0) start far apart.
    return Rng(a ^ (b * 0xff51afd7ed558ccdULL));
}

} // namespace ppm::math
