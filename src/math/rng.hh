/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in the library — latin hypercube sampling,
 * random test points, synthetic trace generation — draws from this
 * xoshiro256** generator so experiments are exactly reproducible from a
 * seed, independent of the standard library implementation.
 */

#ifndef PPM_MATH_RNG_HH
#define PPM_MATH_RNG_HH

#include <cstdint>
#include <vector>

namespace ppm::math {

/**
 * xoshiro256** 1.0 by Blackman and Vigna, seeded via splitmix64.
 *
 * Fast, high-quality, and fully specified here so results are stable
 * across platforms and standard libraries.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); @p n must be positive. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double gaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double gaussian(double mean, double sd);

    /** Exponential deviate with the given mean. */
    double exponential(double mean_value);

    /**
     * Geometric-like deviate: smallest k >= 1 with success probability
     * @p p per trial. Used for dependency-distance draws in the trace
     * generator.
     */
    std::uint64_t geometric(double p);

    /**
     * Sample an index according to unnormalized weights.
     * @param weights Non-negative weights, at least one positive.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Bernoulli draw with probability @p p of true. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

    /**
     * Deterministic stream for one item of a parallel sweep: the
     * generator depends only on (@p base_seed, @p index), never on
     * which thread runs the item or in what order, so parallel results
     * are bit-identical to serial ones. Adjacent indices yield
     * uncorrelated states (both words pass through splitmix64).
     */
    static Rng stream(std::uint64_t base_seed, std::uint64_t index);

  private:
    std::uint64_t s_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

} // namespace ppm::math

#endif // PPM_MATH_RNG_HH
