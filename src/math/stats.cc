#include "math/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ppm::math {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

double
variance(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(v.size() - 1);
}

double
stddev(const std::vector<double> &v)
{
    return std::sqrt(variance(v));
}

double
minValue(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return *std::min_element(v.begin(), v.end());
}

double
maxValue(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return *std::max_element(v.begin(), v.end());
}

double
percentile(std::vector<double> v, double pct)
{
    if (v.empty())
        return 0.0;
    assert(pct >= 0.0 && pct <= 100.0);
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v.front();
    const double pos = pct / 100.0 * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

Summary
summarize(const std::vector<double> &v)
{
    Summary s;
    s.count = v.size();
    if (v.empty())
        return s;
    double acc = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (double x : v) {
        acc += x;
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    s.mean = acc / static_cast<double>(v.size());
    s.min = lo;
    s.max = hi;
    double ss = 0.0;
    for (double x : v)
        ss += (x - s.mean) * (x - s.mean);
    s.stddev = v.size() > 1
        ? std::sqrt(ss / static_cast<double>(v.size() - 1)) : 0.0;
    return s;
}

std::vector<double>
absolutePercentageErrors(const std::vector<double> &actual,
                         const std::vector<double> &predicted)
{
    assert(actual.size() == predicted.size());
    std::vector<double> out(actual.size(), 0.0);
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (std::fabs(actual[i]) < 1e-12)
            continue;
        out[i] = 100.0 * std::fabs(predicted[i] - actual[i])
            / std::fabs(actual[i]);
    }
    return out;
}

double
meanAbsolutePercentageError(const std::vector<double> &actual,
                            const std::vector<double> &predicted)
{
    return mean(absolutePercentageErrors(actual, predicted));
}

double
rmsError(const std::vector<double> &actual,
         const std::vector<double> &predicted)
{
    assert(actual.size() == predicted.size());
    if (actual.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double e = predicted[i] - actual[i];
        acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(actual.size()));
}

double
rSquared(const std::vector<double> &actual,
         const std::vector<double> &predicted)
{
    assert(actual.size() == predicted.size());
    if (actual.empty())
        return 0.0;
    const double m = mean(actual);
    double ss_tot = 0.0, ss_res = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        ss_tot += (actual[i] - m) * (actual[i] - m);
        ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    }
    if (ss_tot < 1e-300)
        return ss_res < 1e-300 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace ppm::math
