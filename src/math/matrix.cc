#include "math/matrix.hh"

#include <cassert>
#include <cmath>
#include <sstream>

namespace ppm::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        assert(row.size() == cols_ && "ragged initializer");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

double *
Matrix::rowPtr(std::size_t r)
{
    assert(r < rows_);
    return data_.data() + r * cols_;
}

const double *
Matrix::rowPtr(std::size_t r) const
{
    assert(r < rows_);
    return data_.data() + r * cols_;
}

Vector
Matrix::row(std::size_t r) const
{
    assert(r < rows_);
    return Vector(rowPtr(r), rowPtr(r) + cols_);
}

Vector
Matrix::col(std::size_t c) const
{
    assert(c < cols_);
    Vector out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = (*this)(r, c);
    return out;
}

void
Matrix::setRow(std::size_t r, const Vector &v)
{
    assert(v.size() == cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        (*this)(r, c) = v[c];
}

void
Matrix::setCol(std::size_t c, const Vector &v)
{
    assert(v.size() == rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        (*this)(r, c) = v[r];
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    assert(cols_ == other.rows_);
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *a = rowPtr(r);
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aval = a[k];
            if (aval == 0.0)
                continue;
            const double *b = other.rowPtr(k);
            double *o = out.rowPtr(r);
            for (std::size_t c = 0; c < other.cols_; ++c)
                o[c] += aval * b[c];
        }
    }
    return out;
}

Vector
Matrix::operator*(const Vector &v) const
{
    assert(v.size() == cols_);
    Vector out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *a = rowPtr(r);
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += a[c] * v[c];
        out[r] = acc;
    }
    return out;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

Matrix
Matrix::scaled(double s) const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * s;
    return out;
}

Matrix
Matrix::gram() const
{
    Matrix out(cols_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *a = rowPtr(r);
        for (std::size_t i = 0; i < cols_; ++i) {
            const double ai = a[i];
            if (ai == 0.0)
                continue;
            double *o = out.rowPtr(i);
            for (std::size_t j = i; j < cols_; ++j)
                o[j] += ai * a[j];
        }
    }
    // Mirror the upper triangle into the lower.
    for (std::size_t i = 0; i < cols_; ++i)
        for (std::size_t j = 0; j < i; ++j)
            out(i, j) = out(j, i);
    return out;
}

Vector
Matrix::transposeTimes(const Vector &y) const
{
    assert(y.size() == rows_);
    Vector out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *a = rowPtr(r);
        const double yr = y[r];
        for (std::size_t c = 0; c < cols_; ++c)
            out[c] += a[c] * yr;
    }
    return out;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i)
        out(i, i) = 1.0;
    return out;
}

Matrix
Matrix::fromColumns(const std::vector<Vector> &columns)
{
    if (columns.empty())
        return Matrix();
    const std::size_t rows = columns.front().size();
    Matrix out(rows, columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
        assert(columns[c].size() == rows && "ragged columns");
        out.setCol(c, columns[c]);
    }
    return out;
}

std::string
Matrix::toString() const
{
    std::ostringstream os;
    os << rows_ << "x" << cols_ << " [";
    for (std::size_t r = 0; r < rows_; ++r) {
        os << (r ? "; " : "");
        for (std::size_t c = 0; c < cols_; ++c)
            os << (c ? " " : "") << (*this)(r, c);
    }
    os << "]";
    return os.str();
}

double
dot(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

double
norm(const Vector &v)
{
    return std::sqrt(dot(v, v));
}

Vector
subtract(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

Vector
add(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

Vector
scale(const Vector &v, double s)
{
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = v[i] * s;
    return out;
}

} // namespace ppm::math
