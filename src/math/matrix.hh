/**
 * @file
 * Dense row-major matrix and vector utilities used by the regression
 * machinery (least-squares fits for RBF output weights and the linear
 * baseline model).
 */

#ifndef PPM_MATH_MATRIX_HH
#define PPM_MATH_MATRIX_HH

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace ppm::math {

/** Column/row vector of doubles. */
using Vector = std::vector<double>;

/**
 * Dense row-major matrix of doubles.
 *
 * Small, dependency-free matrix type. The model-building code works with
 * design matrices of at most a few hundred rows and columns, so a simple
 * contiguous row-major layout is both adequate and cache friendly.
 */
class Matrix
{
  public:
    /** Construct an empty 0x0 matrix. */
    Matrix() = default;

    /**
     * Construct a rows x cols matrix.
     *
     * @param rows Number of rows.
     * @param cols Number of columns.
     * @param fill Initial value of every element.
     */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /**
     * Construct from nested initializer lists, e.g.
     * Matrix{{1, 2}, {3, 4}}. All rows must have equal length.
     */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** Number of rows. */
    std::size_t rows() const { return rows_; }
    /** Number of columns. */
    std::size_t cols() const { return cols_; }
    /** True iff the matrix has zero elements. */
    bool empty() const { return data_.empty(); }

    /** Element access (unchecked beyond assert). */
    double &operator()(std::size_t r, std::size_t c);
    /** Element access (unchecked beyond assert). */
    double operator()(std::size_t r, std::size_t c) const;

    /** Pointer to the first element of row @p r. */
    double *rowPtr(std::size_t r);
    /** Pointer to the first element of row @p r. */
    const double *rowPtr(std::size_t r) const;

    /** Copy of row @p r as a Vector. */
    Vector row(std::size_t r) const;
    /** Copy of column @p c as a Vector. */
    Vector col(std::size_t c) const;

    /** Set row @p r from @p v; v.size() must equal cols(). */
    void setRow(std::size_t r, const Vector &v);
    /** Set column @p c from @p v; v.size() must equal rows(). */
    void setCol(std::size_t c, const Vector &v);

    /** Return the transpose. */
    Matrix transposed() const;

    /** Matrix product this * other. */
    Matrix operator*(const Matrix &other) const;
    /** Matrix-vector product this * v. */
    Vector operator*(const Vector &v) const;

    /** Elementwise sum; shapes must match. */
    Matrix operator+(const Matrix &other) const;
    /** Elementwise difference; shapes must match. */
    Matrix operator-(const Matrix &other) const;
    /** Scale every element by @p s. */
    Matrix scaled(double s) const;

    /** A^T * A, computed without forming the transpose. */
    Matrix gram() const;
    /** A^T * y for y.size() == rows(). */
    Vector transposeTimes(const Vector &y) const;

    /** Identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /**
     * Matrix with the given columns.
     * @param columns Column vectors; all must share one length.
     */
    static Matrix fromColumns(const std::vector<Vector> &columns);

    /** Human-readable rendering for debugging and test failures. */
    std::string toString() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Dot product; sizes must match. */
double dot(const Vector &a, const Vector &b);

/** Euclidean norm. */
double norm(const Vector &v);

/** a - b elementwise; sizes must match. */
Vector subtract(const Vector &a, const Vector &b);

/** a + b elementwise; sizes must match. */
Vector add(const Vector &a, const Vector &b);

/** v scaled by s. */
Vector scale(const Vector &v, double s);

} // namespace ppm::math

#endif // PPM_MATH_MATRIX_HH
