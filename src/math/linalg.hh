/**
 * @file
 * Linear algebra solvers: Cholesky factorization, Householder QR,
 * least-squares with ridge fallback, and Gaussian elimination. These back
 * the RBF output-weight fit and the linear baseline model.
 */

#ifndef PPM_MATH_LINALG_HH
#define PPM_MATH_LINALG_HH

#include <optional>

#include "math/matrix.hh"

namespace ppm::math {

/**
 * Cholesky factor of a symmetric positive definite matrix.
 *
 * @param a Symmetric matrix; only the lower triangle is read.
 * @return Lower-triangular L with a = L * L^T, or std::nullopt if @p a is
 *         not (numerically) positive definite.
 */
std::optional<Matrix> cholesky(const Matrix &a);

/**
 * Solve a * x = b for symmetric positive definite @p a via Cholesky.
 *
 * @return Solution x, or std::nullopt if @p a is not positive definite.
 */
std::optional<Vector> choleskySolve(const Matrix &a, const Vector &b);

/**
 * Solve a * x = b with Gaussian elimination and partial pivoting.
 *
 * @return Solution x, or std::nullopt if @p a is singular.
 */
std::optional<Vector> gaussSolve(Matrix a, Vector b);

/**
 * Result of a least-squares fit.
 */
struct LeastSquaresResult
{
    /** Fitted coefficients; size equals the design matrix column count. */
    Vector coefficients;
    /** Sum of squared residuals ||y - A x||^2 on the training data. */
    double residual_sum_squares = 0.0;
    /** True iff the normal equations needed ridge regularization. */
    bool regularized = false;
};

/**
 * Minimize ||a * x - y||^2.
 *
 * Uses Householder QR for numerical robustness. If the design matrix is
 * (numerically) rank deficient, retries on the normal equations with a
 * small ridge term so model construction degrades gracefully rather than
 * failing when two candidate RBF centers nearly coincide.
 *
 * @param a Design matrix, rows >= cols.
 * @param y Observations, y.size() == a.rows().
 * @param ridge Ridge penalty to apply on the fallback path.
 */
LeastSquaresResult leastSquares(const Matrix &a, const Vector &y,
                                double ridge = 1e-8);

/**
 * Householder QR solve of the overdetermined system a * x ~= y.
 *
 * @return Coefficients, or std::nullopt when a diagonal element of R
 *         underflows (rank deficiency).
 */
std::optional<Vector> qrSolve(const Matrix &a, const Vector &y);

/**
 * Solve the ridge-regularized normal equations
 * (A^T A + ridge * I) x = A^T y.
 */
Vector ridgeSolve(const Matrix &a, const Vector &y, double ridge);

} // namespace ppm::math

#endif // PPM_MATH_LINALG_HH
