#include "math/linalg.hh"

#include <cassert>
#include <cmath>

namespace ppm::math {

std::optional<Matrix>
cholesky(const Matrix &a)
{
    assert(a.rows() == a.cols());
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l(j, k) * l(j, k);
        if (diag <= 0.0 || !std::isfinite(diag))
            return std::nullopt;
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l(i, k) * l(j, k);
            l(i, j) = acc / ljj;
        }
    }
    return l;
}

std::optional<Vector>
choleskySolve(const Matrix &a, const Vector &b)
{
    assert(a.rows() == b.size());
    auto l = cholesky(a);
    if (!l)
        return std::nullopt;
    const std::size_t n = b.size();
    // Forward substitution: L z = b.
    Vector z(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= (*l)(i, k) * z[k];
        z[i] = acc / (*l)(i, i);
    }
    // Back substitution: L^T x = z.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = z[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            acc -= (*l)(k, ii) * x[k];
        x[ii] = acc / (*l)(ii, ii);
    }
    return x;
}

std::optional<Vector>
gaussSolve(Matrix a, Vector b)
{
    assert(a.rows() == a.cols() && a.rows() == b.size());
    const std::size_t n = a.rows();
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: bring the largest remaining entry up.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::fabs(a(r, col)) > std::fabs(a(pivot, col)))
                pivot = r;
        if (std::fabs(a(pivot, col)) < 1e-300)
            return std::nullopt;
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(col, c), a(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        const double inv = 1.0 / a(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a(r, col) * inv;
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a(r, c) -= f * a(col, c);
            b[r] -= f * b[col];
        }
    }
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = b[ii];
        for (std::size_t c = ii + 1; c < n; ++c)
            acc -= a(ii, c) * x[c];
        x[ii] = acc / a(ii, ii);
    }
    return x;
}

std::optional<Vector>
qrSolve(const Matrix &a, const Vector &y)
{
    assert(a.rows() >= a.cols());
    assert(a.rows() == y.size());
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();

    // Work on copies; r becomes upper triangular, qty accumulates Q^T y.
    Matrix r = a;
    Vector qty = y;

    for (std::size_t k = 0; k < n; ++k) {
        // Householder reflector for column k.
        double col_norm = 0.0;
        for (std::size_t i = k; i < m; ++i)
            col_norm += r(i, k) * r(i, k);
        col_norm = std::sqrt(col_norm);
        if (col_norm < 1e-12)
            return std::nullopt;

        const double alpha = r(k, k) >= 0.0 ? -col_norm : col_norm;
        Vector v(m - k);
        v[0] = r(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i)
            v[i - k] = r(i, k);
        const double vtv = dot(v, v);
        if (vtv < 1e-300)
            return std::nullopt;
        const double beta = 2.0 / vtv;

        // Apply the reflector to the remaining columns of r.
        for (std::size_t c = k; c < n; ++c) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i)
                s += v[i - k] * r(i, c);
            s *= beta;
            for (std::size_t i = k; i < m; ++i)
                r(i, c) -= s * v[i - k];
        }
        // And to the right-hand side.
        double s = 0.0;
        for (std::size_t i = k; i < m; ++i)
            s += v[i - k] * qty[i];
        s *= beta;
        for (std::size_t i = k; i < m; ++i)
            qty[i] -= s * v[i - k];
    }

    // Back substitution on the triangular factor.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        if (std::fabs(r(ii, ii)) < 1e-12)
            return std::nullopt;
        double acc = qty[ii];
        for (std::size_t c = ii + 1; c < n; ++c)
            acc -= r(ii, c) * x[c];
        x[ii] = acc / r(ii, ii);
    }
    return x;
}

Vector
ridgeSolve(const Matrix &a, const Vector &y, double ridge)
{
    Matrix gram = a.gram();
    for (std::size_t i = 0; i < gram.rows(); ++i)
        gram(i, i) += ridge;
    Vector aty = a.transposeTimes(y);
    // Escalate the ridge until the system becomes positive definite;
    // with a nonzero ridge this terminates quickly.
    double lambda = ridge;
    for (int attempt = 0; attempt < 40; ++attempt) {
        auto x = choleskySolve(gram, aty);
        if (x)
            return *x;
        for (std::size_t i = 0; i < gram.rows(); ++i)
            gram(i, i) += lambda * 9.0;
        lambda *= 10.0;
    }
    // Unreachable for finite inputs; return zeros as a last resort.
    return Vector(a.cols(), 0.0);
}

LeastSquaresResult
leastSquares(const Matrix &a, const Vector &y, double ridge)
{
    LeastSquaresResult res;
    auto x = qrSolve(a, y);
    if (!x) {
        res.regularized = true;
        res.coefficients = ridgeSolve(a, y, ridge);
    } else {
        res.coefficients = *x;
    }
    const Vector fitted = a * res.coefficients;
    double rss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        const double e = y[i] - fitted[i];
        rss += e * e;
    }
    res.residual_sum_squares = rss;
    return res;
}

} // namespace ppm::math
