/**
 * @file
 * Latin hypercube sampling (McKay, Beckman, Conover 1979), the paper's
 * strategy for selecting simulation design points (Sec 2.2).
 *
 * For a sample of p points, each parameter's transformed range is
 * stratified into p equal strata and each stratum is used exactly once;
 * strata are combined randomly across parameters. Points are then
 * snapped to each parameter's discrete levels, so parameters with few
 * levels (e.g. dl1_lat with 4) cover every level roughly equally — the
 * "variant" of LHS the paper describes.
 */

#ifndef PPM_SAMPLING_LATIN_HYPERCUBE_HH
#define PPM_SAMPLING_LATIN_HYPERCUBE_HH

#include <vector>

#include "dspace/design_space.hh"
#include "math/rng.hh"

namespace ppm::sampling {

/** Options controlling LHS generation. */
struct LhsOptions
{
    /**
     * Place each point at the centre of its stratum instead of a random
     * offset. Centred strata give slightly better discrepancy; random
     * offsets give an unbiased space-filling estimate.
     */
    bool center_strata = false;
    /**
     * Snap each coordinate to the parameter's discrete levels
     * (sample-size-dependent parameters get one level per point).
     */
    bool snap_to_levels = true;
};

/**
 * Draw one latin hypercube sample of @p size raw design points.
 *
 * @param space The design space to sample.
 * @param size Number of design points (>= 2).
 * @param rng Random source.
 * @param options Generation options.
 */
std::vector<dspace::DesignPoint> latinHypercubeSample(
    const dspace::DesignSpace &space, int size, math::Rng &rng,
    const LhsOptions &options = {});

/**
 * Map a raw sample into the unit hypercube of @p space (helper for
 * discrepancy computation and model fitting).
 */
std::vector<dspace::UnitPoint> toUnitSample(
    const dspace::DesignSpace &space,
    const std::vector<dspace::DesignPoint> &points);

} // namespace ppm::sampling

#endif // PPM_SAMPLING_LATIN_HYPERCUBE_HH
