/**
 * @file
 * Sample-generation strategies built on the latin hypercube sampler:
 * the paper's best-of-N discrepancy-optimized LHS (Sec 2.2), plain
 * random sampling (the ablation baseline), and independent random test
 * sets (Sec 3).
 */

#ifndef PPM_SAMPLING_SAMPLE_GEN_HH
#define PPM_SAMPLING_SAMPLE_GEN_HH

#include <vector>

#include "dspace/design_space.hh"
#include "math/rng.hh"
#include "sampling/latin_hypercube.hh"

namespace ppm::sampling {

/** A generated training sample with its space-filling score. */
struct OptimizedSample
{
    /** Raw design points, one per simulation to run. */
    std::vector<dspace::DesignPoint> points;
    /** Centered L2 discrepancy of the chosen sample. */
    double discrepancy = 0.0;
    /** How many candidate samples were scored. */
    int candidates_evaluated = 0;
};

/**
 * Generate @p num_candidates latin hypercube samples and keep the one
 * with the lowest centered L2 discrepancy — the paper's "generate a
 * large number of latin hypercube samples and choose the one with the
 * best L2-star discrepancy metric".
 *
 * Candidates are generated and scored in parallel on the global
 * thread pool. Each candidate uses an independent RNG stream derived
 * from (one draw of @p rng, candidate index), so the selected sample
 * is bit-identical for every thread count; ties go to the lowest
 * candidate index.
 *
 * @param space Design space to sample.
 * @param size Sample size (number of simulations).
 * @param num_candidates Candidate samples to generate (>= 1).
 * @param rng Random source.
 * @param options LHS options forwarded to each candidate.
 */
OptimizedSample bestLatinHypercube(const dspace::DesignSpace &space,
                                   int size, int num_candidates,
                                   math::Rng &rng,
                                   const LhsOptions &options = {});

/**
 * Plain uniform random sample (each point independent), snapped to
 * parameter levels. Baseline against which LHS is ablated.
 */
std::vector<dspace::DesignPoint> randomSample(
    const dspace::DesignSpace &space, int size, math::Rng &rng);

/**
 * Independent random test set for model validation: @p size points
 * drawn uniformly from @p space without level snapping (the paper draws
 * 50 such points from the Table 2 subspace).
 */
std::vector<dspace::DesignPoint> randomTestSet(
    const dspace::DesignSpace &space, int size, math::Rng &rng);

} // namespace ppm::sampling

#endif // PPM_SAMPLING_SAMPLE_GEN_HH
