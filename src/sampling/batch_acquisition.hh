/**
 * @file
 * Batch-aware infill acquisition for the adaptive sampling loop
 * (paper Sec 6).
 *
 * The sequential strategy reproduces the original infill rule: each
 * pick draws and scores a fresh candidate pool conditioned on
 * everything already selected, so a batch of k picks costs k full
 * scoring passes and the oracle backend idles between picks.
 *
 * The determinantal strategy scores ONE candidate pool per round and
 * selects the whole k-point batch jointly, in the spirit of
 * determinantal point processes (Kulesza & Taskar): greedy
 * max-determinant selection over the quality–diversity kernel
 *
 *     L[i][j] = q_i * k(x_i, x_j) * q_j ,
 *
 * where q_i is the infill quality score d_min^w * (1 + leaf_std) and
 * k is a Gaussian kernel on unit-space distance. det L_S trades the
 * product of qualities against the batch's spread, so one scoring
 * pass yields a diverse batch and the whole batch can be dispatched
 * to a (sharded) oracle in a single evaluateAll() call. Greedy
 * selection maintains an incremental Cholesky factor of L_S; each
 * step is a rank-1 update costing O(pool · picked).
 *
 * Determinism contract: the pool is generated and scored in parallel
 * with per-candidate math::Rng::stream(base, index) streams, and
 * selection is a serial first-strict-winner scan, so batches are
 * bit-identical for every PPM_THREADS value (see DESIGN.md "Parallel
 * execution & determinism").
 */

#ifndef PPM_SAMPLING_BATCH_ACQUISITION_HH
#define PPM_SAMPLING_BATCH_ACQUISITION_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "dspace/design_space.hh"
#include "math/rng.hh"

namespace ppm::sampling {

/** How an infill batch is selected from the candidate pool. */
enum class BatchStrategy
{
    /** One scoring pass per pick, conditioned on previous picks. */
    Sequential,
    /**
     * One scoring pass per round; joint k-point selection by greedy
     * max-determinant over the quality–diversity kernel.
     */
    Determinantal,
};

/** Short name of a BatchStrategy ("sequential", "determinantal"). */
const char *batchStrategyName(BatchStrategy strategy);

struct BatchAcquisitionOptions
{
    /** Points to select (>= 1). */
    int batch_size = 1;
    /**
     * Candidates scored (>= 1; for Determinantal also
     * >= batch_size, since each pool point is picked at most once).
     */
    int candidate_pool = 2000;
    /** Exponent w of the distance term in the quality score. */
    double distance_weight = 1.0;
    /**
     * Gaussian kernel bandwidth sigma in unit space
     * (k = exp(-d^2 / (2 sigma^2))); 0 selects
     * adaptedKernelBandwidth() — the nearest-neighbour spacing scale
     * shrunk as the occupied sample grows. Determinantal only.
     */
    double kernel_bandwidth = 0.0;
};

/**
 * Default diversity-kernel bandwidth adapted to sample growth. The
 * repulsion scale that matters is the typical nearest-neighbour
 * spacing of the @p occupied points, which contracts like n^(-1/d)
 * in a d-dimensional unit cube: a bandwidth fixed at the early-round
 * scale eventually spans many occupied neighbours, making every
 * candidate pair look redundant and flattening the determinant's
 * diversity signal. Returns the established early-sample default
 * 0.25 * sqrt(dims) while occupied <= 16, then shrinks it by
 * (16 / occupied)^(1/dims), floored at a fifth of the base so late
 * rounds keep a nonzero repulsion radius.
 */
double adaptedKernelBandwidth(std::size_t dims, std::size_t occupied);

/** Per-round acquisition accounting, surfaced in AdaptiveRound. */
struct AcquisitionStats
{
    /** Candidate scorings this round (pool, or k * pool sequential). */
    std::uint64_t pool_scored = 0;
    /** Gaussian kernel evaluations during joint selection. */
    std::uint64_t kernel_evaluations = 0;
    /** Wall-clock seconds spent selecting (excludes pool scoring). */
    double selection_seconds = 0.0;
    /**
     * Batch diversity: minimum pairwise unit-space distance within
     * the selected batch; for single-point batches, the distance to
     * the nearest occupied point.
     */
    double batch_min_distance = 0.0;
};

/** A selected infill batch in raw and unit coordinates. */
struct AcquiredBatch
{
    std::vector<dspace::DesignPoint> points;
    std::vector<dspace::UnitPoint> unit;
    AcquisitionStats stats;
};

/**
 * Local response-variability estimate at a unit point (e.g. the
 * standard deviation of the training responses in the regression-tree
 * leaf containing it). Must be safe to call concurrently.
 */
using VariabilityFn = std::function<double(const dspace::UnitPoint &)>;

/**
 * Select one infill batch.
 *
 * @param strategy Selection strategy.
 * @param space Space candidates are drawn from.
 * @param occupied Unit coordinates of every already-simulated point.
 * @param variability Response-variability proxy (see VariabilityFn).
 * @param options Pool / batch sizes and kernel parameters.
 * @param rng Caller's RNG; the Sequential strategy draws one base
 *        seed per pick, Determinantal exactly one per round.
 * @throws std::invalid_argument on invalid options.
 */
AcquiredBatch acquireBatch(BatchStrategy strategy,
                           const dspace::DesignSpace &space,
                           const std::vector<dspace::UnitPoint> &occupied,
                           const VariabilityFn &variability,
                           const BatchAcquisitionOptions &options,
                           math::Rng &rng);

} // namespace ppm::sampling

#endif // PPM_SAMPLING_BATCH_ACQUISITION_HH
