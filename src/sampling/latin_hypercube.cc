#include "sampling/latin_hypercube.hh"

#include <cassert>
#include <numeric>

namespace ppm::sampling {

std::vector<dspace::DesignPoint>
latinHypercubeSample(const dspace::DesignSpace &space, int size,
                     math::Rng &rng, const LhsOptions &options)
{
    assert(size >= 2);
    const std::size_t n = space.size();
    const std::size_t p = static_cast<std::size_t>(size);

    // One column of stratified unit values per parameter, independently
    // permuted so strata combine randomly across parameters.
    std::vector<dspace::UnitPoint> unit(p, dspace::UnitPoint(n));
    std::vector<std::size_t> order(p);
    for (std::size_t k = 0; k < n; ++k) {
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        for (std::size_t i = 0; i < p; ++i) {
            const double offset = options.center_strata ? 0.5
                : rng.uniform();
            const double u = (static_cast<double>(order[i]) + offset)
                / static_cast<double>(p);
            unit[i][k] = u;
        }
    }

    std::vector<dspace::DesignPoint> points;
    points.reserve(p);
    for (std::size_t i = 0; i < p; ++i) {
        dspace::DesignPoint raw = space.fromUnit(unit[i]);
        if (options.snap_to_levels)
            raw = space.snapToLevels(raw, size);
        points.push_back(std::move(raw));
    }
    return points;
}

std::vector<dspace::UnitPoint>
toUnitSample(const dspace::DesignSpace &space,
             const std::vector<dspace::DesignPoint> &points)
{
    std::vector<dspace::UnitPoint> unit;
    unit.reserve(points.size());
    for (const auto &p : points)
        unit.push_back(space.toUnit(p));
    return unit;
}

} // namespace ppm::sampling
