/**
 * @file
 * Space-filling quality metrics: L2-star discrepancy (Warnock) and the
 * centered L2 discrepancy (Hickernell 1998), which the paper uses to
 * choose among candidate latin hypercube samples (Sec 2.2, Fig 2).
 * Lower values mean the sample deviates less from a perfectly uniform
 * spread over the unit hypercube.
 */

#ifndef PPM_SAMPLING_DISCREPANCY_HH
#define PPM_SAMPLING_DISCREPANCY_HH

#include <vector>

#include "dspace/design_space.hh"

namespace ppm::sampling {

/**
 * Classical L2-star discrepancy via Warnock's closed form:
 *
 *   D*^2 = 3^-d
 *        - 2^(1-d)/p * sum_i prod_k (1 - x_ik^2)
 *        + 1/p^2 * sum_{i,j} prod_k (1 - max(x_ik, x_jk))
 *
 * @param unit Points in [0, 1]^d; all must share one dimensionality.
 * @return D* (the square root of the expression above).
 */
double starL2Discrepancy(const std::vector<dspace::UnitPoint> &unit);

/**
 * Centered L2 discrepancy (Hickernell 1998, Eq 5.2 / Fang et al. 2002):
 *
 *   CD^2 = (13/12)^d
 *        - 2/p * sum_i prod_k (1 + |z_ik|/2 - z_ik^2/2)
 *        + 1/p^2 * sum_{i,j} prod_k
 *              (1 + |z_ik|/2 + |z_jk|/2 - |x_ik - x_jk|/2)
 *
 * with z_ik = x_ik - 0.5. This is the variant invariant under
 * reflection about the centre, the measure the paper's sample
 * optimization uses.
 *
 * @return CD (the square root).
 */
double centeredL2Discrepancy(const std::vector<dspace::UnitPoint> &unit);

} // namespace ppm::sampling

#endif // PPM_SAMPLING_DISCREPANCY_HH
