#include "sampling/discrepancy.hh"

#include <cassert>
#include <cmath>

namespace ppm::sampling {

double
starL2Discrepancy(const std::vector<dspace::UnitPoint> &unit)
{
    assert(!unit.empty());
    const std::size_t p = unit.size();
    const std::size_t d = unit.front().size();
    const double pd = static_cast<double>(p);

    double sum1 = 0.0;
    for (const auto &x : unit) {
        assert(x.size() == d);
        double prod = 1.0;
        for (double v : x)
            prod *= 1.0 - v * v;
        sum1 += prod;
    }

    double sum2 = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
            double prod = 1.0;
            for (std::size_t k = 0; k < d; ++k)
                prod *= 1.0 - std::max(unit[i][k], unit[j][k]);
            sum2 += prod;
        }
    }

    const double dd = static_cast<double>(d);
    const double sq = std::pow(3.0, -dd)
        - std::pow(2.0, 1.0 - dd) / pd * sum1
        + sum2 / (pd * pd);
    return std::sqrt(std::max(0.0, sq));
}

double
centeredL2Discrepancy(const std::vector<dspace::UnitPoint> &unit)
{
    assert(!unit.empty());
    const std::size_t p = unit.size();
    const std::size_t d = unit.front().size();
    const double pd = static_cast<double>(p);

    double sum1 = 0.0;
    for (const auto &x : unit) {
        assert(x.size() == d);
        double prod = 1.0;
        for (double v : x) {
            const double z = std::fabs(v - 0.5);
            prod *= 1.0 + 0.5 * z - 0.5 * z * z;
        }
        sum1 += prod;
    }

    double sum2 = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
            double prod = 1.0;
            for (std::size_t k = 0; k < d; ++k) {
                const double zi = std::fabs(unit[i][k] - 0.5);
                const double zj = std::fabs(unit[j][k] - 0.5);
                const double dij = std::fabs(unit[i][k] - unit[j][k]);
                prod *= 1.0 + 0.5 * zi + 0.5 * zj - 0.5 * dij;
            }
            sum2 += prod;
        }
    }

    const double dd = static_cast<double>(d);
    const double sq = std::pow(13.0 / 12.0, dd)
        - 2.0 / pd * sum1
        + sum2 / (pd * pd);
    return std::sqrt(std::max(0.0, sq));
}

} // namespace ppm::sampling
