#include "sampling/sample_gen.hh"

#include <cassert>
#include <cstdint>

#include "sampling/discrepancy.hh"
#include "util/thread_pool.hh"

namespace ppm::sampling {

OptimizedSample
bestLatinHypercube(const dspace::DesignSpace &space, int size,
                   int num_candidates, math::Rng &rng,
                   const LhsOptions &options)
{
    assert(num_candidates >= 1);
    // Every candidate hypercube derives its own RNG stream from
    // (base, candidate index), so generation and scoring can fan out
    // across the pool while the chosen sample stays bit-identical for
    // any thread count. Only the discrepancy is kept per candidate;
    // the winner is regenerated from its stream afterwards, which is
    // cheaper than retaining num_candidates full samples.
    const std::uint64_t base = rng.next();
    const auto n = static_cast<std::size_t>(num_candidates);
    std::vector<double> discrepancy(n);
    util::parallelFor(n, [&](std::size_t c) {
        math::Rng crng = math::Rng::stream(base, c);
        const auto candidate =
            latinHypercubeSample(space, size, crng, options);
        discrepancy[c] =
            centeredL2Discrepancy(toUnitSample(space, candidate));
    });

    std::size_t best_c = 0;
    for (std::size_t c = 1; c < n; ++c)
        if (discrepancy[c] < discrepancy[best_c])
            best_c = c;

    OptimizedSample best;
    math::Rng winner = math::Rng::stream(base, best_c);
    best.points = latinHypercubeSample(space, size, winner, options);
    best.discrepancy = discrepancy[best_c];
    best.candidates_evaluated = num_candidates;
    return best;
}

std::vector<dspace::DesignPoint>
randomSample(const dspace::DesignSpace &space, int size, math::Rng &rng)
{
    std::vector<dspace::DesignPoint> points;
    points.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i)
        points.push_back(
            space.snapToLevels(space.randomPoint(rng), size));
    return points;
}

std::vector<dspace::DesignPoint>
randomTestSet(const dspace::DesignSpace &space, int size, math::Rng &rng)
{
    std::vector<dspace::DesignPoint> points;
    points.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i)
        points.push_back(space.randomPoint(rng));
    return points;
}

} // namespace ppm::sampling
