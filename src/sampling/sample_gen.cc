#include "sampling/sample_gen.hh"

#include <cassert>

#include "sampling/discrepancy.hh"

namespace ppm::sampling {

OptimizedSample
bestLatinHypercube(const dspace::DesignSpace &space, int size,
                   int num_candidates, math::Rng &rng,
                   const LhsOptions &options)
{
    assert(num_candidates >= 1);
    OptimizedSample best;
    for (int c = 0; c < num_candidates; ++c) {
        auto candidate = latinHypercubeSample(space, size, rng, options);
        const double disc =
            centeredL2Discrepancy(toUnitSample(space, candidate));
        if (best.points.empty() || disc < best.discrepancy) {
            best.points = std::move(candidate);
            best.discrepancy = disc;
        }
    }
    best.candidates_evaluated = num_candidates;
    return best;
}

std::vector<dspace::DesignPoint>
randomSample(const dspace::DesignSpace &space, int size, math::Rng &rng)
{
    std::vector<dspace::DesignPoint> points;
    points.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i)
        points.push_back(
            space.snapToLevels(space.randomPoint(rng), size));
    return points;
}

std::vector<dspace::DesignPoint>
randomTestSet(const dspace::DesignSpace &space, int size, math::Rng &rng)
{
    std::vector<dspace::DesignPoint> points;
    points.reserve(static_cast<std::size_t>(size));
    for (int i = 0; i < size; ++i)
        points.push_back(space.randomPoint(rng));
    return points;
}

} // namespace ppm::sampling
