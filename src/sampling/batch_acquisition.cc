#include "sampling/batch_acquisition.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/trace_span.hh"
#include "util/thread_pool.hh"

namespace ppm::sampling {

namespace {

/** Squared Euclidean distance between unit points. */
double
distSq(const dspace::UnitPoint &a, const dspace::UnitPoint &b)
{
    double acc = 0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        const double d = a[k] - b[k];
        acc += d * d;
    }
    return acc;
}

/**
 * Distance from @p x to the nearest point of @p points; 1.0 when
 * @p points is empty, so the quality score degrades to the pure
 * variability term.
 */
double
nearestDistance(const dspace::UnitPoint &x,
                const std::vector<dspace::UnitPoint> &points)
{
    if (points.empty())
        return 1.0;
    double best = std::numeric_limits<double>::infinity();
    for (const auto &p : points)
        best = std::min(best, distSq(x, p));
    return std::sqrt(best);
}

/** One generated-and-scored candidate pool. */
struct ScoredPool
{
    std::vector<dspace::DesignPoint> raw;
    std::vector<dspace::UnitPoint> unit;
    std::vector<double> score;
};

/**
 * Generate and score @p pool candidates in parallel. Candidate c
 * derives its RNG from (base, c), so the pool is identical for every
 * thread count.
 */
ScoredPool
scorePool(const dspace::DesignSpace &space,
          const std::vector<dspace::UnitPoint> &occupied,
          const VariabilityFn &variability, std::size_t pool,
          double distance_weight, std::uint64_t base)
{
    OBS_SPAN("acquire.score_pool");
    ScoredPool p;
    p.raw.resize(pool);
    p.unit.resize(pool);
    p.score.resize(pool);
    util::parallelFor(pool, [&](std::size_t c) {
        math::Rng crng = math::Rng::stream(base, c);
        p.raw[c] = space.randomPoint(crng);
        p.unit[c] = space.toUnit(p.raw[c]);
        const double d = nearestDistance(p.unit[c], occupied);
        p.score[c] = std::pow(d, distance_weight) *
                     (1.0 + variability(p.unit[c]));
    });
    return p;
}

/** First strict maximum — the winner a serial scan would pick. */
std::size_t
argmaxScore(const std::vector<double> &score)
{
    std::size_t best = 0;
    for (std::size_t c = 1; c < score.size(); ++c)
        if (score[c] > score[best])
            best = c;
    return best;
}

/** Batch diversity figure (see AcquisitionStats). */
double
batchMinDistance(const std::vector<dspace::UnitPoint> &batch,
                 const std::vector<dspace::UnitPoint> &occupied)
{
    if (batch.size() < 2)
        return batch.empty() ? 0.0
                             : nearestDistance(batch.front(), occupied);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < batch.size(); ++i)
        for (std::size_t j = i + 1; j < batch.size(); ++j)
            best = std::min(best, distSq(batch[i], batch[j]));
    return std::sqrt(best);
}

/** The original infill rule: one scoring pass per pick. */
AcquiredBatch
acquireSequential(const dspace::DesignSpace &space,
                  const std::vector<dspace::UnitPoint> &occupied,
                  const VariabilityFn &variability,
                  const BatchAcquisitionOptions &options, math::Rng &rng)
{
    const auto pool = static_cast<std::size_t>(options.candidate_pool);
    AcquiredBatch out;
    std::vector<dspace::UnitPoint> conditioned = occupied;
    for (int picked = 0; picked < options.batch_size; ++picked) {
        const std::uint64_t base = rng.next();
        ScoredPool p = scorePool(space, conditioned, variability, pool,
                                 options.distance_weight, base);
        out.stats.pool_scored += pool;
        const std::size_t best = argmaxScore(p.score);
        conditioned.push_back(p.unit[best]);
        out.points.push_back(std::move(p.raw[best]));
        out.unit.push_back(std::move(p.unit[best]));
    }
    out.stats.batch_min_distance = batchMinDistance(out.unit, occupied);
    return out;
}

/**
 * Joint batch selection: greedy max-determinant over
 * L[i][j] = q_i * k(x_i, x_j) * q_j (greedy MAP inference for a
 * determinantal point process). Each step picks the candidate with
 * the largest residual variance d2_i = L_ii - |c_i|^2, where c_i is
 * candidate i's row in the incrementally grown Cholesky factor of
 * L restricted to the picked set; the subsequent rank-1 update of
 * every unpicked row costs O(pool * picked).
 */
AcquiredBatch
acquireDeterminantal(const dspace::DesignSpace &space,
                     const std::vector<dspace::UnitPoint> &occupied,
                     const VariabilityFn &variability,
                     const BatchAcquisitionOptions &options,
                     math::Rng &rng)
{
    const auto pool = static_cast<std::size_t>(options.candidate_pool);
    const auto k = static_cast<std::size_t>(options.batch_size);

    const std::uint64_t base = rng.next();
    ScoredPool p = scorePool(space, occupied, variability, pool,
                             options.distance_weight, base);

    AcquiredBatch out;
    out.stats.pool_scored = pool;

    const double sigma = options.kernel_bandwidth > 0
        ? options.kernel_bandwidth
        : adaptedKernelBandwidth(space.size(), occupied.size());
    const double inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);

    const auto start = std::chrono::steady_clock::now();
    OBS_SPAN("acquire.select");

    // Residual variances start at L_ii = q_i^2 (k(x, x) = 1); rows of
    // the Cholesky factor grow by one entry per pick.
    std::vector<double> d2(pool);
    for (std::size_t i = 0; i < pool; ++i)
        d2[i] = p.score[i] * p.score[i];
    std::vector<std::vector<double>> chol(pool);
    std::vector<char> picked(pool, 0);
    std::vector<std::size_t> selected;
    selected.reserve(k);

    for (std::size_t step = 0; step < k; ++step) {
        // First strict maximum over unpicked candidates (serial, so
        // ties resolve identically for every thread count).
        std::size_t best = pool;
        for (std::size_t i = 0; i < pool; ++i)
            if (!picked[i] && (best == pool || d2[i] > d2[best]))
                best = i;
        picked[best] = 1;
        selected.push_back(best);
        if (step + 1 == k)
            break;

        const double dj = std::sqrt(std::max(d2[best], 1e-300));
        const std::vector<double> &row_j = chol[best];
        for (std::size_t i = 0; i < pool; ++i) {
            if (picked[i])
                continue;
            const double kern = std::exp(
                -distSq(p.unit[best], p.unit[i]) * inv_two_sigma_sq);
            ++out.stats.kernel_evaluations;
            const double l_ji = p.score[best] * kern * p.score[i];
            double dot = 0.0;
            const std::vector<double> &row_i = chol[i];
            for (std::size_t s = 0; s < row_j.size(); ++s)
                dot += row_j[s] * row_i[s];
            const double e = (l_ji - dot) / dj;
            chol[i].push_back(e);
            d2[i] -= e * e;
        }
    }

    out.stats.selection_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    for (std::size_t i : selected) {
        out.points.push_back(std::move(p.raw[i]));
        out.unit.push_back(std::move(p.unit[i]));
    }
    out.stats.batch_min_distance = batchMinDistance(out.unit, occupied);
    return out;
}

} // namespace

const char *
batchStrategyName(BatchStrategy strategy)
{
    return strategy == BatchStrategy::Sequential ? "sequential"
                                                 : "determinantal";
}

double
adaptedKernelBandwidth(std::size_t dims, std::size_t occupied)
{
    // Nearest-neighbour spacing in a d-cube contracts ~ n^(-1/d); 16
    // occupied points is the scale the 0.25 * sqrt(d) default was
    // tuned at (early adaptive rounds on the paper's seed samples).
    constexpr double kReferenceOccupancy = 16.0;
    const double d =
        static_cast<double>(std::max<std::size_t>(dims, 1));
    const double base = 0.25 * std::sqrt(d);
    const double n = static_cast<double>(occupied);
    if (n <= kReferenceOccupancy)
        return base;
    const double shrink = std::pow(kReferenceOccupancy / n, 1.0 / d);
    return std::max(shrink, 0.2) * base;
}

AcquiredBatch
acquireBatch(BatchStrategy strategy, const dspace::DesignSpace &space,
             const std::vector<dspace::UnitPoint> &occupied,
             const VariabilityFn &variability,
             const BatchAcquisitionOptions &options, math::Rng &rng)
{
    if (options.batch_size < 1)
        throw std::invalid_argument(
            "BatchAcquisitionOptions: batch_size");
    if (options.candidate_pool < 1)
        throw std::invalid_argument(
            "BatchAcquisitionOptions: candidate_pool");
    if (options.kernel_bandwidth < 0)
        throw std::invalid_argument(
            "BatchAcquisitionOptions: kernel_bandwidth");
    if (strategy == BatchStrategy::Determinantal &&
        options.candidate_pool < options.batch_size)
        throw std::invalid_argument(
            "BatchAcquisitionOptions: candidate_pool < batch_size");

    return strategy == BatchStrategy::Sequential
        ? acquireSequential(space, occupied, variability, options, rng)
        : acquireDeterminantal(space, occupied, variability, options,
                               rng);
}

} // namespace ppm::sampling
