#include "obs/trace_context.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "obs/event_log.hh"
#include "obs/metrics.hh"

namespace ppm::obs {

namespace {

std::atomic<std::uint32_t> g_sample_every{0};
std::atomic<std::uint64_t> g_root_counter{0};
std::atomic<std::uint64_t> g_span_counter{0};

thread_local TraceContext t_context;

std::uint64_t
pidSalt()
{
    static const std::uint64_t salt =
        static_cast<std::uint64_t>(::getpid());
    return salt;
}

/**
 * Register the PPM_SPANS_OUT atexit dump once per process. Separate
 * from configuration so repeated traceConfigureFromEnv() calls (tests
 * toggling tracing) never stack registrations.
 */
void
registerSpansOutAtExit()
{
    static const bool registered = [] {
        std::atexit([] {
            const char *path = std::getenv("PPM_SPANS_OUT");
            if (path != nullptr && path[0] != '\0')
                SpanBuffer::instance().writeJsonl(path);
        });
        return true;
    }();
    (void)registered;
}

/** Load-time env read: every binary linking obs (servers, tools,
 * tests, benches) honours PPM_TRACE_SAMPLE / PPM_SPANS_OUT without an
 * explicit init call. Touches only this TU's atomics, so static
 * initialization order cannot bite. */
const bool g_env_configured = [] {
    traceConfigureFromEnv();
    return true;
}();

} // namespace

bool
tracingEnabled()
{
    return g_sample_every.load(std::memory_order_relaxed) != 0;
}

std::uint32_t
traceSampleEvery()
{
    return g_sample_every.load(std::memory_order_relaxed);
}

void
setTraceSampleEvery(std::uint32_t every)
{
    g_sample_every.store(every, std::memory_order_relaxed);
}

void
traceConfigureFromEnv()
{
    const char *every = std::getenv("PPM_TRACE_SAMPLE");
    if (every != nullptr)
        setTraceSampleEvery(static_cast<std::uint32_t>(
            std::strtoul(every, nullptr, 10)));
    const char *spans_out = std::getenv("PPM_SPANS_OUT");
    if (spans_out != nullptr && spans_out[0] != '\0')
        registerSpansOutAtExit();
}

TraceContext &
threadTraceContext()
{
    return t_context;
}

TraceContext
currentTraceContext()
{
    return t_context;
}

std::uint64_t
nextSpanId()
{
    // pid in the top bits keeps ids unique across the processes that
    // contribute to one merged trace; +1 keeps 0 meaning "no parent".
    const std::uint64_t n =
        g_span_counter.fetch_add(1, std::memory_order_relaxed) + 1;
    return (pidSalt() << 40) ^ n;
}

std::uint64_t
epochOffsetNs()
{
    // One capture per process: realtime minus the steady clock that
    // monotonicNs() counts from, so start_unix_ns from different
    // processes land on one comparable axis.
    static const std::uint64_t offset = [] {
        const auto wall = std::chrono::system_clock::now();
        const std::uint64_t wall_ns =
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    wall.time_since_epoch())
                    .count());
        return wall_ns - monotonicNs();
    }();
    return offset;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext &ctx)
{
    if (!ctx.valid())
        return;
    saved_ = t_context;
    t_context = ctx;
    installed_ = true;
}

ScopedTraceContext::~ScopedTraceContext()
{
    if (installed_)
        t_context = saved_;
}

TraceRoot::TraceRoot(const char *name) : name_(name)
{
    const std::uint32_t every =
        g_sample_every.load(std::memory_order_relaxed);
    if (every == 0)
        return;
    saved_ = t_context;
    installed_ = true;
    if (!t_context.valid()) {
        // Deterministic 1-in-N: a relaxed counter, never an RNG.
        const std::uint64_t n =
            g_root_counter.fetch_add(1, std::memory_order_relaxed);
        TraceContext fresh;
        fresh.trace_hi =
            (pidSalt() << 32) ^ (epochOffsetNs() & 0xffffffffu);
        fresh.trace_lo = n + 1;
        fresh.flags = (n % every == 0) ? kTraceFlagSampled : 0;
        t_context = fresh;
    }
    if (t_context.sampled()) {
        traced_ = true;
        span_id_ = nextSpanId();
        start_ns_ = monotonicNs();
        t_context.parent_span_id = span_id_;
    }
}

TraceRoot::~TraceRoot()
{
    if (traced_) {
        SpanRecord span;
        span.trace_hi = t_context.trace_hi;
        span.trace_lo = t_context.trace_lo;
        span.span_id = span_id_;
        span.parent_span_id = saved_.parent_span_id;
        span.name = name_;
        span.start_unix_ns = start_ns_ + epochOffsetNs();
        span.dur_ns = monotonicNs() - start_ns_;
        span.tid = threadSlot();
        SpanBuffer::instance().record(span);
    }
    if (installed_)
        t_context = saved_;
}

TraceContext
TraceRoot::context() const
{
    return t_context;
}

SpanBuffer &
SpanBuffer::instance()
{
    static SpanBuffer *buffer = new SpanBuffer;
    return *buffer;
}

void
SpanBuffer::record(const SpanRecord &span)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (spans_.size() < kMaxSpans) {
            spans_.push_back(span);
            return;
        }
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
    static Counter &dropped_counter =
        Registry::instance().counter("obs.spans.dropped");
    dropped_counter.add(1);
}

std::vector<SpanRecord>
SpanBuffer::snapshot(bool drain)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!drain)
        return spans_;
    std::vector<SpanRecord> out;
    out.swap(spans_);
    return out;
}

void
SpanBuffer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    dropped_.store(0, std::memory_order_relaxed);
}

bool
SpanBuffer::writeJsonl(const std::string &path)
{
    const std::vector<SpanRecord> spans = snapshot();
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        return false;
    const unsigned long pid =
        static_cast<unsigned long>(::getpid());
    for (const SpanRecord &s : spans) {
        std::fprintf(
            out,
            "{\"trace\":\"%s\",\"span\":\"%016llx\","
            "\"parent\":\"%016llx\",\"name\":\"%s\","
            "\"ts_ns\":%llu,\"dur_ns\":%llu,"
            "\"pid\":%lu,\"tid\":%u}\n",
            traceIdHex(s.trace_hi, s.trace_lo).c_str(),
            static_cast<unsigned long long>(s.span_id),
            static_cast<unsigned long long>(s.parent_span_id),
            s.name,
            static_cast<unsigned long long>(s.start_unix_ns),
            static_cast<unsigned long long>(s.dur_ns), pid, s.tid);
    }
    std::fclose(out);
    return true;
}

std::string
traceIdHex(std::uint64_t hi, std::uint64_t lo)
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return std::string(buf);
}

} // namespace ppm::obs
