#include "obs/event_log.hh"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace ppm::obs {

std::uint64_t
monotonicNs()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
    }
    return "info";
}

namespace {

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("PPM_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::Error;
    return LogLevel::Info;
}

void
appendEscaped(std::string &out, std::string_view s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace

EventLog::~EventLog()
{
    if (out_ != nullptr && owns_out_)
        std::fclose(out_);
}

EventLog &
EventLog::instance()
{
    static EventLog *log = [] {
        auto *instance = new EventLog;
        instance->configureFromEnv();
        return instance;
    }();
    return *log;
}

void
EventLog::configure(const std::string &path, LogLevel min_level)
{
    std::lock_guard<std::mutex> lock(mutex_);
    on_.store(false, std::memory_order_relaxed);
    if (out_ != nullptr && owns_out_)
        std::fclose(out_);
    out_ = nullptr;
    owns_out_ = false;
    min_level_.store(static_cast<int>(min_level),
                     std::memory_order_relaxed);
    if (path.empty())
        return;
    if (path == "-" || path == "stderr") {
        out_ = stderr;
    } else {
        out_ = std::fopen(path.c_str(), "a");
        if (out_ == nullptr)
            return; // unloggable: stay disabled rather than throw
        owns_out_ = true;
    }
    on_.store(true, std::memory_order_relaxed);
}

void
EventLog::configureFromEnv()
{
    const char *path = std::getenv("PPM_LOG");
    configure(path == nullptr ? "" : path, levelFromEnv());
}

void
EventLog::write(LogLevel level, std::string_view component,
                std::string_view event,
                std::initializer_list<LogField> fields)
{
    // Serialize outside the writer lock; only the fwrite is serial.
    std::string line = "{\"ts_ns\":";
    line += std::to_string(monotonicNs());
    line += ",\"level\":\"";
    line += levelName(level);
    line += "\",\"comp\":";
    appendEscaped(line, component);
    line += ",\"event\":";
    appendEscaped(line, event);
    for (const LogField &field : fields) {
        line.push_back(',');
        appendEscaped(line, field.key);
        line.push_back(':');
        switch (field.kind) {
          case LogField::Kind::Str:
            appendEscaped(line, field.str);
            break;
          case LogField::Kind::Int:
            line += std::to_string(field.i);
            break;
          case LogField::Kind::Uint:
            line += std::to_string(field.u);
            break;
          case LogField::Kind::Float: {
            if (!std::isfinite(field.f)) {
                line += "null"; // JSON has no inf/nan
                break;
            }
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", field.f);
            line += buf;
            break;
          }
          case LogField::Kind::Bool:
            line += field.b ? "true" : "false";
            break;
        }
    }
    line += "}\n";

    std::lock_guard<std::mutex> lock(mutex_);
    if (out_ == nullptr)
        return;
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fflush(out_);
}

} // namespace ppm::obs
