#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace ppm::obs {

unsigned
threadSlot()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

std::uint64_t
Histogram::bucketUpperNs(int b)
{
    if (b >= kBuckets - 1)
        return std::numeric_limits<std::uint64_t>::max();
    return std::uint64_t{1000} << b;
}

int
Histogram::bucketIndex(std::uint64_t ns)
{
    for (int b = 0; b < kBuckets - 1; ++b)
        if (ns <= (std::uint64_t{1000} << b))
            return b;
    return kBuckets - 1;
}

Histogram::Data
Histogram::data() const
{
    Data d;
    for (const Shard &shard : shards_) {
        d.count += shard.count.load(std::memory_order_relaxed);
        d.total_ns += shard.total_ns.load(std::memory_order_relaxed);
        for (int b = 0; b < kBuckets; ++b)
            d.buckets[static_cast<std::size_t>(b)] +=
                shard.buckets[static_cast<std::size_t>(b)].load(
                    std::memory_order_relaxed);
    }
    return d;
}

void
Histogram::reset()
{
    for (Shard &shard : shards_) {
        shard.count.store(0, std::memory_order_relaxed);
        shard.total_ns.store(0, std::memory_order_relaxed);
        for (auto &bucket : shard.buckets)
            bucket.store(0, std::memory_order_relaxed);
    }
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

Histogram &
Registry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>())
                 .first;
    return *it->second;
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        snap.counters.push_back({name, counter->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        snap.gauges.push_back({name, gauge->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, hist] : histograms_) {
        const Histogram::Data d = hist->data();
        HistogramValue v;
        v.name = name;
        v.count = d.count;
        v.total_ns = d.total_ns;
        v.buckets.assign(d.buckets.begin(), d.buckets.end());
        snap.histograms.push_back(std::move(v));
    }
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, hist] : histograms_)
        hist->reset();
}

void
merge(Snapshot &into, const Snapshot &from)
{
    auto find = [](auto &vec, const std::string &name) {
        return std::find_if(vec.begin(), vec.end(), [&](const auto &e) {
            return e.name == name;
        });
    };
    for (const CounterValue &c : from.counters) {
        auto it = find(into.counters, c.name);
        if (it == into.counters.end())
            into.counters.push_back(c);
        else
            it->value += c.value;
    }
    for (const GaugeValue &g : from.gauges) {
        auto it = find(into.gauges, g.name);
        if (it == into.gauges.end())
            into.gauges.push_back(g);
        else
            it->value += g.value;
    }
    for (const HistogramValue &h : from.histograms) {
        auto it = find(into.histograms, h.name);
        if (it == into.histograms.end()) {
            into.histograms.push_back(h);
            continue;
        }
        it->count += h.count;
        it->total_ns += h.total_ns;
        if (it->buckets.size() < h.buckets.size())
            it->buckets.resize(h.buckets.size(), 0);
        for (std::size_t b = 0; b < h.buckets.size(); ++b)
            it->buckets[b] += h.buckets[b];
    }
    auto byName = [](const auto &a, const auto &b) {
        return a.name < b.name;
    };
    std::sort(into.counters.begin(), into.counters.end(), byName);
    std::sort(into.gauges.begin(), into.gauges.end(), byName);
    std::sort(into.histograms.begin(), into.histograms.end(), byName);
}

Snapshot
delta(const Snapshot &newer, const Snapshot &older)
{
    auto find = [](const auto &vec, const std::string &name) {
        return std::find_if(vec.begin(), vec.end(), [&](const auto &e) {
            return e.name == name;
        });
    };
    auto clamped = [](std::uint64_t now, std::uint64_t before) {
        return now >= before ? now - before : 0;
    };

    Snapshot out;
    out.counters.reserve(newer.counters.size());
    for (const CounterValue &c : newer.counters) {
        auto it = find(older.counters, c.name);
        const std::uint64_t before =
            it == older.counters.end() ? 0 : it->value;
        out.counters.push_back({c.name, clamped(c.value, before)});
    }
    out.gauges = newer.gauges;
    out.histograms.reserve(newer.histograms.size());
    for (const HistogramValue &h : newer.histograms) {
        auto it = find(older.histograms, h.name);
        HistogramValue d = h;
        if (it != older.histograms.end()) {
            d.count = clamped(h.count, it->count);
            d.total_ns = clamped(h.total_ns, it->total_ns);
            for (std::size_t b = 0;
                 b < d.buckets.size() && b < it->buckets.size(); ++b)
                d.buckets[b] = clamped(h.buckets[b], it->buckets[b]);
        }
        out.histograms.push_back(std::move(d));
    }
    return out;
}

std::uint64_t
quantileNs(const HistogramValue &hist, double q)
{
    if (hist.count == 0 || hist.buckets.empty())
        return 0;
    const double want = q * static_cast<double>(hist.count);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
        cumulative += hist.buckets[b];
        if (static_cast<double>(cumulative) >= want)
            return Histogram::bucketUpperNs(static_cast<int>(b));
    }
    return Histogram::bucketUpperNs(
        static_cast<int>(hist.buckets.size()) - 1);
}

namespace {

void
appendJsonString(std::string &out, std::string_view s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

} // namespace

std::string
toJson(const Snapshot &snap)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const CounterValue &c : snap.counters) {
        if (!first)
            out.push_back(',');
        first = false;
        appendJsonString(out, c.name);
        out.push_back(':');
        out += std::to_string(c.value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const GaugeValue &g : snap.gauges) {
        if (!first)
            out.push_back(',');
        first = false;
        appendJsonString(out, g.name);
        out.push_back(':');
        out += std::to_string(g.value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const HistogramValue &h : snap.histograms) {
        if (!first)
            out.push_back(',');
        first = false;
        appendJsonString(out, h.name);
        out += ":{\"count\":";
        out += std::to_string(h.count);
        out += ",\"total_ns\":";
        out += std::to_string(h.total_ns);
        out += ",\"buckets\":[";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b > 0)
                out.push_back(',');
            out += std::to_string(h.buckets[b]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

std::string
toTable(const Snapshot &snap)
{
    std::string out;
    char line[256];
    if (!snap.counters.empty()) {
        out += "counters:\n";
        for (const CounterValue &c : snap.counters) {
            std::snprintf(line, sizeof(line), "  %-36s %14llu\n",
                          c.name.c_str(),
                          static_cast<unsigned long long>(c.value));
            out += line;
        }
    }
    if (!snap.gauges.empty()) {
        out += "gauges:\n";
        for (const GaugeValue &g : snap.gauges) {
            std::snprintf(line, sizeof(line), "  %-36s %14lld\n",
                          g.name.c_str(),
                          static_cast<long long>(g.value));
            out += line;
        }
    }
    if (!snap.histograms.empty()) {
        out += "histograms:                             "
               "     count   mean_us    p50_us    p99_us\n";
        for (const HistogramValue &h : snap.histograms) {
            const double mean_us =
                h.count == 0 ? 0.0
                             : static_cast<double>(h.total_ns) /
                                   static_cast<double>(h.count) / 1e3;
            std::snprintf(
                line, sizeof(line),
                "  %-36s %10llu %9.1f %9.1f %9.1f\n", h.name.c_str(),
                static_cast<unsigned long long>(h.count), mean_us,
                static_cast<double>(quantileNs(h, 0.5)) / 1e3,
                static_cast<double>(quantileNs(h, 0.99)) / 1e3);
            out += line;
        }
    }
    if (out.empty())
        out = "(no metrics)\n";
    return out;
}

} // namespace ppm::obs
