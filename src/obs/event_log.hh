/**
 * @file
 * Structured event log: one JSON object per line (JSONL), written to
 * the file named by the PPM_LOG environment variable ("-" or "stderr"
 * for stderr), filtered by PPM_LOG_LEVEL (debug | info | warn |
 * error; default info). Unset PPM_LOG disables logging entirely: the
 * hot-path guard is a single relaxed atomic load.
 *
 * Every line carries a monotonic timestamp (ns since process start),
 * the level, a component, an event name, and caller-supplied typed
 * fields. Timestamps are steady_clock based — no RNG, no wall-clock
 * dependence on the computation — so logging is zero-perturbation:
 * pipeline results are bit-identical with PPM_LOG set or unset.
 */

#ifndef PPM_OBS_EVENT_LOG_HH
#define PPM_OBS_EVENT_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>

namespace ppm::obs {

/** Nanoseconds of steady time since the first obs call in-process. */
std::uint64_t monotonicNs();

enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Lower-case level name ("debug", "info", "warn", "error"). */
const char *levelName(LogLevel level);

/**
 * One typed key-value pair of a log line. The referenced strings are
 * only read during the logEvent() call, so string temporaries at the
 * call site are safe.
 */
struct LogField
{
    enum class Kind
    {
        Str,
        Int,
        Uint,
        Float,
        Bool,
    };

    std::string_view key;
    Kind kind = Kind::Int;
    std::string_view str;
    std::int64_t i = 0;
    std::uint64_t u = 0;
    double f = 0.0;
    bool b = false;

    template <typename T>
    LogField(std::string_view k, T v) : key(k)
    {
        if constexpr (std::is_same_v<T, bool>) {
            kind = Kind::Bool;
            b = v;
        } else if constexpr (std::is_floating_point_v<T>) {
            kind = Kind::Float;
            f = static_cast<double>(v);
        } else if constexpr (std::is_integral_v<T> &&
                             std::is_unsigned_v<T>) {
            kind = Kind::Uint;
            u = static_cast<std::uint64_t>(v);
        } else if constexpr (std::is_integral_v<T>) {
            kind = Kind::Int;
            i = static_cast<std::int64_t>(v);
        } else {
            static_assert(
                std::is_convertible_v<T, std::string_view>,
                "LogField value must be arithmetic or string-like");
            kind = Kind::Str;
            str = std::string_view(v);
        }
    }

    LogField(std::string_view k, const std::string &v)
        : key(k), kind(Kind::Str), str(v)
    {
    }
};

/**
 * JSONL writer. The global instance() configures itself from the
 * environment on first use; tests construct their own instances and
 * configure() them explicitly.
 */
class EventLog
{
  public:
    EventLog() = default;
    ~EventLog();

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /** The process-wide log (env-configured on first use). */
    static EventLog &instance();

    /**
     * Route output to @p path ("" disables and closes; "-"/"stderr"
     * for stderr) at minimum level @p min_level.
     */
    void configure(const std::string &path, LogLevel min_level);

    /** Re-read PPM_LOG / PPM_LOG_LEVEL. */
    void configureFromEnv();

    bool
    enabled(LogLevel level) const
    {
        return on_.load(std::memory_order_relaxed) &&
               static_cast<int>(level) >=
                   min_level_.load(std::memory_order_relaxed);
    }

    /** Serialize and write one line (no-op when not enabled). */
    void write(LogLevel level, std::string_view component,
               std::string_view event,
               std::initializer_list<LogField> fields);

  private:
    std::atomic<bool> on_{false};
    std::atomic<int> min_level_{static_cast<int>(LogLevel::Info)};
    std::mutex mutex_;
    std::FILE *out_ = nullptr;
    bool owns_out_ = false;
};

/** Log one event to the global log; the guard is one atomic load. */
inline void
logEvent(LogLevel level, std::string_view component,
         std::string_view event,
         std::initializer_list<LogField> fields = {})
{
    EventLog &log = EventLog::instance();
    if (log.enabled(level))
        log.write(level, component, event, fields);
}

} // namespace ppm::obs

#endif // PPM_OBS_EVENT_LOG_HH
