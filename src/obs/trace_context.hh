/**
 * @file
 * Distributed trace context: a W3C-traceparent-style (trace_id,
 * parent_span_id, flags) triple that rides protocol-v4 frame headers
 * so one sampled request can be followed client -> ShardedClient ->
 * SimServer -> cache -> RBF batch kernel across processes.
 *
 * Sampling is deterministic and RNG-free (zero-perturbation): a
 * process-local relaxed counter samples every Nth trace root
 * (PPM_TRACE_SAMPLE=N; 0 disables tracing entirely). The sampled bit
 * travels with the context, so downstream processes never re-decide.
 *
 * Sampled spans land in the process-wide SpanBuffer stamped with
 * pid/tid and wall-clock (epoch) timestamps — monotonicNs() is
 * per-process and useless across machines, so each process captures
 * one realtime-minus-steady offset at startup and converts on record.
 * `ppm_trace` pulls buffers over TraceRequest frames (or reads
 * PPM_SPANS_OUT JSONL dumps) and merges them into one Chrome trace.
 *
 * Cost contract: with tracing off (sample_every == 0) every span site
 * pays exactly one extra relaxed atomic load. No locks, no RNG, no
 * allocation on the untraced path.
 */

#ifndef PPM_OBS_TRACE_CONTEXT_HH
#define PPM_OBS_TRACE_CONTEXT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ppm::obs {

/** Flag bit: this trace is sampled; record its spans. */
inline constexpr std::uint8_t kTraceFlagSampled = 0x01;

/**
 * The propagated context. trace id is 128-bit (hi/lo);
 * parent_span_id names the span that caused the current work. A
 * zero trace id means "no active trace".
 */
struct TraceContext
{
    std::uint64_t trace_hi = 0;
    std::uint64_t trace_lo = 0;
    std::uint64_t parent_span_id = 0;
    std::uint8_t flags = 0;

    bool valid() const { return (trace_hi | trace_lo) != 0; }
    bool sampled() const
    {
        return valid() && (flags & kTraceFlagSampled) != 0;
    }
};

/** One completed span, stamped for cross-process merging. */
struct SpanRecord
{
    std::uint64_t trace_hi = 0;
    std::uint64_t trace_lo = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    const char *name = ""; ///< static literal (span-site names)
    std::uint64_t start_unix_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
};

/** True when tracing is runtime-enabled (sample_every != 0). */
bool tracingEnabled();

/** Current sample period (0 = tracing off). */
std::uint32_t traceSampleEvery();

/** Set the sample period: sample every Nth root, 0 disables. */
void setTraceSampleEvery(std::uint32_t every);

/** Re-read PPM_TRACE_SAMPLE and PPM_SPANS_OUT. */
void traceConfigureFromEnv();

/** The calling thread's live context (mutable: spans re-parent it). */
TraceContext &threadTraceContext();

/**
 * The context to embed in an outgoing frame: the thread context with
 * parent_span_id pointing at the innermost open span.
 */
TraceContext currentTraceContext();

/** Allocate a process-unique span id (pid-salted, never 0). */
std::uint64_t nextSpanId();

/** Offset adding monotonicNs() values onto the unix epoch. */
std::uint64_t epochOffsetNs();

/**
 * Install a received (wire or cross-thread) context for a scope and
 * restore the previous one on exit. Invalid contexts install nothing.
 */
class ScopedTraceContext
{
  public:
    explicit ScopedTraceContext(const TraceContext &ctx);
    ~ScopedTraceContext();

    ScopedTraceContext(const ScopedTraceContext &) = delete;
    ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

  private:
    TraceContext saved_;
    bool installed_ = false;
};

/**
 * A trace root: where a request is born (client evaluateAll entry).
 * If tracing is enabled and no context is active, makes the
 * deterministic 1-in-N sampling decision and opens a new trace; when
 * the decision (or an inherited context) is "sampled", the root also
 * records itself as a span.
 */
class TraceRoot
{
  public:
    explicit TraceRoot(const char *name);
    ~TraceRoot();

    TraceRoot(const TraceRoot &) = delete;
    TraceRoot &operator=(const TraceRoot &) = delete;

    /** The context children of this root should propagate. */
    TraceContext context() const;

  private:
    const char *name_;
    TraceContext saved_;
    bool installed_ = false;
    bool traced_ = false;
    std::uint64_t span_id_ = 0;
    std::uint64_t start_ns_ = 0;
};

/**
 * Process-wide buffer of sampled spans. Only sampled spans ever take
 * the mutex, so an unsampled workload never contends here. Overflow
 * past kMaxSpans bumps the `obs.spans.dropped` counter.
 */
class SpanBuffer
{
  public:
    static constexpr std::size_t kMaxSpans = 1u << 16;

    static SpanBuffer &instance();

    void record(const SpanRecord &span);

    /** Copy out the buffered spans (optionally draining them). */
    std::vector<SpanRecord> snapshot(bool drain = false);

    void clear();

    std::uint64_t droppedCount() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /**
     * Append the buffer as JSONL (one span object per line) — the
     * client-side export `ppm_trace --in FILE` merges. Registered
     * atexit when PPM_SPANS_OUT is set.
     */
    bool writeJsonl(const std::string &path);

  private:
    SpanBuffer() = default;

    std::mutex mutex_;
    std::vector<SpanRecord> spans_;
    std::atomic<std::uint64_t> dropped_{0};
};

/** 32-hex-digit trace id (hi || lo), for logs and Chrome traces. */
std::string traceIdHex(std::uint64_t hi, std::uint64_t lo);

} // namespace ppm::obs

#endif // PPM_OBS_TRACE_CONTEXT_HH
