#include "obs/trace_span.hh"

#include <cstdio>
#include <cstdlib>

namespace ppm::obs {

ChromeTrace &
ChromeTrace::instance()
{
    static ChromeTrace *trace = [] {
        auto *instance = new ChromeTrace;
        instance->configureFromEnv();
        return instance;
    }();
    return *trace;
}

void
ChromeTrace::configure(const std::string &path)
{
    bool flush_old = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        flush_old = !path_.empty() && !events_.empty();
    }
    if (flush_old)
        flush();
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = path;
    events_.clear();
    dropped_.store(0, std::memory_order_relaxed);
    on_.store(!path_.empty(), std::memory_order_relaxed);
    if (!path_.empty()) {
        // One atexit registration per process: the final flush makes
        // PPM_TRACE_OUT usable without any explicit shutdown call.
        static const bool registered = [] {
            std::atexit([] {
                if (ChromeTrace::instance().enabled())
                    ChromeTrace::instance().flush();
            });
            return true;
        }();
        (void)registered;
    }
}

void
ChromeTrace::configureFromEnv()
{
    const char *path = std::getenv("PPM_TRACE_OUT");
    configure(path == nullptr ? "" : path);
}

void
ChromeTrace::record(const char *name, std::uint64_t start_ns,
                    std::uint64_t dur_ns)
{
    const unsigned tid = threadSlot();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (events_.size() < kMaxEvents) {
            events_.push_back({name, start_ns, dur_ns, tid});
            return;
        }
    }
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // Surface the loss: a silent cap reads as "trace is complete".
    static Counter &dropped_counter =
        Registry::instance().counter("obs.trace.dropped");
    dropped_counter.add(1);
}

void
ChromeTrace::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (path_.empty())
        return;
    std::FILE *out = std::fopen(path_.c_str(), "w");
    if (out == nullptr)
        return;
    // Complete-event ("ph":"X") records; ts/dur in microseconds as
    // the format requires. The file is rewritten whole on each flush
    // so it is always a complete JSON document.
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", out);
    bool first = true;
    for (const Event &e : events_) {
        std::fprintf(
            out,
            "%s\n{\"name\":\"%s\",\"cat\":\"ppm\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
            first ? "" : ",", e.name, e.tid,
            static_cast<double>(e.start_ns) / 1e3,
            static_cast<double>(e.dur_ns) / 1e3);
        first = false;
    }
    // Footer note so a capped buffer is visible in the trace itself
    // (otherData shows up in the Perfetto/chrome://tracing metadata
    // pane) instead of silently truncating the timeline.
    const std::uint64_t dropped =
        dropped_.load(std::memory_order_relaxed);
    std::fprintf(out,
                 "\n],\"otherData\":{\"ppm_dropped_events\":\"%llu\","
                 "\"ppm_buffered_events\":\"%zu\"}}\n",
                 static_cast<unsigned long long>(dropped),
                 events_.size());
    std::fclose(out);
}

void
reconfigureFromEnv()
{
    EventLog::instance().configureFromEnv();
    ChromeTrace::instance().configureFromEnv();
    traceConfigureFromEnv();
}

} // namespace ppm::obs
