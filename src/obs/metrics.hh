/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * latency histograms, designed so instrumented hot paths pay one
 * relaxed atomic operation and nothing else.
 *
 * Counters and histograms are internally sharded: each writer thread
 * hashes to its own cache-line-aligned slot, so concurrent increments
 * never contend on a cache line, and a snapshot aggregates the shards.
 * Reads (snapshots) are wait-free with respect to writers; a snapshot
 * taken mid-increment sees either the old or the new value of each
 * slot, so totals are always a value the metric actually passed
 * through.
 *
 * Zero-perturbation invariant (see DESIGN.md "Observability"): no
 * metric operation consumes an RNG stream, takes a lock on a hot
 * path, or feeds back into any computed result. Pipeline outputs are
 * bit-identical with instrumentation present or compiled out.
 */

#ifndef PPM_OBS_METRICS_HH
#define PPM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ppm::obs {

/** Stable small id of the calling thread (used to pick a shard). */
unsigned threadSlot();

/**
 * Monotonically increasing event counter. add() is one relaxed
 * fetch_add on the caller's shard; value() sums the shards.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        slots_[threadSlot() % kSlots].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        std::uint64_t total = 0;
        for (const Slot &slot : slots_)
            total += slot.v.load(std::memory_order_relaxed);
        return total;
    }

    /** Zero every shard (tests/benches only; racy versus writers). */
    void
    reset()
    {
        for (Slot &slot : slots_)
            slot.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> v{0};
    };

    static constexpr unsigned kSlots = 16;
    std::array<Slot, kSlots> slots_;
};

/** A point-in-time signed level (queue depth, active connections). */
class Gauge
{
  public:
    void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
    void sub(std::int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }

    std::int64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed-bucket latency histogram over nanosecond durations. Buckets
 * are powers of two of a microsecond: bucket b counts observations in
 * (upper(b-1), upper(b)] with upper(b) = 1us << b; the final bucket is
 * unbounded. observe() touches only the caller's shard: three relaxed
 * adds, no locks.
 */
class Histogram
{
  public:
    /** Bucket count, pinned by the STATS frame schema (version 1). */
    static constexpr int kBuckets = 24;

    /** Inclusive upper bound of bucket @p b in ns (last = max u64). */
    static std::uint64_t bucketUpperNs(int b);

    /** Index of the bucket that counts a @p ns observation. */
    static int bucketIndex(std::uint64_t ns);

    void
    observe(std::uint64_t ns)
    {
        Shard &shard = shards_[threadSlot() % kShards];
        shard.count.fetch_add(1, std::memory_order_relaxed);
        shard.total_ns.fetch_add(ns, std::memory_order_relaxed);
        shard.buckets[static_cast<std::size_t>(bucketIndex(ns))]
            .fetch_add(1, std::memory_order_relaxed);
    }

    /** Aggregated view of every shard. */
    struct Data
    {
        std::uint64_t count = 0;
        std::uint64_t total_ns = 0;
        std::array<std::uint64_t, kBuckets> buckets{};
    };

    Data data() const;

    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> total_ns{0};
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    };

    static constexpr unsigned kShards = 8;
    std::array<Shard, kShards> shards_;
};

// --- snapshots --------------------------------------------------------

struct CounterValue
{
    std::string name;
    std::uint64_t value = 0;
};

struct GaugeValue
{
    std::string name;
    std::int64_t value = 0;
};

struct HistogramValue
{
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::vector<std::uint64_t> buckets; //!< Histogram::kBuckets wide
};

/** One consistent-enough view of a registry, sorted by name. */
struct Snapshot
{
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
};

/**
 * The process-wide metric registry. Handles returned by counter() /
 * gauge() / histogram() are valid for the life of the process; the
 * lookup takes a mutex, so call sites cache the reference (typically
 * in a function-local or member static) and pay only the atomic op
 * per event.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Aggregate every registered metric, sorted by name. */
    Snapshot snapshot() const;

    /**
     * Zero every registered metric (handles stay valid). For tests
     * and benches that want per-phase deltas without bookkeeping.
     */
    void reset();

  private:
    Registry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

/** Sum @p from into @p into, matching entries by name. */
void merge(Snapshot &into, const Snapshot &from);

/**
 * Difference of two polls of the same source(s): for every counter
 * and histogram of @p newer, its value minus the same-named entry of
 * @p older (missing in @p older = unchanged baseline of zero), with
 * each field clamped at zero so a restarted server's counter reset
 * reads as "no progress", never as a huge unsigned wrap. Gauges are
 * levels, not totals, so the newer value is kept as-is. Entries only
 * in @p older are dropped. Dividing the result by the poll interval
 * gives per-second rates (ppm_stats --watch).
 */
Snapshot delta(const Snapshot &newer, const Snapshot &older);

/**
 * Approximate quantile (0 <= q <= 1) in ns: the upper bound of the
 * first bucket whose cumulative count reaches q * count (0 when the
 * histogram is empty).
 */
std::uint64_t quantileNs(const HistogramValue &hist, double q);

/** Render a snapshot as a JSON object (one line, machine-readable). */
std::string toJson(const Snapshot &snap);

/** Render a snapshot as an aligned human-readable table. */
std::string toTable(const Snapshot &snap);

} // namespace ppm::obs

#endif // PPM_OBS_METRICS_HH
