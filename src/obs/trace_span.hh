/**
 * @file
 * Scoped trace spans: `OBS_SPAN("rbf.grid_search")` times the
 * enclosing scope with steady_clock, feeds the duration into the
 * registry histogram `span.rbf.grid_search`, and — when the
 * PPM_TRACE_OUT environment variable names an output file — records a
 * Chrome-trace-format event (load the file at chrome://tracing or
 * https://ui.perfetto.dev).
 *
 * Cost: two steady_clock reads plus one sharded histogram observe per
 * span; the Chrome recorder is skipped behind a relaxed atomic flag
 * unless PPM_TRACE_OUT is set. Spans never touch an RNG stream and
 * never feed back into computation (zero-perturbation; see
 * DESIGN.md "Observability").
 *
 * Building with -DPPM_OBS_DISABLE=ON (which defines PPM_OBS_DISABLED)
 * compiles every OBS_SPAN site out entirely — the micro-bench
 * BM_ObsSpanCompiledOut quantifies the difference.
 */

#ifndef PPM_OBS_TRACE_SPAN_HH
#define PPM_OBS_TRACE_SPAN_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_log.hh"
#include "obs/metrics.hh"
#include "obs/trace_context.hh"

namespace ppm::obs {

/**
 * Buffered Chrome-trace recorder. Events accumulate in memory (up to
 * kMaxEvents; later ones are counted as dropped) and flush() rewrites
 * the whole output file, so the file is a complete valid JSON
 * document after every flush. The global instance registers an
 * atexit flush when first enabled.
 */
class ChromeTrace
{
  public:
    ChromeTrace() = default;

    ChromeTrace(const ChromeTrace &) = delete;
    ChromeTrace &operator=(const ChromeTrace &) = delete;

    /** The process-wide recorder (env-configured on first use). */
    static ChromeTrace &instance();

    /** Route output to @p path; "" flushes pending events, disables. */
    void configure(const std::string &path);

    /** Re-read PPM_TRACE_OUT. */
    void configureFromEnv();

    bool enabled() const { return on_.load(std::memory_order_relaxed); }

    /**
     * Record one complete span. @p name must have static storage
     * duration (span sites are static literals).
     */
    void record(const char *name, std::uint64_t start_ns,
                std::uint64_t dur_ns);

    /** Write every buffered event to the configured path. */
    void flush();

    /** Events discarded because the buffer was full. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    struct Event
    {
        const char *name;
        std::uint64_t start_ns;
        std::uint64_t dur_ns;
        unsigned tid;
    };

    static constexpr std::size_t kMaxEvents = 1u << 18;

    std::atomic<bool> on_{false};
    std::atomic<std::uint64_t> dropped_{0};
    std::mutex mutex_;
    std::string path_;
    std::vector<Event> events_;
};

/**
 * One static span call site: owns the span name and the registry
 * histogram (`span.<name>`) it feeds. Constructed once per site via
 * a function-local static in the OBS_SPAN macro.
 */
class SpanSite
{
  public:
    explicit SpanSite(const char *name)
        : name_(name),
          hist_(Registry::instance().histogram(std::string("span.") +
                                               name))
    {
    }

    const char *name() const { return name_; }
    Histogram &histogram() { return hist_; }

  private:
    const char *name_;
    Histogram &hist_;
};

/**
 * RAII timer: observes the scope duration on destruction. When
 * distributed tracing is runtime-enabled (PPM_TRACE_SAMPLE) and the
 * thread's trace context is sampled, the span also joins the
 * distributed span tree: it allocates a span id, re-parents the
 * thread context for its dynamic extent, and records a SpanRecord at
 * destruction. With tracing off this adds exactly one relaxed atomic
 * load (tracingEnabled) to the span hot path.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanSite &site)
        : site_(site), start_ns_(monotonicNs())
    {
        if (tracingEnabled()) {
            TraceContext &ctx = threadTraceContext();
            if (ctx.sampled()) {
                traced_ = true;
                parent_span_id_ = ctx.parent_span_id;
                span_id_ = nextSpanId();
                ctx.parent_span_id = span_id_;
            }
        }
    }

    ~ScopedSpan()
    {
        const std::uint64_t dur = monotonicNs() - start_ns_;
        site_.histogram().observe(dur);
        ChromeTrace &trace = ChromeTrace::instance();
        if (trace.enabled())
            trace.record(site_.name(), start_ns_, dur);
        if (traced_) {
            TraceContext &ctx = threadTraceContext();
            ctx.parent_span_id = parent_span_id_;
            SpanRecord span;
            span.trace_hi = ctx.trace_hi;
            span.trace_lo = ctx.trace_lo;
            span.span_id = span_id_;
            span.parent_span_id = parent_span_id_;
            span.name = site_.name();
            span.start_unix_ns = start_ns_ + epochOffsetNs();
            span.dur_ns = dur;
            span.tid = threadSlot();
            SpanBuffer::instance().record(span);
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanSite &site_;
    std::uint64_t start_ns_;
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_span_id_ = 0;
    bool traced_ = false;
};

/**
 * Re-read PPM_LOG, PPM_LOG_LEVEL and PPM_TRACE_OUT for the global
 * event log and Chrome recorder. Intended for tests and tools that
 * toggle observability inside one process; production code simply
 * sets the environment before launch.
 */
void reconfigureFromEnv();

} // namespace ppm::obs

#define PPM_OBS_CONCAT2(a, b) a##b
#define PPM_OBS_CONCAT(a, b) PPM_OBS_CONCAT2(a, b)

#ifndef PPM_OBS_DISABLED
/**
 * Time the enclosing scope into the `span.<name>` histogram (and the
 * Chrome trace when enabled). @p name must be a string literal.
 */
#define OBS_SPAN(name)                                                 \
    static ppm::obs::SpanSite PPM_OBS_CONCAT(ppm_obs_site_,            \
                                             __LINE__){name};          \
    ppm::obs::ScopedSpan PPM_OBS_CONCAT(ppm_obs_span_, __LINE__)       \
    {                                                                  \
        PPM_OBS_CONCAT(ppm_obs_site_, __LINE__)                        \
    }
/** Bind a registry counter to a static local (cheap per-event add). */
#define OBS_STATIC_COUNTER(var, name)                                  \
    static ppm::obs::Counter &var =                                    \
        ppm::obs::Registry::instance().counter(name)
#define OBS_ADD(var, n) ((var).add(n))
/** Bind a registry gauge to a static local. */
#define OBS_STATIC_GAUGE(var, name)                                    \
    static ppm::obs::Gauge &var =                                      \
        ppm::obs::Registry::instance().gauge(name)
#define OBS_GAUGE_ADD(var, n) ((var).add(n))
#define OBS_GAUGE_SUB(var, n) ((var).sub(n))
#else
#define OBS_SPAN(name) ((void)0)
#define OBS_STATIC_COUNTER(var, name) ((void)0)
#define OBS_ADD(var, n) ((void)0)
#define OBS_STATIC_GAUGE(var, name) ((void)0)
#define OBS_GAUGE_ADD(var, n) ((void)0)
#define OBS_GAUGE_SUB(var, n) ((void)0)
#endif

#endif // PPM_OBS_TRACE_SPAN_HH
