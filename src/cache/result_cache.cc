#include "cache/result_cache.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <thread>
#include <type_traits>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "obs/trace_span.hh"
#include "util/thread_pool.hh"

namespace ppm::cache {

namespace {

/** splitmix64 finalizer: the avalanche stage of the key hash. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Polite spin: PAUSE a while, then yield the (possibly only) core. */
inline void
cpuRelax(unsigned &spins)
{
    if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
        return;
    }
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
}

/**
 * Acquire the cell's writer spinlock: CAS the seqlock word from even
 * to odd. Returns the odd value to pass to unlockCell.
 */
std::uint64_t
lockCell(Cell &cell)
{
    unsigned spins = 0;
    for (;;) {
        std::uint64_t v = cell.version.load(std::memory_order_relaxed);
        if ((v & 1) == 0 &&
            cell.version.compare_exchange_weak(
                v, v + 1, std::memory_order_acquire,
                std::memory_order_relaxed))
            return v + 1;
        cpuRelax(spins);
    }
}

void
unlockCell(Cell &cell, std::uint64_t locked)
{
    cell.version.store(locked + 1, std::memory_order_release);
}

/** Canonicalise a value's bit pattern away from the pending sentinel. */
std::uint64_t
valueBits(double value)
{
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    return bits == kPendingBits ? kNanBits : bits;
}

std::size_t
parseEnvSize(const char *name)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return 0;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        return 0;
    return static_cast<std::size_t>(v);
}

} // namespace

std::size_t
budgetBytesFromEnv(std::size_t fallback_mb)
{
    const std::size_t mb = parseEnvSize("PPM_CACHE_MB");
    return (mb != 0 ? mb : fallback_mb) * 1024 * 1024;
}

unsigned
shardsFromEnv()
{
    return static_cast<unsigned>(parseEnvSize("PPM_CACHE_SHARDS"));
}

void
PageAlignedDelete::operator()(void *p) const noexcept
{
#if defined(__linux__)
    if (map_bytes != 0) {
        ::munmap(p, map_bytes);
        return;
    }
#endif
    ::operator delete[](p, std::align_val_t{4096});
}

ResultCache::PageArray<std::byte>
ResultCache::hugeBytes(std::size_t bytes)
{
    static_assert(std::is_trivially_destructible_v<Cell> &&
                      std::is_trivially_destructible_v<
                          std::atomic<std::int64_t>>,
                  "PageAlignedDelete skips destructors");
#if defined(__linux__)
    // Preferred arena: explicit 2 MiB hugetlb pages, when the host
    // has a pool configured (vm.nr_hugepages). A multi-MB table then
    // occupies a few dozen TLB entries instead of thousands, which
    // matters twice over: probes stop paying a page walk per touch,
    // and the probe-ahead prefetches stop being silently dropped
    // (x86 drops prefetches whose translation misses the TLB).
    // Reservation happens at mmap time, so success here cannot
    // SIGBUS later; failure (no pool, pool exhausted) falls through.
    constexpr std::size_t kHuge = std::size_t{2} << 20;
    const std::size_t rounded = (bytes + kHuge - 1) & ~(kHuge - 1);
    void *map = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (map != MAP_FAILED) {
        PageArray<std::byte> arena(static_cast<std::byte *>(map));
        arena.get_deleter().map_bytes = rounded;
        return arena;
    }
#endif
    void *raw = ::operator new[](bytes, std::align_val_t{4096});
#if defined(__linux__)
    // Advise before first touch so the constructor's initialization
    // pass can fault 2 MiB mappings in directly under the THP
    // "madvise" policy.
    ::madvise(raw, bytes, MADV_HUGEPAGE);
#endif
    return PageArray<std::byte>(static_cast<std::byte *>(raw));
}

ResultCache::ResultCache(const CacheConfig &config)
    : key_words_(config.key_words)
{
    if (key_words_ == 0)
        throw std::invalid_argument(
            "ResultCache: key_words must be positive");

    const std::size_t budget = config.budget_bytes != 0
                                   ? config.budget_bytes
                                   : budgetBytesFromEnv();
    unsigned shards =
        config.shards != 0 ? config.shards : shardsFromEnv();
    if (shards == 0) {
        // Auto: the next power of two covering the thread count,
        // clamped — shards only spread the dedup condition variables
        // and hash ranges, so a few go a long way.
        shards = 1;
        while (shards < util::configuredThreads() && shards < 16)
            shards *= 2;
    }

    const std::size_t per_cell =
        sizeof(Cell) + kCellSlots * key_words_ * sizeof(std::int64_t);
    const std::size_t per_group = kGroupCells * per_cell;
    group_bytes_ = per_group; // cells block then key block, per group
    std::size_t total_groups = budget / per_group;
    if (total_groups == 0)
        total_groups = 1; // floor: the budget never rounds to nothing
    if (shards > total_groups)
        shards = static_cast<unsigned>(total_groups);
    const std::size_t groups_per_shard = total_groups / shards;

    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->num_groups = groups_per_shard;
        shard->arena = hugeBytes(groups_per_shard * group_bytes_);
        const std::size_t cells = groups_per_shard * kGroupCells;
        for (std::size_t c = 0; c < cells; ++c) {
            new (&cellAt(*shard, c)) Cell();
            for (unsigned slot = 0; slot < kCellSlots; ++slot) {
                std::atomic<std::int64_t> *words =
                    slotKey(*shard, c, slot);
                for (std::size_t w = 0; w < key_words_; ++w)
                    new (words + w) std::atomic<std::int64_t>(0);
            }
        }
        shards_.push_back(std::move(shard));
    }
    capacity_slots_ =
        shards * groups_per_shard * kGroupCells * kCellSlots;
    footprint_bytes_ = shards * groups_per_shard * per_group;
}

ResultCache::Ref
ResultCache::refFor(const Key &key) const
{
    // Multiply-xor accumulation (one xor + one odd-constant multiply
    // per word, each a bijection) over two parallel lanes keeps the
    // dependent chain at ~2 cycles/word on the lookup fast path; the
    // splitmix64 finalizer supplies the avalanche so the lattice
    // structure of design-point keys cannot bias shard/tag/group
    // selection.
    const std::size_t n = key.size();
    std::uint64_t a =
        0x9E3779B97F4A7C15ULL ^ (n * 0x2545F4914F6CDD1DULL);
    std::uint64_t b = 0x6A09E667F3BCC909ULL;
    std::size_t i = 0;
    for (; i + 1 < n; i += 2) {
        a = (a ^ static_cast<std::uint64_t>(key[i])) *
            0x9DDFEA08EB382D69ULL;
        b = (b ^ static_cast<std::uint64_t>(key[i + 1])) *
            0xC2B2AE3D27D4EB4FULL;
    }
    if (i < n)
        a = (a ^ static_cast<std::uint64_t>(key[i])) *
            0x9DDFEA08EB382D69ULL;
    const std::uint64_t h =
        mix64(a ^ (b >> 32) ^ (b << 32));
    Ref ref;
    // Disjoint hash fields: shard from bits 58.., tag from 51..57,
    // group position from the low 51 bits.
    ref.shard = shards_[(h >> 58) % shards_.size()].get();
    ref.tag = (h >> 51) & meta::kTagMask;
    ref.group = (h & 0x0007'FFFF'FFFF'FFFFULL) % ref.shard->num_groups;
    return ref;
}

Cell &
ResultCache::cellAt(const Shard &s, std::size_t cell) const
{
    std::byte *group =
        s.arena.get() + (cell / kGroupCells) * group_bytes_;
    return *reinterpret_cast<Cell *>(
        group + (cell % kGroupCells) * sizeof(Cell));
}

std::atomic<std::int64_t> *
ResultCache::slotKey(const Shard &s, std::size_t cell,
                     unsigned slot) const
{
    std::byte *group =
        s.arena.get() + (cell / kGroupCells) * group_bytes_;
    return reinterpret_cast<std::atomic<std::int64_t> *>(
               group + kGroupCells * sizeof(Cell)) +
           ((cell % kGroupCells) * kCellSlots + slot) * key_words_;
}

bool
ResultCache::keyEquals(const Shard &s, std::size_t cell, unsigned slot,
                       const Key &key) const
{
    const std::atomic<std::int64_t> *words =
        slotKey(s, cell, slot);
    for (std::size_t w = 0; w < key_words_; ++w)
        if (words[w].load(std::memory_order_relaxed) != key[w])
            return false;
    return true;
}

void
ResultCache::writeKey(Shard &s, std::size_t cell, unsigned slot,
                      const Key &key)
{
    std::atomic<std::int64_t> *words = slotKey(s, cell, slot);
    for (std::size_t w = 0; w < key_words_; ++w)
        words[w].store(key[w], std::memory_order_relaxed);
}

ResultCache::Ref
ResultCache::prefetchRef(const Key &key) const
{
    if (key.size() != key_words_)
        throw std::invalid_argument("ResultCache: key width mismatch");
    const Ref ref = refFor(key);
    // Overlap the dependent fetches of the common case — cell 0's
    // metadata line and the first lines of its slot keys (cells fill
    // lowest-first, so most hits land there) — instead of paying
    // serialized cache misses. The group block co-locates all three
    // lines, so this usually touches a single page.
    const std::size_t base = ref.group * kGroupCells;
    __builtin_prefetch(&cellAt(*ref.shard, base), 0, 3);
    __builtin_prefetch(slotKey(*ref.shard, base, 0), 0, 3);
    __builtin_prefetch(slotKey(*ref.shard, base, 1), 0, 3);
    return ref;
}

ResultCache::Probe
ResultCache::probe(const Ref &ref, const Key &key, double *out) const
{
    Shard &s = *ref.shard;
    const std::size_t base = ref.group * kGroupCells;
    for (std::size_t ci = 0; ci < kGroupCells; ++ci) {
        Cell &cell = cellAt(s, base + ci);
        unsigned spins = 0;
        for (;;) {
            // Seqlock read: odd means a writer is mutating the cell.
            const std::uint64_t v1 =
                cell.version.load(std::memory_order_acquire);
            if (v1 & 1) {
                cpuRelax(spins);
                continue;
            }
            const std::uint64_t m =
                cell.meta.load(std::memory_order_acquire);
            bool retry = false;
            for (unsigned slot = 0; slot < kCellSlots; ++slot) {
                if (!meta::occupied(m, slot) ||
                    meta::tag(m, slot) != ref.tag ||
                    !keyEquals(s, base + ci, slot, key))
                    continue;
                const std::uint64_t bits =
                    cell.vals[slot].load(std::memory_order_acquire);
                // Certify the (meta, key, value) snapshot: no slot
                // mutation may have intervened. The fence orders the
                // data loads above before the version re-read.
                std::atomic_thread_fence(std::memory_order_acquire);
                if (cell.version.load(std::memory_order_relaxed) !=
                    v1) {
                    retry = true;
                    break;
                }
                if (bits == kPendingBits)
                    return Probe::Pending;
                // Second-chance reference bit: one relaxed RMW,
                // skipped once set so hot keys settle to pure loads.
                if (!meta::refSet(m, slot))
                    cell.meta.fetch_or(meta::refBit(slot),
                                       std::memory_order_relaxed);
                *out = std::bit_cast<double>(bits);
                return Probe::Value;
            }
            if (!retry)
                break; // clean scan, no match in this cell
            cpuRelax(spins);
        }
    }
    return Probe::Miss;
}

ResultCache::Claim
ResultCache::claimSlot(const Ref &ref, const Key &key,
                       std::uint64_t value_bits, bool dirty,
                       double *out, Ticket *ticket,
                       std::vector<Spilled> *spilled)
{
    Shard &s = *ref.shard;
    const std::size_t base = ref.group * kGroupCells;
    Cell &lead = cellAt(s, base);
    // The group's lead cell doubles as the group insert lock: every
    // membership change (claim, direct insert, eviction, release)
    // happens under it, so the rescan below decides key presence
    // authoritatively.
    const std::uint64_t lead_locked = lockCell(lead);

    bool have_free = false;
    std::size_t free_ci = 0;
    unsigned free_slot = 0;
    for (std::size_t ci = 0; ci < kGroupCells; ++ci) {
        Cell &cell = cellAt(s, base + ci);
        const std::uint64_t m =
            cell.meta.load(std::memory_order_relaxed);
        for (unsigned slot = 0; slot < kCellSlots; ++slot) {
            if (!meta::occupied(m, slot)) {
                if (!have_free) {
                    have_free = true;
                    free_ci = ci;
                    free_slot = slot;
                }
                continue;
            }
            if (meta::tag(m, slot) != ref.tag ||
                !keyEquals(s, base + ci, slot, key))
                continue;
            const std::uint64_t bits =
                cell.vals[slot].load(std::memory_order_acquire);
            if (bits == kPendingBits) {
                unlockCell(lead, lead_locked);
                return Claim::Pending;
            }
            // Published entry. A direct clean insert upgrades a
            // dirty twin: the caller vouches the value is durable.
            if (value_bits != kPendingBits && !dirty &&
                meta::dirty(m, slot))
                cell.meta.fetch_and(~meta::dirtyBit(slot),
                                    std::memory_order_relaxed);
            *out = std::bit_cast<double>(bits);
            unlockCell(lead, lead_locked);
            return Claim::Hit;
        }
    }

    std::size_t target_ci = free_ci;
    unsigned target_slot = free_slot;
    if (!have_free) {
        // Second-chance (clock) victim search over the group. Pass 1
        // spends reference bits; pass 2 takes the first spent,
        // non-pending slot. Pending slots are never evicted — their
        // owner holds a ticket to them.
        bool have_victim = false;
        for (int pass = 0; pass < 2 && !have_victim; ++pass) {
            for (std::size_t ci = 0;
                 ci < kGroupCells && !have_victim; ++ci) {
                Cell &cell = cellAt(s, base + ci);
                const std::uint64_t m =
                    cell.meta.load(std::memory_order_relaxed);
                for (unsigned slot = 0; slot < kCellSlots; ++slot) {
                    if (!meta::occupied(m, slot))
                        continue;
                    if (cell.vals[slot].load(
                            std::memory_order_relaxed) ==
                        kPendingBits)
                        continue;
                    if (meta::refSet(
                            cell.meta.load(std::memory_order_relaxed),
                            slot)) {
                        cell.meta.fetch_and(~meta::refBit(slot),
                                            std::memory_order_relaxed);
                        continue;
                    }
                    target_ci = ci;
                    target_slot = slot;
                    have_victim = true;
                    break;
                }
            }
        }
        if (!have_victim) {
            // Every slot of the group carries an in-flight
            // computation: nothing can be placed or displaced.
            unlockCell(lead, lead_locked);
            return Claim::Saturated;
        }

        // Evict: copy the entry out (stable under the lead lock —
        // only pending→value publishes can race, and the victim is
        // not pending), then clear the slot under its cell lock so
        // lock-free readers re-certify. The spill itself runs after
        // every lock is released.
        Cell &vcell = cellAt(s, base + target_ci);
        const std::uint64_t vm =
            vcell.meta.load(std::memory_order_relaxed);
        Spilled entry;
        entry.value = std::bit_cast<double>(vcell.vals[target_slot].load(
            std::memory_order_relaxed));
        entry.key.resize(key_words_);
        const std::atomic<std::int64_t> *words =
            slotKey(s, base + target_ci, target_slot);
        for (std::size_t w = 0; w < key_words_; ++w)
            entry.key[w] = words[w].load(std::memory_order_relaxed);
        evictions_.add(1);
        OBS_STATIC_COUNTER(evict_counter, "cache.evict");
        OBS_ADD(evict_counter, 1);
        if (meta::dirty(vm, target_slot))
            spilled->push_back(std::move(entry));
    }

    // Write the new entry. Slot-state bits are updated with a CAS
    // loop: reference-bit RMWs from lock-free readers race even while
    // the cell is locked, so a plain store could clobber them.
    Cell &cell = cellAt(s, base + target_ci);
    const std::uint64_t cell_locked =
        target_ci == 0 ? lead_locked : lockCell(cell);
    writeKey(s, base + target_ci, target_slot, key);
    cell.vals[target_slot].store(value_bits,
                                 std::memory_order_relaxed);
    std::uint64_t old = cell.meta.load(std::memory_order_relaxed);
    std::uint64_t next;
    do {
        next = (old & ~meta::slotMask(target_slot)) |
               (ref.tag << (7 * target_slot)) |
               meta::occupiedBit(target_slot) |
               meta::refBit(target_slot);
        if (dirty && value_bits != kPendingBits)
            next |= meta::dirtyBit(target_slot);
    } while (!cell.meta.compare_exchange_weak(
        old, next, std::memory_order_release,
        std::memory_order_relaxed));
    if (target_ci != 0)
        unlockCell(cell, cell_locked);
    unlockCell(lead, lead_locked);

    ticket->shard = &s;
    ticket->cell = base + target_ci;
    ticket->slot = target_slot;
    return Claim::Claimed;
}

void
ResultCache::publish(const Ticket &ticket, std::uint64_t value_bits,
                     bool dirty)
{
    Cell &cell = cellAt(*ticket.shard, ticket.cell);
    // Dirty before value: eviction only considers non-pending slots,
    // so the flag is in place the instant the entry becomes evictable.
    if (dirty)
        cell.meta.fetch_or(meta::dirtyBit(ticket.slot),
                           std::memory_order_relaxed);
    cell.vals[ticket.slot].store(value_bits,
                                 std::memory_order_release);
    notifyShard(*ticket.shard);
}

void
ResultCache::releaseClaim(const Ticket &ticket)
{
    Shard &s = *ticket.shard;
    const std::size_t base =
        (ticket.cell / kGroupCells) * kGroupCells;
    Cell &lead = cellAt(s, base);
    Cell &cell = cellAt(s, ticket.cell);
    const std::uint64_t lead_locked = lockCell(lead);
    const std::uint64_t cell_locked =
        &cell == &lead ? lead_locked : lockCell(cell);
    std::uint64_t old = cell.meta.load(std::memory_order_relaxed);
    while (!cell.meta.compare_exchange_weak(
        old, old & ~meta::slotMask(ticket.slot),
        std::memory_order_release, std::memory_order_relaxed)) {
    }
    cell.vals[ticket.slot].store(0, std::memory_order_relaxed);
    if (&cell != &lead)
        unlockCell(cell, cell_locked);
    unlockCell(lead, lead_locked);
    notifyShard(s);
}

void
ResultCache::spill(std::vector<Spilled> &spilled)
{
    for (Spilled &entry : spilled) {
        std::shared_ptr<core::ResultStore> store;
        {
            std::lock_guard<std::mutex> lock(stores_mutex_);
            const auto it = stores_.find(entry.key.front());
            if (it != stores_.end())
                store = it->second;
        }
        if (!store)
            continue; // no route: the eviction simply drops it
        const Key bare(entry.key.begin() + 1, entry.key.end());
        store->append(bare, entry.value);
        spills_.add(1);
        OBS_STATIC_COUNTER(spill_counter, "cache.spill");
        OBS_ADD(spill_counter, 1);
    }
    spilled.clear();
}

void
ResultCache::notifyShard(Shard &shard)
{
    shard.wait_events.fetch_add(1, std::memory_order_release);
    if (shard.waiters.load(std::memory_order_acquire) == 0)
        return;
    // Taking the mutex between the event bump and the notify closes
    // the window where a waiter has sampled the generation but not
    // yet blocked.
    { std::lock_guard<std::mutex> lock(shard.wait_mutex); }
    shard.wait_cv.notify_all();
}

void
ResultCache::waitForEvent(Shard &shard, std::uint64_t gen)
{
    std::unique_lock<std::mutex> lock(shard.wait_mutex);
    // The timeout is a belt-and-braces backstop: with the notify
    // discipline above it should never be what wakes us.
    shard.wait_cv.wait_for(lock, std::chrono::milliseconds(50), [&] {
        return shard.wait_events.load(std::memory_order_acquire) !=
               gen;
    });
}

bool
ResultCache::lookup(const Key &key, double *out) const
{
    const Ref ref = prefetchRef(key);
    if (probe(ref, key, out) == Probe::Value) {
        hits_.add(1);
        OBS_STATIC_COUNTER(hit_counter, "cache.hit");
        OBS_ADD(hit_counter, 1);
        return true;
    }
    misses_.add(1);
    OBS_STATIC_COUNTER(miss_counter, "cache.miss");
    OBS_ADD(miss_counter, 1);
    return false;
}

std::size_t
ResultCache::lookupBatch(const Key *keys, std::size_t n, double *out,
                         bool *found) const
{
    // Rolling software pipeline: hash + prefetch key i+kAhead while
    // probing key i, so every probe lands on lines whose fetch was
    // issued kAhead probes ago. Unlike a phased window there is no
    // boundary stall — the prefetch distance stays constant across
    // the whole batch. Depth trades latency coverage against
    // outstanding-miss capacity (each key issues three prefetches).
    constexpr std::size_t kAhead = 6;
    Ref ring[kAhead];
    const std::size_t prime = std::min(kAhead, n);
    for (std::size_t i = 0; i < prime; ++i)
        ring[i] = prefetchRef(keys[i]);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Ref ref = ring[i % kAhead];
        if (i + kAhead < n)
            ring[i % kAhead] = prefetchRef(keys[i + kAhead]);
        double value = 0.0;
        const bool ok = probe(ref, keys[i], &value) == Probe::Value;
        found[i] = ok;
        out[i] = ok ? value : 0.0;
        hits += ok;
    }
    hits_.add(hits);
    misses_.add(n - hits);
    OBS_STATIC_COUNTER(hit_counter, "cache.hit");
    OBS_ADD(hit_counter, hits);
    OBS_STATIC_COUNTER(miss_counter, "cache.miss");
    OBS_ADD(miss_counter, n - hits);
    return hits;
}

ResultCache::GetResult
ResultCache::getOrCompute(const Key &key,
                          const std::function<double()> &compute,
                          bool publish_dirty)
{
    const Ref ref = prefetchRef(key);
    Shard &shard = *ref.shard;
    bool waited = false;
    for (;;) {
        // Sample the shard generation before probing: a publish that
        // lands between the probe and the wait advances it, so the
        // wait below cannot sleep through the wakeup.
        const std::uint64_t gen =
            shard.wait_events.load(std::memory_order_acquire);
        double value = 0.0;
        Ticket ticket;
        Claim claim;
        std::vector<Spilled> spilled;
        {
            OBS_SPAN("cache.lookup");
            switch (probe(ref, key, &value)) {
              case Probe::Value:
                claim = Claim::Hit;
                break;
              case Probe::Pending:
                claim = Claim::Pending;
                break;
              default:
                claim = claimSlot(ref, key, kPendingBits, false,
                                  &value, &ticket, &spilled);
                break;
            }
        }
        if (!spilled.empty())
            spill(spilled);

        switch (claim) {
          case Claim::Hit: {
            hits_.add(1);
            OBS_STATIC_COUNTER(hit_counter, "cache.hit");
            OBS_ADD(hit_counter, 1);
            return {value,
                    waited ? Outcome::DedupWait : Outcome::Hit};
          }
          case Claim::Claimed: {
            double computed;
            try {
                computed = compute();
            } catch (...) {
                // Release the slot so a later request retries, and
                // wake waiters — one of them re-claims.
                releaseClaim(ticket);
                throw;
            }
            const std::uint64_t bits = valueBits(computed);
            publish(ticket, bits, publish_dirty);
            misses_.add(1);
            OBS_STATIC_COUNTER(miss_counter, "cache.miss");
            OBS_ADD(miss_counter, 1);
            return {std::bit_cast<double>(bits), Outcome::Computed};
          }
          case Claim::Saturated: {
            // The whole probe group is mid-computation for other
            // keys: compute without caching rather than block on
            // strangers.
            bypasses_.add(1);
            OBS_STATIC_COUNTER(bypass_counter, "cache.bypass");
            OBS_ADD(bypass_counter, 1);
            return {compute(), Outcome::Bypassed};
          }
          case Claim::Pending: {
            if (!waited) {
                dedup_waits_.add(1);
                OBS_STATIC_COUNTER(dedup_counter, "cache.dedup_wait");
                OBS_ADD(dedup_counter, 1);
            }
            waited = true;
            shard.waiters.fetch_add(1, std::memory_order_acq_rel);
            waitForEvent(shard, gen);
            shard.waiters.fetch_sub(1, std::memory_order_acq_rel);
            break; // re-run the protocol
          }
        }
    }
}

bool
ResultCache::insert(const Key &key, double value, bool dirty)
{
    const Ref ref = prefetchRef(key);
    const std::uint64_t bits = valueBits(value);
    double existing = 0.0;
    Ticket ticket;
    std::vector<Spilled> spilled;
    const Claim claim =
        claimSlot(ref, key, bits, dirty, &existing, &ticket, &spilled);
    if (!spilled.empty())
        spill(spilled);
    switch (claim) {
      case Claim::Claimed:
        inserts_.add(1);
        {
            OBS_STATIC_COUNTER(insert_counter, "cache.insert");
            OBS_ADD(insert_counter, 1);
        }
        return true;
      default:
        // Hit/Pending: present, or being computed by a thread that
        // will publish this very value (results are deterministic per
        // key). Saturated: nothing could be placed. Either way the
        // entry was not newly placed by this call.
        return false;
    }
}

void
ResultCache::registerSpillStore(std::int64_t ctx_word,
                                std::shared_ptr<core::ResultStore> store)
{
    std::lock_guard<std::mutex> lock(stores_mutex_);
    stores_[ctx_word] = std::move(store);
}

std::size_t
ResultCache::flushDirty()
{
    std::size_t flushed = 0;
    for (const auto &shard_ptr : shards_) {
        Shard &s = *shard_ptr;
        for (std::size_t group = 0; group < s.num_groups; ++group) {
            const std::size_t base = group * kGroupCells;
            std::vector<Spilled> dirty_entries;
            {
                Cell &lead = cellAt(s, base);
                const std::uint64_t lead_locked = lockCell(lead);
                for (std::size_t ci = 0; ci < kGroupCells; ++ci) {
                    Cell &cell = cellAt(s, base + ci);
                    const std::uint64_t m =
                        cell.meta.load(std::memory_order_relaxed);
                    for (unsigned slot = 0; slot < kCellSlots;
                         ++slot) {
                        if (!meta::occupied(m, slot) ||
                            !meta::dirty(m, slot))
                            continue;
                        const std::uint64_t bits =
                            cell.vals[slot].load(
                                std::memory_order_acquire);
                        if (bits == kPendingBits)
                            continue;
                        Spilled entry;
                        entry.value = std::bit_cast<double>(bits);
                        entry.key.resize(key_words_);
                        const std::atomic<std::int64_t> *words =
                            slotKey(s, base + ci, slot);
                        for (std::size_t w = 0; w < key_words_; ++w)
                            entry.key[w] = words[w].load(
                                std::memory_order_relaxed);
                        dirty_entries.push_back(std::move(entry));
                    }
                }
                unlockCell(lead, lead_locked);
            }
            // Append outside the locks, then clear the dirty bit only
            // if the slot still holds the very entry we persisted.
            for (Spilled &entry : dirty_entries) {
                std::shared_ptr<core::ResultStore> store;
                {
                    std::lock_guard<std::mutex> lock(stores_mutex_);
                    const auto it = stores_.find(entry.key.front());
                    if (it != stores_.end())
                        store = it->second;
                }
                if (!store)
                    continue; // unroutable: stays dirty
                const Key bare(entry.key.begin() + 1,
                               entry.key.end());
                store->append(bare, entry.value);
                ++flushed;
                spills_.add(1);
                OBS_STATIC_COUNTER(spill_counter, "cache.spill");
                OBS_ADD(spill_counter, 1);
                const std::uint64_t bits =
                    std::bit_cast<std::uint64_t>(entry.value);
                Cell &lead = cellAt(s, base);
                const std::uint64_t lead_locked = lockCell(lead);
                for (std::size_t ci = 0; ci < kGroupCells; ++ci) {
                    Cell &cell = cellAt(s, base + ci);
                    const std::uint64_t m =
                        cell.meta.load(std::memory_order_relaxed);
                    for (unsigned slot = 0; slot < kCellSlots;
                         ++slot) {
                        if (meta::occupied(m, slot) &&
                            meta::dirty(m, slot) &&
                            keyEquals(s, base + ci, slot,
                                      entry.key) &&
                            cell.vals[slot].load(
                                std::memory_order_relaxed) == bits)
                            cell.meta.fetch_and(
                                ~meta::dirtyBit(slot),
                                std::memory_order_relaxed);
                    }
                }
                unlockCell(lead, lead_locked);
            }
        }
    }
    return flushed;
}

ResultCache::Stats
ResultCache::stats() const
{
    Stats out;
    out.hits = hits_.value();
    out.misses = misses_.value();
    out.dedup_waits = dedup_waits_.value();
    out.inserts = inserts_.value();
    out.evictions = evictions_.value();
    out.spills = spills_.value();
    out.bypasses = bypasses_.value();
    return out;
}

std::size_t
ResultCache::liveEntries() const
{
    std::size_t live = 0;
    for (const auto &shard_ptr : shards_) {
        const Shard &s = *shard_ptr;
        const std::size_t cells = s.num_groups * kGroupCells;
        for (std::size_t ci = 0; ci < cells; ++ci) {
            const std::uint64_t m =
                cellAt(s, ci).meta.load(std::memory_order_relaxed);
            live += static_cast<std::size_t>(std::popcount(
                (m >> meta::kOccShift) &
                ((1ULL << kCellSlots) - 1)));
        }
    }
    return live;
}

} // namespace ppm::cache
