/**
 * @file
 * MutexMapCache: the pre-cache memo design preserved as a reference —
 * one mutex around an ordered std::map from key to shared_future.
 * This is what src/core/oracle.hh used before the concurrent
 * ResultCache existed; it lives on as (a) the baseline the bench
 * sweeps in bench/perf_kernels.cc measure ResultCache against, and
 * (b) the independent re-implementation the bit-equivalence tests
 * compare CPI results with.
 *
 * Header-only and deliberately boring: correctness by one big lock.
 */

#ifndef PPM_CACHE_BASELINE_HH
#define PPM_CACHE_BASELINE_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <vector>

namespace ppm::cache {

class MutexMapCache
{
  public:
    using Key = std::vector<std::int64_t>;

    /** Lookup only; returns true and sets @p out on a hit. */
    bool lookup(const Key &key, double *out) const
    {
        std::shared_future<double> fut;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = memo_.find(key);
            if (it == memo_.end())
                return false;
            fut = it->second;
        }
        if (fut.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
            return false;
        *out = fut.get();
        return true;
    }

    /**
     * Batched lookup, the map's best case: one lock acquisition
     * amortized over all @p n probes. Writes out[i] / found[i] and
     * returns the hit count.
     */
    std::size_t lookupBatch(const Key *keys, std::size_t n,
                            double *out, bool *found) const
    {
        std::size_t hits = 0;
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < n; ++i) {
            const auto it = memo_.find(keys[i]);
            const bool ok =
                it != memo_.end() &&
                it->second.wait_for(std::chrono::seconds(0)) ==
                    std::future_status::ready;
            found[i] = ok;
            out[i] = ok ? it->second.get() : 0.0;
            hits += ok;
        }
        return hits;
    }

    /**
     * The classic memo protocol: first thread in claims the key with
     * a promise and computes; racers block on the shared_future.
     */
    double getOrCompute(const Key &key,
                        const std::function<double()> &compute)
    {
        std::promise<double> promise;
        std::shared_future<double> fut;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto [it, inserted] =
                memo_.try_emplace(key, promise.get_future().share());
            fut = it->second;
            owner = inserted;
        }
        if (!owner)
            return fut.get();
        try {
            promise.set_value(compute());
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                memo_.erase(key);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
        return fut.get();
    }

    void insert(const Key &key, double value)
    {
        std::promise<double> promise;
        promise.set_value(value);
        std::lock_guard<std::mutex> lock(mutex_);
        memo_.try_emplace(key, promise.get_future().share());
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return memo_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::map<Key, std::shared_future<double>> memo_;
};

} // namespace ppm::cache

#endif // PPM_CACHE_BASELINE_HH
