/**
 * @file
 * ResultCache: a concurrent, fixed-footprint, open-addressing
 * point→CPI hash table — the memo layer every CPI the system produces
 * funnels through (simulator oracles, the sharded SimServer backends,
 * prediction fallbacks, adaptive-sampling batches).
 *
 * Design (TurboHash/lightning style; see DESIGN.md "Result cache"):
 *
 *  - Storage is cache-line-sized cells (cache/cell.hh): a seqlock
 *    version word, one packed atomic meta word (6 slots × 7-bit tag +
 *    occupancy + reference + dirty bits), and six inline value words.
 *    Keys (fixed width, set at construction) live in a parallel
 *    atomic array.
 *  - Probes are cache-line-local: a key hashes to one 4-cell bucket
 *    group (24 slots scanned linearly, 256 adjacent bytes); there is
 *    no secondary probe sequence — a full group means eviction, which
 *    is the expected steady state of a budgeted cache.
 *  - Readers take no locks: a lookup loads the meta word, filters by
 *    tag, compares key words, loads the value word, and certifies the
 *    snapshot with the cell's seqlock version. Writers serialize slot
 *    mutation per group on the group's first cell version word (the
 *    per-cell spinlock: CAS even→odd, release odd→even+2).
 *  - Inserts are two-phase, with no shared_future: a miss claims a
 *    slot by publishing the key with a reserved pending value word
 *    (kPendingBits), computes outside all locks, then publishes the
 *    value with one release store. Concurrent requesters of the same
 *    key observe the pending word and block on the shard's
 *    condition variable — N racing threads still trigger exactly one
 *    computation.
 *  - The table footprint is fixed at construction from a memory
 *    budget (PPM_CACHE_MB). When a group is full, a second-chance
 *    (clock) scan evicts a victim; evicted entries whose dirty bit is
 *    set are spilled through the core::ResultStore registered for
 *    their context word, so budget pressure never loses work that a
 *    restart would otherwise re-simulate.
 *
 * Key layout contract: key[0] is the caller's context/routing word
 * (oracle context id and metric; 0 for single-context private
 * tables); the remaining words are the fixed-point design-point
 * rendering. Spills strip key[0] and append the bare point key to the
 * store registered for that word, matching the on-disk archive
 * format.
 */

#ifndef PPM_CACHE_RESULT_CACHE_HH
#define PPM_CACHE_RESULT_CACHE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "cache/cell.hh"
#include "core/result_store.hh"
#include "obs/metrics.hh"

namespace ppm::cache {

/**
 * Deleter for the page-aligned shard arenas (see
 * ResultCache::hugeBytes in result_cache.cc). map_bytes != 0 marks an
 * mmap'd hugetlb arena (munmap); 0 marks an aligned-new fallback
 * arena. Elements must be trivially destructible. Namespace-scope
 * (not nested) so its default constructor is visible wherever
 * ResultCache's own members instantiate unique_ptr with it.
 */
struct PageAlignedDelete
{
    std::size_t map_bytes = 0;
    void operator()(void *p) const noexcept;
};

/** PPM_CACHE_MB in bytes; @p fallback_mb when unset or invalid. */
std::size_t budgetBytesFromEnv(std::size_t fallback_mb = 16);

/** PPM_CACHE_SHARDS; 0 (auto) when unset or invalid. */
unsigned shardsFromEnv();

struct CacheConfig
{
    /** Key width in int64 words, including the context word. */
    std::size_t key_words = 0;
    /** Table footprint cap in bytes; 0 = budgetBytesFromEnv(). */
    std::size_t budget_bytes = 0;
    /**
     * Sub-table count (each shard owns its cells and its waiter
     * queue); 0 = shardsFromEnv(), which itself defaults to an
     * automatic choice based on the configured thread count.
     */
    unsigned shards = 0;
};

/** How a getOrCompute() request was satisfied. */
enum class Outcome
{
    Hit,       //!< published value found
    DedupWait, //!< waited on another thread's in-flight computation
    Computed,  //!< this thread claimed the slot and computed
    Bypassed,  //!< probe group saturated with in-flight slots;
               //!< computed without caching
};

class ResultCache
{
  public:
    using Key = core::ResultStore::Key;

    /** @throws std::invalid_argument on a zero key width. */
    explicit ResultCache(const CacheConfig &config);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    // --- geometry (fixed at construction) ----------------------------

    std::size_t keyWords() const { return key_words_; }
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    /** Total slots the table can hold. */
    std::size_t capacitySlots() const { return capacity_slots_; }
    /** Bytes of cell + key storage actually allocated (≤ budget). */
    std::size_t footprintBytes() const { return footprint_bytes_; }

    // --- core operations ---------------------------------------------

    /**
     * Lock-free point probe. Returns true and sets @p out when a
     * published value for @p key is present. A pending (in-flight)
     * entry reads as a miss. Counts cache.hit / cache.miss.
     */
    bool lookup(const Key &key, double *out) const;

    /**
     * Lock-free batched probe: the pipelined form of lookup() for
     * the serving hot path, where oracles evaluate whole point
     * batches. Hashes and prefetches a window of keys ahead of the
     * probes, so the per-key cost is bounded by memory-level
     * parallelism rather than serialized cache-miss latency — a
     * structural advantage a pointer-chasing map cannot match.
     *
     * Writes out[i] / found[i] for each of the @p n keys (out[i] is
     * 0.0 on a miss) and returns the hit count. Counts cache.hit /
     * cache.miss like lookup().
     */
    std::size_t lookupBatch(const Key *keys, std::size_t n,
                            double *out, bool *found) const;

    struct GetResult
    {
        double value = 0.0;
        Outcome outcome = Outcome::Hit;
    };

    /**
     * The full memo protocol: return the published value for @p key,
     * or wait for a racing computation of it, or claim the key and
     * run @p compute exactly once, publishing its result. When
     * @p publish_dirty is true the published entry is marked
     * not-yet-durable and will be spilled through the registered
     * store on eviction; pass false when @p compute already persisted
     * the result (write-through).
     *
     * If @p compute throws, the claimed slot is released so a later
     * request retries, waiters are woken (they re-run the protocol
     * and one of them re-claims), and the exception propagates.
     */
    GetResult getOrCompute(const Key &key,
                           const std::function<double()> &compute,
                           bool publish_dirty);

    /**
     * Directly publish a known value (archive preloads, sibling
     * metrics of one simulation). An existing published entry is left
     * in place — except that inserting clean over a dirty entry
     * clears the dirty bit (the caller vouches the value is durable).
     * Returns true when the entry was newly placed; false when the
     * key was already present (or in flight), or the probe group was
     * saturated with pending slots and nothing could be placed.
     */
    bool insert(const Key &key, double value, bool dirty);

    /**
     * Route spills of dirty entries whose key[0] == @p ctx_word
     * through @p store. Entries with an unregistered context word are
     * dropped on eviction (counted, never blocking).
     */
    void registerSpillStore(std::int64_t ctx_word,
                            std::shared_ptr<core::ResultStore> store);

    /**
     * Spill every dirty entry through its registered store and mark
     * it clean; entries without a store stay dirty. Returns the
     * number spilled. Racing evictions may cause a duplicate archive
     * append, which preload deduplication absorbs.
     */
    std::size_t flushDirty();

    // --- statistics --------------------------------------------------

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t dedup_waits = 0;
        std::uint64_t inserts = 0;
        std::uint64_t evictions = 0;
        std::uint64_t spills = 0;
        std::uint64_t bypasses = 0;
    };

    Stats stats() const;

    /** Occupied slots right now (racy snapshot; exact at rest). */
    std::size_t liveEntries() const;

  private:
    template <typename T>
    using PageArray = std::unique_ptr<T[], PageAlignedDelete>;

    /**
     * Allocate a page-aligned arena on 2 MiB pages when possible —
     * explicit hugetlb pages if a pool is configured
     * (vm.nr_hugepages), else a THP hint — so random probes cost one
     * TLB entry instead of a page walk per touch. Returned bytes are
     * uninitialized; the constructor placement-initializes every
     * cell and key word.
     */
    static PageArray<std::byte> hugeBytes(std::size_t bytes);

    struct Shard
    {
        /**
         * Co-located storage: each group is a contiguous block of
         * kGroupCells cells followed by their slot keys, so one
         * probe touches one ~2 KiB window (usually a single page)
         * instead of two distant regions.
         */
        PageArray<std::byte> arena;
        std::size_t num_groups = 0;

        // Dedup waiters: wait_events advances on every publish /
        // release in this shard; waiters block on the condition
        // variable until it moves past the generation they sampled.
        std::mutex wait_mutex;
        std::condition_variable wait_cv;
        std::atomic<std::uint64_t> wait_events{0};
        std::atomic<unsigned> waiters{0};
    };

    struct Ref
    {
        Shard *shard = nullptr;
        std::size_t group = 0;     //!< group index within the shard
        std::uint64_t tag = 0;     //!< 7-bit tag of the key
    };

    struct Ticket
    {
        Shard *shard = nullptr;
        std::size_t cell = 0; //!< cell index within the shard
        unsigned slot = 0;
    };

    /** An entry copied out of the table while evicting/flushing. */
    struct Spilled
    {
        Key key;
        double value = 0.0;
    };

    enum class Probe { Miss, Value, Pending };
    enum class Claim { Hit, Pending, Claimed, Saturated };

    Ref refFor(const Key &key) const;
    /**
     * Width-check + refFor + prefetch of the group's hot lines (cell
     * 0 and the first two slot-key lines). The shared head of every
     * entry point, and the pipeline stage lookupBatch() runs ahead of
     * its probes.
     */
    Ref prefetchRef(const Key &key) const;
    Cell &cellAt(const Shard &s, std::size_t cell) const;
    std::atomic<std::int64_t> *slotKey(const Shard &s,
                                       std::size_t cell,
                                       unsigned slot) const;
    bool keyEquals(const Shard &s, std::size_t cell, unsigned slot,
                   const Key &key) const;
    void writeKey(Shard &s, std::size_t cell, unsigned slot,
                  const Key &key);

    Probe probe(const Ref &ref, const Key &key, double *out) const;
    Claim claimSlot(const Ref &ref, const Key &key,
                    std::uint64_t value_bits, bool dirty, double *out,
                    Ticket *ticket, std::vector<Spilled> *spilled);
    void publish(const Ticket &ticket, std::uint64_t value_bits,
                 bool dirty);
    void releaseClaim(const Ticket &ticket);
    void spill(std::vector<Spilled> &spilled);
    void notifyShard(Shard &shard);
    void waitForEvent(Shard &shard, std::uint64_t gen);

    std::size_t key_words_;
    std::size_t group_bytes_ = 0; //!< cells + key block, per group
    std::size_t capacity_slots_ = 0;
    std::size_t footprint_bytes_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::mutex stores_mutex_;
    std::map<std::int64_t, std::shared_ptr<core::ResultStore>> stores_;

    // Per-table statistics; the matching process-wide cache.* obs
    // counters are bumped at the same call sites. Mutable: the
    // lock-free const lookup() path still counts.
    mutable obs::Counter hits_;
    mutable obs::Counter misses_;
    obs::Counter dedup_waits_;
    obs::Counter inserts_;
    obs::Counter evictions_;
    obs::Counter spills_;
    obs::Counter bypasses_;
};

/** Pack an oracle context id and metric index into a key[0] word. */
constexpr std::int64_t
contextWord(std::int64_t context_id, int metric_index)
{
    return (context_id << 2) | (metric_index & 3);
}

} // namespace ppm::cache

#endif // PPM_CACHE_RESULT_CACHE_HH
