/**
 * @file
 * Cell layout of the concurrent result cache (TurboHash/lightning
 * style): fixed-footprint cache-line-sized cells whose slot metadata
 * — partial-hash tag, occupancy, clock reference bit, dirty bit —
 * packs into one atomic word, so a reader filters a whole cell with a
 * single load.
 *
 * One cell is exactly one 64-byte cache line:
 *
 *     offset  0: u64 version   seqlock word; even = stable, odd = a
 *                              writer holds the cell (the per-cell
 *                              spinlock: writers CAS even→odd, store
 *                              back even+2 on release)
 *     offset  8: u64 meta      packed slot metadata (layout below)
 *     offset 16: u64 vals[6]   per-slot value words: the bit pattern
 *                              of the cached double, or a reserved
 *                              NaN sentinel while the slot's result
 *                              is still being computed (kPendingBits)
 *
 * meta word layout (bit 0 = least significant):
 *
 *     bits  0..41  six 7-bit tags, slot s at bits [7s, 7s+7)
 *     bits 42..47  occupancy, bit 42+s set = slot s holds an entry
 *     bits 48..53  reference bits (second-chance eviction)
 *     bits 54..59  dirty bits (entry not yet durable; spill on evict)
 *     bits 60..63  unused
 *
 * Keys are fixed-width runs of int64 words and live in a parallel
 * array outside the cell (cache/result_cache.hh), because a key
 * (design-point rendering plus context word) is larger than a cache
 * line could hold inline. All key words are relaxed atomics: a reader
 * may race a writer recycling the slot, and the seqlock version word
 * is what certifies the (tag, key, value) triple it read was a
 * consistent snapshot.
 */

#ifndef PPM_CACHE_CELL_HH
#define PPM_CACHE_CELL_HH

#include <atomic>
#include <cstdint>

namespace ppm::cache {

/** Slots per cell: six value words fit a 64-byte line. */
inline constexpr unsigned kCellSlots = 6;

/** Cells probed per bucket group (4 adjacent lines = 24 slots). */
inline constexpr unsigned kGroupCells = 4;

/**
 * Value-word sentinels: quiet-NaN payloads no computation produces.
 * A computed double whose bit pattern collides with a sentinel is
 * canonicalised to kNanBits on insert (it stays a NaN).
 */
inline constexpr std::uint64_t kPendingBits = 0xFFF8'0000'5050'4D01ULL;
inline constexpr std::uint64_t kNanBits = 0x7FF8'0000'0000'0000ULL;

/** Pure meta-word packing helpers (unit-tested directly). */
namespace meta {

inline constexpr std::uint64_t kTagMask = 0x7F;
inline constexpr unsigned kOccShift = 42;
inline constexpr unsigned kRefShift = 48;
inline constexpr unsigned kDirtyShift = 54;

constexpr std::uint64_t
tag(std::uint64_t word, unsigned slot)
{
    return (word >> (7 * slot)) & kTagMask;
}

constexpr std::uint64_t
withTag(std::uint64_t word, unsigned slot, std::uint64_t tag7)
{
    const unsigned shift = 7 * slot;
    return (word & ~(kTagMask << shift)) |
           ((tag7 & kTagMask) << shift);
}

constexpr bool
occupied(std::uint64_t word, unsigned slot)
{
    return (word >> (kOccShift + slot)) & 1;
}

constexpr std::uint64_t occupiedBit(unsigned slot)
{
    return 1ULL << (kOccShift + slot);
}

constexpr bool
refSet(std::uint64_t word, unsigned slot)
{
    return (word >> (kRefShift + slot)) & 1;
}

constexpr std::uint64_t refBit(unsigned slot)
{
    return 1ULL << (kRefShift + slot);
}

constexpr bool
dirty(std::uint64_t word, unsigned slot)
{
    return (word >> (kDirtyShift + slot)) & 1;
}

constexpr std::uint64_t dirtyBit(unsigned slot)
{
    return 1ULL << (kDirtyShift + slot);
}

/** All per-slot bits of @p slot (tag + occupancy + ref + dirty). */
constexpr std::uint64_t
slotMask(unsigned slot)
{
    return (kTagMask << (7 * slot)) | occupiedBit(slot) |
           refBit(slot) | dirtyBit(slot);
}

} // namespace meta

struct alignas(64) Cell
{
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> meta{0};
    std::atomic<std::uint64_t> vals[kCellSlots];

    Cell()
    {
        for (auto &v : vals)
            v.store(0, std::memory_order_relaxed);
    }
};

static_assert(sizeof(Cell) == 64, "a cell must be one cache line");

} // namespace ppm::cache

#endif // PPM_CACHE_CELL_HH
