/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) used to
 * integrity-check wire-protocol frames and result-archive records.
 */

#ifndef PPM_UTIL_CRC32_HH
#define PPM_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace ppm::util {

/**
 * CRC-32 of @p size bytes at @p data, continuing from @p seed.
 * crc32(data, n) computed in pieces equals one whole-buffer call:
 * crc32(b, m, crc32(a, n)) == crc32(ab, n + m).
 */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

} // namespace ppm::util

#endif // PPM_UTIL_CRC32_HH
