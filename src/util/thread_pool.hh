/**
 * @file
 * Deterministic parallel execution: a small fixed-size thread pool and
 * the parallelFor / parallelMap helpers the experiment sweeps are built
 * on.
 *
 * Design contract (see DESIGN.md "Parallel execution & determinism"):
 * work items are independent, each item writes only its own output
 * slot, and anything stochastic derives a private RNG stream from
 * (base seed, item index) via math::Rng::stream(). Under that contract
 * results are bit-identical for every thread count and schedule, so
 * the pool is free to hand out indices dynamically for load balance.
 *
 * The global pool size is controlled by the PPM_THREADS environment
 * variable (default: hardware_concurrency). PPM_THREADS=1 is the
 * legacy serial path: every helper runs inline on the calling thread
 * and no worker threads are spawned.
 */

#ifndef PPM_UTIL_THREAD_POOL_HH
#define PPM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ppm::util {

/**
 * Fixed-size worker pool executing index-based jobs.
 *
 * One job at a time runs to completion per forEach() call; concurrent
 * forEach() calls from different threads queue FIFO. Calls made from
 * inside a pool task (nested submission) run inline on the calling
 * worker, so nesting can never deadlock the pool.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 means configuredThreads().
     *        A pool of size 1 spawns no workers and runs every job
     *        inline on the caller (the serial path).
     */
    explicit ThreadPool(unsigned num_threads = 0);

    /** Joins all workers. Must not race an in-flight forEach(). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured parallelism (including the calling thread). */
    unsigned size() const { return num_threads_; }

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     * The caller participates in the work. If any invocation throws,
     * the first exception is rethrown here and indices not yet started
     * are skipped.
     *
     * Workers claim contiguous index ranges of @p grain items per
     * mutex acquisition (chunked dispatch), so very fine-grained
     * sweeps do not serialize on the pool lock. grain 0 (the default)
     * picks ~8 chunks per worker; grain 1 is the legacy
     * one-index-per-claim behaviour. Chunking only changes which
     * worker runs which index — under the independence contract above
     * results are identical for every grain.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 std::size_t grain = 0);

    /** True while the current thread is executing a pool task. */
    static bool insideTask();

  private:
    struct Job;

    void workerLoop();
    void runJob(const std::shared_ptr<Job> &job);

    unsigned num_threads_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::vector<std::shared_ptr<Job>> queue_;
    bool stop_ = false;
};

/**
 * Thread count requested by the environment: PPM_THREADS if set to a
 * positive integer, else std::thread::hardware_concurrency() (min 1).
 */
unsigned configuredThreads();

/**
 * The process-wide pool used by the library's batched APIs. Created on
 * first use with configuredThreads() workers.
 */
ThreadPool &globalPool();

/**
 * Replace the global pool with one of @p num_threads workers (0 =
 * re-read the environment). Must not be called while parallel work is
 * in flight; intended for benches and tests that sweep thread counts.
 */
void setGlobalThreads(unsigned num_threads);

/** Run fn(i) for i in [0, n) on the global pool. */
template <typename Fn>
void
parallelFor(std::size_t n, Fn &&fn)
{
    globalPool().forEach(
        n, std::function<void(std::size_t)>(std::forward<Fn>(fn)));
}

/**
 * Map fn over @p items on the global pool, preserving order. The
 * result type must be default-constructible; fn must be safe to call
 * concurrently on distinct items.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn &&fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn &, const T &>>>
{
    using R = std::decay_t<std::invoke_result_t<Fn &, const T &>>;
    std::vector<R> out(items.size());
    globalPool().forEach(items.size(), [&](std::size_t i) {
        out[i] = fn(items[i]);
    });
    return out;
}

} // namespace ppm::util

#endif // PPM_UTIL_THREAD_POOL_HH
