#include "util/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "obs/trace_span.hh"

namespace ppm::util {

namespace {

/** Set while the current thread runs a pool task (nesting guard). */
thread_local bool t_inside_task = false;

} // namespace

/**
 * One forEach() invocation. Indices are handed out under the pool
 * mutex; completion is signalled through done_cv once the last active
 * runner finishes.
 */
struct ThreadPool::Job
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;
    /** Submitter's trace context, re-installed in each runner so
     * spans inside tasks join the submitting request's trace. */
    obs::TraceContext trace;
    std::size_t grain = 1;  //!< indices claimed per mutex acquisition
    std::size_t next = 0;   //!< first index not yet claimed
    std::size_t active = 0; //!< runners currently inside fn
    std::exception_ptr error;
    std::condition_variable done_cv;

    /** No more indices will be dispatched (guarded by pool mutex). */
    bool
    exhausted() const
    {
        return error || next >= n;
    }

    /** All dispatched indices have finished (guarded by pool mutex). */
    bool
    finished() const
    {
        return exhausted() && active == 0;
    }
};

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(num_threads == 0 ? configuredThreads() : num_threads)
{
    if (num_threads_ < 2)
        return; // serial pool: no workers, forEach runs inline
    workers_.reserve(num_threads_);
    for (unsigned t = 0; t < num_threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

bool
ThreadPool::insideTask()
{
    return t_inside_task;
}

void
ThreadPool::forEach(std::size_t n,
                    const std::function<void(std::size_t)> &fn,
                    std::size_t grain)
{
    if (n == 0)
        return;
    OBS_SPAN("pool.forEach");
    OBS_STATIC_COUNTER(items_dispatched, "pool.items");
    OBS_ADD(items_dispatched, n);
    // Serial pool, single item, or nested submission from inside a
    // task: run inline. Exceptions propagate naturally.
    if (workers_.empty() || n == 1 || t_inside_task) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;
    job->trace = obs::currentTraceContext();
    // Auto grain: ~8 chunks per worker balances dispatch overhead
    // against load-balancing slack for uneven item costs.
    job->grain = grain != 0
                     ? grain
                     : std::max<std::size_t>(1, n / (num_threads_ * 8));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(job);
    }
    work_cv_.notify_all();

    // The caller works too, then waits for stragglers.
    runJob(job);
    std::unique_lock<std::mutex> lock(mutex_);
    job->done_cv.wait(lock, [&] { return job->finished(); });
    const auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end())
        queue_.erase(it);
    if (job->error)
        std::rethrow_exception(job->error);
}

void
ThreadPool::runJob(const std::shared_ptr<Job> &job)
{
    for (;;) {
        std::size_t begin, end;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (job->exhausted())
                return;
            begin = job->next;
            end = std::min(job->n, begin + job->grain);
            job->next = end;
            ++job->active;
        }
        std::exception_ptr error;
        t_inside_task = true;
        {
            obs::ScopedTraceContext trace_scope(job->trace);
            try {
                for (std::size_t i = begin; i < end; ++i)
                    (*job->fn)(i);
            } catch (...) {
                error = std::current_exception();
            }
        }
        t_inside_task = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !job->error)
                job->error = error;
            --job->active;
            if (job->finished())
                job->done_cv.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] {
                if (stop_)
                    return true;
                // Only wake for jobs that still have work to hand out.
                return std::any_of(queue_.begin(), queue_.end(),
                                   [](const auto &j) {
                                       return !j->exhausted();
                                   });
            });
            if (stop_)
                return;
            for (const auto &queued : queue_)
                if (!queued->exhausted()) {
                    job = queued;
                    break;
                }
        }
        if (job)
            runJob(job);
    }
}

unsigned
configuredThreads()
{
    if (const char *env = std::getenv("PPM_THREADS")) {
        char *end = nullptr;
        const unsigned long value = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && value >= 1 && value <= 4096)
            return static_cast<unsigned>(value);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(configuredThreads());
    return *g_pool;
}

void
setGlobalThreads(unsigned num_threads)
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_pool = std::make_unique<ThreadPool>(num_threads);
}

} // namespace ppm::util
