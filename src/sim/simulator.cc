#include "sim/simulator.hh"

#include "sim/ooo_core.hh"

namespace ppm::sim {

SimStats
simulate(const trace::Trace &trace, const ProcessorConfig &config,
         const SimOptions &options)
{
    OooCore core(config, trace);
    return core.run(options.warmup_instructions);
}

SimStats
simulate(const trace::Trace &trace, const dspace::DesignSpace &space,
         const dspace::DesignPoint &point, const SimOptions &options)
{
    return simulate(trace,
                    ProcessorConfig::fromDesignPoint(space, point),
                    options);
}

} // namespace ppm::sim
