/**
 * @file
 * Set-associative cache tag store with true-LRU replacement and
 * write-back/write-allocate policy. Only tags are modeled (the
 * simulator is trace driven and needs timing, not data).
 */

#ifndef PPM_SIM_CACHE_HH
#define PPM_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace ppm::sim {

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty line was evicted; its address is victim_addr. */
    bool writeback = false;
    /** Line-aligned address of the evicted dirty line. */
    std::uint64_t victim_addr = 0;
};

/**
 * One level of cache.
 *
 * The set count is capacity / (line_size * assoc) and need not be a
 * power of two (validation design points carry arbitrary capacities),
 * so set indexing uses modulo rather than bit masking.
 */
class Cache
{
  public:
    /**
     * @param name Statistic label ("il1", "dl1", "l2").
     * @param size_bytes Total capacity (>= line_size * assoc).
     * @param assoc Ways per set.
     * @param line_size Line size in bytes (power of two).
     */
    Cache(std::string name, std::uint64_t size_bytes, int assoc,
          int line_size);

    /**
     * Access the line containing @p addr.
     *
     * On a miss the line is allocated (write-allocate); the LRU victim
     * is evicted and reported if dirty.
     *
     * @param addr Byte address.
     * @param is_write Marks the (possibly newly allocated) line dirty.
     */
    CacheAccessResult access(std::uint64_t addr, bool is_write);

    /** True iff the line containing @p addr is present (no update). */
    bool probe(std::uint64_t addr) const;

    /** Invalidate all lines and reset statistics. */
    void reset();

    const CacheStats &stats() const { return stats_; }
    const std::string &name() const { return name_; }
    std::uint64_t numSets() const { return num_sets_; }
    int assoc() const { return assoc_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; //!< last-use stamp; 0 = invalid slot
        bool valid = false;
        bool dirty = false;
    };

    std::string name_;
    int assoc_;
    int line_shift_;
    std::uint64_t num_sets_;
    std::vector<Line> lines_; //!< num_sets * assoc, set-major
    std::uint64_t use_counter_ = 0;
    CacheStats stats_;

    std::uint64_t setIndex(std::uint64_t line_addr) const;
};

} // namespace ppm::sim

#endif // PPM_SIM_CACHE_HH
