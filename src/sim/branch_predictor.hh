/**
 * @file
 * Branch direction and target prediction: a gshare direction predictor
 * (global history XOR PC indexing a table of 2-bit counters), a
 * set-associative branch target buffer, and a return address stack.
 */

#ifndef PPM_SIM_BRANCH_PREDICTOR_HH
#define PPM_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "trace/instruction.hh"

namespace ppm::sim {

/** Outcome of a fetch-time prediction for one branch. */
struct BranchPrediction
{
    bool taken = false;        //!< predicted direction
    bool target_known = false; //!< BTB/RAS supplied a target
    std::uint64_t target = 0;  //!< predicted target when known
    /** Fetch-time gshare table index (for the training update). */
    std::uint64_t gshare_index = 0;
    /** Global history as it was at fetch (for misprediction repair). */
    std::uint64_t fetch_history = 0;
};

/**
 * Combined direction/target predictor.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const ProcessorConfig &config);

    /**
     * Predict @p inst at fetch. Unconditional branches predict taken;
     * returns consult the RAS; calls push their return address.
     * Updates speculative state (history, RAS) immediately — adequate
     * for a trace-driven model fetching only correct-path instructions.
     */
    BranchPrediction predict(const trace::TraceInstruction &inst);

    /**
     * What the core must do about a branch after training.
     */
    struct Resolution
    {
        /** Full redirect: wrong direction, or an execute-time target. */
        bool mispredict = false;
        /** Right direction but the BTB had no target: decode bubble. */
        bool btb_bubble = false;
    };

    /**
     * Train with the actual outcome and record statistics.
     *
     * @param inst The branch.
     * @param prediction What predict() returned for it.
     */
    Resolution update(const trace::TraceInstruction &inst,
                      const BranchPrediction &prediction);

    const BranchStats &stats() const { return stats_; }

    /** Clear tables, history, RAS and statistics. */
    void reset();

  private:
    std::uint64_t gshareIndex(std::uint64_t pc) const;
    BranchPrediction predictTarget(const trace::TraceInstruction &inst);
    void btbInsert(std::uint64_t pc, std::uint64_t target);
    bool btbLookup(std::uint64_t pc, std::uint64_t &target) const;

    struct BtbEntry
    {
        std::uint64_t pc = 0;
        std::uint64_t target = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    int history_bits_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> counters_; //!< 2-bit saturating

    int btb_assoc_;
    std::uint64_t btb_sets_;
    std::vector<BtbEntry> btb_;
    std::uint64_t btb_use_ = 0;

    std::vector<std::uint64_t> ras_;
    std::size_t ras_limit_;

    BranchStats stats_;
};

} // namespace ppm::sim

#endif // PPM_SIM_BRANCH_PREDICTOR_HH
