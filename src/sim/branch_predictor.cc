#include "sim/branch_predictor.hh"

#include <cassert>

namespace ppm::sim {

using trace::OpClass;

BranchPredictor::BranchPredictor(const ProcessorConfig &config)
    : history_bits_(config.gshare_bits),
      btb_assoc_(config.btb_assoc),
      ras_limit_(static_cast<std::size_t>(config.ras_entries))
{
    counters_.assign(1ULL << history_bits_, 1); // weakly not-taken
    btb_sets_ = static_cast<std::uint64_t>(config.btb_entries /
                                           config.btb_assoc);
    assert(btb_sets_ > 0);
    btb_.assign(btb_sets_ * static_cast<std::uint64_t>(btb_assoc_),
                BtbEntry{});
}

std::uint64_t
BranchPredictor::gshareIndex(std::uint64_t pc) const
{
    const std::uint64_t mask = (1ULL << history_bits_) - 1;
    return ((pc >> 2) ^ history_) & mask;
}

bool
BranchPredictor::btbLookup(std::uint64_t pc, std::uint64_t &target) const
{
    const std::uint64_t set = (pc >> 2) % btb_sets_;
    const BtbEntry *base =
        &btb_[set * static_cast<std::uint64_t>(btb_assoc_)];
    for (int w = 0; w < btb_assoc_; ++w) {
        if (base[w].valid && base[w].pc == pc) {
            target = base[w].target;
            return true;
        }
    }
    return false;
}

void
BranchPredictor::btbInsert(std::uint64_t pc, std::uint64_t target)
{
    const std::uint64_t set = (pc >> 2) % btb_sets_;
    BtbEntry *base = &btb_[set * static_cast<std::uint64_t>(btb_assoc_)];
    BtbEntry *victim = base;
    for (int w = 0; w < btb_assoc_; ++w) {
        BtbEntry &e = base[w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lru = ++btb_use_;
            return;
        }
        if (!e.valid) {
            if (victim->valid || e.lru < victim->lru)
                victim = &e;
        } else if (victim->valid && e.lru < victim->lru) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lru = ++btb_use_;
}

BranchPrediction
BranchPredictor::predictTarget(const trace::TraceInstruction &inst)
{
    BranchPrediction pred;
    if (inst.op == OpClass::BranchRet) {
        if (!ras_.empty()) {
            pred.target = ras_.back();
            pred.target_known = true;
            ras_.pop_back();
        }
        return pred;
    }
    std::uint64_t target = 0;
    if (btbLookup(inst.pc, target)) {
        pred.target = target;
        pred.target_known = true;
    }
    return pred;
}

BranchPrediction
BranchPredictor::predict(const trace::TraceInstruction &inst)
{
    assert(inst.isBr());
    BranchPrediction pred = predictTarget(inst);

    if (inst.op == OpClass::BranchCall) {
        // Push the fall-through (call PC + 4) for the matching return.
        if (ras_.size() == ras_limit_)
            ras_.erase(ras_.begin());
        ras_.push_back(inst.pc + 4);
    }

    if (inst.op == OpClass::BranchCond) {
        pred.gshare_index = gshareIndex(inst.pc);
        pred.fetch_history = history_;
        const std::uint8_t counter = counters_[pred.gshare_index];
        pred.taken = counter >= 2;
        // Speculative history update with the prediction; update()
        // repairs it from fetch_history on a misprediction.
        history_ = ((history_ << 1) |
                    (pred.taken ? 1ULL : 0ULL)) &
            ((1ULL << history_bits_) - 1);
    } else {
        pred.taken = true;
    }
    return pred;
}

BranchPredictor::Resolution
BranchPredictor::update(const trace::TraceInstruction &inst,
                        const BranchPrediction &prediction)
{
    assert(inst.isBr());
    ++stats_.branches;

    Resolution res;
    bool mispredict = false;
    if (inst.op == OpClass::BranchCond) {
        ++stats_.cond_branches;
        const std::uint64_t mask = (1ULL << history_bits_) - 1;
        std::uint8_t &counter = counters_[prediction.gshare_index];
        if (inst.taken) {
            if (counter < 3)
                ++counter;
        } else if (counter > 0) {
            --counter;
        }
        if (prediction.taken != inst.taken) {
            mispredict = true;
            // Repair the speculative history with the real outcome.
            history_ = ((prediction.fetch_history << 1) |
                        (inst.taken ? 1ULL : 0ULL)) & mask;
        }
    }

    // Taken control flow needs a target at fetch; a wrong or unknown
    // target from BTB/RAS means the redirect resolves at execute.
    if (inst.taken && !mispredict) {
        const bool target_ok = prediction.target_known &&
            prediction.target == inst.branch_target;
        if (!target_ok && inst.op == OpClass::BranchRet) {
            mispredict = true; // returns resolve through the RAS only
        } else if (!target_ok && !prediction.target_known) {
            ++stats_.btb_bubbles; // decode-time target computation
            res.btb_bubble = true;
        } else if (!target_ok) {
            mispredict = true; // stale BTB target: full redirect
        }
    }

    if (inst.op != OpClass::BranchRet)
        btbInsert(inst.pc, inst.branch_target);
    if (mispredict)
        ++stats_.mispredicts;
    res.mispredict = mispredict;
    return res;
}

void
BranchPredictor::reset()
{
    counters_.assign(counters_.size(), 1);
    for (auto &e : btb_)
        e = BtbEntry{};
    btb_use_ = 0;
    history_ = 0;
    ras_.clear();
    stats_ = BranchStats{};
}

} // namespace ppm::sim
