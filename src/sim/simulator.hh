/**
 * @file
 * Simulation facade: run a trace on a configuration and get CPI plus
 * component statistics. This is the "detailed, cycle accurate
 * simulation" step of the paper's model-building procedure.
 */

#ifndef PPM_SIM_SIMULATOR_HH
#define PPM_SIM_SIMULATOR_HH

#include "dspace/design_space.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace ppm::sim {

/** Options controlling one simulation. */
struct SimOptions
{
    /**
     * Instructions executed before statistics counting starts (warms
     * caches and predictors). Capped at half the trace.
     */
    std::uint64_t warmup_instructions = 20000;
};

/**
 * Simulate @p trace on @p config.
 *
 * @return Statistics over the measured (post-warmup) region.
 * @throws std::invalid_argument for invalid configurations.
 */
SimStats simulate(const trace::Trace &trace,
                  const ProcessorConfig &config,
                  const SimOptions &options = {});

/**
 * Convenience overload: configuration from a design point of the
 * paper's 9-parameter space.
 */
SimStats simulate(const trace::Trace &trace,
                  const dspace::DesignSpace &space,
                  const dspace::DesignPoint &point,
                  const SimOptions &options = {});

} // namespace ppm::sim

#endif // PPM_SIM_SIMULATOR_HH
