#include "sim/cache.hh"

#include <cassert>
#include <stdexcept>

namespace ppm::sim {

namespace {

int
log2Exact(int v)
{
    int shift = 0;
    while ((1 << shift) < v)
        ++shift;
    if ((1 << shift) != v)
        throw std::invalid_argument("Cache: line size not a power of 2");
    return shift;
}

} // namespace

Cache::Cache(std::string name, std::uint64_t size_bytes, int assoc,
             int line_size)
    : name_(std::move(name)), assoc_(assoc),
      line_shift_(log2Exact(line_size))
{
    if (assoc_ < 1)
        throw std::invalid_argument("Cache: assoc must be >= 1");
    const std::uint64_t line_bytes = static_cast<std::uint64_t>(
        line_size);
    num_sets_ = size_bytes / (line_bytes * static_cast<std::uint64_t>(
        assoc_));
    if (num_sets_ == 0)
        throw std::invalid_argument(
            "Cache: capacity below one set (" + name_ + ")");
    lines_.assign(num_sets_ * static_cast<std::uint64_t>(assoc_),
                  Line{});
}

std::uint64_t
Cache::setIndex(std::uint64_t line_addr) const
{
    return line_addr % num_sets_;
}

CacheAccessResult
Cache::access(std::uint64_t addr, bool is_write)
{
    ++stats_.accesses;
    const std::uint64_t line_addr = addr >> line_shift_;
    const std::uint64_t set = setIndex(line_addr);
    Line *base = &lines_[set * static_cast<std::uint64_t>(assoc_)];

    CacheAccessResult result;
    Line *victim = base;
    for (int w = 0; w < assoc_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == line_addr) {
            line.lru = ++use_counter_;
            line.dirty = line.dirty || is_write;
            result.hit = true;
            return result;
        }
        // Track LRU (or first invalid) candidate for replacement.
        if (!line.valid) {
            if (victim->valid || line.lru < victim->lru)
                victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++stats_.misses;
    if (victim->valid && victim->dirty) {
        ++stats_.writebacks;
        result.writeback = true;
        result.victim_addr = victim->tag << line_shift_;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->lru = ++use_counter_;
    victim->dirty = is_write;
    return result;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t line_addr = addr >> line_shift_;
    const std::uint64_t set = setIndex(line_addr);
    const Line *base = &lines_[set * static_cast<std::uint64_t>(assoc_)];
    for (int w = 0; w < assoc_; ++w)
        if (base[w].valid && base[w].tag == line_addr)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    use_counter_ = 0;
    stats_ = CacheStats{};
}

} // namespace ppm::sim
