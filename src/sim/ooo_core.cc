#include "sim/ooo_core.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ppm::sim {

using trace::OpClass;
using trace::kNoReg;

namespace {

int
log2Floor(int v)
{
    int shift = 0;
    while ((1 << (shift + 1)) <= v)
        ++shift;
    return shift;
}

/** Forwarding granularity: stores forward to loads within 8 bytes. */
constexpr int kForwardShift = 3;

} // namespace

OooCore::OooCore(const ProcessorConfig &config, const trace::Trace &trace)
    : config_(config), trace_(trace), memory_(config),
      predictor_(config), fus_(config)
{
    config_.validate();
    rob_size_ = config_.rob_size;
    rob_.assign(static_cast<std::size_t>(rob_size_), RobEntry{});
    fetch_queue_capacity_ = static_cast<std::size_t>(
        (config_.frontEndDepth() + 1) * config_.fetch_width);
    waiting_.reserve(static_cast<std::size_t>(config_.iq_size));
    for (std::size_t r = 0; r < trace::kNumArchRegs; ++r) {
        reg_writer_[r] = kNoProducer;
        reg_writer_seq_[r] = 0;
    }
}

bool
OooCore::operandReady(const RobEntry &entry, int which) const
{
    const int slot = entry.producer[which];
    if (slot == kNoProducer)
        return true;
    const RobEntry &producer = rob_[static_cast<std::size_t>(slot)];
    if (producer.seq != entry.producer_seq[which])
        return true; // producer already committed; value in the file
    return producer.issued && producer.completion <= now_;
}

void
OooCore::doFetch()
{
    if (fetch_seq_ >= trace_.size() || fetch_blocked_on_branch_)
        return;
    if (now_ < fetch_stall_until_)
        return;

    const int line_shift = log2Floor(config_.line_size);
    int fetched = 0;
    while (fetched < config_.fetch_width &&
           fetch_queue_.size() < fetch_queue_capacity_ &&
           fetch_seq_ < trace_.size()) {
        const trace::TraceInstruction &inst = trace_[fetch_seq_];
        Tick base = now_;
        bool line_missed = false;

        const std::uint64_t line = inst.pc >> line_shift;
        if (line != last_fetch_line_) {
            const Tick ready = memory_.fetchInstruction(inst.pc, now_);
            last_fetch_line_ = line;
            if (ready > now_ + static_cast<Tick>(config_.il1_lat)) {
                // IL1 miss: this group completes when the line lands.
                base = ready;
                fetch_stall_until_ = ready;
                line_missed = true;
            }
        }

        FetchedInst fetched_inst;
        fetched_inst.seq = fetch_seq_;
        fetched_inst.dispatch_ready =
            base + static_cast<Tick>(config_.frontEndDepth());

        bool break_group = line_missed;
        if (inst.isBr()) {
            const BranchPrediction pred = predictor_.predict(inst);
            const auto res = predictor_.update(inst, pred);
            if (res.mispredict) {
                fetched_inst.mispredicted = true;
                fetch_blocked_on_branch_ = true;
                blocking_branch_seq_ = fetch_seq_;
                break_group = true;
            } else if (res.btb_bubble) {
                fetch_stall_until_ = std::max(
                    fetch_stall_until_,
                    base + static_cast<Tick>(config_.btb_miss_penalty));
                break_group = true;
            } else if (inst.taken) {
                // Fetch groups end at taken branches.
                break_group = true;
            }
        }

        fetch_queue_.push_back(fetched_inst);
        ++fetch_seq_;
        ++fetched;
        progress_ = true;
        if (break_group)
            break;
    }
}

void
OooCore::doDispatch()
{
    int dispatched = 0;
    while (dispatched < config_.fetch_width && !fetch_queue_.empty()) {
        const FetchedInst &f = fetch_queue_.front();
        if (f.dispatch_ready > now_) {
            if (dispatched == 0)
                ++stats_.fetch_empty_stalls;
            return;
        }
        const trace::TraceInstruction &inst = trace_[f.seq];

        if (rob_count_ == rob_size_) {
            if (dispatched == 0)
                ++stats_.rob_full_stalls;
            return;
        }
        if (iq_count_ >= config_.iq_size) {
            if (dispatched == 0)
                ++stats_.iq_full_stalls;
            return;
        }
        if (inst.isMem() && lsq_count_ >= config_.lsq_size) {
            if (dispatched == 0)
                ++stats_.lsq_full_stalls;
            return;
        }

        const int slot = rob_tail_;
        RobEntry &entry = rob_[static_cast<std::size_t>(slot)];
        entry = RobEntry{};
        entry.seq = f.seq;
        entry.op = inst.op;
        entry.mem_addr = inst.mem_addr;
        entry.earliest_issue = now_ + 1;
        entry.is_mispredicted_branch = f.mispredicted;

        for (int k = 0; k < 2; ++k) {
            const trace::RegId reg = inst.src[k];
            if (reg == kNoReg)
                continue;
            const int w = reg_writer_[reg];
            if (w == kNoProducer)
                continue;
            const RobEntry &producer =
                rob_[static_cast<std::size_t>(w)];
            if (producer.seq == reg_writer_seq_[reg] &&
                producer.seq != entry.seq) {
                entry.producer[k] = w;
                entry.producer_seq[k] = producer.seq;
            }
        }
        if (inst.dest != kNoReg) {
            reg_writer_[inst.dest] = slot;
            reg_writer_seq_[inst.dest] = f.seq;
        }

        rob_tail_ = robNext(rob_tail_);
        ++rob_count_;
        ++iq_count_;
        waiting_.push_back(slot);
        if (inst.isMem()) {
            lsq_.push_back(slot);
            ++lsq_count_;
        }
        fetch_queue_.pop_front();
        ++dispatched;
        progress_ = true;
    }
}

Tick
OooCore::loadCompletion(int slot)
{
    // Search the youngest older store to the same 8-byte word.
    const RobEntry &load = rob_[static_cast<std::size_t>(slot)];
    const std::uint64_t word = load.mem_addr >> kForwardShift;
    int match = kNoProducer;
    for (int s : lsq_) {
        if (s == slot)
            break;
        const RobEntry &e = rob_[static_cast<std::size_t>(s)];
        if (e.op == OpClass::Store &&
            (e.mem_addr >> kForwardShift) == word) {
            match = s;
        }
    }
    if (match != kNoProducer) {
        const RobEntry &store = rob_[static_cast<std::size_t>(match)];
        if (!store.issued)
            return kNever; // must wait for the store to execute
        return std::max(now_, store.completion) + 1; // forwarding
    }
    return memory_.load(load.mem_addr, now_);
}

bool
OooCore::tryIssueEntry(int slot)
{
    RobEntry &entry = rob_[static_cast<std::size_t>(slot)];
    if (entry.earliest_issue > now_)
        return false;
    if (!operandReady(entry, 0) || !operandReady(entry, 1))
        return false;

    // Loads blocked behind an unexecuted same-address store must not
    // claim a cache port.
    if (entry.op == OpClass::Load) {
        const std::uint64_t word = entry.mem_addr >> kForwardShift;
        for (int s : lsq_) {
            if (s == slot)
                break;
            const RobEntry &e = rob_[static_cast<std::size_t>(s)];
            if (e.op == OpClass::Store && !e.issued &&
                (e.mem_addr >> kForwardShift) == word) {
                return false;
            }
        }
    }

    if (!fus_.tryIssue(entry.op, now_)) {
        fu_retry_ = std::min(fu_retry_, fus_.nextFree(entry.op, now_));
        return false;
    }

    entry.issued = true;
    switch (entry.op) {
      case OpClass::Load:
        entry.completion = loadCompletion(slot);
        assert(entry.completion != kNever);
        break;
      case OpClass::Store:
        entry.completion = now_ + 1; // address/data into the LSQ
        break;
      default:
        entry.completion =
            now_ + static_cast<Tick>(fus_.latency(entry.op));
        break;
    }

    if (entry.is_mispredicted_branch) {
        // Redirect: fetch restarts when the branch executes.
        assert(fetch_blocked_on_branch_ &&
               blocking_branch_seq_ == entry.seq);
        fetch_blocked_on_branch_ = false;
        fetch_stall_until_ = entry.completion;
        // The next fetch group starts at a new line.
        last_fetch_line_ = ~0ULL;
    }
    return true;
}

void
OooCore::doIssue()
{
    fu_retry_ = kNever;
    int issued = 0;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
        const int slot = waiting_[i];
        if (issued < config_.issue_width && tryIssueEntry(slot)) {
            ++issued;
            --iq_count_;
            progress_ = true;
            continue;
        }
        waiting_[kept++] = slot;
    }
    waiting_.resize(kept);
}

void
OooCore::doCommit()
{
    int done = 0;
    while (done < config_.commit_width && rob_count_ > 0) {
        RobEntry &entry = rob_[static_cast<std::size_t>(rob_head_)];
        if (!entry.issued || entry.completion > now_)
            return;
        if (entry.op == OpClass::Store)
            (void)memory_.store(entry.mem_addr, now_);
        if (entry.op == OpClass::Load || entry.op == OpClass::Store) {
            assert(!lsq_.empty() && lsq_.front() == rob_head_);
            lsq_.pop_front();
            --lsq_count_;
        }
        rob_head_ = robNext(rob_head_);
        --rob_count_;
        ++committed_;
        ++done;
        progress_ = true;
    }
}

Tick
OooCore::nextEventTime() const
{
    Tick t = kNever;
    // Fetch resumption.
    if (!fetch_blocked_on_branch_ && fetch_seq_ < trace_.size() &&
        fetch_queue_.size() < fetch_queue_capacity_) {
        t = std::min(t, std::max(fetch_stall_until_, now_ + 1));
    }
    // Front-end arrival of the next dispatchable instruction.
    if (!fetch_queue_.empty())
        t = std::min(t, fetch_queue_.front().dispatch_ready);
    // Commit of the ROB head.
    if (rob_count_ > 0) {
        const RobEntry &head =
            rob_[static_cast<std::size_t>(rob_head_)];
        if (head.issued)
            t = std::min(t, head.completion);
    }
    // Wakeups of waiting instructions.
    for (int slot : waiting_) {
        const RobEntry &entry = rob_[static_cast<std::size_t>(slot)];
        Tick ready = entry.earliest_issue;
        bool known = true;
        for (int k = 0; k < 2 && known; ++k) {
            const int w = entry.producer[k];
            if (w == kNoProducer)
                continue;
            const RobEntry &producer =
                rob_[static_cast<std::size_t>(w)];
            if (producer.seq != entry.producer_seq[k])
                continue;
            if (!producer.issued)
                known = false; // depends on a not-yet-issued op
            else
                ready = std::max(ready, producer.completion);
        }
        if (known)
            t = std::min(t, ready);
    }
    // Functional unit becoming free for a blocked instruction.
    t = std::min(t, fu_retry_);
    return t;
}

SimStats
OooCore::run(std::uint64_t warmup_instructions)
{
    const std::uint64_t total = trace_.size();
    warmup_instructions = std::min(warmup_instructions, total / 2);
    bool warm = warmup_instructions == 0;

    // Generous bound: no modeled configuration sustains CPI > ~200.
    const Tick limit = 500 * static_cast<Tick>(total) + 1000000;

    while (committed_ < total) {
        progress_ = false;
        doCommit();
        doIssue();
        doDispatch();
        doFetch();

        if (!warm && committed_ >= warmup_instructions) {
            warm = true;
            stat_cycle_base_ = now_;
            stat_inst_base_ = committed_;
        }
        if (committed_ >= total)
            break;

        if (progress_) {
            ++now_;
        } else {
            const Tick next = nextEventTime();
            now_ = std::max(now_ + 1, next == kNever ? now_ + 1 : next);
        }
        if (now_ > limit)
            throw std::runtime_error(
                "OooCore: simulation exceeded cycle bound (deadlock?)");
    }

    stats_.cycles = now_ - stat_cycle_base_;
    stats_.instructions = committed_ - stat_inst_base_;
    stats_.il1 = memory_.il1().stats();
    stats_.dl1 = memory_.dl1().stats();
    stats_.l2 = memory_.l2().stats();
    stats_.branch = predictor_.stats();
    stats_.memory = memory_.controller().stats();
    return stats_;
}

} // namespace ppm::sim
