#include "sim/memory_controller.hh"

#include <algorithm>

namespace ppm::sim {

MemoryController::MemoryController(const ProcessorConfig &config)
    : dram_(config), overhead_(config.memctrl_overhead),
      burst_cycles_(config.bus_burst_cycles)
{
}

Tick
MemoryController::transfer(std::uint64_t addr, Tick at)
{
    // Controller pipeline, then the bank, then the shared bus.
    const Tick ready = dram_.access(addr, at + overhead_);
    const Tick bus_start = std::max(ready, bus_free_);
    bus_free_ = bus_start + static_cast<Tick>(burst_cycles_);
    return bus_free_;
}

Tick
MemoryController::read(std::uint64_t addr, Tick at)
{
    return transfer(addr, at);
}

void
MemoryController::writeback(std::uint64_t addr, Tick at)
{
    ++writebacks_;
    (void)transfer(addr, at);
}

void
MemoryController::reset()
{
    dram_.reset();
    bus_free_ = 0;
    writebacks_ = 0;
}

} // namespace ppm::sim
