#include "sim/power.hh"

#include <cmath>

namespace ppm::sim {

double
PowerReport::total() const
{
    return fetch + window + execute + dcache + l2 + memory + leakage;
}

double
PowerReport::epi(const SimStats &stats) const
{
    return stats.instructions
        ? total() / static_cast<double>(stats.instructions) : 0.0;
}

double
PowerReport::ed2p(const SimStats &stats) const
{
    const double cpi = stats.cpi();
    return epi(stats) * cpi * cpi;
}

double
cacheAccessEnergy(int size_kb, const PowerParams &params)
{
    // Bitline/wordline energy grows roughly with the square root of
    // capacity for a banked SRAM array.
    return params.cache_access_base *
        std::sqrt(static_cast<double>(size_kb));
}

PowerReport
computePower(const ProcessorConfig &config, const SimStats &stats,
             const PowerParams &params)
{
    PowerReport r;
    const double insts = static_cast<double>(stats.instructions);
    const double cycles = static_cast<double>(stats.cycles);

    // Front end: IL1 reads plus per-instruction pipeline energy that
    // grows with the front-end depth (more latches and stages).
    r.fetch = cacheAccessEnergy(config.il1_size_kb, params) *
            static_cast<double>(stats.il1.accesses) +
        insts * (params.frontend_per_inst +
                 params.frontend_per_stage *
                     static_cast<double>(config.frontEndDepth()));

    // Out-of-order window: CAM/RAM energy proportional to structure
    // sizes. Every instruction passes the ROB and IQ; memory ops
    // search the LSQ.
    const double mem_ops = static_cast<double>(stats.dl1.accesses);
    r.window = insts * params.rob_per_entry *
            static_cast<double>(config.rob_size) +
        insts * params.iq_per_entry *
            static_cast<double>(config.iq_size) +
        mem_ops * params.lsq_per_entry *
            static_cast<double>(config.lsq_size);

    // Execution: one integer-op-equivalent per instruction plus the
    // branch predictor.
    r.execute = insts * params.int_op +
        static_cast<double>(stats.branch.branches) *
            params.bpred_access;

    // Memory hierarchy.
    r.dcache = cacheAccessEnergy(config.dl1_size_kb, params) *
        static_cast<double>(stats.dl1.accesses);
    r.l2 = cacheAccessEnergy(config.l2_size_kb, params) *
        static_cast<double>(stats.l2.accesses);
    const double dram_events =
        static_cast<double>(stats.memory.requests) +
        static_cast<double>(stats.memory.writebacks);
    r.memory = dram_events * (params.dram_access + params.bus_transfer);

    // Leakage: all sized SRAM structures, every cycle.
    const double sram_kb =
        static_cast<double>(config.il1_size_kb + config.dl1_size_kb +
                            config.l2_size_kb) +
        // Window structures: ~16B per entry.
        static_cast<double>(config.rob_size + config.iq_size +
                            config.lsq_size) * 16.0 / 1024.0;
    r.leakage = cycles * sram_kb * params.leakage_per_kb_cycle;

    return r;
}

} // namespace ppm::sim
