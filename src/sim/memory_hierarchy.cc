#include "sim/memory_hierarchy.hh"

namespace ppm::sim {

MemoryHierarchy::MemoryHierarchy(const ProcessorConfig &config)
    : config_(config),
      il1_("il1",
           static_cast<std::uint64_t>(config.il1_size_kb) * 1024,
           config.il1_assoc, config.line_size),
      dl1_("dl1",
           static_cast<std::uint64_t>(config.dl1_size_kb) * 1024,
           config.dl1_assoc, config.line_size),
      l2_("l2", static_cast<std::uint64_t>(config.l2_size_kb) * 1024,
          config.l2_assoc, config.line_size),
      memctrl_(config)
{
}

Tick
MemoryHierarchy::accessL2(std::uint64_t addr, Tick at, bool is_write)
{
    const CacheAccessResult res = l2_.access(addr, is_write);
    const Tick lookup_done = at + static_cast<Tick>(config_.l2_lat);
    if (res.hit)
        return lookup_done;
    // Dirty victim goes to memory; it shares the bank/bus resources
    // with the demand fill but the core never waits on it.
    if (res.writeback)
        memctrl_.writeback(res.victim_addr, lookup_done);
    return memctrl_.read(addr, lookup_done);
}

Tick
MemoryHierarchy::fetchInstruction(std::uint64_t pc, Tick at)
{
    const CacheAccessResult res = il1_.access(pc, false);
    const Tick l1_done = at + static_cast<Tick>(config_.il1_lat);
    if (res.hit)
        return l1_done;
    // Instruction lines are never dirty; no writeback possible.
    return accessL2(pc, l1_done, false);
}

Tick
MemoryHierarchy::load(std::uint64_t addr, Tick at)
{
    const CacheAccessResult res = dl1_.access(addr, false);
    const Tick l1_done = at + static_cast<Tick>(config_.dl1_lat);
    if (res.hit)
        return l1_done;
    // A dirty victim drains through a victim buffer: it occupies L2
    // (and possibly DRAM) bandwidth but does not block the demand.
    if (res.writeback)
        (void)accessL2(res.victim_addr, l1_done, true);
    return accessL2(addr, l1_done, false);
}

Tick
MemoryHierarchy::store(std::uint64_t addr, Tick at)
{
    const CacheAccessResult res = dl1_.access(addr, true);
    const Tick l1_done = at + static_cast<Tick>(config_.dl1_lat);
    if (res.hit)
        return l1_done;
    if (res.writeback)
        (void)accessL2(res.victim_addr, l1_done, true);
    return accessL2(addr, l1_done, false);
}

void
MemoryHierarchy::reset()
{
    il1_.reset();
    dl1_.reset();
    l2_.reset();
    memctrl_.reset();
}

} // namespace ppm::sim
