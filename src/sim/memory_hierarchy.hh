/**
 * @file
 * The full memory hierarchy: split L1s over a unified write-back L2
 * over the memory controller/DRAM. Exposes completion-time queries the
 * core uses to schedule instruction fetch, loads, and committed
 * stores.
 */

#ifndef PPM_SIM_MEMORY_HIERARCHY_HH
#define PPM_SIM_MEMORY_HIERARCHY_HH

#include "sim/cache.hh"
#include "sim/memory_controller.hh"

namespace ppm::sim {

/**
 * Two-level cache hierarchy with DRAM behind it.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const ProcessorConfig &config);

    /**
     * Instruction fetch of the line containing @p pc.
     * @return Cycle at which the fetch group is available.
     */
    Tick fetchInstruction(std::uint64_t pc, Tick at);

    /**
     * Data load.
     * @return Cycle at which the loaded value is available.
     */
    Tick load(std::uint64_t addr, Tick at);

    /**
     * Data store performed at commit. Write-allocate: a missing line
     * is fetched; the core does not wait, but the traffic occupies
     * the L2/DRAM.
     * @return Cycle at which the line is owned (for statistics only).
     */
    Tick store(std::uint64_t addr, Tick at);

    const Cache &il1() const { return il1_; }
    const Cache &dl1() const { return dl1_; }
    const Cache &l2() const { return l2_; }
    const MemoryController &controller() const { return memctrl_; }

    void reset();

  private:
    /** L2 lookup + fill from DRAM on miss; returns data-ready time. */
    Tick accessL2(std::uint64_t addr, Tick at, bool is_write);

    ProcessorConfig config_;
    Cache il1_;
    Cache dl1_;
    Cache l2_;
    MemoryController memctrl_;
};

} // namespace ppm::sim

#endif // PPM_SIM_MEMORY_HIERARCHY_HH
