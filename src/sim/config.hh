/**
 * @file
 * Processor configuration: the paper's nine design parameters plus the
 * fixed machine parameters (widths, associativities, DRAM timing) held
 * constant across the design space, with conversion from a DesignPoint
 * of the paper's design space.
 */

#ifndef PPM_SIM_CONFIG_HH
#define PPM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "dspace/design_space.hh"

namespace ppm::sim {

/**
 * Full configuration of the modeled superscalar processor.
 *
 * The first block holds the paper's Table 1 design parameters; the
 * rest are fixed at values typical of the paper's era (4-wide core,
 * 64B lines, gshare predictor, DDR-style memory behind a shared bus).
 */
struct ProcessorConfig
{
    // --- design parameters (paper Table 1) -------------------------
    int pipe_depth = 14;   //!< total pipeline stages, 7-24
    int rob_size = 64;     //!< reorder buffer entries, 24-128
    int iq_size = 32;      //!< issue queue entries (frac * ROB)
    int lsq_size = 32;     //!< load/store queue entries (frac * ROB)
    int l2_size_kb = 1024; //!< unified L2 capacity, 256-8192 KB
    int l2_lat = 12;       //!< L2 hit latency, 5-20 cycles
    int il1_size_kb = 32;  //!< L1 I-cache capacity, 8-64 KB
    int dl1_size_kb = 32;  //!< L1 D-cache capacity, 8-64 KB
    int dl1_lat = 2;       //!< L1 D-cache hit latency, 1-4 cycles

    // --- fixed core parameters --------------------------------------
    int fetch_width = 4;   //!< instructions fetched per cycle
    int issue_width = 4;   //!< instructions issued per cycle
    int commit_width = 4;  //!< instructions committed per cycle
    int il1_lat = 1;       //!< IL1 hit latency (pipelined into fetch)
    /**
     * Back-end stages (issue/execute/writeback/commit) included in
     * pipe_depth; the front end gets pipe_depth - backend_stages
     * stages, which sets the misprediction refill time.
     */
    int backend_stages = 5;

    // --- fixed functional unit pool ----------------------------------
    int num_int_alu = 4;   //!< single-cycle integer units
    int num_int_mul = 1;   //!< integer multiply/divide unit
    int num_fp_units = 2;  //!< FP add/mul pipelines
    int num_mem_ports = 2; //!< cache ports (loads+stores issued/cycle)

    // --- fixed cache geometry ---------------------------------------
    int line_size = 64;    //!< bytes per cache line
    int il1_assoc = 2;
    int dl1_assoc = 2;
    int l2_assoc = 8;

    // --- fixed branch predictor --------------------------------------
    int gshare_bits = 12;     //!< history/index bits (4K counters)
    int btb_entries = 1024;   //!< BTB entries (4-way)
    int btb_assoc = 4;
    int ras_entries = 16;     //!< return address stack depth
    /** Fetch bubble when direction is right but the BTB misses. */
    int btb_miss_penalty = 3;

    // --- fixed memory system -----------------------------------------
    int dram_banks = 8;
    int dram_tcas = 30;        //!< column access, CPU cycles
    int dram_trcd = 30;        //!< row activate
    int dram_trp = 30;         //!< precharge
    int dram_row_bytes = 8192; //!< open-row size per bank
    int bus_burst_cycles = 16; //!< bus occupancy per line transfer
    int memctrl_overhead = 20; //!< fixed controller pipeline latency

    /** Front-end depth derived from pipe_depth (>= 1). */
    int frontEndDepth() const;

    /**
     * Throws std::invalid_argument when any field is out of its
     * supported range (non-positive sizes, widths, latencies, or
     * non-power-of-two geometry where required).
     */
    void validate() const;

    /** One-line summary of the nine design parameters. */
    std::string toString() const;

    /**
     * Build a configuration from a design point of the paper space
     * (paperTrainSpace()/paperTestSpace() parameter order): converts
     * IQ/LSQ fractions into entry counts (rounded, >= 8).
     *
     * @param space The design space describing the point layout.
     * @param point Raw design point.
     */
    static ProcessorConfig fromDesignPoint(
        const dspace::DesignSpace &space,
        const dspace::DesignPoint &point);
};

} // namespace ppm::sim

#endif // PPM_SIM_CONFIG_HH
