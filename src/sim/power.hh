/**
 * @file
 * Activity-based energy model (Wattch-style), implementing the
 * paper's proposed extension: "similar models can be developed for
 * other metrics such as power consumption" (Sec 6).
 *
 * Dynamic energy is event counts times per-event energies that scale
 * with the sized structures (caches as capacity^0.5 for bitline/
 * wordline growth, queues linearly with entries); leakage accrues per
 * cycle in proportion to total SRAM capacity. The absolute scale is
 * arbitrary-but-consistent nanojoules: the modeling machinery only
 * needs a response surface whose shape matches how real energy reacts
 * to the design parameters.
 */

#ifndef PPM_SIM_POWER_HH
#define PPM_SIM_POWER_HH

#include "sim/config.hh"
#include "sim/stats.hh"

namespace ppm::sim {

/** Technology constants of the energy model (per-event nanojoules). */
struct PowerParams
{
    /** Cache read/write energy at 1KB; scales with sqrt(capacity). */
    double cache_access_base = 0.10;
    /** DRAM access energy per line fill (activate + burst). */
    double dram_access = 8.0;
    /** Bus energy per line transfer. */
    double bus_transfer = 2.0;
    /** Front-end energy per fetched instruction (decode/rename). */
    double frontend_per_inst = 0.08;
    /** Extra front-end energy per pipeline stage per instruction. */
    double frontend_per_stage = 0.012;
    /** Issue-queue wakeup/select energy per entry per issue. */
    double iq_per_entry = 0.004;
    /** LSQ search energy per entry per memory op. */
    double lsq_per_entry = 0.003;
    /** ROB read/write energy per entry (per dispatch+commit). */
    double rob_per_entry = 0.0015;
    /** Simple-integer op execution energy. */
    double int_op = 0.06;
    /** Branch predictor access energy per branch. */
    double bpred_access = 0.03;
    /** Leakage per cycle per KB of on-chip SRAM. */
    double leakage_per_kb_cycle = 0.00010;
};

/** Energy breakdown of one simulation, in model nanojoules. */
struct PowerReport
{
    double fetch = 0;     //!< IL1 + front-end pipeline
    double window = 0;    //!< ROB + IQ + LSQ
    double execute = 0;   //!< functional units + predictor
    double dcache = 0;    //!< DL1 accesses
    double l2 = 0;        //!< L2 accesses
    double memory = 0;    //!< DRAM + bus
    double leakage = 0;   //!< capacity-proportional static energy

    /** Sum of all components. */
    double total() const;

    /** Energy per committed instruction. */
    double epi(const SimStats &stats) const;

    /**
     * Energy-delay-squared product per instruction:
     * EPI * CPI^2 (the voltage-independent efficiency metric).
     */
    double ed2p(const SimStats &stats) const;
};

/**
 * Compute the energy breakdown of a finished simulation.
 *
 * @param config The simulated processor configuration.
 * @param stats Its statistics (event counts and cycle total).
 * @param params Technology constants.
 */
PowerReport computePower(const ProcessorConfig &config,
                         const SimStats &stats,
                         const PowerParams &params = {});

/**
 * Per-access energy of a cache of @p size_kb KB under @p params
 * (exposed for tests and documentation of the scaling rule).
 */
double cacheAccessEnergy(int size_kb, const PowerParams &params);

} // namespace ppm::sim

#endif // PPM_SIM_POWER_HH
