#include "sim/functional_units.hh"

#include <algorithm>

namespace ppm::sim {

using trace::OpClass;

FunctionalUnits::FunctionalUnits(const ProcessorConfig &config)
{
    int_alu_.assign(static_cast<std::size_t>(config.num_int_alu), 0);
    int_mul_.assign(static_cast<std::size_t>(config.num_int_mul), 0);
    fp_.assign(static_cast<std::size_t>(config.num_fp_units), 0);
    mem_.assign(static_cast<std::size_t>(config.num_mem_ports), 0);
}

int
FunctionalUnits::latency(OpClass op) const
{
    switch (op) {
      case OpClass::IntAlu:
        return 1;
      case OpClass::IntMul:
        return 3;
      case OpClass::IntDiv:
        return 20;
      case OpClass::FpAlu:
        return 3;
      case OpClass::FpMul:
        return 4;
      case OpClass::FpDiv:
        return 24;
      case OpClass::Load:
      case OpClass::Store:
        return 1; // address generation; memory time added separately
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
      case OpClass::BranchCall:
      case OpClass::BranchRet:
        return 1;
    }
    return 1;
}

bool
FunctionalUnits::pipelined(OpClass op) const
{
    return op != OpClass::IntDiv && op != OpClass::FpDiv;
}

std::vector<Tick> &
FunctionalUnits::poolFor(OpClass op)
{
    switch (op) {
      case OpClass::IntMul:
      case OpClass::IntDiv:
        return int_mul_;
      case OpClass::FpAlu:
      case OpClass::FpMul:
      case OpClass::FpDiv:
        return fp_;
      case OpClass::Load:
      case OpClass::Store:
        return mem_;
      default:
        return int_alu_;
    }
}

const std::vector<Tick> &
FunctionalUnits::poolFor(OpClass op) const
{
    return const_cast<FunctionalUnits *>(this)->poolFor(op);
}

Tick
FunctionalUnits::nextFree(OpClass op, Tick cycle) const
{
    const auto &pool = poolFor(op);
    Tick best = pool.front();
    for (Tick t : pool)
        best = std::min(best, t);
    return std::max(best, cycle);
}

bool
FunctionalUnits::tryIssue(OpClass op, Tick cycle)
{
    auto &pool = poolFor(op);
    for (auto &busy_until : pool) {
        if (busy_until <= cycle) {
            busy_until = cycle +
                (pipelined(op) ? 1 : static_cast<Tick>(latency(op)));
            return true;
        }
    }
    return false;
}

void
FunctionalUnits::reset()
{
    for (auto *pool : {&int_alu_, &int_mul_, &fp_, &mem_})
        for (auto &t : *pool)
            t = 0;
}

} // namespace ppm::sim
