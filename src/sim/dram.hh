/**
 * @file
 * DRAM device timing model: per-bank open-row (page-mode) state with
 * activate / precharge / column-access latencies expressed in CPU
 * cycles. The paper's simulator "models DRAM device timing"; this
 * captures the first-order effects — row-buffer hits are fast, bank
 * conflicts pay precharge + activate, and a busy bank delays the next
 * access to it.
 */

#ifndef PPM_SIM_DRAM_HH
#define PPM_SIM_DRAM_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"

namespace ppm::sim {

/** Simulation time in CPU cycles. */
using Tick = std::uint64_t;

/**
 * Multi-bank DRAM device with open-page policy.
 */
class Dram
{
  public:
    explicit Dram(const ProcessorConfig &config);

    /**
     * Perform one line access.
     *
     * @param addr Line address (bytes).
     * @param at Earliest cycle the command can start.
     * @return Cycle at which the data transfer may begin (the bank is
     *         then busy until that cycle).
     */
    Tick access(std::uint64_t addr, Tick at);

    /** Bank index for an address (line-interleaved). */
    std::uint64_t bankOf(std::uint64_t addr) const;

    /** Row index within a bank for an address. */
    std::uint64_t rowOf(std::uint64_t addr) const;

    const MemoryStats &stats() const { return stats_; }

    /** Close all rows and clear statistics. */
    void reset();

  private:
    struct Bank
    {
        std::uint64_t open_row = 0;
        bool row_valid = false;
        Tick busy_until = 0;
    };

    int tcas_;
    int trcd_;
    int trp_;
    int line_shift_;
    int bank_shift_;   //!< log2(banks)
    int row_shift_;    //!< log2(row_bytes)
    std::vector<Bank> banks_;
    MemoryStats stats_;
};

} // namespace ppm::sim

#endif // PPM_SIM_DRAM_HH
