/**
 * @file
 * Functional unit pools and operation latencies. Pipelined units
 * accept a new operation every cycle while busy units (integer and FP
 * divide) block their pool until done; loads and stores contend for
 * cache ports.
 */

#ifndef PPM_SIM_FUNCTIONAL_UNITS_HH
#define PPM_SIM_FUNCTIONAL_UNITS_HH

#include <vector>

#include "sim/config.hh"
#include "sim/dram.hh"
#include "trace/instruction.hh"

namespace ppm::sim {

/**
 * Tracks availability of the execution resources.
 */
class FunctionalUnits
{
  public:
    explicit FunctionalUnits(const ProcessorConfig &config);

    /**
     * Execution latency of @p op in cycles, excluding memory time
     * (loads add cache access latency on top of address generation).
     */
    int latency(trace::OpClass op) const;

    /** True iff units for @p op accept one new op per cycle. */
    bool pipelined(trace::OpClass op) const;

    /**
     * Try to claim a unit of the right class at @p cycle. On success
     * the unit is booked (for 1 cycle if pipelined, else for the full
     * latency) and true is returned.
     */
    bool tryIssue(trace::OpClass op, Tick cycle);

    /** Earliest cycle >= @p cycle at which a unit for @p op frees. */
    Tick nextFree(trace::OpClass op, Tick cycle) const;

    void reset();

  private:
    std::vector<Tick> &poolFor(trace::OpClass op);
    const std::vector<Tick> &poolFor(trace::OpClass op) const;

    std::vector<Tick> int_alu_;  //!< also executes branches
    std::vector<Tick> int_mul_;  //!< multiply + divide
    std::vector<Tick> fp_;       //!< FP add/mul/div pipes
    std::vector<Tick> mem_;      //!< cache ports
};

} // namespace ppm::sim

#endif // PPM_SIM_FUNCTIONAL_UNITS_HH
