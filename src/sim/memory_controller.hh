/**
 * @file
 * Memory controller: queues demand fills and writebacks toward DRAM
 * and models contention for the shared memory bus. The paper's
 * simulator models "queuing at the memory controller and contention
 * for the memory bus"; here both appear as resource-availability
 * times — a request waits for its DRAM bank and then for the bus, so
 * bursts of misses serialize realistically.
 */

#ifndef PPM_SIM_MEMORY_CONTROLLER_HH
#define PPM_SIM_MEMORY_CONTROLLER_HH

#include "sim/dram.hh"

namespace ppm::sim {

/**
 * FCFS memory controller in front of the DRAM device.
 */
class MemoryController
{
  public:
    explicit MemoryController(const ProcessorConfig &config);

    /**
     * Issue a demand line fill.
     *
     * @param addr Line address.
     * @param at Cycle the request reaches the controller.
     * @return Cycle at which the critical word is back at the L2.
     */
    Tick read(std::uint64_t addr, Tick at);

    /**
     * Issue a dirty-line writeback. Fire-and-forget for the core, but
     * it occupies a bank and the bus, delaying later demand reads.
     */
    void writeback(std::uint64_t addr, Tick at);

    const MemoryStats &stats() const { return dram_.stats(); }
    std::uint64_t writebacks() const { return writebacks_; }

    void reset();

  private:
    Tick transfer(std::uint64_t addr, Tick at);

    Dram dram_;
    int overhead_;
    int burst_cycles_;
    Tick bus_free_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace ppm::sim

#endif // PPM_SIM_MEMORY_CONTROLLER_HH
