/**
 * @file
 * Simulation statistics. CPI is the paper's response metric; the rest
 * are the component statistics (cache miss rates, branch misprediction
 * rates, DRAM behaviour) used to validate trends and debug the model.
 */

#ifndef PPM_SIM_STATS_HH
#define PPM_SIM_STATS_HH

#include <cstdint>
#include <string>

namespace ppm::sim {

/** Hit/miss counters for one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                static_cast<double>(accesses) : 0.0;
    }
};

/** Branch predictor counters. */
struct BranchStats
{
    std::uint64_t branches = 0;       //!< all branch instructions
    std::uint64_t cond_branches = 0;  //!< conditional branches
    std::uint64_t mispredicts = 0;    //!< full redirects
    std::uint64_t btb_bubbles = 0;    //!< right direction, BTB miss

    double
    mispredictRate() const
    {
        return cond_branches ? static_cast<double>(mispredicts) /
                static_cast<double>(cond_branches) : 0.0;
    }
};

/** DRAM/memory controller counters. */
struct MemoryStats
{
    std::uint64_t requests = 0;   //!< demand line fills
    std::uint64_t row_hits = 0;   //!< open-row accesses
    std::uint64_t writebacks = 0; //!< dirty evictions to DRAM
};

/** Full result of one simulation. */
struct SimStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;

    CacheStats il1;
    CacheStats dl1;
    CacheStats l2;
    BranchStats branch;
    MemoryStats memory;

    /** Stall-cycle attribution (cycles with zero dispatch). */
    std::uint64_t rob_full_stalls = 0;
    std::uint64_t iq_full_stalls = 0;
    std::uint64_t lsq_full_stalls = 0;
    std::uint64_t fetch_empty_stalls = 0;

    /** Cycles per instruction — the modeled response. */
    double
    cpi() const
    {
        return instructions ? static_cast<double>(cycles) /
                static_cast<double>(instructions) : 0.0;
    }

    /** Instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                static_cast<double>(cycles) : 0.0;
    }
};

} // namespace ppm::sim

#endif // PPM_SIM_STATS_HH
