#include "sim/dram.hh"

#include <algorithm>
#include <cassert>

namespace ppm::sim {

namespace {

int
log2Floor(int v)
{
    int shift = 0;
    while ((1 << (shift + 1)) <= v)
        ++shift;
    return shift;
}

} // namespace

Dram::Dram(const ProcessorConfig &config)
    : tcas_(config.dram_tcas), trcd_(config.dram_trcd),
      trp_(config.dram_trp),
      line_shift_(log2Floor(config.line_size)),
      bank_shift_(log2Floor(config.dram_banks)),
      row_shift_(log2Floor(config.dram_row_bytes))
{
    banks_.assign(static_cast<std::size_t>(config.dram_banks), Bank{});
}

std::uint64_t
Dram::bankOf(std::uint64_t addr) const
{
    // Line-interleaved across banks: consecutive lines hit
    // consecutive banks, spreading streams.
    return (addr >> line_shift_) & ((1ULL << bank_shift_) - 1);
}

std::uint64_t
Dram::rowOf(std::uint64_t addr) const
{
    return addr >> (row_shift_ + bank_shift_);
}

Tick
Dram::access(std::uint64_t addr, Tick at)
{
    ++stats_.requests;
    Bank &bank = banks_[bankOf(addr)];
    const std::uint64_t row = rowOf(addr);

    Tick start = std::max(at, bank.busy_until);
    Tick latency = 0;
    if (bank.row_valid && bank.open_row == row) {
        ++stats_.row_hits;
        latency = static_cast<Tick>(tcas_);
    } else if (!bank.row_valid) {
        latency = static_cast<Tick>(trcd_ + tcas_);
    } else {
        // Row conflict: precharge the open row, then activate.
        latency = static_cast<Tick>(trp_ + trcd_ + tcas_);
    }
    bank.open_row = row;
    bank.row_valid = true;
    bank.busy_until = start + latency;
    return start + latency;
}

void
Dram::reset()
{
    for (auto &bank : banks_)
        bank = Bank{};
    stats_ = MemoryStats{};
}

} // namespace ppm::sim
