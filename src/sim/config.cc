#include "sim/config.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "dspace/paper_space.hh"

namespace ppm::sim {

namespace {

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

void
require(bool ok, const std::string &what)
{
    if (!ok)
        throw std::invalid_argument("ProcessorConfig: " + what);
}

} // namespace

int
ProcessorConfig::frontEndDepth() const
{
    return std::max(1, pipe_depth - backend_stages);
}

void
ProcessorConfig::validate() const
{
    require(pipe_depth >= 6 && pipe_depth <= 40,
            "pipe_depth out of range");
    require(rob_size >= 8 && rob_size <= 512, "rob_size out of range");
    require(iq_size >= 4 && iq_size <= rob_size,
            "iq_size must be in [4, rob_size]");
    require(lsq_size >= 4 && lsq_size <= rob_size,
            "lsq_size must be in [4, rob_size]");
    require(l2_size_kb >= 64 && l2_size_kb <= 65536,
            "l2_size_kb out of range");
    require(l2_lat >= 2 && l2_lat <= 64, "l2_lat out of range");
    require(il1_size_kb >= 1 && il1_size_kb <= 1024,
            "il1_size_kb out of range");
    require(dl1_size_kb >= 1 && dl1_size_kb <= 1024,
            "dl1_size_kb out of range");
    require(dl1_lat >= 1 && dl1_lat <= 16, "dl1_lat out of range");
    require(l2_size_kb > dl1_size_kb && l2_size_kb > il1_size_kb,
            "L2 must be larger than the L1s");
    require(l2_lat > dl1_lat, "L2 must be slower than DL1");

    require(fetch_width >= 1 && fetch_width <= 16, "fetch_width");
    require(issue_width >= 1 && issue_width <= 16, "issue_width");
    require(commit_width >= 1 && commit_width <= 16, "commit_width");
    require(il1_lat >= 1, "il1_lat");
    require(backend_stages >= 1 && backend_stages < pipe_depth,
            "backend_stages must leave a front end");

    require(num_int_alu >= 1, "num_int_alu");
    require(num_int_mul >= 1, "num_int_mul");
    require(num_fp_units >= 1, "num_fp_units");
    require(num_mem_ports >= 1, "num_mem_ports");

    require(isPowerOfTwo(line_size), "line_size must be a power of two");
    require(il1_assoc >= 1 && dl1_assoc >= 1 && l2_assoc >= 1,
            "associativities must be positive");

    require(gshare_bits >= 4 && gshare_bits <= 24, "gshare_bits");
    require(isPowerOfTwo(btb_entries), "btb_entries power of two");
    require(btb_assoc >= 1 && btb_assoc <= btb_entries, "btb_assoc");
    require(ras_entries >= 1, "ras_entries");
    require(btb_miss_penalty >= 0, "btb_miss_penalty");

    require(isPowerOfTwo(dram_banks), "dram_banks power of two");
    require(dram_tcas > 0 && dram_trcd > 0 && dram_trp > 0,
            "DRAM timing must be positive");
    require(isPowerOfTwo(dram_row_bytes), "dram_row_bytes power of two");
    require(bus_burst_cycles > 0, "bus_burst_cycles");
    require(memctrl_overhead >= 0, "memctrl_overhead");
}

std::string
ProcessorConfig::toString() const
{
    std::ostringstream os;
    os << "pipe=" << pipe_depth << " rob=" << rob_size
       << " iq=" << iq_size << " lsq=" << lsq_size
       << " l2=" << l2_size_kb << "KB@" << l2_lat
       << " il1=" << il1_size_kb << "KB"
       << " dl1=" << dl1_size_kb << "KB@" << dl1_lat;
    return os.str();
}

ProcessorConfig
ProcessorConfig::fromDesignPoint(const dspace::DesignSpace &space,
                                 const dspace::DesignPoint &point)
{
    using namespace ppm::dspace;
    if (point.size() != kNumPaperParams ||
        space.size() != kNumPaperParams) {
        throw std::invalid_argument(
            "fromDesignPoint: expected the 9-parameter paper space");
    }

    ProcessorConfig cfg;
    cfg.pipe_depth =
        static_cast<int>(std::lround(point[kPipeDepth]));
    cfg.rob_size = static_cast<int>(std::lround(point[kRobSize]));
    cfg.iq_size = std::max(
        8, static_cast<int>(std::lround(point[kIqFrac] *
                                        point[kRobSize])));
    cfg.lsq_size = std::max(
        8, static_cast<int>(std::lround(point[kLsqFrac] *
                                        point[kRobSize])));
    cfg.l2_size_kb = static_cast<int>(std::lround(point[kL2SizeKB]));
    cfg.l2_lat = static_cast<int>(std::lround(point[kL2Lat]));
    cfg.il1_size_kb =
        static_cast<int>(std::lround(point[kIl1SizeKB]));
    cfg.dl1_size_kb =
        static_cast<int>(std::lround(point[kDl1SizeKB]));
    cfg.dl1_lat = static_cast<int>(std::lround(point[kDl1Lat]));
    cfg.validate();
    return cfg;
}

} // namespace ppm::sim
