/**
 * @file
 * Cycle-level out-of-order superscalar core.
 *
 * The core consumes a correct-path instruction trace and computes its
 * execution time for a given ProcessorConfig. Modeled behaviour:
 *
 *  - Fetch through IL1 with a decoupling queue; fetch groups break on
 *    taken branches; IL1 misses stall fetch until the fill returns.
 *  - Branch prediction at fetch (gshare + BTB + RAS). Mispredictions
 *    stall fetch until the branch executes; the refill through the
 *    front end (pipe_depth - backend_stages stages) forms the
 *    pipe-depth-dependent part of the penalty. BTB misses with a
 *    correct direction inject a fixed decode bubble.
 *  - Dispatch allocates ROB, issue queue and (for memory ops) LSQ
 *    entries in program order, stalling when any is full.
 *  - Issue selects up to issue_width ready instructions oldest-first,
 *    subject to functional unit and cache port availability. Loads
 *    disambiguate against older stores in the LSQ using trace (oracle)
 *    addresses: a matching older store forwards its data; a matching
 *    not-yet-executed store blocks the load.
 *  - Memory operations walk the DL1/L2/DRAM hierarchy with controller
 *    queueing and bus contention.
 *  - Commit retires up to commit_width completed instructions in
 *    order; stores write the cache at commit.
 *
 * Idle stretches (e.g. the whole window waiting on a DRAM access) are
 * skipped by advancing directly to the next event time, which keeps
 * long-latency configurations fast to simulate.
 */

#ifndef PPM_SIM_OOO_CORE_HH
#define PPM_SIM_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "sim/branch_predictor.hh"
#include "sim/config.hh"
#include "sim/functional_units.hh"
#include "sim/memory_hierarchy.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace ppm::sim {

/**
 * The core timing model. Construct once per simulation.
 */
class OooCore
{
  public:
    /**
     * @param config Validated processor configuration.
     * @param trace The instruction trace to time.
     */
    OooCore(const ProcessorConfig &config, const trace::Trace &trace);

    /**
     * Run the whole trace.
     *
     * @param warmup_instructions Instructions to execute before
     *        statistics start counting (caches and predictors stay
     *        warm; cycle/instruction counters restart).
     * @return Final statistics over the measured region.
     */
    SimStats run(std::uint64_t warmup_instructions = 0);

  private:
    static constexpr Tick kNever = std::numeric_limits<Tick>::max();
    static constexpr int kNoProducer = -1;

    struct RobEntry
    {
        std::uint64_t seq = 0;       //!< trace index (generation tag)
        trace::OpClass op = trace::OpClass::IntAlu;
        std::uint64_t mem_addr = 0;
        int producer[2] = {kNoProducer, kNoProducer};
        std::uint64_t producer_seq[2] = {0, 0};
        Tick earliest_issue = 0;
        Tick completion = kNever;
        bool issued = false;
        bool is_mispredicted_branch = false;
    };

    struct FetchedInst
    {
        std::uint64_t seq = 0;
        Tick dispatch_ready = 0;
        /** Branch that will redirect the front end at execute. */
        bool mispredicted = false;
    };

    // One pipeline stage step each; called once per simulated cycle.
    void doFetch();
    void doDispatch();
    void doIssue();
    void doCommit();

    /** True when the producer's result is available at time `now_`. */
    bool operandReady(const RobEntry &entry, int which) const;

    /** Attempt to issue one entry; returns false if it must wait. */
    bool tryIssueEntry(int slot);

    /** Compute a load's completion time (forwarding or memory). */
    Tick loadCompletion(int slot);

    /** Earliest future time at which any state can change. */
    Tick nextEventTime() const;

    int robNext(int slot) const { return slot + 1 == rob_size_ ? 0 : slot + 1; }

    const ProcessorConfig &config_;
    const trace::Trace &trace_;

    MemoryHierarchy memory_;
    BranchPredictor predictor_;
    FunctionalUnits fus_;

    // --- fetch state -------------------------------------------------
    std::uint64_t fetch_seq_ = 0;       //!< next trace index to fetch
    Tick fetch_stall_until_ = 0;        //!< earliest next fetch cycle
    bool fetch_blocked_on_branch_ = false;
    std::uint64_t blocking_branch_seq_ = 0;
    std::uint64_t last_fetch_line_ = ~0ULL;
    std::deque<FetchedInst> fetch_queue_;
    std::size_t fetch_queue_capacity_ = 0;

    // --- backend state -----------------------------------------------
    std::vector<RobEntry> rob_;
    int rob_size_ = 0;
    int rob_head_ = 0;
    int rob_tail_ = 0;
    int rob_count_ = 0;
    int iq_count_ = 0;
    int lsq_count_ = 0;
    std::vector<int> waiting_;   //!< dispatched, not yet issued (IQ)
    std::deque<int> lsq_;        //!< memory ops in program order

    /** Rename table: ROB slot of each register's last writer. */
    int reg_writer_[trace::kNumArchRegs];
    std::uint64_t reg_writer_seq_[trace::kNumArchRegs];

    Tick now_ = 0;
    std::uint64_t committed_ = 0;
    /** Any pipeline activity this cycle (controls event skipping). */
    bool progress_ = false;
    /** Earliest retry time for an FU-blocked instruction this cycle. */
    Tick fu_retry_ = kNever;

    SimStats stats_;
    std::uint64_t stat_cycle_base_ = 0;
    std::uint64_t stat_inst_base_ = 0;
};

} // namespace ppm::sim

#endif // PPM_SIM_OOO_CORE_HH
