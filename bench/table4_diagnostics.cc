/**
 * @file
 * Reproduces paper Table 4: the best method parameters (p_min, alpha)
 * and resulting number of RBF centers for mcf at each sample size —
 * plus the DESIGN.md ablations at n=90: model-selection criterion
 * (AIC_c vs BIC vs GCV) and center-selection strategy (tree-ordered
 * vs greedy forward).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sampling/sample_gen.hh"
#include "tree/regression_tree.hh"

using namespace ppm;

namespace {

/** Train one RBF variant directly and report accuracy on a test set. */
struct VariantResult
{
    std::size_t centers = 0;
    double mean_err = 0;
};

VariantResult
trainVariant(bench::BenchWorkload &wl,
             const std::vector<dspace::DesignPoint> &sample,
             const std::vector<double> &ys,
             const std::vector<dspace::DesignPoint> &test_pts,
             const std::vector<double> &test_ys,
             rbf::Criterion criterion, rbf::Selection selection)
{
    std::vector<dspace::UnitPoint> unit;
    for (const auto &p : sample)
        unit.push_back(wl.trainSpace().toUnit(p));
    auto opts = bench::benchTrainerOptions();
    opts.criterion = criterion;
    opts.selection = selection;
    auto trained = rbf::trainRbfModel(unit, ys, opts);
    core::RbfPerformanceModel model(wl.trainSpace(), trained);
    auto report = core::evaluateModel(model, test_pts, test_ys);
    return {trained.num_centers, report.mean_error};
}

} // namespace

int
main()
{
    bench::header("Table 4: RBF model diagnostics for mcf");
    bench::BenchWorkload wl("mcf");
    auto builder = wl.makeBuilder();

    bench::CsvWriter csv("table4_diagnostics",
                         {"sample_size", "p_min", "alpha", "centers",
                          "mean_err"});

    std::printf("%-12s", "Sample size");
    const int sizes[] = {30, 50, 70, 90, 110, 200};
    for (int s : sizes)
        std::printf(" %6d", s);
    std::printf("\n");

    std::vector<core::SizeResult> rows;
    {
        auto opts = bench::singleSizeBuild(0, false);
        opts.sample_sizes.assign(std::begin(sizes), std::end(sizes));
        auto result = builder.build(opts);
        rows = result.history;
    }

    auto print_row = [&](const char *label, auto getter) {
        std::printf("%-12s", label);
        for (const auto &h : rows)
            std::printf(" %6g", static_cast<double>(getter(h)));
        std::printf("\n");
    };
    print_row("p_min", [](const core::SizeResult &h) { return h.p_min; });
    print_row("alpha", [](const core::SizeResult &h) { return h.alpha; });
    print_row("centers",
              [](const core::SizeResult &h) { return h.num_centers; });
    print_row("mean err %", [](const core::SizeResult &h) {
        return h.rbf_error.mean_error;
    });
    for (const auto &h : rows)
        csv.row({static_cast<double>(h.sample_size),
                 static_cast<double>(h.p_min), h.alpha,
                 static_cast<double>(h.num_centers),
                 h.rbf_error.mean_error});

    // --- ablations at n = 90 -------------------------------------
    bench::header("Ablations at n=90 (criterion / selection strategy)");
    math::Rng rng(bench::masterSeed() + 17);
    auto sample = sampling::bestLatinHypercube(wl.trainSpace(), 90, 50,
                                               rng).points;
    auto ys = wl.oracle().evaluateAll(sample);
    auto test_pts = sampling::randomTestSet(wl.testSpace(), 50, rng);
    auto test_ys = wl.oracle().evaluateAll(test_pts);

    bench::CsvWriter acsv("table4_ablations",
                          {"variant", "centers", "mean_err"});
    std::printf("%-28s %8s %10s\n", "variant", "centers", "mean err %");
    const struct
    {
        const char *name;
        rbf::Criterion criterion;
        rbf::Selection selection;
    } variants[] = {
        {"AICc + tree-ordered", rbf::Criterion::AICc,
         rbf::Selection::TreeOrdered},
        {"BIC + tree-ordered", rbf::Criterion::BIC,
         rbf::Selection::TreeOrdered},
        {"GCV + tree-ordered", rbf::Criterion::GCV,
         rbf::Selection::TreeOrdered},
        {"AICc + greedy-forward", rbf::Criterion::AICc,
         rbf::Selection::GreedyForward},
    };
    for (const auto &v : variants) {
        const auto res = trainVariant(wl, sample, ys, test_pts, test_ys,
                                      v.criterion, v.selection);
        std::printf("%-28s %8zu %10.2f\n", v.name, res.centers,
                    res.mean_err);
        acsv.rowStrings({v.name, std::to_string(res.centers),
                         std::to_string(res.mean_err)});
    }

    std::printf("\nsimulations: %lu (memoized hits: %lu)\n",
                static_cast<unsigned long>(wl.oracle().evaluations()),
                static_cast<unsigned long>(wl.cacheHits()));
    return 0;
}
