/**
 * @file
 * Extension (paper Sec 6): predictive models for power metrics. Builds
 * RBF models of energy-per-instruction (EPI) for four benchmarks with
 * the identical BuildRBFmodel machinery used for CPI, and reports
 * their validation accuracy — demonstrating the paper's claim that
 * "similar models can be developed for other metrics such as power
 * consumption".
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/power.hh"

using namespace ppm;

int
main()
{
    bench::header("Extension: RBF models of energy per instruction "
                  "(sample size 90)");
    bench::CsvWriter csv("ext_power_model",
                         {"benchmark", "metric", "mean_err", "max_err",
                          "centers"});

    std::printf("%-12s %6s %10s %10s %8s\n", "benchmark", "metric",
                "mean err%", "max err%", "centers");

    for (const std::string name : {"mcf", "crafty", "vortex", "ammp"}) {
        for (const auto metric : {core::Metric::Cpi,
                                  core::Metric::EnergyPerInst}) {
            const auto &profile = trace::profileByName(name);
            const auto trace =
                trace::generateTrace(profile, bench::traceLength());
            const auto train = dspace::paperTrainSpace();
            const auto test = dspace::paperTestSpace();
            sim::SimOptions sim_opts;
            sim_opts.warmup_instructions = bench::warmupInstructions();
            core::SimulatorOracle oracle(train, trace, sim_opts,
                                         metric);
            core::ModelBuilder builder(train, test, oracle);
            auto result =
                builder.build(bench::singleSizeBuild(90, false));
            const auto &h = result.final();
            std::printf("%-12s %6s %10.2f %10.2f %8zu\n",
                        profile.name.c_str(),
                        core::metricName(metric).c_str(),
                        h.rbf_error.mean_error, h.rbf_error.max_error,
                        h.num_centers);
            csv.rowStrings({profile.name, core::metricName(metric),
                            std::to_string(h.rbf_error.mean_error),
                            std::to_string(h.rbf_error.max_error),
                            std::to_string(h.num_centers)});
        }
    }
    std::printf("\n(EPI responds more smoothly to the sized structures "
                "than CPI, so energy models typically train at least "
                "as accurately.)\n");
    return 0;
}
