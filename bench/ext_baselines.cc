/**
 * @file
 * Extension: model-class comparison beyond the paper's Fig 7. At a
 * fixed sample size, compares the RBF network against the linear
 * baseline AND an inverse-distance-weighted kNN interpolator, for
 * three benchmarks — separating what RBF accuracy owes to locality
 * alone from what the fitted basis expansion adds.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/knn_model.hh"
#include "linreg/model_selection.hh"
#include "sampling/sample_gen.hh"

using namespace ppm;

int
main()
{
    bench::header("Extension: RBF vs linear vs kNN (sample size 90)");
    bench::CsvWriter csv("ext_baselines",
                         {"benchmark", "model", "mean_err", "max_err"});

    std::printf("%-12s %10s %10s %10s\n", "benchmark", "model",
                "mean err%", "max err%");
    for (const std::string name : {"mcf", "vortex", "twolf"}) {
        bench::BenchWorkload wl(name);
        math::Rng rng(bench::masterSeed());
        auto sample = sampling::bestLatinHypercube(
            wl.trainSpace(), 90, 50, rng).points;
        auto ys = wl.oracle().evaluateAll(sample);
        auto test_pts =
            sampling::randomTestSet(wl.testSpace(), 50, rng);
        auto test_ys = wl.oracle().evaluateAll(test_pts);

        std::vector<dspace::UnitPoint> unit;
        for (const auto &p : sample)
            unit.push_back(wl.trainSpace().toUnit(p));

        auto report = [&](const char *label,
                          const core::PerformanceModel &model) {
            const auto err =
                core::evaluateModel(model, test_pts, test_ys);
            std::printf("%-12s %10s %10.2f %10.2f\n",
                        wl.name().c_str(), label, err.mean_error,
                        err.max_error);
            csv.rowStrings({wl.name(), label,
                            std::to_string(err.mean_error),
                            std::to_string(err.max_error)});
        };

        const auto trained = rbf::trainRbfModel(
            unit, ys, bench::benchTrainerOptions());
        report("rbf", core::RbfPerformanceModel(wl.trainSpace(),
                                                trained));
        report("linear",
               core::LinearPerformanceModel(
                   wl.trainSpace(),
                   linreg::fitSelectedLinearModel(unit, ys)));
        for (int k : {1, 3, 5, 9}) {
            char label[16];
            std::snprintf(label, sizeof label, "knn-%d", k);
            report(label, core::KnnPerformanceModel(wl.trainSpace(),
                                                    sample, ys, k));
        }
    }
    std::printf("\n(The gap between kNN and the RBF network is what "
                "the fitted basis expansion buys.)\n");
    return 0;
}
