/**
 * @file
 * Reproduces paper Figure 4: mean, standard deviation and maximum
 * prediction error of the RBF model versus training sample size, for
 * mcf and twolf. The paper's observations: error decreases with
 * sample size and the improvement tapers beyond ~90 samples.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace ppm;

int
main()
{
    bench::header("Figure 4: model error vs sample size (mcf, twolf)");
    bench::CsvWriter csv("fig4_error_vs_samples",
                         {"benchmark", "sample_size", "mean_err",
                          "std_err", "max_err"});

    for (const std::string name : {"mcf", "twolf"}) {
        bench::BenchWorkload wl(name);
        auto builder = wl.makeBuilder();
        auto opts = bench::singleSizeBuild(0, false);
        opts.sample_sizes = {30, 50, 70, 90, 110, 200};
        auto result = builder.build(opts);

        std::printf("\n%s:\n", wl.name().c_str());
        std::printf("%8s %10s %10s %10s\n", "size", "mean", "std",
                    "max");
        for (const auto &h : result.history) {
            std::printf("%8d %10.2f %10.2f %10.2f\n", h.sample_size,
                        h.rbf_error.mean_error, h.rbf_error.std_error,
                        h.rbf_error.max_error);
            csv.rowStrings({wl.name(), std::to_string(h.sample_size),
                            std::to_string(h.rbf_error.mean_error),
                            std::to_string(h.rbf_error.std_error),
                            std::to_string(h.rbf_error.max_error)});
        }
        std::printf("simulations: %lu\n",
                    static_cast<unsigned long>(result.simulations));
    }
    std::printf("\n(paper: error falls with size; gains taper past "
                "~90, matching the Fig 2 discrepancy knee)\n");
    return 0;
}
