/**
 * @file
 * Reproduces paper Figure 6: predicted vs simulated CPI trends for
 * vortex across instruction cache sizes and L2 latencies — the
 * two-factor interaction test of Sec 4.1. Solid paper lines =
 * simulation; dashed = model. Here both are printed side by side.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "core/explorer.hh"

using namespace ppm;

int
main()
{
    bench::header("Figure 6: vortex trend prediction "
                  "(il1_size x L2_lat)");
    bench::BenchWorkload wl("vortex");
    auto builder = wl.makeBuilder();
    auto result = builder.build(bench::singleSizeBuild(200, false));
    const auto &model = *result.model;

    const int il1_levels[] = {8, 16, 32, 64};
    const int l2_lats[] = {5, 8, 11, 14, 17, 20};

    bench::CsvWriter csv("fig6_trend_prediction",
                         {"il1_size_kb", "l2_lat", "simulated",
                          "predicted"});

    // Batch-simulate the full interaction grid up front (parallel);
    // the per-cell cpi() calls below hit the memo cache.
    std::vector<dspace::DesignPoint> grid;
    for (int il1 : il1_levels)
        for (int lat : l2_lats)
            grid.push_back({14, 64, 0.5, 0.5, 1024,
                            static_cast<double>(lat),
                            static_cast<double>(il1), 32, 2});
    wl.oracle().evaluateAll(grid);

    double worst_gap = 0, mean_gap = 0;
    int cells = 0;
    for (int il1 : il1_levels) {
        std::printf("\nil1=%dKB: %8s", il1, "L2lat");
        for (int lat : l2_lats)
            std::printf(" %7d", lat);
        std::printf("\n          %8s", "sim");
        std::vector<double> sims, preds;
        for (int lat : l2_lats) {
            dspace::DesignPoint pt{14, 64, 0.5, 0.5, 1024,
                                   static_cast<double>(lat),
                                   static_cast<double>(il1), 32, 2};
            sims.push_back(wl.oracle().cpi(pt));
            preds.push_back(model.predict(pt));
            std::printf(" %7.3f", sims.back());
        }
        std::printf("\n          %8s", "model");
        for (std::size_t i = 0; i < preds.size(); ++i) {
            std::printf(" %7.3f", preds[i]);
            const double gap = 100.0 *
                std::fabs(preds[i] - sims[i]) / sims[i];
            worst_gap = std::max(worst_gap, gap);
            mean_gap += gap;
            ++cells;
            csv.row({static_cast<double>(il1),
                     static_cast<double>(l2_lats[i]), sims[i],
                     preds[i]});
        }
        std::printf("\n");
    }

    std::printf("\ntrend agreement: mean |gap| %.1f%%, worst %.1f%% "
                "(paper: close mirror except the low-il1 / high-L2lat "
                "corner)\n",
                mean_gap / cells, worst_gap);
    std::printf("model: %s\n", model.describe().c_str());
    return 0;
}
