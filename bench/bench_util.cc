#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>

#include "serve/oracle_factory.hh"

namespace ppm::bench {

long
envLong(const char *name, long fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return std::strtol(value, nullptr, 10);
}

std::size_t
traceLength()
{
    return static_cast<std::size_t>(envLong("PPM_TRACE_LEN", 100000));
}

std::uint64_t
warmupInstructions()
{
    return static_cast<std::uint64_t>(envLong("PPM_WARMUP", 15000));
}

std::uint64_t
masterSeed()
{
    return static_cast<std::uint64_t>(envLong("PPM_SEED", 1));
}

BenchWorkload::BenchWorkload(const std::string &benchmark)
    : train_(dspace::paperTrainSpace()), test_(dspace::paperTestSpace())
{
    const auto &profile = trace::profileByName(benchmark);
    name_ = profile.name;
    trace_ = std::make_unique<trace::Trace>(
        trace::generateTrace(profile, traceLength()));
    sim::SimOptions opts;
    opts.warmup_instructions = warmupInstructions();
    oracle_ = serve::makeOracle(train_, name_, *trace_, opts);
}

std::uint64_t
BenchWorkload::cacheHits() const
{
    if (const auto *local =
            dynamic_cast<const core::SimulatorOracle *>(oracle_.get()))
        return local->cacheHits();
    return 0;
}

core::ModelBuilder
BenchWorkload::makeBuilder()
{
    return core::ModelBuilder(train_, test_, *oracle_);
}

rbf::TrainerOptions
benchTrainerOptions()
{
    rbf::TrainerOptions opts;
    opts.p_min_grid = {1, 2};
    opts.alpha_grid = {4, 6, 8, 10, 12};
    return opts;
}

core::BuildOptions
singleSizeBuild(int size, bool linear_baseline)
{
    core::BuildOptions opts;
    opts.sample_sizes = {size};
    opts.target_mean_error = 0.0; // always run the full size
    opts.seed = masterSeed();
    opts.trainer = benchTrainerOptions();
    opts.fit_linear_baseline = linear_baseline;
    return opts;
}

CsvWriter::CsvWriter(const std::string &name,
                     const std::vector<std::string> &columns)
    : out_(name + ".csv"), columns_(columns.size())
{
    for (std::size_t i = 0; i < columns.size(); ++i)
        out_ << (i ? "," : "") << columns[i];
    out_ << "\n";
}

void
CsvWriter::row(const std::vector<double> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%g", values[i]);
        out_ << (i ? "," : "") << buf;
    }
    out_ << "\n";
    out_.flush();
}

void
CsvWriter::rowStrings(const std::vector<std::string> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        out_ << (i ? "," : "") << values[i];
    out_ << "\n";
    out_.flush();
}

void
header(const std::string &title)
{
    std::printf("\n%s\n", title.c_str());
    for (std::size_t i = 0; i < title.size(); ++i)
        std::printf("=");
    std::printf("\n");
}

} // namespace ppm::bench
