/**
 * @file
 * Reproduces paper Figure 5: the distribution of parameter values at
 * which regression-tree splitting occurs for mcf — which parameters
 * get split, how often, and where in their ranges.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hh"
#include "sampling/sample_gen.hh"
#include "tree/regression_tree.hh"
#include "tree/split_report.hh"

using namespace ppm;

int
main()
{
    bench::header("Figure 5: tree split-value distribution for mcf");
    bench::BenchWorkload wl("mcf");
    math::Rng rng(bench::masterSeed());
    auto sample = sampling::bestLatinHypercube(wl.trainSpace(), 200, 50,
                                               rng).points;
    auto ys = wl.oracle().evaluateAll(sample);
    std::vector<dspace::UnitPoint> unit;
    for (const auto &p : sample)
        unit.push_back(wl.trainSpace().toUnit(p));

    tree::RegressionTree t(unit, ys, 1);
    auto splits = tree::allSplits(t, wl.trainSpace());
    auto counts = tree::splitCountPerParameter(t, wl.trainSpace());

    bench::CsvWriter csv("fig5_split_distribution",
                         {"parameter", "value", "depth"});
    std::map<std::string, std::vector<double>> by_param;
    for (const auto &s : splits) {
        by_param[s.parameter].push_back(s.raw_value);
        csv.rowStrings({s.parameter, std::to_string(s.raw_value),
                        std::to_string(s.depth)});
    }

    std::printf("%-12s %7s   %s\n", "parameter", "splits",
                "split values (sorted, first 10)");
    for (std::size_t i = 0; i < wl.trainSpace().size(); ++i) {
        const std::string &name = wl.trainSpace().param(i).name();
        std::printf("%-12s %7zu   ", name.c_str(), counts[i]);
        auto it = by_param.find(name);
        if (it != by_param.end()) {
            auto vals = it->second;
            std::sort(vals.begin(), vals.end());
            const std::size_t show = std::min<std::size_t>(10,
                                                           vals.size());
            for (std::size_t k = 0; k < show; ++k)
                std::printf("%.3g ", vals[k]);
            if (vals.size() > show)
                std::printf("...");
        }
        std::printf("\n");
    }
    std::printf("\ntotal splits: %zu over %zu tree nodes\n",
                splits.size(), t.nodeCount());
    return 0;
}
