/**
 * @file
 * Shared utilities for the reproduction benches: oracle construction,
 * environment-tunable knobs, CSV output and table printing.
 *
 * Environment knobs (all optional):
 *   PPM_TRACE_LEN      trace length per benchmark (default 100000)
 *   PPM_WARMUP         warmup instructions per simulation
 *                      (default 15000)
 *   PPM_SEED           master seed for sampling (default 1)
 *   PPM_SERVE_SOCKET   comma-separated ppm_serve sockets; shards
 *                      every oracle batch across them
 *   PPM_ARCHIVE_DIR    result-archive directory; re-running a bench
 *                      replays archived simulations for free
 */

#ifndef PPM_BENCH_BENCH_UTIL_HH
#define PPM_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/model_builder.hh"
#include "core/oracle.hh"
#include "dspace/paper_space.hh"
#include "rbf/trainer.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace ppm::bench {

/** Integer environment variable with a default. */
long envLong(const char *name, long fallback);

/** Trace length used by all benches (PPM_TRACE_LEN). */
std::size_t traceLength();

/** Warmup instructions per simulation (PPM_WARMUP). */
std::uint64_t warmupInstructions();

/** Master sampling seed (PPM_SEED). */
std::uint64_t masterSeed();

/**
 * A benchmark's trace plus a memoizing simulation oracle over the
 * paper's training space. The oracle comes from the serve factory, so
 * it honours PPM_SERVE_SOCKET / PPM_ARCHIVE_DIR; results are
 * bit-identical however it is backed.
 */
class BenchWorkload
{
  public:
    /** @param benchmark Short or full SPEC name ("mcf"). */
    explicit BenchWorkload(const std::string &benchmark);

    core::CpiOracle &oracle() { return *oracle_; }
    const std::string &name() const { return name_; }
    const dspace::DesignSpace &trainSpace() const { return train_; }
    const dspace::DesignSpace &testSpace() const { return test_; }

    /**
     * Memo-cache hits of the underlying local oracle; 0 when the
     * oracle is remote (servers memoize on their side).
     */
    std::uint64_t cacheHits() const;

    /** A ModelBuilder wired to this workload. */
    core::ModelBuilder makeBuilder();

  private:
    std::string name_;
    dspace::DesignSpace train_;
    dspace::DesignSpace test_;
    std::unique_ptr<trace::Trace> trace_;
    std::unique_ptr<core::CpiOracle> oracle_;
};

/**
 * The trainer grid used by all benches: p_min in {1, 2}, alpha in
 * {4, 6, 8, 10, 12} — covering the paper's reported optima (Table 4)
 * at tolerable single-core cost.
 */
rbf::TrainerOptions benchTrainerOptions();

/** Standard build options for a single sample size. */
core::BuildOptions singleSizeBuild(int size, bool linear_baseline);

/** Simple CSV writer: one file per bench, rows appended. */
class CsvWriter
{
  public:
    /** Opens "<name>.csv" in the working directory. */
    explicit CsvWriter(const std::string &name,
                       const std::vector<std::string> &columns);

    /** Append one row (values rendered with %g formatting). */
    void row(const std::vector<double> &values);

    /** Append one row of preformatted strings. */
    void rowStrings(const std::vector<std::string> &values);

  private:
    std::ofstream out_;
    std::size_t columns_;
};

/** Print an underlined section header to stdout. */
void header(const std::string &title);

} // namespace ppm::bench

#endif // PPM_BENCH_BENCH_UTIL_HH
