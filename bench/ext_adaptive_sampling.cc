/**
 * @file
 * Extension (paper Sec 6): adaptive sampling. Compares the validation
 * error trajectory of adaptively grown samples against one-shot LHS
 * designs at matched simulation budgets, for two benchmarks.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/adaptive.hh"

using namespace ppm;

int
main()
{
    bench::header("Extension: adaptive sampling vs fixed LHS designs");
    bench::CsvWriter csv("ext_adaptive_sampling",
                         {"benchmark", "strategy", "samples",
                          "mean_err"});

    for (const std::string name : {"twolf", "vortex"}) {
        bench::BenchWorkload wl(name);

        // Fixed LHS at the ladder of budgets.
        auto builder = wl.makeBuilder();
        auto fixed_opts = bench::singleSizeBuild(0, false);
        fixed_opts.sample_sizes = {30, 50, 70, 90, 110};
        auto fixed = builder.build(fixed_opts);

        // Adaptive: same start and cap, batches of 10.
        core::AdaptiveSampler sampler(wl.trainSpace(), wl.testSpace(),
                                      wl.oracle());
        core::AdaptiveOptions ad;
        ad.initial_size = 30;
        ad.batch_size = 10;
        ad.max_samples = 110;
        ad.target_mean_error = 0.0; // run the full budget
        ad.candidate_pool = 500;
        ad.seed = bench::masterSeed();
        ad.trainer = bench::benchTrainerOptions();
        auto adaptive = sampler.build(ad);

        std::printf("\n%s:\n", wl.name().c_str());
        std::printf("%10s %12s %12s\n", "samples", "LHS err%",
                    "adaptive err%");
        // Interleave by budget: adaptive has a point every 10, LHS at
        // its ladder sizes.
        for (const auto &h : fixed.history) {
            double adaptive_err = -1;
            for (const auto &round : adaptive.history)
                if (round.samples <= h.sample_size)
                    adaptive_err = round.error.mean_error;
            std::printf("%10d %12.2f %12.2f\n", h.sample_size,
                        h.rbf_error.mean_error, adaptive_err);
            csv.rowStrings({wl.name(), "lhs",
                            std::to_string(h.sample_size),
                            std::to_string(h.rbf_error.mean_error)});
        }
        for (const auto &round : adaptive.history)
            csv.rowStrings({wl.name(), "adaptive",
                            std::to_string(round.samples),
                            std::to_string(round.error.mean_error)});
        std::printf("simulations: %lu\n",
                    static_cast<unsigned long>(
                        wl.oracle().evaluations()));
    }
    return 0;
}
