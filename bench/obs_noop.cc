/**
 * @file
 * The compiled-out arm of the metrics-overhead micro-bench. This
 * translation unit forces PPM_OBS_DISABLED before including the span
 * header, so its OBS_* macro sites expand to nothing regardless of
 * how the rest of the build is configured — BM_ObsCompiledOut in
 * perf_kernels calls into it to measure what an instrumented site
 * costs when observability is compiled out.
 */

#ifndef PPM_OBS_DISABLED
#define PPM_OBS_DISABLED 1
#endif

#include <cstdint>

#include "obs/trace_span.hh"

namespace bench_noop {

/** The same macro shape as a real instrumented hot path. */
std::uint64_t
instrumentedSite(std::uint64_t x)
{
    OBS_SPAN("bench.noop");
    OBS_STATIC_COUNTER(events, "bench.noop.events");
    OBS_ADD(events, 1);
    return x * 2654435761u + 1; // keep the call from folding away
}

} // namespace bench_noop
