/**
 * @file
 * Reproduces paper Table 1 (training design space: ranges, levels,
 * transformations) and Table 2 (restricted test space) directly from
 * the library's space definitions, so the printed tables are exactly
 * what every other bench samples from.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace ppm;

namespace {

void
printSpace(const dspace::DesignSpace &space, const char *csv_name)
{
    bench::CsvWriter csv(csv_name,
                         {"parameter", "low", "high", "levels",
                          "transform"});
    std::printf("%-12s %10s %10s %8s %10s\n", "Parameter", "Low",
                "High", "Levels", "Transform");
    for (std::size_t i = 0; i < space.size(); ++i) {
        const auto &p = space.param(i);
        char levels[16];
        if (p.sampleSizeLevels())
            std::snprintf(levels, sizeof levels, "S");
        else
            std::snprintf(levels, sizeof levels, "%d", p.levels());
        std::printf("%-12s %10g %10g %8s %10s\n", p.name().c_str(),
                    p.minValue(), p.maxValue(), levels,
                    transformName(p.transform()).c_str());
        csv.rowStrings({p.name(), std::to_string(p.minValue()),
                        std::to_string(p.maxValue()), levels,
                        transformName(p.transform())});
    }
}

} // namespace

int
main()
{
    bench::header("Table 1: training design space (paper Table 1)");
    printSpace(dspace::paperTrainSpace(), "table1_train_space");

    bench::header("Table 2: test-point space (paper Table 2)");
    printSpace(dspace::paperTestSpace(), "table1_test_space");
    return 0;
}
