/**
 * @file
 * Reproduces paper Table 3: mean, maximum and standard deviation of
 * the absolute percentage CPI prediction error for the eight SPEC
 * CPU2000 benchmarks, with RBF models built from a 200-point
 * discrepancy-optimized LHS sample and validated on 50 independent
 * random points from the Table 2 space.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace ppm;

int
main()
{
    bench::header("Table 3: error diagnostics of the predictive model "
                  "(sample size 200)");

    bench::CsvWriter csv("table3_accuracy",
                         {"benchmark", "mean_err", "max_err", "std_err",
                          "centers", "p_min", "alpha", "simulations"});

    std::printf("%-12s %7s %7s %7s   %7s %6s %6s\n", "Benchmark",
                "mean", "max", "std", "centers", "p_min", "alpha");

    double total_mean = 0;
    int count = 0;
    for (const auto &name : trace::profileNames()) {
        bench::BenchWorkload wl(name);
        auto builder = wl.makeBuilder();
        auto result = builder.build(bench::singleSizeBuild(200, false));
        const auto &h = result.final();
        std::printf("%-12s %7.1f %7.1f %7.1f   %7zu %6d %6g\n",
                    wl.name().c_str(), h.rbf_error.mean_error,
                    h.rbf_error.max_error, h.rbf_error.std_error,
                    h.num_centers, h.p_min, h.alpha);
        csv.rowStrings({wl.name(),
                        std::to_string(h.rbf_error.mean_error),
                        std::to_string(h.rbf_error.max_error),
                        std::to_string(h.rbf_error.std_error),
                        std::to_string(h.num_centers),
                        std::to_string(h.p_min),
                        std::to_string(h.alpha),
                        std::to_string(result.simulations)});
        total_mean += h.rbf_error.mean_error;
        ++count;
    }
    std::printf("%-12s %7.1f   (paper: 2.8%% average, 17%% worst max)\n",
                "Average", total_mean / count);
    return 0;
}
