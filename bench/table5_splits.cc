/**
 * @file
 * Reproduces paper Table 5: the most significant regression-tree
 * splits (parameter, split value, depth) for mcf and vortex, built
 * from a 200-point LHS sample of simulated CPI.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sampling/sample_gen.hh"
#include "tree/regression_tree.hh"
#include "tree/split_report.hh"

using namespace ppm;

namespace {

void
reportBenchmark(const std::string &name, bench::CsvWriter &csv)
{
    bench::BenchWorkload wl(name);
    math::Rng rng(bench::masterSeed());
    auto sample = sampling::bestLatinHypercube(wl.trainSpace(), 200, 50,
                                               rng).points;
    auto ys = wl.oracle().evaluateAll(sample);
    std::vector<dspace::UnitPoint> unit;
    for (const auto &p : sample)
        unit.push_back(wl.trainSpace().toUnit(p));

    tree::RegressionTree t(unit, ys, 1);
    auto splits = tree::significantSplits(t, wl.trainSpace(), 8);

    std::printf("\n%s (top 8 splits by error reduction):\n",
                wl.name().c_str());
    std::printf("%4s %-12s %10s %6s %12s\n", "#", "parameter", "value",
                "depth", "err.reduct.");
    for (std::size_t i = 0; i < splits.size(); ++i) {
        const auto &s = splits[i];
        std::printf("%4zu %-12s %10.2f %6d %12.4f\n", i + 1,
                    s.parameter.c_str(), s.raw_value, s.depth,
                    s.error_reduction);
        csv.rowStrings({wl.name(), std::to_string(i + 1), s.parameter,
                        std::to_string(s.raw_value),
                        std::to_string(s.depth),
                        std::to_string(s.error_reduction)});
    }
}

} // namespace

int
main()
{
    bench::header("Table 5: most significant regression-tree splits "
                  "(mcf, vortex)");
    bench::CsvWriter csv("table5_splits",
                         {"benchmark", "rank", "parameter", "value",
                          "depth", "error_reduction"});
    reportBenchmark("mcf", csv);
    reportBenchmark("vortex", csv);
    std::printf("\n(paper: mcf -> L2_lat, dl1_lat, L2_size...; "
                "vortex -> dl1_lat, il1_size, IQ_size...)\n");
    return 0;
}
