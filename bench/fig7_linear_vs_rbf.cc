/**
 * @file
 * Reproduces paper Figure 7: mean prediction error of the linear
 * regression baseline (main effects + two-factor interactions, AIC
 * variable selection) versus the RBF network model, across sample
 * sizes, for three benchmarks. The paper's finding: the nonlinear
 * model is consistently more accurate (mcf at n=200: 6.5% linear vs
 * 2.1% RBF). Also includes the LHS-vs-random sampling ablation at
 * n=90 for mcf.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace ppm;

int
main()
{
    bench::header("Figure 7: linear vs RBF model accuracy");
    bench::CsvWriter csv("fig7_linear_vs_rbf",
                         {"benchmark", "sample_size", "rbf_mean_err",
                          "linear_mean_err"});

    for (const std::string name : {"mcf", "vortex", "twolf"}) {
        bench::BenchWorkload wl(name);
        auto builder = wl.makeBuilder();
        auto opts = bench::singleSizeBuild(0, true);
        opts.sample_sizes = {30, 50, 70, 90, 110, 200};
        auto result = builder.build(opts);

        std::printf("\n%s:\n", wl.name().c_str());
        std::printf("%8s %10s %10s %8s\n", "size", "RBF", "linear",
                    "ratio");
        for (const auto &h : result.history) {
            const double ratio = h.rbf_error.mean_error > 0
                ? h.linear_error.mean_error / h.rbf_error.mean_error
                : 0.0;
            std::printf("%8d %10.2f %10.2f %8.2f\n", h.sample_size,
                        h.rbf_error.mean_error,
                        h.linear_error.mean_error, ratio);
            csv.rowStrings({wl.name(), std::to_string(h.sample_size),
                            std::to_string(h.rbf_error.mean_error),
                            std::to_string(h.linear_error.mean_error)});
        }
    }

    // --- ablation: LHS vs plain random sampling (mcf, n=90) ---------
    bench::header("Ablation: LHS vs random sampling (mcf, n=90)");
    bench::BenchWorkload wl("mcf");
    auto builder = wl.makeBuilder();
    auto lhs_opts = bench::singleSizeBuild(90, false);
    auto lhs = builder.build(lhs_opts);
    auto rnd_opts = bench::singleSizeBuild(90, false);
    rnd_opts.use_random_sampling = true;
    auto rnd = builder.build(rnd_opts);
    std::printf("%-20s %10s %12s\n", "sampling", "mean err %",
                "discrepancy");
    std::printf("%-20s %10.2f %12.4f\n", "LHS best-of-50",
                lhs.final().rbf_error.mean_error,
                lhs.final().discrepancy);
    std::printf("%-20s %10.2f %12.4f\n", "plain random",
                rnd.final().rbf_error.mean_error,
                rnd.final().discrepancy);

    bench::CsvWriter acsv("fig7_sampling_ablation",
                          {"sampling", "mean_err", "discrepancy"});
    acsv.rowStrings({"lhs", std::to_string(
                                lhs.final().rbf_error.mean_error),
                     std::to_string(lhs.final().discrepancy)});
    acsv.rowStrings({"random", std::to_string(
                                   rnd.final().rbf_error.mean_error),
                     std::to_string(rnd.final().discrepancy)});
    return 0;
}
