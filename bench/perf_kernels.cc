/**
 * @file
 * Throughput microbenchmarks (google-benchmark) for the library's
 * computational kernels: trace generation, cycle-level simulation,
 * LHS + discrepancy scoring, regression-tree construction, RBF
 * training and prediction. These quantify the central cost claim of
 * the paper: once built, model evaluation is orders of magnitude
 * cheaper than simulation.
 */

#include <benchmark/benchmark.h>

#include <map>

#include <unistd.h>

#include "bench_util.hh"
#include "cache/baseline.hh"
#include "cache/result_cache.hh"
#include "core/evaluator.hh"
#include "core/oracle.hh"
#include "obs/metrics.hh"
#include "obs/trace_span.hh"
#include "rbf/incremental.hh"
#include "rbf/rbf_batch.hh"
#include "sampling/batch_acquisition.hh"
#include "train/online_trainer.hh"
#include "sampling/discrepancy.hh"
#include "sampling/sample_gen.hh"
#include "serve/model_snapshot.hh"
#include "serve/predict_oracle.hh"
#include "serve/remote_oracle.hh"
#include "serve/sim_server.hh"
#include "sim/simulator.hh"
#include "tree/regression_tree.hh"
#include "util/thread_pool.hh"

// Defined in obs_noop.cc, which is compiled with PPM_OBS_DISABLED: the
// same OBS_* macro site shape with every macro expanded to nothing.
namespace bench_noop {
std::uint64_t instrumentedSite(std::uint64_t x);
}

using namespace ppm;

namespace {

const trace::Trace &
sharedTrace()
{
    static const trace::Trace trace =
        trace::generateTrace(trace::profileByName("twolf"), 50000);
    return trace;
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const auto &profile = trace::profileByName("vortex");
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto t = trace::generateTrace(profile, n);
        benchmark::DoNotOptimize(t.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TraceGeneration)->Arg(10000)->Arg(50000);

void
BM_CycleSimulation(benchmark::State &state)
{
    const auto &t = sharedTrace();
    sim::ProcessorConfig cfg;
    sim::SimOptions opts;
    opts.warmup_instructions = 0;
    for (auto _ : state) {
        auto stats = sim::simulate(t, cfg, opts);
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_CycleSimulation);

void
BM_LhsBestOf(benchmark::State &state)
{
    auto space = dspace::paperTrainSpace();
    math::Rng rng(1);
    const int size = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto s = sampling::bestLatinHypercube(space, size, 10, rng);
        benchmark::DoNotOptimize(s.discrepancy);
    }
}
BENCHMARK(BM_LhsBestOf)->Arg(50)->Arg(200);

void
BM_Discrepancy(benchmark::State &state)
{
    auto space = dspace::paperTrainSpace();
    math::Rng rng(2);
    auto sample = sampling::latinHypercubeSample(
        space, static_cast<int>(state.range(0)), rng);
    auto unit = sampling::toUnitSample(space, sample);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sampling::centeredL2Discrepancy(unit));
    }
}
BENCHMARK(BM_Discrepancy)->Arg(90)->Arg(300);

struct FitData
{
    std::vector<dspace::UnitPoint> xs;
    std::vector<double> ys;
};

FitData
fitData(std::size_t n)
{
    math::Rng rng(3);
    FitData d;
    for (std::size_t i = 0; i < n; ++i) {
        dspace::UnitPoint x(9);
        for (auto &v : x)
            v = rng.uniform();
        d.xs.push_back(x);
        d.ys.push_back(1.0 + x[0] + 2.0 * x[1] * x[4] +
                       1.0 / (0.2 + x[5]));
    }
    return d;
}

void
BM_TreeConstruction(benchmark::State &state)
{
    const auto d = fitData(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        tree::RegressionTree t(d.xs, d.ys, 1);
        benchmark::DoNotOptimize(t.nodeCount());
    }
}
BENCHMARK(BM_TreeConstruction)->Arg(90)->Arg(200);

void
BM_RbfTraining(benchmark::State &state)
{
    const auto d = fitData(static_cast<std::size_t>(state.range(0)));
    auto opts = bench::benchTrainerOptions();
    for (auto _ : state) {
        auto model = rbf::trainRbfModel(d.xs, d.ys, opts);
        benchmark::DoNotOptimize(model.num_centers);
    }
}
BENCHMARK(BM_RbfTraining)->Unit(benchmark::kMillisecond)
    ->Arg(50)->Arg(90);

/**
 * The headline parallel-engine benchmark: a 200-point oracle batch
 * (the paper's largest sample size) swept over pool sizes. Argument =
 * thread count; compare threads=1 vs threads=N wall clock for the
 * parallel speedup. A fresh oracle per iteration keeps every
 * simulation uncached.
 */
void
BM_OracleBatch200(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    util::setGlobalThreads(threads);
    static const trace::Trace tr =
        trace::generateTrace(trace::profileByName("mcf"), 4000);
    auto space = dspace::paperTrainSpace();
    math::Rng rng(5);
    std::vector<dspace::DesignPoint> points;
    for (int i = 0; i < 200; ++i)
        points.push_back(space.randomPoint(rng));
    sim::SimOptions opts;
    opts.warmup_instructions = 0;
    for (auto _ : state) {
        core::SimulatorOracle oracle(space, tr, opts);
        auto ys = oracle.evaluateAll(points);
        benchmark::DoNotOptimize(ys.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 200);
    util::setGlobalThreads(0);
}
BENCHMARK(BM_OracleBatch200)->Unit(benchmark::kMillisecond)
    ->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/**
 * The same 200-point batch served through the sharded simulation
 * service: an in-process SimServer (argument = worker count) with a
 * RemoteOracle client, versus BM_OracleBatch200's local oracle for
 * the protocol + socket overhead. Fresh random points every iteration
 * keep the server's memo cache cold.
 */
void
BM_OracleBatchSharded(benchmark::State &state)
{
    const auto workers = static_cast<unsigned>(state.range(0));
    util::setGlobalThreads(workers);
    static const trace::Trace tr =
        trace::generateTrace(trace::profileByName("mcf"), 4000);
    auto space = dspace::paperTrainSpace();
    sim::SimOptions opts;
    opts.warmup_instructions = 0;

    serve::ServerOptions server_opts;
    server_opts.socket_path = "/tmp/ppm_bench_" +
                              std::to_string(::getpid()) + ".sock";
    server_opts.num_workers = workers;
    serve::SimServer server(server_opts);
    server.start();

    serve::RemoteOptions remote_opts;
    remote_opts.sockets = {server_opts.socket_path};
    remote_opts.chunk_points = 8;
    remote_opts.max_connections = workers;

    std::uint64_t round = 0;
    for (auto _ : state) {
        state.PauseTiming();
        math::Rng rng = math::Rng::stream(5, round++);
        std::vector<dspace::DesignPoint> points;
        for (int i = 0; i < 200; ++i)
            points.push_back(space.randomPoint(rng));
        serve::RemoteOracle oracle(space, "mcf", tr, opts,
                                   core::Metric::Cpi, remote_opts);
        state.ResumeTiming();
        auto ys = oracle.evaluateAll(points);
        benchmark::DoNotOptimize(ys.data());
    }
    server.stop();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 200);
    util::setGlobalThreads(0);
}
BENCHMARK(BM_OracleBatchSharded)->Unit(benchmark::kMillisecond)
    ->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/**
 * A PREDICT batch served end to end through the prediction plane
 * (argument = batch size): PredictOracle -> Unix socket -> SimServer
 * hosting a snapshot -> predictWithSnapshot -> response. Against
 * BM_RbfPrediction (the bare in-process kernel) this quantifies the
 * serving overhead — framing, CRC, syscalls — and how the batch size
 * amortizes it, which is the number that justifies shipping model
 * snapshots to a server instead of shipping simulators.
 */
void
BM_PredictServe(benchmark::State &state)
{
    const auto batch_size = static_cast<int>(state.range(0));
    auto space = dspace::paperTrainSpace();
    static const serve::ModelSnapshot snap = [] {
        const auto sp = dspace::paperTrainSpace();
        math::Rng rng(23);
        std::vector<rbf::GaussianBasis> bases;
        std::vector<double> weights;
        for (int b = 0; b < 32; ++b) {
            dspace::UnitPoint center(sp.size());
            std::vector<double> radius(sp.size());
            for (std::size_t d = 0; d < sp.size(); ++d) {
                center[d] = rng.uniform();
                radius[d] = 0.2 + rng.uniform();
            }
            bases.emplace_back(std::move(center), std::move(radius));
            weights.push_back(rng.uniform() * 4 - 2);
        }
        serve::ModelSnapshot s;
        s.model_version = 1;
        s.benchmark = "twolf";
        s.trace_length = 100000;
        s.train_points = 30;
        s.p_min = 2;
        s.alpha = 1.5;
        s.space = sp;
        s.network =
            rbf::RbfNetwork(std::move(bases), std::move(weights));
        return s;
    }();

    const std::string path = "/tmp/ppm_bench_" +
                             std::to_string(::getpid()) + ".ppmm";
    serve::saveSnapshot(snap, path);
    serve::ServerOptions server_opts;
    server_opts.socket_path = "/tmp/ppm_bench_predict_" +
                              std::to_string(::getpid()) + ".sock";
    server_opts.num_workers = 2;
    server_opts.predict_snapshot = path;
    serve::SimServer server(server_opts);
    server.start();

    serve::RemoteOptions remote_opts;
    remote_opts.sockets = {server_opts.socket_path};
    remote_opts.chunk_points = 64;
    remote_opts.max_connections = 2;
    serve::PredictOracle oracle(snap, remote_opts);

    math::Rng rng(31);
    std::vector<dspace::DesignPoint> points;
    for (int i = 0; i < batch_size; ++i)
        points.push_back(space.randomPoint(rng));

    for (auto _ : state) {
        auto ys = oracle.evaluateAll(points);
        benchmark::DoNotOptimize(ys.data());
    }
    server.stop();
    ::unlink(path.c_str());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * batch_size);
}
BENCHMARK(BM_PredictServe)->Unit(benchmark::kMicrosecond)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->UseRealTime();

/** (p_min, alpha) grid training under the same thread sweep. */
void
BM_RbfTrainingThreads(benchmark::State &state)
{
    const auto d = fitData(90);
    auto opts = bench::benchTrainerOptions();
    util::setGlobalThreads(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        auto model = rbf::trainRbfModel(d.xs, d.ys, opts);
        benchmark::DoNotOptimize(model.num_centers);
    }
    util::setGlobalThreads(0);
}
BENCHMARK(BM_RbfTrainingThreads)->Unit(benchmark::kMillisecond)
    ->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/**
 * One adaptive infill acquisition round over a 2000-candidate pool
 * against a 90-point sample: sequential (arg0 = 0, one scoring pass
 * per pick) vs determinantal (arg0 = 1, one scoring pass per round,
 * joint greedy max-determinant selection), batch sizes 1/4/16.
 * Sequential cost grows linearly in the batch size; determinantal
 * stays one pass plus the cheap rank-1-update selection.
 */
void
BM_AdaptiveAcquisition(benchmark::State &state)
{
    const auto strategy = state.range(0) == 0
        ? sampling::BatchStrategy::Sequential
        : sampling::BatchStrategy::Determinantal;
    const int batch = static_cast<int>(state.range(1));
    auto space = dspace::paperTrainSpace();
    const auto d = fitData(90);
    const tree::RegressionTree tree(d.xs, d.ys, 8);
    const sampling::VariabilityFn variability =
        [&tree](const dspace::UnitPoint &x) { return tree.leafStd(x); };
    sampling::BatchAcquisitionOptions opts;
    opts.batch_size = batch;
    opts.candidate_pool = 2000;
    for (auto _ : state) {
        math::Rng rng(7);
        auto picked = sampling::acquireBatch(strategy, space, d.xs,
                                             variability, opts, rng);
        benchmark::DoNotOptimize(picked.points.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_AdaptiveAcquisition)->Unit(benchmark::kMillisecond)
    ->ArgNames({"strategy", "batch"})
    ->Args({0, 1})->Args({0, 4})->Args({0, 16})
    ->Args({1, 1})->Args({1, 4})->Args({1, 16});

/**
 * Continuous-training cost at archive scale: folding ONE fresh point
 * into the streaming normal-equation state (rank-1 Cholesky update +
 * two triangular solves, O(m^2) independent of the archive size)
 * versus the full trainRbfModel() pass (new tree, new subset
 * selection, fresh grid search over the whole archive) the online
 * trainer falls back to on its growth/error triggers. arg = archive
 * size n; both benchmarks share the same archive and the same
 * capacity-capped onlineRefitOptions(n). The committed
 * bench_results/BENCH_online.json ratio at n = 4096 backs the >= 10x
 * steady-state claim in DESIGN.md.
 */
struct OnlineArchive
{
    FitData data;
    rbf::TrainedRbf model;
};

const OnlineArchive &
onlineArchive(std::size_t n)
{
    static std::map<std::size_t, OnlineArchive> cache;
    auto it = cache.find(n);
    if (it == cache.end()) {
        OnlineArchive a;
        a.data = fitData(n);
        a.model = rbf::trainRbfModel(a.data.xs, a.data.ys,
                                     train::onlineRefitOptions(n));
        it = cache.emplace(n, std::move(a)).first;
    }
    return it->second;
}

void
BM_OnlineIncrementalFold(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const OnlineArchive &a = onlineArchive(n);
    rbf::IncrementalFit fit(a.model.network.bases());
    for (std::size_t i = 0; i < n; ++i)
        fit.fold(a.data.xs[i], a.data.ys[i]);
    math::Rng rng(11);
    dspace::UnitPoint x(a.data.xs.front().size());
    for (auto _ : state) {
        for (auto &v : x)
            v = rng.uniform();
        fit.fold(x, 1.0 + x[0]);
        auto w = fit.solve();
        benchmark::DoNotOptimize(w.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OnlineIncrementalFold)->Unit(benchmark::kMillisecond)
    ->ArgName("archive")->Arg(1024)->Arg(4096);

void
BM_OnlineFullRetrain(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const OnlineArchive &a = onlineArchive(n);
    const auto opts = train::onlineRefitOptions(n);
    for (auto _ : state) {
        auto model = rbf::trainRbfModel(a.data.xs, a.data.ys, opts);
        benchmark::DoNotOptimize(model.num_centers);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OnlineFullRetrain)->Unit(benchmark::kMillisecond)
    ->ArgName("archive")->Arg(1024)->Arg(4096);

void
BM_RbfPrediction(benchmark::State &state)
{
    const auto d = fitData(120);
    auto model = rbf::trainRbfModel(d.xs, d.ys,
                                    bench::benchTrainerOptions());
    math::Rng rng(4);
    dspace::UnitPoint x(9);
    for (auto &v : x)
        v = rng.uniform();
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.network.predict(x));
        x[0] = rng.uniform();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RbfPrediction);

/**
 * Batched inference throughput over a m=64, d=9 network — the model
 * size the paper's trainer typically lands on. args: (batch size,
 * mode) with mode 0 = the legacy scalar AoS inference loop (one
 * GaussianBasis::evaluate call per (point, basis) pair — the path
 * RbfNetwork::predict ran before BatchPlan existed, and the baseline
 * the SIMD speedup is quoted against), 1 = the BatchPlan scalar
 * reference (SoA layout, still bit-compatible std::exp semantics),
 * 2 = the runtime-dispatched SIMD kernel. The label names the kernel
 * actually run so results stay honest on machines where dispatch
 * falls back to scalar. Committed sweeps live in
 * bench_results/BENCH_rbf_simd.json.
 */
void
BM_RbfBatch(benchmark::State &state)
{
    const auto batch = static_cast<std::size_t>(state.range(0));
    const long mode = state.range(1);
    const std::size_t m = 64, dims = 9;
    math::Rng rng(9);
    std::vector<rbf::GaussianBasis> bases;
    std::vector<double> weights;
    for (std::size_t j = 0; j < m; ++j) {
        dspace::UnitPoint c(dims);
        std::vector<double> r(dims);
        for (std::size_t k = 0; k < dims; ++k) {
            c[k] = rng.uniform();
            r[k] = 0.1 + rng.uniform();
        }
        bases.emplace_back(std::move(c), std::move(r));
        weights.push_back(rng.gaussian(0.0, 2.0));
    }
    const rbf::BatchPlan plan(bases, weights,
                              mode == 2 ? rbf::activeSimd()
                                        : rbf::SimdKind::Scalar);
    std::vector<dspace::UnitPoint> xs(batch,
                                      dspace::UnitPoint(dims));
    for (auto &x : xs)
        for (auto &v : x)
            v = rng.uniform();
    if (mode == 0) {
        std::vector<double> out(batch);
        for (auto _ : state) {
            for (std::size_t i = 0; i < batch; ++i) {
                double acc = 0.0;
                for (std::size_t j = 0; j < m; ++j)
                    acc += weights[j] * bases[j].evaluate(xs[i]);
                out[i] = acc;
            }
            benchmark::DoNotOptimize(out.data());
        }
        state.SetLabel("legacy-aos");
    } else {
        for (auto _ : state) {
            auto out = plan.predict(xs);
            benchmark::DoNotOptimize(out.data());
        }
        state.SetLabel(mode == 1 ? "plan-scalar"
                                 : rbf::simdKindName(plan.kind()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_RbfBatch)->ArgNames({"batch", "mode"})
    ->Args({1, 0})->Args({1, 1})->Args({1, 2})
    ->Args({16, 0})->Args({16, 1})->Args({16, 2})
    ->Args({256, 0})->Args({256, 1})->Args({256, 2})
    ->Args({4096, 0})->Args({4096, 1})->Args({4096, 2});

// --- observability overhead ------------------------------------------

/** One relaxed sharded fetch_add: the cost of a counter event. */
void
BM_ObsCounterAdd(benchmark::State &state)
{
    auto &c = obs::Registry::instance().counter("bench.counter");
    for (auto _ : state)
        c.add(1);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterAdd);

/** Three relaxed adds on one shard: the cost of a histogram event. */
void
BM_ObsHistogramObserve(benchmark::State &state)
{
    auto &h = obs::Registry::instance().histogram("bench.hist");
    std::uint64_t ns = 1;
    for (auto _ : state) {
        h.observe(ns);
        ns = ns * 2862933555777941757ull + 3037000493ull;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsHistogramObserve);

/**
 * A full instrumented site with the registry compiled in: scoped span
 * (two clock reads + one histogram observe) plus a counter add —
 * exactly what a hot path like Oracle::evaluateAll pays per event.
 * Compare against BM_ObsSpanCompiledOut for the on-vs-off delta.
 */
void
BM_ObsSpan(benchmark::State &state)
{
    std::uint64_t acc = 0;
    for (auto _ : state) {
        OBS_SPAN("bench.site");
        OBS_STATIC_COUNTER(events, "bench.site.events");
        OBS_ADD(events, 1);
        acc = acc * 2654435761u + 1;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsSpan);

/**
 * The same site shape compiled with PPM_OBS_DISABLED (obs_noop.cc):
 * every macro expands to nothing, so this measures the no-op floor.
 */
void
BM_ObsSpanCompiledOut(benchmark::State &state)
{
    std::uint64_t acc = 0;
    for (auto _ : state) {
        acc = bench_noop::instrumentedSite(acc);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsSpanCompiledOut);

/**
 * Distributed-tracing overhead at a representative propagation site:
 * a trace root, one context hand-off (what the sharded client and the
 * thread pool do per dispatch), and one nested span. The sample arg
 * is PPM_TRACE_SAMPLE: 0 is the tracing-off guard — its delta over
 * BM_ObsSpan is the cost tracing adds to an already-instrumented hot
 * path, contractually one relaxed atomic load per site — 1 records
 * every root (worst case), 128 is a production-like sampling rate.
 * Committed sweeps live in bench_results/BENCH_obs_v2.json.
 */
void
BM_TraceContextPropagate(benchmark::State &state)
{
    const auto every = static_cast<std::uint32_t>(state.range(0));
    obs::setTraceSampleEvery(every);
    obs::SpanBuffer::instance().clear();
    std::uint64_t acc = 0;
    for (auto _ : state) {
        obs::TraceRoot root("bench.trace_root");
        const obs::TraceContext ctx = obs::currentTraceContext();
        obs::ScopedTraceContext scope(ctx);
        OBS_SPAN("bench.trace_child");
        acc = acc * 2654435761u + ctx.trace_lo;
        benchmark::DoNotOptimize(acc);
    }
    obs::setTraceSampleEvery(0);
    obs::SpanBuffer::instance().clear();
    state.SetLabel(every == 0 ? "tracing-off"
                              : "sample-1-in-" +
                                    std::to_string(every));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceContextPropagate)->ArgNames({"sample"})
    ->Arg(0)->Arg(1)->Arg(128);

/**
 * ThreadPool::forEach dispatch overhead on trivial items, grain=1
 * (legacy one-index-per-claim) versus grain=0 (auto chunking,
 * ~8 chunks per worker). The work per item is a few nanoseconds, so
 * wall clock is dominated by dispatch; the "dispatch_us_mean" counter
 * reports the mean forEach latency as measured by the new
 * span.pool.forEach timer rather than by the benchmark loop.
 */
void
BM_PoolDispatch(benchmark::State &state)
{
    const auto grain = static_cast<std::size_t>(state.range(0));
    constexpr std::size_t kItems = 1 << 14;
    util::setGlobalThreads(4);
    auto &pool = util::globalPool();
    std::vector<std::uint64_t> out(kItems, 0);
    auto &span_hist =
        obs::Registry::instance().histogram("span.pool.forEach");
    span_hist.reset();
    for (auto _ : state) {
        pool.forEach(kItems, [&out](std::size_t i) {
            out[i] = i * 2654435761u + 1;
        }, grain);
        benchmark::DoNotOptimize(out.data());
    }
    const auto data = span_hist.data();
    if (data.count > 0)
        state.counters["dispatch_us_mean"] = benchmark::Counter(
            static_cast<double>(data.total_ns) /
            static_cast<double>(data.count) / 1000.0);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kItems));
    util::setGlobalThreads(0);
}
BENCHMARK(BM_PoolDispatch)->ArgNames({"grain"})
    ->Arg(1)->Arg(0)->UseRealTime();

// --- result cache vs. the mutex-map baseline -------------------------
//
// The serving claim behind src/cache/: a point lookup must run at
// memory speed and scale with readers, where the old design — one
// mutex around an ordered map — serializes every probe and pays a
// full lexicographic key compare per tree level. Keys mirror oracle
// keys: a context word plus the paper's 9-word fixed-point design point.

constexpr std::size_t kCacheBenchEntries = 600000;
constexpr std::size_t kCacheBenchKeyWords = 10;

/** Deterministic 13-word key for index @p i, written into @p key. */
void
benchKeyFor(std::uint64_t i, cache::ResultCache::Key &key)
{
    key.resize(kCacheBenchKeyWords);
    key[0] = 0;
    for (std::size_t w = 1; w < kCacheBenchKeyWords; ++w)
        key[w] = static_cast<std::int64_t>(i * w + (i >> 3));
}

cache::CacheConfig
cacheBenchConfig(std::size_t budget_bytes)
{
    cache::CacheConfig config;
    config.key_words = kCacheBenchKeyWords;
    config.budget_bytes = budget_bytes;
    config.shards = 8;
    return config;
}

cache::ResultCache &
prefilledResultCache()
{
    // ResultCache is neither copyable nor movable: construct in
    // place and fill once.
    // Sized for a light load factor (~0.25): a serving cache is run
    // with budget headroom, which keeps probes inside the first cell
    // of each group.
    static cache::ResultCache table(cacheBenchConfig(128u << 20));
    static const bool filled = [] {
        cache::ResultCache::Key key;
        for (std::uint64_t i = 0; i < kCacheBenchEntries; ++i) {
            benchKeyFor(i, key);
            table.insert(key, static_cast<double>(i) * 0.5, false);
        }
        return true;
    }();
    (void)filled;
    return table;
}

cache::MutexMapCache &
prefilledMutexMap()
{
    static cache::MutexMapCache map;
    static const bool filled = [] {
        cache::ResultCache::Key key;
        for (std::uint64_t i = 0; i < kCacheBenchEntries; ++i) {
            benchKeyFor(i, key);
            map.insert(key, static_cast<double>(i) * 0.5);
        }
        return true;
    }();
    (void)filled;
    return map;
}

/**
 * Point lookups at a controlled hit ratio (arg = hits per 100
 * probes), across reader counts. The concurrent table's reads are
 * lock-free seqlock-certified probes of one 256-byte group.
 */
void
BM_CacheLookup(benchmark::State &state)
{
    cache::ResultCache &table = prefilledResultCache();
    const auto span =
        static_cast<std::uint64_t>(100 / state.range(0)) *
        kCacheBenchEntries;
    std::uint64_t rng = 0x9E3779B97F4A7C15ULL +
                        static_cast<std::uint64_t>(state.thread_index());
    cache::ResultCache::Key key;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        benchKeyFor((rng >> 24) % span, key);
        double value = 0.0;
        hits += table.lookup(key, &value);
        benchmark::DoNotOptimize(value);
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheLookup)->ArgNames({"hit_pct"})
    ->Arg(100)->Arg(50)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

/** The same probe stream against the mutex-map baseline. */
void
BM_MutexMapLookup(benchmark::State &state)
{
    cache::MutexMapCache &map = prefilledMutexMap();
    const auto span =
        static_cast<std::uint64_t>(100 / state.range(0)) *
        kCacheBenchEntries;
    std::uint64_t rng = 0x9E3779B97F4A7C15ULL +
                        static_cast<std::uint64_t>(state.thread_index());
    cache::ResultCache::Key key;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        benchKeyFor((rng >> 24) % span, key);
        double value = 0.0;
        hits += map.lookup(key, &value);
        benchmark::DoNotOptimize(value);
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MutexMapLookup)->ArgNames({"hit_pct"})
    ->Arg(100)->Arg(50)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

constexpr std::size_t kCacheBenchBatch = 64;

/**
 * The serving hot path: batched lookups, the access pattern of every
 * oracle batch. lookupBatch() hashes and prefetches a window of keys
 * ahead of the probes, so per-key cost is bounded by memory-level
 * parallelism instead of serialized miss latency.
 */
void
BM_CacheLookupBatch(benchmark::State &state)
{
    cache::ResultCache &table = prefilledResultCache();
    const auto span =
        static_cast<std::uint64_t>(100 / state.range(0)) *
        kCacheBenchEntries;
    std::uint64_t rng = 0x9E3779B97F4A7C15ULL +
                        static_cast<std::uint64_t>(state.thread_index());
    std::vector<cache::ResultCache::Key> keys(kCacheBenchBatch);
    double values[kCacheBenchBatch];
    bool found[kCacheBenchBatch];
    std::uint64_t hits = 0;
    for (auto _ : state) {
        for (auto &key : keys) {
            rng = rng * 6364136223846793005ULL +
                  1442695040888963407ULL;
            benchKeyFor((rng >> 24) % span, key);
        }
        hits += table.lookupBatch(keys.data(), keys.size(), values,
                                  found);
        benchmark::DoNotOptimize(values[0]);
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kCacheBenchBatch));
}
BENCHMARK(BM_CacheLookupBatch)->ArgNames({"hit_pct"})
    ->Arg(100)->Arg(50)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

/**
 * The same batched probe stream against the mutex-map baseline, in
 * its best case: one lock acquisition amortized over the whole
 * batch. The tree walk itself cannot be pipelined, which is the
 * structural gap this sweep quantifies.
 */
void
BM_MutexMapLookupBatch(benchmark::State &state)
{
    cache::MutexMapCache &map = prefilledMutexMap();
    const auto span =
        static_cast<std::uint64_t>(100 / state.range(0)) *
        kCacheBenchEntries;
    std::uint64_t rng = 0x9E3779B97F4A7C15ULL +
                        static_cast<std::uint64_t>(state.thread_index());
    std::vector<cache::ResultCache::Key> keys(kCacheBenchBatch);
    double values[kCacheBenchBatch];
    bool found[kCacheBenchBatch];
    std::uint64_t hits = 0;
    for (auto _ : state) {
        for (auto &key : keys) {
            rng = rng * 6364136223846793005ULL +
                  1442695040888963407ULL;
            benchKeyFor((rng >> 24) % span, key);
        }
        hits += map.lookupBatch(keys.data(), keys.size(), values,
                                found);
        benchmark::DoNotOptimize(values[0]);
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(kCacheBenchBatch));
}
BENCHMARK(BM_MutexMapLookupBatch)->ArgNames({"hit_pct"})
    ->Arg(100)->Arg(50)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

/**
 * Insert throughput at eviction steady state: the budgeted table
 * recycles slots via the clock sweep; the baseline map grows without
 * bound and re-balances.
 */
void
BM_CacheInsert(benchmark::State &state)
{
    static cache::ResultCache table(cacheBenchConfig(8u << 20));
    std::uint64_t i =
        static_cast<std::uint64_t>(state.thread_index()) << 40;
    cache::ResultCache::Key key;
    for (auto _ : state) {
        benchKeyFor(i++, key);
        table.insert(key, static_cast<double>(i) * 0.25, false);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheInsert)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

/** The same insert stream against the mutex-map baseline. */
void
BM_MutexMapInsert(benchmark::State &state)
{
    static cache::MutexMapCache map;
    std::uint64_t i =
        static_cast<std::uint64_t>(state.thread_index()) << 40;
    cache::ResultCache::Key key;
    for (auto _ : state) {
        benchKeyFor(i++, key);
        map.insert(key, static_cast<double>(i) * 0.25);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MutexMapInsert)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

} // namespace
