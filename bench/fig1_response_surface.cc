/**
 * @file
 * Reproduces paper Figure 1: the simulated CPI response surface for
 * vortex over L1 instruction cache size x L2 latency, with all other
 * parameters fixed — the motivating example of non-linear response
 * (higher L2 latency hurts more when the instruction cache is small).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace ppm;

int
main()
{
    bench::header("Figure 1: vortex CPI surface over (il1_size, L2_lat)");
    bench::BenchWorkload wl("vortex");
    auto &oracle = wl.oracle();

    const int il1_levels[] = {8, 16, 32, 64};
    const int l2_lats[] = {5, 8, 11, 14, 17, 20};

    bench::CsvWriter csv("fig1_response_surface",
                         {"il1_size_kb", "l2_lat", "cpi"});

    std::printf("%-10s", "il1\\L2lat");
    for (int lat : l2_lats)
        std::printf(" %7d", lat);
    std::printf("\n");

    // Simulate the whole grid as one batch across the thread pool;
    // printing below then reads from the (now warm) memo cache.
    std::vector<dspace::DesignPoint> grid;
    for (int il1 : il1_levels)
        for (int lat : l2_lats)
            grid.push_back({14, 64, 0.5, 0.5, 1024,
                            static_cast<double>(lat),
                            static_cast<double>(il1), 32, 2});
    oracle.evaluateAll(grid);

    double low_corner = 0, high_corner = 0;
    double big_il1_low = 0, big_il1_high = 0;
    for (int il1 : il1_levels) {
        std::printf("%6dKB  ", il1);
        for (int lat : l2_lats) {
            dspace::DesignPoint pt{14, 64, 0.5, 0.5, 1024,
                                   static_cast<double>(lat),
                                   static_cast<double>(il1), 32, 2};
            const double cpi = oracle.cpi(pt);
            std::printf(" %7.3f", cpi);
            csv.row({static_cast<double>(il1),
                     static_cast<double>(lat), cpi});
            if (il1 == 8 && lat == 5)
                low_corner = cpi;
            if (il1 == 8 && lat == 20)
                high_corner = cpi;
            if (il1 == 64 && lat == 5)
                big_il1_low = cpi;
            if (il1 == 64 && lat == 20)
                big_il1_high = cpi;
        }
        std::printf("\n");
    }

    // The paper's qualitative claim: L2 latency has a larger influence
    // when the instruction cache is small.
    const double small_il1_sensitivity = high_corner - low_corner;
    const double big_il1_sensitivity = big_il1_high - big_il1_low;
    std::printf("\nL2-latency sensitivity: il1=8KB -> %.3f CPI, "
                "il1=64KB -> %.3f CPI (paper: small il1 suffers more)\n",
                small_il1_sensitivity, big_il1_sensitivity);
    std::printf("simulations: %lu\n",
                static_cast<unsigned long>(oracle.evaluations()));
    return 0;
}
