/**
 * @file
 * Reproduces paper Figure 2: the best obtained L2-star discrepancy as
 * a function of the number of simulations (sample size) for the
 * 9-parameter space, showing the knee around ~90 samples the paper
 * uses to choose its operating point. Also reports the plain-random
 * baseline as an ablation of latin hypercube sampling.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sampling/discrepancy.hh"
#include "sampling/sample_gen.hh"

using namespace ppm;

int
main()
{
    bench::header(
        "Figure 2: best L2-star discrepancy vs number of simulations");
    auto space = dspace::paperTrainSpace();
    math::Rng rng(bench::masterSeed());

    bench::CsvWriter csv("fig2_discrepancy",
                         {"sample_size", "best_lhs", "single_lhs",
                          "random"});

    std::printf("%8s %12s %12s %12s\n", "size", "best-of-50",
                "single LHS", "random");

    const int sizes[] = {10, 20, 30, 50, 70, 90, 110, 150, 200, 250,
                         300};
    double prev_best = 1e9;
    for (int size : sizes) {
        const auto best =
            sampling::bestLatinHypercube(space, size, 50, rng);
        const auto single =
            sampling::bestLatinHypercube(space, size, 1, rng);
        const auto random = sampling::randomSample(space, size, rng);
        const double random_disc = sampling::centeredL2Discrepancy(
            sampling::toUnitSample(space, random));
        std::printf("%8d %12.5f %12.5f %12.5f\n", size,
                    best.discrepancy, single.discrepancy, random_disc);
        csv.row({static_cast<double>(size), best.discrepancy,
                 single.discrepancy, random_disc});
        prev_best = best.discrepancy;
    }
    (void)prev_best;

    std::printf("\n(The curve tapers near ~90 samples — the knee the "
                "paper picks; LHS < random at every size.)\n");
    return 0;
}
