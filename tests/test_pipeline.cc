/**
 * @file
 * Unit tests for the out-of-order core on hand-built traces with
 * known timing, plus ProcessorConfig validation and conversion.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "dspace/paper_space.hh"
#include "sim/ooo_core.hh"
#include "sim/simulator.hh"

namespace {

using namespace ppm;
using namespace ppm::sim;
using trace::OpClass;
using trace::TraceInstruction;
using trace::kNoReg;

/** Builds consistent straight-line or branching traces. */
class TraceBuilder
{
  public:
    TraceBuilder() : trace_("handmade") {}

    /** Append a non-branch op at the next sequential PC. */
    TraceBuilder &
    op(OpClass cls, trace::RegId dest = kNoReg,
       trace::RegId src0 = kNoReg, trace::RegId src1 = kNoReg,
       std::uint64_t addr = 0)
    {
        TraceInstruction i;
        i.pc = pc_;
        i.op = cls;
        i.dest = dest;
        i.src[0] = src0;
        i.src[1] = src1;
        i.mem_addr = addr;
        trace_.push(i);
        pc_ += 4;
        return *this;
    }

    /** Append a conditional branch; the next PC follows the outcome. */
    TraceBuilder &
    branch(bool taken, std::uint64_t target)
    {
        TraceInstruction i;
        i.pc = pc_;
        i.op = OpClass::BranchCond;
        i.branch_target = target;
        i.taken = taken;
        trace_.push(i);
        pc_ = taken ? target : pc_ + 4;
        return *this;
    }

    /** Append an unconditional jump (used to close loops). */
    TraceBuilder &
    jump(std::uint64_t target)
    {
        TraceInstruction i;
        i.pc = pc_;
        i.op = OpClass::BranchUncond;
        i.branch_target = target;
        i.taken = true;
        trace_.push(i);
        pc_ = target;
        return *this;
    }

    std::uint64_t pc() const { return pc_; }

    trace::Trace take() { return std::move(trace_); }

  private:
    trace::Trace trace_;
    std::uint64_t pc_ = 0x400000;
};

/**
 * Emit `reps` iterations of a loop whose body is produced by
 * @p body(builder, iteration); the loop code re-executes the same PCs
 * so instruction fetch runs warm, as in steady-state program loops.
 */
template <typename BodyFn>
trace::Trace
loopTrace(int reps, BodyFn body)
{
    TraceBuilder b;
    const std::uint64_t head = b.pc();
    for (int r = 0; r < reps; ++r) {
        body(b, r);
        b.jump(head);
    }
    return b.take();
}

ProcessorConfig
fastConfig()
{
    ProcessorConfig cfg; // defaults are a mid-range 4-wide core
    return cfg;
}

SimStats
run(const trace::Trace &t, const ProcessorConfig &cfg)
{
    SimOptions opts;
    opts.warmup_instructions = 0;
    return simulate(t, cfg, opts);
}

TEST(Config, DefaultsValid)
{
    EXPECT_NO_THROW(fastConfig().validate());
}

TEST(Config, RejectsBadValues)
{
    auto bad = fastConfig();
    bad.rob_size = 4;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = fastConfig();
    bad.iq_size = bad.rob_size + 1;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = fastConfig();
    bad.l2_lat = 1; // not slower than DL1
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = fastConfig();
    bad.l2_size_kb = 32; // smaller than DL1
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    bad = fastConfig();
    bad.line_size = 48;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Config, FrontEndDepthDerivation)
{
    auto cfg = fastConfig();
    cfg.pipe_depth = 14;
    cfg.backend_stages = 5;
    EXPECT_EQ(cfg.frontEndDepth(), 9);
    cfg.pipe_depth = 7;
    EXPECT_EQ(cfg.frontEndDepth(), 2);
}

TEST(Config, FromDesignPointPaperLayout)
{
    auto space = dspace::paperTrainSpace();
    dspace::DesignPoint pt{14, 64, 0.5, 0.5, 1024, 12, 32, 16, 2};
    auto cfg = ProcessorConfig::fromDesignPoint(space, pt);
    EXPECT_EQ(cfg.pipe_depth, 14);
    EXPECT_EQ(cfg.rob_size, 64);
    EXPECT_EQ(cfg.iq_size, 32);
    EXPECT_EQ(cfg.lsq_size, 32);
    EXPECT_EQ(cfg.l2_size_kb, 1024);
    EXPECT_EQ(cfg.l2_lat, 12);
    EXPECT_EQ(cfg.il1_size_kb, 32);
    EXPECT_EQ(cfg.dl1_size_kb, 16);
    EXPECT_EQ(cfg.dl1_lat, 2);
}

TEST(Config, FromDesignPointFlooredQueues)
{
    auto space = dspace::paperTrainSpace();
    dspace::DesignPoint pt{14, 24, 0.25, 0.25, 1024, 12, 32, 16, 2};
    auto cfg = ProcessorConfig::fromDesignPoint(space, pt);
    EXPECT_EQ(cfg.iq_size, 8); // floor, 0.25*24 = 6 -> 8
}

TEST(Config, FromDesignPointWrongArityThrows)
{
    auto space = dspace::paperTrainSpace();
    EXPECT_THROW(
        ProcessorConfig::fromDesignPoint(space, {1, 2, 3}),
        std::invalid_argument);
}

TEST(Pipeline, IndependentAluStreamApproachesWidth)
{
    // 4-wide core, independent single-cycle ops in a warm loop:
    // CPI near 0.25 (plus the loop-closing jump overhead).
    auto t = loopTrace(80, [](TraceBuilder &b, int) {
        for (int i = 0; i < 63; ++i)
            b.op(OpClass::IntAlu,
                 static_cast<trace::RegId>(2 + (i % 50)));
    });
    auto stats = run(t, fastConfig());
    EXPECT_LT(stats.cpi(), 0.45);
    EXPECT_GE(stats.cpi(), 0.25 - 1e-9);
}

TEST(Pipeline, SerialDependencyChainIsOnePerCycle)
{
    // Every op reads the previous op's result: CPI >= 1.
    auto t = loopTrace(40, [](TraceBuilder &b, int) {
        for (int i = 0; i < 63; ++i)
            b.op(OpClass::IntAlu, 5, 5);
    });
    auto stats = run(t, fastConfig());
    EXPECT_GT(stats.cpi(), 0.90);
    EXPECT_LT(stats.cpi(), 1.3);
}

TEST(Pipeline, DivChainCostsDivLatency)
{
    // Dependent integer divides: ~20 cycles each.
    auto t = loopTrace(20, [](TraceBuilder &b, int) {
        for (int i = 0; i < 31; ++i)
            b.op(OpClass::IntDiv, 5, 5);
    });
    auto stats = run(t, fastConfig());
    EXPECT_GT(stats.cpi(), 17.0);
    EXPECT_LT(stats.cpi(), 23.0);
}

TEST(Pipeline, LoadUseLatencyVisible)
{
    // Dependent load chain to one hot line: dl1_lat per load plus
    // issue overheads; raising dl1_lat must raise CPI by ~delta.
    auto mk = [] {
        return loopTrace(30, [](TraceBuilder &b, int) {
            for (int i = 0; i < 50; ++i)
                b.op(OpClass::Load, 5, 5, kNoReg, 0x10000000);
        });
    };
    auto cfg1 = fastConfig();
    cfg1.dl1_lat = 1;
    auto cfg4 = fastConfig();
    cfg4.dl1_lat = 4;
    const double cpi1 = run(mk(), cfg1).cpi();
    const double cpi4 = run(mk(), cfg4).cpi();
    EXPECT_NEAR(cpi4 - cpi1, 3.0, 0.6);
}

TEST(Pipeline, StoreToLoadForwarding)
{
    // Alternating store/load to the same word: loads forward from
    // the store buffer, so CPI stays low even with a slow DL1.
    auto t = loopTrace(40, [](TraceBuilder &b, int) {
        for (int i = 0; i < 25; ++i) {
            b.op(OpClass::Store, kNoReg, 2, 3, 0x10000000);
            b.op(OpClass::Load, 4, 2, kNoReg, 0x10000000);
        }
    });
    auto cfg = fastConfig();
    cfg.dl1_lat = 4;
    auto stats = run(t, cfg);
    EXPECT_LT(stats.cpi(), 1.6);
}

TEST(Pipeline, MispredictionPenaltyGrowsWithPipeDepth)
{
    // Alternating taken/not-taken branch is learnable; use an
    // unpredictable i.i.d. pattern instead via a fixed pseudo-random
    // sequence over one PC.
    auto mk = [] {
        TraceBuilder b;
        std::uint64_t x = 99;
        for (int i = 0; i < 3000; ++i) {
            for (int j = 0; j < 3; ++j)
                b.op(OpClass::IntAlu,
                     static_cast<trace::RegId>(2 + (i + j) % 40));
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            // Branch back to the same block so the static trace loops.
            b.branch(false, 0); // fall-through placeholder
        }
        return b.take();
    };
    // Note: all branches fall through here, but their *predictions*
    // can be wrong while the predictor warms. For a depth effect use
    // genuinely random outcomes on one block:
    auto mk_random = [] {
        TraceBuilder b;
        std::uint64_t x = 7;
        const std::uint64_t head = 0x400000;
        for (int i = 0; i < 4000; ++i) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            const bool taken = (x >> 62) & 1;
            // Two-block loop: branch either repeats the block or
            // falls through to a block that jumps back.
            b.branch(taken, head);
            if (!taken)
                b.branch(true, head);
        }
        return b.take();
    };
    (void)mk;
    auto shallow = fastConfig();
    shallow.pipe_depth = 7;
    auto deep = fastConfig();
    deep.pipe_depth = 24;
    const double cpi_shallow = run(mk_random(), shallow).cpi();
    const double cpi_deep = run(mk_random(), deep).cpi();
    EXPECT_GT(cpi_deep, cpi_shallow * 1.3);
}

TEST(Pipeline, RobSizeLimitsMemoryParallelism)
{
    // Independent cold loads: a bigger ROB/LSQ exposes more MLP.
    auto mk = [] {
        // Sparse independent cold loads (one per 16 instructions)
        // spread across DRAM banks: a small window covers one load's
        // latency, a large window overlaps many.
        int n = 0;
        return loopTrace(50, [&n](TraceBuilder &b, int) {
            for (int i = 0; i < 4; ++i, ++n) {
                const std::uint64_t addr = 0x10000000 +
                    static_cast<std::uint64_t>(n) * 4096 +
                    static_cast<std::uint64_t>(n % 8) * 64;
                b.op(OpClass::Load,
                     static_cast<trace::RegId>(2 + n % 40),
                     kNoReg, kNoReg, addr);
                for (int j = 0; j < 15; ++j)
                    b.op(OpClass::IntAlu,
                         static_cast<trace::RegId>(2 + (i + j) % 40));
            }
        });
    };
    auto small = fastConfig();
    small.rob_size = 16;
    small.iq_size = 8;
    small.lsq_size = 8;
    auto big = fastConfig();
    big.rob_size = 128;
    big.iq_size = 64;
    big.lsq_size = 64;
    const double cpi_small = run(mk(), small).cpi();
    const double cpi_big = run(mk(), big).cpi();
    EXPECT_LT(cpi_big, cpi_small * 0.6);
}

TEST(Pipeline, IcacheMissesStallFetch)
{
    // A code footprint far beyond IL1 forces fetch misses; CPI must
    // exceed the same stream with a tiny footprint.
    auto mk = [](int blocks) {
        TraceBuilder b;
        // Jump between `blocks` distinct 64B-aligned code addresses.
        for (int i = 0; i < 4000; ++i) {
            (void)blocks;
            b.op(OpClass::IntAlu,
                 static_cast<trace::RegId>(2 + i % 40));
        }
        return b.take();
    };
    (void)mk;
    // Build an explicit large-footprint trace: touch 4096 lines of
    // code round-robin via taken branches.
    trace::Trace big("big-code");
    {
        std::uint64_t pc = 0x400000;
        for (int i = 0; i < 6000; ++i) {
            TraceInstruction in;
            in.pc = pc;
            in.op = OpClass::BranchUncond;
            in.taken = true;
            std::uint64_t next =
                0x400000 + (static_cast<std::uint64_t>(i % 4096)) * 64;
            in.branch_target = next;
            big.push(in);
            pc = next;
        }
    }
    trace::Trace small_code("small-code");
    {
        std::uint64_t pc = 0x400000;
        for (int i = 0; i < 6000; ++i) {
            TraceInstruction in;
            in.pc = pc;
            in.op = OpClass::BranchUncond;
            in.taken = true;
            std::uint64_t next =
                0x400000 + (static_cast<std::uint64_t>(i % 8)) * 64;
            in.branch_target = next;
            small_code.push(in);
            pc = next;
        }
    }
    auto cfg = fastConfig();
    cfg.il1_size_kb = 8;
    const auto big_stats = run(big, cfg);
    const auto small_stats = run(small_code, cfg);
    EXPECT_GT(big_stats.il1.missRate(), 0.5);
    EXPECT_LT(small_stats.il1.missRate(), 0.1);
    EXPECT_GT(big_stats.cpi(), small_stats.cpi() * 2);
}

TEST(Pipeline, WarmupExcludesColdStart)
{
    TraceBuilder b;
    for (int i = 0; i < 5000; ++i)
        b.op(OpClass::Load, 5, kNoReg, kNoReg,
             0x10000000 + static_cast<std::uint64_t>(i % 64) * 64);
    auto t = b.take();
    SimOptions cold;
    cold.warmup_instructions = 0;
    SimOptions warm;
    warm.warmup_instructions = 2000;
    const auto cfg = fastConfig();
    const double cpi_cold = simulate(t, cfg, cold).cpi();
    const double cpi_warm = simulate(t, cfg, warm).cpi();
    // The measured region excludes the cold misses.
    EXPECT_LT(cpi_warm, cpi_cold);
}

TEST(Pipeline, AllInstructionsCommit)
{
    TraceBuilder b;
    for (int i = 0; i < 1234; ++i)
        b.op(OpClass::IntAlu, static_cast<trace::RegId>(2 + i % 30));
    auto stats = run(b.take(), fastConfig());
    EXPECT_EQ(stats.instructions, 1234u);
    EXPECT_GT(stats.cycles, 0u);
}

TEST(Pipeline, FpOpsUseFpLatency)
{
    auto t = loopTrace(20, [](TraceBuilder &b, int) {
        for (int i = 0; i < 31; ++i)
            b.op(OpClass::FpMul, 6, 6);
    });
    auto stats = run(t, fastConfig());
    // FP multiply latency 4 dominates a dependent chain.
    EXPECT_GT(stats.cpi(), 3.5);
    EXPECT_LT(stats.cpi(), 4.6);
}

TEST(Pipeline, DesignPointOverloadRuns)
{
    auto space = dspace::paperTrainSpace();
    TraceBuilder b;
    for (int i = 0; i < 500; ++i)
        b.op(OpClass::IntAlu, static_cast<trace::RegId>(2 + i % 10));
    auto t = b.take();
    dspace::DesignPoint pt{14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2};
    SimOptions opts;
    opts.warmup_instructions = 0;
    auto stats = simulate(t, space, pt, opts);
    EXPECT_EQ(stats.instructions, 500u);
}

} // namespace
