/**
 * @file
 * Structure-aware snapshot fuzzing, the companion of
 * test_protocol_fuzz.cc one layer down: a corpus of valid model
 * snapshot images is pushed through fourteen mutators — blind bit
 * flips, byte substitutions, raw truncations/extensions, header
 * corruption (magic, format, flags, payload_len), CRC corruption,
 * and checksum-*valid* semantic poison where payload fields are
 * rewritten and the CRC re-stamped so only decodeSnapshot's semantic
 * validation stands between a hostile image and the predictor
 * (version zero, dimension/basis-count lies, non-finite weights and
 * centers, non-positive radii, consistent payload cuts/extensions).
 *
 * Every mutant must be rejected with SnapshotError (a ProtocolError):
 * no crash, no assert, no other exception type, never silent
 * acceptance — a snapshot that decodes serves predictions, so
 * "mostly valid" is not a state this format has. All mutants are
 * deterministic (math::Rng::stream): every run fuzzes the exact same
 * inputs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "dspace/paper_space.hh"
#include "linreg/linear_model.hh"
#include "math/rng.hh"
#include "rbf/network.hh"
#include "serve/model_snapshot.hh"
#include "util/crc32.hh"

namespace {

using namespace ppm;
using Bytes = std::vector<std::uint8_t>;

constexpr std::size_t kFormatOffset = 4;
constexpr std::size_t kFlagsOffset = 6;
constexpr std::size_t kLenOffset = 8;

void
putU32(Bytes &b, std::size_t off, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const Bytes &b, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 b[off + static_cast<std::size_t>(i)])
             << (8 * i);
    return v;
}

void
putF64(Bytes &b, std::size_t off, double v)
{
    std::memcpy(b.data() + off, &v, sizeof(double));
}

/** Re-stamp the CRC trailer so only semantic checks can object. */
void
fixCrc(Bytes &image)
{
    const std::size_t payload_len =
        image.size() - serve::kSnapshotHeaderSize - 4;
    putU32(image, image.size() - 4,
           util::crc32(image.data() + serve::kSnapshotHeaderSize,
                       payload_len));
}

/**
 * Payload offsets of the fields the semantic mutators target,
 * recovered by walking the documented image layout (model_snapshot.hh)
 * rather than duplicating encoder internals: if the layout drifts,
 * CorpusImagesAreValid and this walker disagree loudly.
 */
struct Layout
{
    std::size_t dims_off = 0;
    std::size_t num_bases_off = 0;
    std::size_t bases_off = 0; //!< first basis center
    std::size_t weights_off = 0;
    std::uint32_t dims = 0;
    std::uint32_t num_bases = 0;
};

Layout
walkLayout(const Bytes &image)
{
    const std::uint8_t *p = image.data() + serve::kSnapshotHeaderSize;
    std::size_t off = 8; // u64 model_version
    const auto u32at = [&](std::size_t o) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     p[o + static_cast<std::size_t>(i)])
                 << (8 * i);
        return v;
    };
    off += 4 + u32at(off);   // str benchmark
    off += 2 + 8 + 8 + 4 + 4 + 8 + 8; // metric..alpha, cv_error
    Layout l;
    l.dims_off = off;
    l.dims = u32at(off);
    off += 4;
    for (std::uint32_t d = 0; d < l.dims; ++d) {
        off += 4 + u32at(off);    // str name
        off += 8 + 8 + 4 + 1 + 1; // min max levels transform integer
    }
    l.num_bases_off = off;
    l.num_bases = u32at(off);
    l.bases_off = off + 4;
    l.weights_off =
        l.bases_off + std::size_t{l.num_bases} * l.dims * 16;
    return l;
}

/** A deterministic hand-built snapshot (no training run needed). */
serve::ModelSnapshot
buildSnapshot(const dspace::DesignSpace &space, int num_bases,
              bool with_linear, std::uint64_t seed)
{
    math::Rng rng(seed);
    const std::size_t dims = space.size();
    std::vector<rbf::GaussianBasis> bases;
    std::vector<double> weights;
    for (int b = 0; b < num_bases; ++b) {
        dspace::UnitPoint center(dims);
        std::vector<double> radius(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            center[d] = rng.uniform();
            radius[d] = 0.1 + rng.uniform();
        }
        bases.emplace_back(std::move(center), std::move(radius));
        weights.push_back(rng.uniform() * 4 - 2);
    }

    serve::ModelSnapshot snap;
    snap.model_version = 3;
    snap.benchmark = "twolf";
    snap.metric = core::Metric::Cpi;
    snap.trace_length = 50000;
    snap.warmup = 1000;
    snap.train_points = static_cast<std::uint32_t>(num_bases);
    snap.p_min = 2;
    snap.alpha = 1.5;
    snap.cv_error = 0.04;
    snap.space = space;
    snap.network =
        rbf::RbfNetwork(std::move(bases), std::move(weights));
    if (with_linear) {
        std::vector<linreg::Term> terms =
            linreg::fullTwoFactorTerms(dims);
        std::vector<double> coeffs;
        for (std::size_t t = 0; t < terms.size(); ++t)
            coeffs.push_back(rng.uniform() * 2 - 1);
        snap.linear =
            linreg::LinearModel(std::move(terms), std::move(coeffs));
    }
    return snap;
}

dspace::DesignSpace
smallSpace()
{
    dspace::DesignSpace space;
    space.add(dspace::Parameter("depth", 6, 30, 5,
                                dspace::Transform::Linear, true));
    space.add(dspace::Parameter("l2_kb", 256, 4096,
                                dspace::kSampleSizeLevels,
                                dspace::Transform::Log, true));
    space.add(dspace::Parameter("frac", 0.1, 0.9, 3,
                                dspace::Transform::Linear, false));
    return space;
}

/**
 * Three images spanning the format's branches: a small space with
 * the linear baseline, the same without it (has_linear = 0), and the
 * full 9-parameter paper space with a larger basis set.
 */
std::vector<Bytes>
corpus()
{
    std::vector<Bytes> images;
    images.push_back(
        serve::encodeSnapshot(buildSnapshot(smallSpace(), 6, true, 1)));
    images.push_back(serve::encodeSnapshot(
        buildSnapshot(smallSpace(), 3, false, 2)));
    images.push_back(serve::encodeSnapshot(
        buildSnapshot(dspace::paperTrainSpace(), 24, true, 3)));
    return images;
}

/** NaN with random mantissa bits, or a random-sign infinity. */
double
randomNonFinite(math::Rng &rng)
{
    std::uint64_t bits = 0x7FF0000000000000ULL;
    if (rng.bernoulli(0.5))
        bits |= 0x8000000000000000ULL;
    if (rng.bernoulli(0.75)) // NaN: nonzero mantissa
        bits |= 1 + static_cast<std::uint64_t>(
                        rng.uniformInt(1u << 20));
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

struct Mutator
{
    const char *name;
    Bytes (*mutate)(const Bytes &image, const Layout &layout,
                    math::Rng &rng);
};

const Mutator kMutators[] = {
    // --- blind corruption: framing checks and the CRC must hold ---
    {"bit-flip",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         Bytes m = image;
         const std::size_t off =
             static_cast<std::size_t>(rng.uniformInt(m.size()));
         m[off] ^= static_cast<std::uint8_t>(1u << rng.uniformInt(8));
         return m;
     }},
    {"byte-substitute",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         Bytes m = image;
         const std::size_t off =
             static_cast<std::size_t>(rng.uniformInt(m.size()));
         m[off] ^= static_cast<std::uint8_t>(1 + rng.uniformInt(255));
         return m;
     }},
    {"truncate",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         Bytes m = image;
         m.resize(
             static_cast<std::size_t>(rng.uniformInt(image.size())));
         return m;
     }},
    {"extend",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         // decodeSnapshot requires size == header + payload_len + 4
         // exactly; any raw growth is a framing error.
         Bytes m = image;
         const std::size_t extra =
             1 + static_cast<std::size_t>(rng.uniformInt(16));
         for (std::size_t i = 0; i < extra; ++i)
             m.push_back(
                 static_cast<std::uint8_t>(rng.uniformInt(256)));
         return m;
     }},
    {"magic-skew",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         Bytes m = image;
         m[static_cast<std::size_t>(rng.uniformInt(4))] ^=
             static_cast<std::uint8_t>(1 + rng.uniformInt(255));
         return m;
     }},
    {"format-skew",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         Bytes m = image;
         std::uint16_t v;
         do {
             v = static_cast<std::uint16_t>(rng.uniformInt(0x10000));
         } while (v == serve::kSnapshotFormat);
         m[kFormatOffset] = static_cast<std::uint8_t>(v & 0xFF);
         m[kFormatOffset + 1] = static_cast<std::uint8_t>(v >> 8);
         return m;
     }},
    {"flags-nonzero",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         Bytes m = image;
         const std::uint16_t v = static_cast<std::uint16_t>(
             1 + rng.uniformInt(0xFFFF));
         m[kFlagsOffset] = static_cast<std::uint8_t>(v & 0xFF);
         m[kFlagsOffset + 1] = static_cast<std::uint8_t>(v >> 8);
         return m;
     }},
    {"length-lie",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         Bytes m = image;
         const std::uint32_t orig = getU32(m, kLenOffset);
         std::uint32_t lie = rng.bernoulli(0.5)
                                 ? static_cast<std::uint32_t>(
                                       rng.uniformInt(1u << 22))
                                 : 0xFFFFFFFFu - static_cast<
                                       std::uint32_t>(
                                       rng.uniformInt(1u << 22));
         if (lie == orig)
             lie ^= 1u;
         putU32(m, kLenOffset, lie);
         return m;
     }},
    {"crc-corrupt",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         Bytes m = image;
         const std::uint32_t x = static_cast<std::uint32_t>(
             1 + rng.uniformInt(0xFFFFFFFFu));
         for (int i = 0; i < 4; ++i)
             m[m.size() - 4 + static_cast<std::size_t>(i)] ^=
                 static_cast<std::uint8_t>(x >> (8 * i));
         return m;
     }},
    // --- checksum-valid semantic poison: only the validator holds ---
    {"version-zero",
     [](const Bytes &image, const Layout &, math::Rng &) {
         Bytes m = image;
         for (std::size_t i = 0; i < 8; ++i)
             m[serve::kSnapshotHeaderSize + i] = 0;
         fixCrc(m);
         return m;
     }},
    {"dims-lie",
     [](const Bytes &image, const Layout &layout, math::Rng &rng) {
         // Zero dims, or a count past the cap: both unconditionally
         // invalid no matter what follows.
         Bytes m = image;
         const std::uint32_t lie =
             rng.bernoulli(0.5)
                 ? 0
                 : serve::kMaxSnapshotDims + 1 +
                       static_cast<std::uint32_t>(
                           rng.uniformInt(1u << 24));
         putU32(m, serve::kSnapshotHeaderSize + layout.dims_off, lie);
         fixCrc(m);
         return m;
     }},
    {"bases-lie",
     [](const Bytes &image, const Layout &layout, math::Rng &rng) {
         Bytes m = image;
         const std::uint32_t lie =
             rng.bernoulli(0.5)
                 ? 0
                 : serve::kMaxSnapshotBases + 1 +
                       static_cast<std::uint32_t>(
                           rng.uniformInt(1u << 24));
         putU32(m, serve::kSnapshotHeaderSize + layout.num_bases_off,
                lie);
         fixCrc(m);
         return m;
     }},
    {"float-poison",
     [](const Bytes &image, const Layout &layout, math::Rng &rng) {
         // A non-finite center, a non-positive or non-finite radius,
         // or a non-finite weight — targeted at a random slot.
         Bytes m = image;
         const std::uint32_t basis = static_cast<std::uint32_t>(
             rng.uniformInt(layout.num_bases));
         const std::uint32_t dim = static_cast<std::uint32_t>(
             rng.uniformInt(layout.dims));
         const std::size_t basis_off =
             layout.bases_off +
             std::size_t{basis} * layout.dims * 16;
         const std::size_t payload = serve::kSnapshotHeaderSize;
         switch (rng.uniformInt(4)) {
           case 0: // center
             putF64(m, payload + basis_off + std::size_t{dim} * 8,
                    randomNonFinite(rng));
             break;
           case 1: // radius, non-finite
             putF64(m,
                    payload + basis_off + layout.dims * 8 +
                        std::size_t{dim} * 8,
                    randomNonFinite(rng));
             break;
           case 2: // radius, zero or negative
             putF64(m,
                    payload + basis_off + layout.dims * 8 +
                        std::size_t{dim} * 8,
                    rng.bernoulli(0.5) ? 0.0 : -rng.uniform());
             break;
           default: // weight
             putF64(m,
                    payload + layout.weights_off +
                        std::size_t{basis} * 8,
                    randomNonFinite(rng));
             break;
         }
         fixCrc(m);
         return m;
     }},
    {"consistent-resize",
     [](const Bytes &image, const Layout &, math::Rng &rng) {
         // Cut or grow the payload and keep payload_len and the CRC
         // honest: framing passes, so the payload reader itself must
         // notice the missing or trailing bytes.
         Bytes m = image;
         const std::size_t payload_len =
             image.size() - serve::kSnapshotHeaderSize - 4;
         m.resize(m.size() - 4); // drop the trailer, resize, re-add
         if (rng.bernoulli(0.5)) {
             m.resize(serve::kSnapshotHeaderSize +
                      static_cast<std::size_t>(
                          rng.uniformInt(payload_len)));
         } else {
             const std::size_t extra =
                 1 + static_cast<std::size_t>(rng.uniformInt(64));
             for (std::size_t i = 0; i < extra; ++i)
                 m.push_back(static_cast<std::uint8_t>(
                     rng.uniformInt(256)));
         }
         putU32(m, kLenOffset,
                static_cast<std::uint32_t>(
                    m.size() - serve::kSnapshotHeaderSize));
         m.resize(m.size() + 4);
         fixCrc(m);
         return m;
     }},
};

constexpr int kMutantsPerPair = 125;

TEST(SnapshotFuzz, CorpusImagesAreValid)
{
    for (const Bytes &image : corpus()) {
        serve::ModelSnapshot snap;
        ASSERT_NO_THROW(snap = serve::decodeSnapshot(image));
        // The layout walker and the real decoder must agree, or the
        // targeted mutators are poking the wrong bytes.
        const Layout layout = walkLayout(image);
        EXPECT_EQ(layout.dims, snap.space.size());
        EXPECT_EQ(layout.num_bases, snap.network.numBases());
    }
}

TEST(SnapshotFuzz, EveryMutantRejectedWithSnapshotError)
{
    const std::vector<Bytes> images = corpus();
    std::uint64_t stream_index = 0;
    std::uint64_t mutants = 0;
    std::uint64_t unchanged = 0;
    for (const Bytes &image : images) {
        const Layout layout = walkLayout(image);
        for (const Mutator &mutator : kMutators) {
            for (int i = 0; i < kMutantsPerPair; ++i) {
                math::Rng rng =
                    math::Rng::stream(0x5F22, stream_index++);
                const Bytes mutant =
                    mutator.mutate(image, layout, rng);
                if (mutant == image) {
                    ++unchanged;
                    continue;
                }
                ++mutants;
                bool rejected = false;
                try {
                    (void)serve::decodeSnapshot(mutant);
                } catch (const serve::ProtocolError &) {
                    // SnapshotError or the base: the transport's
                    // catch clauses cover both.
                    rejected = true;
                } catch (const std::exception &e) {
                    FAIL() << mutator.name << " mutant "
                           << stream_index - 1
                           << " raised a non-snapshot exception: "
                           << e.what();
                }
                EXPECT_TRUE(rejected)
                    << mutator.name << " mutant " << stream_index - 1
                    << " (" << mutant.size()
                    << " bytes) was silently accepted";
            }
        }
    }
    EXPECT_EQ(unchanged, 0u);
    EXPECT_GE(mutants, 5000u) << "fuzz corpus shrank below spec";
}

TEST(SnapshotFuzz, EverySingleBitFlipIsRejected)
{
    // Exhaustive Hamming-distance-1 sweep of the smallest corpus
    // image: CRC-32 detects every 1-bit payload error, and the header
    // fields are individually validated, so no flipped bit anywhere
    // may yield a decodable image.
    Bytes smallest;
    for (const Bytes &image : corpus())
        if (smallest.empty() || image.size() < smallest.size())
            smallest = image;
    for (std::size_t off = 0; off < smallest.size(); ++off) {
        for (int bit = 0; bit < 8; ++bit) {
            Bytes m = smallest;
            m[off] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_THROW((void)serve::decodeSnapshot(m),
                         serve::ProtocolError)
                << "byte " << off << " bit " << bit;
        }
    }
}

TEST(SnapshotFuzz, EveryTruncationLengthIsRejected)
{
    Bytes smallest;
    for (const Bytes &image : corpus())
        if (smallest.empty() || image.size() < smallest.size())
            smallest = image;
    for (std::size_t n = 0; n < smallest.size(); ++n) {
        EXPECT_THROW((void)serve::decodeSnapshot(smallest.data(), n),
                     serve::ProtocolError)
            << "prefix length " << n;
    }
}

TEST(SnapshotFuzz, EveryConsistentPayloadCutIsRejected)
{
    // The hardest class exhaustively: every proper payload prefix
    // with an honest payload_len and CRC. Framing is impeccable; the
    // payload grammar alone must refuse.
    const Bytes image =
        serve::encodeSnapshot(buildSnapshot(smallSpace(), 2, true, 4));
    const std::size_t payload_len =
        image.size() - serve::kSnapshotHeaderSize - 4;
    for (std::size_t n = 0; n < payload_len; ++n) {
        Bytes m(image.begin(),
                image.begin() +
                    static_cast<std::ptrdiff_t>(
                        serve::kSnapshotHeaderSize + n));
        putU32(m, kLenOffset, static_cast<std::uint32_t>(n));
        m.resize(m.size() + 4);
        fixCrc(m);
        EXPECT_THROW((void)serve::decodeSnapshot(m),
                     serve::ProtocolError)
            << "payload prefix " << n;
    }
}

} // namespace
