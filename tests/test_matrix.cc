/**
 * @file
 * Unit tests for the dense matrix/vector utilities.
 */

#include <gtest/gtest.h>

#include "math/matrix.hh"

namespace {

using ppm::math::Matrix;
using ppm::math::Vector;

TEST(Matrix, DefaultConstructedIsEmpty)
{
    Matrix m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizedConstructionFills)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, InitializerListLayout)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(0, 0), 1);
    EXPECT_DOUBLE_EQ(m(0, 2), 3);
    EXPECT_DOUBLE_EQ(m(1, 0), 4);
    EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, ElementWrite)
{
    Matrix m(2, 2);
    m(0, 1) = 7.0;
    m(1, 0) = -2.0;
    EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(m(1, 0), -2.0);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, RowAndColExtraction)
{
    Matrix m{{1, 2}, {3, 4}, {5, 6}};
    EXPECT_EQ(m.row(1), (Vector{3, 4}));
    EXPECT_EQ(m.col(0), (Vector{1, 3, 5}));
    EXPECT_EQ(m.col(1), (Vector{2, 4, 6}));
}

TEST(Matrix, SetRowAndCol)
{
    Matrix m(2, 2);
    m.setRow(0, {1, 2});
    m.setCol(1, {9, 8});
    EXPECT_DOUBLE_EQ(m(0, 0), 1);
    EXPECT_DOUBLE_EQ(m(0, 1), 9);
    EXPECT_DOUBLE_EQ(m(1, 1), 8);
}

TEST(Matrix, Transpose)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(0, 1), 4);
    EXPECT_DOUBLE_EQ(t(2, 0), 3);
}

TEST(Matrix, Product)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19);
    EXPECT_DOUBLE_EQ(c(0, 1), 22);
    EXPECT_DOUBLE_EQ(c(1, 0), 43);
    EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, ProductWithRectangularShapes)
{
    Matrix a{{1, 0, 2}, {0, 3, 0}};  // 2x3
    Matrix b{{1, 4}, {2, 5}, {3, 6}}; // 3x2
    Matrix c = a * b;                 // 2x2
    EXPECT_EQ(c.rows(), 2u);
    EXPECT_EQ(c.cols(), 2u);
    EXPECT_DOUBLE_EQ(c(0, 0), 7);
    EXPECT_DOUBLE_EQ(c(0, 1), 16);
    EXPECT_DOUBLE_EQ(c(1, 0), 6);
    EXPECT_DOUBLE_EQ(c(1, 1), 15);
}

TEST(Matrix, MatrixVectorProduct)
{
    Matrix a{{1, 2}, {3, 4}};
    Vector v{1, -1};
    Vector out = a * v;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], -1);
    EXPECT_DOUBLE_EQ(out[1], -1);
}

TEST(Matrix, AddSubtractScale)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{4, 3}, {2, 1}};
    Matrix sum = a + b;
    Matrix diff = a - b;
    Matrix scaled = a.scaled(2.0);
    EXPECT_DOUBLE_EQ(sum(0, 0), 5);
    EXPECT_DOUBLE_EQ(sum(1, 1), 5);
    EXPECT_DOUBLE_EQ(diff(0, 0), -3);
    EXPECT_DOUBLE_EQ(diff(1, 1), 3);
    EXPECT_DOUBLE_EQ(scaled(1, 0), 6);
}

TEST(Matrix, GramEqualsTransposeTimesSelf)
{
    Matrix a{{1, 2}, {3, 4}, {5, 6}};
    Matrix g = a.gram();
    Matrix expected = a.transposed() * a;
    ASSERT_EQ(g.rows(), 2u);
    ASSERT_EQ(g.cols(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
}

TEST(Matrix, GramIsSymmetric)
{
    Matrix a{{1, 2, 0.5}, {3, -4, 2}, {0, 6, -1}, {2, 2, 2}};
    Matrix g = a.gram();
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
}

TEST(Matrix, TransposeTimesVector)
{
    Matrix a{{1, 2}, {3, 4}, {5, 6}};
    Vector y{1, 1, 1};
    Vector aty = a.transposeTimes(y);
    ASSERT_EQ(aty.size(), 2u);
    EXPECT_DOUBLE_EQ(aty[0], 9);
    EXPECT_DOUBLE_EQ(aty[1], 12);
}

TEST(Matrix, Identity)
{
    Matrix id = Matrix::identity(3);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, FromColumns)
{
    Matrix m = Matrix::fromColumns({{1, 2, 3}, {4, 5, 6}});
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(0, 1), 4);
    EXPECT_DOUBLE_EQ(m(2, 0), 3);
}

TEST(Matrix, FromColumnsEmpty)
{
    Matrix m = Matrix::fromColumns({});
    EXPECT_TRUE(m.empty());
}

TEST(Matrix, ToStringMentionsShape)
{
    Matrix m(2, 3);
    EXPECT_NE(m.toString().find("2x3"), std::string::npos);
}

TEST(VectorOps, Dot)
{
    EXPECT_DOUBLE_EQ(ppm::math::dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(ppm::math::dot({}, {}), 0.0);
}

TEST(VectorOps, Norm)
{
    EXPECT_DOUBLE_EQ(ppm::math::norm({3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(ppm::math::norm({}), 0.0);
}

TEST(VectorOps, AddSubtractScale)
{
    EXPECT_EQ(ppm::math::add({1, 2}, {3, 4}), (Vector{4, 6}));
    EXPECT_EQ(ppm::math::subtract({1, 2}, {3, 4}), (Vector{-2, -2}));
    EXPECT_EQ(ppm::math::scale({1, -2}, 3.0), (Vector{3, -6}));
}

} // namespace
