/**
 * @file
 * Unit tests for Parameter: transforms, level structure, quantization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dspace/parameter.hh"

namespace {

using namespace ppm::dspace;

TEST(Parameter, LinearUnitMapping)
{
    Parameter p("lat", 1, 5, 4, Transform::Linear, true);
    EXPECT_DOUBLE_EQ(p.toUnit(1), 0.0);
    EXPECT_DOUBLE_EQ(p.toUnit(5), 1.0);
    EXPECT_DOUBLE_EQ(p.toUnit(3), 0.5);
    EXPECT_DOUBLE_EQ(p.fromUnit(0.5), 3.0);
}

TEST(Parameter, LinearClampsOutOfRange)
{
    Parameter p("lat", 1, 5, 4, Transform::Linear, true);
    EXPECT_DOUBLE_EQ(p.toUnit(0), 0.0);
    EXPECT_DOUBLE_EQ(p.toUnit(99), 1.0);
    EXPECT_DOUBLE_EQ(p.fromUnit(-1), 1.0);
    EXPECT_DOUBLE_EQ(p.fromUnit(2), 5.0);
}

TEST(Parameter, LogUnitMapping)
{
    Parameter p("l2", 256, 8192, 6, Transform::Log, true);
    EXPECT_DOUBLE_EQ(p.toUnit(256), 0.0);
    EXPECT_DOUBLE_EQ(p.toUnit(8192), 1.0);
    // Geometric midpoint: sqrt(256 * 8192) = 1448.15...
    EXPECT_NEAR(p.toUnit(std::sqrt(256.0 * 8192.0)), 0.5, 1e-12);
    EXPECT_NEAR(p.fromUnit(0.5), std::sqrt(256.0 * 8192.0), 1e-6);
}

TEST(Parameter, RoundTripLinear)
{
    Parameter p("x", 7, 24, 18, Transform::Linear, false);
    for (double v : {7.0, 10.3, 15.5, 24.0})
        EXPECT_NEAR(p.fromUnit(p.toUnit(v)), v, 1e-12);
}

TEST(Parameter, RoundTripLog)
{
    Parameter p("x", 8, 64, 4, Transform::Log, false);
    for (double v : {8.0, 11.3, 32.0, 64.0})
        EXPECT_NEAR(p.fromUnit(p.toUnit(v)), v, 1e-9);
}

TEST(Parameter, LevelValuesLinearEvenlySpaced)
{
    Parameter p("lat", 1, 4, 4, Transform::Linear, true);
    EXPECT_DOUBLE_EQ(p.levelValue(0, 4), 1.0);
    EXPECT_DOUBLE_EQ(p.levelValue(1, 4), 2.0);
    EXPECT_DOUBLE_EQ(p.levelValue(2, 4), 3.0);
    EXPECT_DOUBLE_EQ(p.levelValue(3, 4), 4.0);
}

TEST(Parameter, LevelValuesLogArePowersOfTwo)
{
    Parameter p("il1", 8, 64, 4, Transform::Log, true);
    EXPECT_DOUBLE_EQ(p.levelValue(0, 4), 8.0);
    EXPECT_DOUBLE_EQ(p.levelValue(1, 4), 16.0);
    EXPECT_DOUBLE_EQ(p.levelValue(2, 4), 32.0);
    EXPECT_DOUBLE_EQ(p.levelValue(3, 4), 64.0);
}

TEST(Parameter, PaperL2LevelsArePowersOfTwo)
{
    Parameter p("L2", 256, 8192, 6, Transform::Log, true);
    const double expected[] = {256, 512, 1024, 2048, 4096, 8192};
    for (int i = 0; i < 6; ++i)
        EXPECT_DOUBLE_EQ(p.levelValue(i, 6), expected[i]);
}

TEST(Parameter, SnapToNearestLevel)
{
    Parameter p("lat", 1, 4, 4, Transform::Linear, true);
    EXPECT_DOUBLE_EQ(p.snapToLevel(1.4, 4), 1.0);
    EXPECT_DOUBLE_EQ(p.snapToLevel(1.6, 4), 2.0);
    EXPECT_DOUBLE_EQ(p.snapToLevel(4.0, 4), 4.0);
    EXPECT_DOUBLE_EQ(p.snapToLevel(0.0, 4), 1.0); // clamped
}

TEST(Parameter, EffectiveLevelsFixed)
{
    Parameter p("lat", 1, 4, 4, Transform::Linear, true);
    EXPECT_EQ(p.effectiveLevels(100), 4);
    EXPECT_FALSE(p.sampleSizeLevels());
}

TEST(Parameter, EffectiveLevelsSampleSizeDependent)
{
    Parameter p("rob", 24, 128, kSampleSizeLevels, Transform::Linear,
                true);
    EXPECT_TRUE(p.sampleSizeLevels());
    EXPECT_EQ(p.effectiveLevels(90), 90);
    EXPECT_EQ(p.effectiveLevels(1), 2); // floor at 2 levels
}

TEST(Parameter, IntegerQuantization)
{
    Parameter p("rob", 24, 128, kSampleSizeLevels, Transform::Linear,
                true);
    EXPECT_DOUBLE_EQ(p.quantize(56.4), 56.0);
    EXPECT_DOUBLE_EQ(p.quantize(56.6), 57.0);
}

TEST(Parameter, FractionalNotQuantized)
{
    Parameter p("frac", 0.25, 0.75, kSampleSizeLevels,
                Transform::Linear, false);
    EXPECT_DOUBLE_EQ(p.quantize(0.314), 0.314);
}

TEST(Parameter, Contains)
{
    Parameter p("lat", 1, 4, 4, Transform::Linear, true);
    EXPECT_TRUE(p.contains(1));
    EXPECT_TRUE(p.contains(4));
    EXPECT_TRUE(p.contains(2.5));
    EXPECT_FALSE(p.contains(0.5));
    EXPECT_FALSE(p.contains(4.5));
}

TEST(Parameter, TransformNames)
{
    EXPECT_EQ(transformName(Transform::Linear), "linear");
    EXPECT_EQ(transformName(Transform::Log), "log");
}

TEST(Parameter, ContainsIsInclusiveAtExactBounds)
{
    const Parameter p("lat", 1.0, 12.0, 4, Transform::Linear, true);
    EXPECT_TRUE(p.contains(1.0));
    EXPECT_TRUE(p.contains(12.0));
}

TEST(Parameter, ContainsAbsorbsUlpsOnNarrowLargeMagnitudeRanges)
{
    // Regression: a narrow range at a large magnitude makes the old
    // span-only tolerance (1e-9 * span) smaller than one ulp of the
    // endpoints, so a boundary value that round-tripped through
    // fromUnit/quantize and picked up a few ulps was rejected.
    const Parameter p("freq", 999999.0, 1000001.0, 0,
                      Transform::Linear, false);
    double just_above = 1000001.0;
    for (int i = 0; i < 20; ++i)
        just_above = std::nextafter(
            just_above, std::numeric_limits<double>::infinity());
    double just_below = 999999.0;
    for (int i = 0; i < 20; ++i)
        just_below = std::nextafter(
            just_below, -std::numeric_limits<double>::infinity());
    EXPECT_TRUE(p.contains(just_above));
    EXPECT_TRUE(p.contains(just_below));
    // Genuinely outside values are still rejected.
    EXPECT_FALSE(p.contains(1000001.1));
    EXPECT_FALSE(p.contains(999998.9));
}

} // namespace
