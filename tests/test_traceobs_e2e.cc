/**
 * @file
 * Observability end-to-end suite. One sampled PREDICT batch sharded
 * over two real ppm_serve processes on TCP yields — via the real
 * ppm_trace binary — a single merged Chrome trace where the client
 * root, both shard servers, the cache probe, and the RBF batch kernel
 * all share one trace id. And the model-drift monitor: a stale
 * snapshot served against a workload whose ground truth sits in the
 * result cache fires the model_drift event within the sample budget,
 * with bit-deterministic streaming statistics across repeated runs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dspace/paper_space.hh"
#include "linreg/linear_model.hh"
#include "math/rng.hh"
#include "obs/metrics.hh"
#include "obs/trace_context.hh"
#include "rbf/network.hh"
#include "serve/model_snapshot.hh"
#include "serve/predict_oracle.hh"
#include "serve/protocol.hh"
#include "serve/sim_server.hh"
#include "serve/socket_io.hh"
#include "serve/transport.hh"

extern char **environ;

namespace {

using namespace ppm;

std::string
uniquePath(const std::string &tag, const std::string &ext)
{
    return "/tmp/ppm_traceobs_" + std::to_string(::getpid()) + "_" +
           tag + ext;
}

/** Deterministic hand-built snapshot (same shape as the predict e2e
 * suite); @p trace_length sizes the simulation context it claims. */
serve::ModelSnapshot
buildSnapshot(std::uint64_t version, std::uint64_t seed,
              std::uint64_t trace_length = 100000)
{
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    const std::size_t dims = space.size();
    math::Rng rng(seed);
    std::vector<rbf::GaussianBasis> bases;
    std::vector<double> weights;
    for (int b = 0; b < 8; ++b) {
        dspace::UnitPoint center(dims);
        std::vector<double> radius(dims);
        for (std::size_t d = 0; d < dims; ++d) {
            center[d] = rng.uniform();
            radius[d] = 0.2 + rng.uniform();
        }
        bases.emplace_back(std::move(center), std::move(radius));
        weights.push_back(rng.uniform() * 4 - 2);
    }
    std::vector<linreg::Term> terms =
        linreg::fullTwoFactorTerms(dims);
    std::vector<double> coeffs;
    for (std::size_t t = 0; t < terms.size(); ++t)
        coeffs.push_back(rng.uniform() * 2 - 1);

    serve::ModelSnapshot snap;
    snap.model_version = version;
    snap.benchmark = "twolf";
    snap.metric = core::Metric::Cpi;
    snap.trace_length = trace_length;
    snap.warmup = 0;
    snap.train_points = 30;
    snap.p_min = 2;
    snap.alpha = 1.5;
    snap.space = space;
    snap.network =
        rbf::RbfNetwork(std::move(bases), std::move(weights));
    snap.linear =
        linreg::LinearModel(std::move(terms), std::move(coeffs));
    return snap;
}

std::vector<dspace::DesignPoint>
queryBatch(int n)
{
    const dspace::DesignSpace space = dspace::paperTrainSpace();
    math::Rng rng(77);
    std::vector<dspace::DesignPoint> points;
    for (int i = 0; i < n; ++i)
        points.push_back(space.randomPoint(rng));
    return points;
}

serve::RemoteOptions
fastRemote(std::vector<std::string> sockets)
{
    serve::RemoteOptions opts;
    opts.sockets = std::move(sockets);
    opts.connect_timeout_ms = 1000;
    opts.io_timeout_ms = 30'000;
    opts.max_attempts = 2;
    opts.backoff_initial_ms = 1;
    opts.backoff_max_ms = 10;
    opts.chunk_points = 4;
    opts.max_connections = 2;
    return opts;
}

bool
waitForPing(const std::string &endpoint)
{
    for (int i = 0; i < 200; ++i) {
        try {
            serve::FdGuard conn = serve::connectEndpoint(
                serve::parseEndpoint(endpoint), 100);
            serve::writeFrame(conn.get(), serve::encodePing(1), 500);
            if (serve::readFrame(conn.get(), 500).type ==
                serve::MsgType::Pong)
                return true;
        } catch (const std::exception &) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
}

/** One Chrome-trace complete event, as far as the suite cares. */
struct TraceEvent
{
    std::string name;
    std::string trace;
    long pid = 0;
};

/** Scan the ppm_trace output for its "X" events (flat, known shape —
 * no general JSON parser needed). */
std::vector<TraceEvent>
parseTraceEvents(const std::string &json)
{
    std::vector<TraceEvent> events;
    std::size_t pos = 0;
    while ((pos = json.find("{\"name\":\"", pos)) !=
           std::string::npos) {
        const std::size_t end = json.find("}}", pos);
        if (end == std::string::npos)
            break;
        const std::string obj = json.substr(pos, end + 2 - pos);
        pos = end + 2;
        TraceEvent ev;
        ev.name = obj.substr(9, obj.find('"', 9) - 9);
        const std::size_t pid_at = obj.find("\"pid\":");
        if (pid_at != std::string::npos)
            ev.pid = std::strtol(obj.c_str() + pid_at + 6, nullptr,
                                 10);
        const std::size_t trace_at = obj.find("\"trace\":\"");
        if (trace_at != std::string::npos)
            ev.trace = obj.substr(trace_at + 9, 32);
        if (ev.name != "process_name")
            events.push_back(std::move(ev));
    }
    return events;
}

pid_t
spawn(const std::vector<const char *> &args)
{
    std::vector<const char *> argv = args;
    argv.push_back(nullptr);
    pid_t pid = -1;
    if (::posix_spawn(&pid, args[0], nullptr, nullptr,
                      const_cast<char *const *>(argv.data()),
                      environ) != 0)
        return -1;
    return pid;
}

TEST(TraceObsE2E, OneSampledBatchYieldsOneMergedCrossProcessTrace)
{
    // Two real ppm_serve shards on TCP, tracing enabled via the
    // environment (inherited at spawn), drift probing on so the
    // cache-plane span fires during PREDICT.
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const std::string snap_path = uniquePath("shard", ".ppmm");
    serve::saveSnapshot(snap, snap_path);

    const int base_port =
        21000 + static_cast<int>(::getpid() % 20000);
    const std::string ep1 =
        "127.0.0.1:" + std::to_string(base_port);
    const std::string ep2 =
        "127.0.0.1:" + std::to_string(base_port + 1);

    ::setenv("PPM_TRACE_SAMPLE", "1", 1);
    std::vector<pid_t> servers;
    for (const std::string &ep : {ep1, ep2}) {
        const pid_t pid =
            spawn({PPM_SERVE_BIN, "--listen", ep.c_str(), "--workers",
                   "1", "--predict", snap_path.c_str(),
                   "--drift-sample", "1"});
        ASSERT_GT(pid, 0);
        servers.push_back(pid);
    }
    for (const std::string &ep : {ep1, ep2})
        ASSERT_TRUE(waitForPing(ep))
            << "ppm_serve never came up on " << ep;

    // The client root: one sampled evaluateAll sharded over both
    // endpoints (chunk c goes to endpoint c % 2, so 16 points in
    // 4-point chunks hit both).
    obs::setTraceSampleEvery(1);
    obs::SpanBuffer::instance().clear();
    const auto batch = queryBatch(16);
    serve::PredictOracle oracle(snap, fastRemote({ep1, ep2}));
    oracle.evaluateAll(batch);
    obs::setTraceSampleEvery(0);
    ASSERT_EQ(oracle.remotePoints(), batch.size());
    ASSERT_EQ(oracle.fallbackPoints(), 0u);

    std::string root_trace;
    for (const obs::SpanRecord &s :
         obs::SpanBuffer::instance().snapshot())
        if (std::strcmp(s.name, "predict.evaluate_all") == 0)
            root_trace = obs::traceIdHex(s.trace_hi, s.trace_lo);
    ASSERT_EQ(root_trace.size(), 32u)
        << "client never recorded its root span";

    const std::string client_jsonl = uniquePath("client", ".jsonl");
    ASSERT_TRUE(
        obs::SpanBuffer::instance().writeJsonl(client_jsonl));

    // The real merge tool: pull both servers, merge the client dump.
    const std::string trace_path = uniquePath("trace", ".json");
    const std::string socket_list = ep1 + "," + ep2;
    const pid_t merger =
        spawn({PPM_TRACE_BIN, "--socket", socket_list.c_str(), "--in",
               client_jsonl.c_str(), "--out", trace_path.c_str()});
    ASSERT_GT(merger, 0);
    int status = -1;
    ASSERT_EQ(::waitpid(merger, &status, 0), merger);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "ppm_trace failed (status " << status << ")";

    std::ifstream in(trace_path);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::vector<TraceEvent> events =
        parseTraceEvents(buffer.str());

    // The acceptance bar: one trace id spanning client, both shard
    // servers, the cache probe, and the RBF batch kernel.
    std::set<long> pids_in_trace;
    std::set<std::string> names_in_trace;
    std::set<long> shard_pids;
    for (const TraceEvent &ev : events) {
        if (ev.trace != root_trace)
            continue;
        pids_in_trace.insert(ev.pid);
        names_in_trace.insert(ev.name);
        if (ev.name == "span.predict")
            shard_pids.insert(ev.pid);
    }
    EXPECT_GE(pids_in_trace.size(), 3u)
        << "client + two shards should contribute to the trace";
    EXPECT_EQ(shard_pids.size(), 2u)
        << "both shard servers must serve part of the batch";
    EXPECT_TRUE(names_in_trace.count("predict.evaluate_all"))
        << "client root span missing";
    EXPECT_TRUE(names_in_trace.count("span.predict"))
        << "server predict span missing";
    EXPECT_TRUE(names_in_trace.count("drift.probe"))
        << "cache-probe span missing";
    EXPECT_TRUE(names_in_trace.count("rbf.batch"))
        << "RBF kernel span missing";

    for (pid_t pid : servers) {
        ::kill(pid, SIGTERM);
        ::waitpid(pid, &status, 0);
    }
    ::unsetenv("PPM_TRACE_SAMPLE");
    ::unlink(snap_path.c_str());
    ::unlink(client_jsonl.c_str());
    ::unlink(trace_path.c_str());
}

TEST(TraceObsE2E, StaleModelFiresDriftEventDeterministically)
{
    // Ground truth lands in the server's result cache via ordinary
    // EVAL requests; a deliberately wrong snapshot claiming the same
    // simulation context then serves PREDICT for the same points, and
    // the shadow probe must fire the drift event within the sample
    // budget. Run the whole scenario twice with fresh servers: the
    // streaming statistics are counter-windowed and RNG-free, so they
    // must agree bit for bit (the serve path below is serialized, so
    // PPM_THREADS cannot reorder the residual stream; simulation
    // itself is bit-deterministic at any thread count).
    constexpr std::uint64_t kTraceLen = 2000;
    constexpr std::uint64_t kVersion = 7;
    const auto points = queryBatch(8);

    serve::ModelSnapshot stale = buildSnapshot(kVersion, 4242,
                                               kTraceLen);
    stale.cv_error = 0.001; // tiny training-time baseline

    const auto run_scenario = [&](const std::string &tag) {
        serve::ServerOptions opts;
        opts.socket_path = uniquePath("drift_" + tag, ".sock");
        opts.num_workers = 1;
        opts.drift.sample_every = 1;
        opts.drift.threshold_ratio = 2.0;
        opts.drift.min_samples = 4;
        serve::SimServer server(opts);
        server.start();

        // Simulate the truths into the shared cache.
        serve::EvalRequest eval;
        eval.benchmark = stale.benchmark;
        eval.metric = core::Metric::Cpi;
        eval.trace_length = kTraceLen;
        eval.warmup = 0;
        eval.points = points;
        {
            serve::FdGuard conn =
                serve::connectUnix(opts.socket_path, 1000);
            serve::writeFrame(conn.get(),
                              serve::encodeEvalRequest(eval), 1000);
            const serve::Frame reply =
                serve::readFrame(conn.get(), 60'000);
            EXPECT_EQ(reply.type, serve::MsgType::EvalResponse);
        }

        // Serve predictions from the stale model for the same points.
        EXPECT_TRUE(server.modelHost().install(stale, "drift-test"));
        serve::PredictRequest req;
        req.points = points;
        {
            serve::FdGuard conn =
                serve::connectUnix(opts.socket_path, 1000);
            serve::writeFrame(
                conn.get(), serve::encodePredictRequest(req), 1000);
            const serve::Frame reply =
                serve::readFrame(conn.get(), 30'000);
            EXPECT_EQ(reply.type, serve::MsgType::PredictResponse);
        }

        const serve::DriftStats stats =
            server.driftMonitor().statsFor(kVersion);
        server.stop();
        ::unlink(opts.socket_path.c_str());
        return stats;
    };

    const std::uint64_t events_before =
        obs::Registry::instance()
            .counter("model.drift.events")
            .value();
    const serve::DriftStats first = run_scenario("a");
    EXPECT_EQ(first.sampled, points.size());
    EXPECT_EQ(first.scored, points.size())
        << "every probed point should find cached truth";
    EXPECT_GT(first.mean_rel_err, 0.0);
    EXPECT_GT(first.mean_rel_err, 2.0 * stale.cv_error);
    EXPECT_TRUE(first.fired)
        << "stale model within the sample budget must fire";
    EXPECT_GE(obs::Registry::instance()
                  .counter("model.drift.events")
                  .value(),
              events_before + 1);

    // Bit-determinism across an identical rerun (fresh server, fresh
    // cache, fresh monitor).
    const serve::DriftStats second = run_scenario("b");
    EXPECT_EQ(second.sampled, first.sampled);
    EXPECT_EQ(second.scored, first.scored);
    EXPECT_EQ(std::memcmp(&first.mean_rel_err, &second.mean_rel_err,
                          sizeof(double)),
              0)
        << first.mean_rel_err << " vs " << second.mean_rel_err;
    EXPECT_EQ(std::memcmp(&first.variance, &second.variance,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&first.p90_rel_err, &second.p90_rel_err,
                          sizeof(double)),
              0);
    EXPECT_TRUE(second.fired);
}

TEST(TraceObsE2E, UnsampledTrafficRecordsNoSpansServerSide)
{
    // With tracing disabled end to end (no PPM_TRACE_SAMPLE, no
    // sampled bit on the wire), an in-process predict server must not
    // accumulate spans — the off path stays off.
    const serve::ModelSnapshot snap = buildSnapshot(1, 100);
    const std::string snap_path = uniquePath("quiet", ".ppmm");
    serve::saveSnapshot(snap, snap_path);
    serve::ServerOptions opts;
    opts.socket_path = uniquePath("quiet", ".sock");
    opts.num_workers = 1;
    opts.predict_snapshot = snap_path;
    serve::SimServer server(opts);
    server.start();

    obs::setTraceSampleEvery(0);
    obs::SpanBuffer::instance().clear();
    serve::PredictOracle oracle(snap,
                                fastRemote({opts.socket_path}));
    oracle.evaluateAll(queryBatch(8));
    EXPECT_TRUE(obs::SpanBuffer::instance().snapshot().empty());

    server.stop();
    ::unlink(snap_path.c_str());
    ::unlink(opts.socket_path.c_str());
}

} // namespace
