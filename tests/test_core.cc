/**
 * @file
 * Unit tests for the core library: oracles, evaluation, the
 * BuildRBFmodel driver on analytic responses, and exploration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/explorer.hh"
#include "core/model_builder.hh"
#include "dspace/paper_space.hh"
#include "trace/benchmark_profile.hh"
#include "trace/trace_generator.hh"

namespace {

using namespace ppm;
using namespace ppm::core;

/** Smooth nonlinear CPI-like response over the paper space. */
double
syntheticCpi(const dspace::DesignPoint &p)
{
    using namespace ppm::dspace;
    return 0.6 + 0.02 * p[kPipeDepth] + 30.0 / p[kRobSize] +
        0.25 * p[kDl1Lat] + 250.0 / (p[kL2SizeKB] + 300.0) +
        0.004 * p[kL2Lat] * (64.0 / (p[kIl1SizeKB] + 8.0));
}

TEST(FunctionOracle, CountsEvaluations)
{
    FunctionOracle oracle(syntheticCpi);
    auto space = dspace::paperTrainSpace();
    math::Rng rng(1);
    EXPECT_EQ(oracle.evaluations(), 0u);
    oracle.cpi(space.randomPoint(rng));
    oracle.cpi(space.randomPoint(rng));
    EXPECT_EQ(oracle.evaluations(), 2u);
}

TEST(SimulatorOracle, MemoizesRepeatedPoints)
{
    auto space = dspace::paperTrainSpace();
    auto tr = trace::generateTrace(trace::profileByName("crafty"), 20000);
    SimulatorOracle oracle(space, tr);
    dspace::DesignPoint pt{14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2};
    const double a = oracle.cpi(pt);
    EXPECT_EQ(oracle.evaluations(), 1u);
    const double b = oracle.cpi(pt);
    EXPECT_EQ(oracle.evaluations(), 1u);
    EXPECT_EQ(oracle.cacheHits(), 1u);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.2);
}

TEST(SimulatorOracle, DistinctPointsSimulated)
{
    auto space = dspace::paperTrainSpace();
    auto tr = trace::generateTrace(trace::profileByName("crafty"), 20000);
    SimulatorOracle oracle(space, tr);
    oracle.cpi({14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2});
    oracle.cpi({14, 64, 0.5, 0.5, 1024, 12, 32, 32, 3});
    EXPECT_EQ(oracle.evaluations(), 2u);
}

TEST(Evaluator, PredictionErrorMetrics)
{
    auto report = evaluatePredictions({2.0, 4.0, 5.0},
                                      {2.2, 4.0, 4.0});
    EXPECT_NEAR(report.errors[0], 10.0, 1e-9);
    EXPECT_NEAR(report.errors[1], 0.0, 1e-9);
    EXPECT_NEAR(report.errors[2], 20.0, 1e-9);
    EXPECT_NEAR(report.mean_error, 10.0, 1e-9);
    EXPECT_NEAR(report.max_error, 20.0, 1e-9);
    EXPECT_GT(report.std_error, 0.0);
}

TEST(ModelBuilder, ConvergesOnSyntheticResponse)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {30, 50, 90};
    opts.target_mean_error = 3.0;
    auto result = builder.build(opts);
    ASSERT_FALSE(result.history.empty());
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.final().rbf_error.mean_error, 3.0);
    EXPECT_NE(result.model, nullptr);
    // Simulations = test set + training samples actually used.
    std::uint64_t expected = 50;
    for (const auto &h : result.history)
        expected += static_cast<std::uint64_t>(h.sample_size);
    EXPECT_EQ(result.simulations, expected);
}

TEST(ModelBuilder, StopsEarlyWhenConverged)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {60, 90, 120, 200};
    opts.target_mean_error = 50.0; // trivially satisfied
    auto result = builder.build(opts);
    EXPECT_EQ(result.history.size(), 1u);
    EXPECT_TRUE(result.converged);
}

TEST(ModelBuilder, RunsFullScheduleWhenUnconverged)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {20, 30};
    opts.target_mean_error = 0.0; // unreachable
    auto result = builder.build(opts);
    EXPECT_EQ(result.history.size(), 2u);
    EXPECT_FALSE(result.converged);
}

TEST(ModelBuilder, DiscrepancyRecordedAndDecreasing)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {20, 200};
    opts.target_mean_error = 0.0;
    auto result = builder.build(opts);
    ASSERT_EQ(result.history.size(), 2u);
    EXPECT_GT(result.history[0].discrepancy,
              result.history[1].discrepancy);
}

TEST(ModelBuilder, LinearBaselineWorseOnCurvedResponse)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {200};
    opts.target_mean_error = 0.0;
    opts.fit_linear_baseline = true;
    auto result = builder.build(opts);
    ASSERT_NE(result.linear_model, nullptr);
    const auto &h = result.final();
    EXPECT_LT(h.rbf_error.mean_error, h.linear_error.mean_error);
}

TEST(ModelBuilder, RandomSamplingAblationRuns)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {60};
    opts.target_mean_error = 0.0;
    opts.use_random_sampling = true;
    auto result = builder.build(opts);
    EXPECT_EQ(result.history.size(), 1u);
    EXPECT_GT(result.final().rbf_error.mean_error, 0.0);
}

TEST(ModelBuilder, RejectsBadOptions)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    ModelBuilder builder(train, train, oracle);
    BuildOptions empty;
    empty.sample_sizes = {};
    EXPECT_THROW(builder.build(empty), std::invalid_argument);
    BuildOptions tiny;
    tiny.sample_sizes = {5};
    EXPECT_THROW(builder.build(tiny), std::invalid_argument);
    BuildOptions no_test;
    no_test.num_test_points = 0;
    EXPECT_THROW(builder.build(no_test), std::invalid_argument);
}

TEST(ModelBuilder, TestPointsExposed)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    auto test = dspace::paperTestSpace();
    ModelBuilder builder(train, test, oracle);
    BuildOptions opts;
    opts.sample_sizes = {30};
    opts.target_mean_error = 0.0;
    builder.build(opts);
    EXPECT_EQ(builder.testPoints().size(), 50u);
    EXPECT_EQ(builder.testResponses().size(), 50u);
    for (const auto &pt : builder.testPoints())
        EXPECT_TRUE(test.contains(pt));
}

TEST(Predictor, DescribeStrings)
{
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    ModelBuilder builder(train, train, oracle);
    BuildOptions opts;
    opts.sample_sizes = {40};
    opts.target_mean_error = 0.0;
    opts.fit_linear_baseline = true;
    auto result = builder.build(opts);
    EXPECT_NE(result.model->describe().find("rbf"), std::string::npos);
    EXPECT_NE(result.linear_model->describe().find("linear"),
              std::string::npos);
}

// --- exploration -------------------------------------------------------

std::shared_ptr<RbfPerformanceModel>
buildSyntheticModel()
{
    static std::shared_ptr<RbfPerformanceModel> cached;
    if (cached)
        return cached;
    FunctionOracle oracle(syntheticCpi);
    auto train = dspace::paperTrainSpace();
    ModelBuilder builder(train, train, oracle);
    BuildOptions opts;
    opts.sample_sizes = {120};
    opts.target_mean_error = 0.0;
    cached = builder.build(opts).model;
    return cached;
}

TEST(Explorer, FindsLowCpiConfigurations)
{
    auto model = buildSyntheticModel();
    auto space = dspace::paperTrainSpace();
    SearchOptions opts;
    opts.num_candidates = 4000;
    opts.top_k = 5;
    auto best = findBestConfigurations(*model, space, opts);
    ASSERT_EQ(best.size(), 5u);
    for (std::size_t i = 1; i < best.size(); ++i)
        EXPECT_LE(best[i - 1].predicted_cpi, best[i].predicted_cpi);
    // The synthetic response is minimized by big ROB / big caches /
    // low latencies; the best found point must be clearly better
    // than a mid one.
    const double mid = model->predict(
        {14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2});
    EXPECT_LT(best.front().predicted_cpi, mid);
}

TEST(Explorer, ConstraintFiltersCandidates)
{
    auto model = buildSyntheticModel();
    auto space = dspace::paperTrainSpace();
    SearchOptions opts;
    opts.num_candidates = 3000;
    opts.top_k = 5;
    // Forbid large L2s (area constraint): all results obey it.
    opts.constraint = [](const dspace::DesignPoint &p) {
        return p[dspace::kL2SizeKB] <= 1024;
    };
    auto best = findBestConfigurations(*model, space, opts);
    ASSERT_FALSE(best.empty());
    for (const auto &c : best)
        EXPECT_LE(c.point[dspace::kL2SizeKB], 1024);
}

TEST(Explorer, SweepParameterCoversRange)
{
    auto model = buildSyntheticModel();
    auto space = dspace::paperTrainSpace();
    dspace::DesignPoint base{14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2};
    auto sweep = sweepParameter(*model, space, base,
                                dspace::kRobSize, 6);
    ASSERT_EQ(sweep.size(), 6u);
    EXPECT_DOUBLE_EQ(sweep.front().point[dspace::kRobSize], 24);
    EXPECT_DOUBLE_EQ(sweep.back().point[dspace::kRobSize], 128);
    // Other coordinates unchanged.
    for (const auto &c : sweep)
        EXPECT_DOUBLE_EQ(c.point[dspace::kL2Lat], 12);
    // Synthetic response falls with ROB size.
    EXPECT_GT(sweep.front().predicted_cpi, sweep.back().predicted_cpi);
}

TEST(Explorer, SweepInteractionGridShape)
{
    auto model = buildSyntheticModel();
    auto space = dspace::paperTrainSpace();
    dspace::DesignPoint base{14, 64, 0.5, 0.5, 1024, 12, 32, 32, 2};
    auto grid = sweepInteraction(*model, space, base,
                                 dspace::kIl1SizeKB, dspace::kL2Lat,
                                 4, 6);
    ASSERT_EQ(grid.size(), 24u);
    // Row-major layout: entry (i, j) has il1 level i, l2_lat level j.
    EXPECT_DOUBLE_EQ(grid[0].point[dspace::kIl1SizeKB], 8);
    EXPECT_DOUBLE_EQ(grid[0].point[dspace::kL2Lat], 5);
    EXPECT_DOUBLE_EQ(grid[5].point[dspace::kL2Lat], 20);
    EXPECT_DOUBLE_EQ(grid[23].point[dspace::kIl1SizeKB], 64);
}

} // namespace
