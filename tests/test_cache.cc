/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/cache.hh"

namespace {

using ppm::sim::Cache;
using ppm::sim::CacheAccessResult;

TEST(Cache, Geometry)
{
    Cache c("t", 32 * 1024, 2, 64);
    EXPECT_EQ(c.numSets(), 256u);
    EXPECT_EQ(c.assoc(), 2);
    EXPECT_EQ(c.name(), "t");
}

TEST(Cache, NonPowerOfTwoCapacity)
{
    // Validation design points carry arbitrary sizes; sets need not
    // be a power of two.
    Cache c("t", 1396 * 1024, 8, 64);
    EXPECT_EQ(c.numSets(), 1396u * 1024 / (64 * 8));
}

TEST(Cache, RejectsTinyCapacity)
{
    EXPECT_THROW(Cache("t", 32, 2, 64), std::invalid_argument);
}

TEST(Cache, RejectsNonPowerOfTwoLine)
{
    EXPECT_THROW(Cache("t", 4096, 1, 48), std::invalid_argument);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c("t", 4096, 2, 64);
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103f, false).hit); // same line
    EXPECT_FALSE(c.access(0x1040, false).hit); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, MissRate)
{
    Cache c("t", 4096, 2, 64);
    c.access(0, false);
    c.access(0, false);
    c.access(64, false);
    c.access(64, false);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.5);
}

TEST(Cache, LruEviction)
{
    // Direct-mapped-like pressure on one set: 1 way, lines that
    // collide evict each other.
    Cache c("t", 64, 1, 64); // a single set, single way
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_FALSE(c.access(64, false).hit);  // evicts line 0
    EXPECT_FALSE(c.access(0, false).hit);   // miss again
}

TEST(Cache, LruKeepsMostRecentlyUsed)
{
    // 2-way single set: A, B, touch A, insert C -> B evicted.
    Cache c("t", 128, 2, 64);
    ASSERT_EQ(c.numSets(), 1u);
    c.access(0 * 64, false);   // A
    c.access(1 * 64, false);   // B
    c.access(0 * 64, false);   // touch A
    c.access(2 * 64, false);   // C evicts B
    EXPECT_TRUE(c.probe(0 * 64));
    EXPECT_FALSE(c.probe(1 * 64));
    EXPECT_TRUE(c.probe(2 * 64));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c("t", 64, 1, 64);
    c.access(0, true); // dirty
    CacheAccessResult r = c.access(64, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_addr, 0u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c("t", 64, 1, 64);
    c.access(0, false);
    CacheAccessResult r = c.access(64, false);
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c("t", 64, 1, 64);
    c.access(0, false); // clean fill
    c.access(0, true);  // write hit dirties it
    CacheAccessResult r = c.access(64, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, VictimAddressIsLineAligned)
{
    Cache c("t", 64, 1, 64);
    c.access(0x12345, true);
    CacheAccessResult r = c.access(0x12345 + 64, false);
    ASSERT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_addr % 64, 0u);
    EXPECT_EQ(r.victim_addr, (0x12345ull / 64) * 64);
}

TEST(Cache, ProbeDoesNotTouchStateOrStats)
{
    Cache c("t", 4096, 2, 64);
    c.access(0, false);
    const auto before = c.stats().accesses;
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(0x8000));
    EXPECT_EQ(c.stats().accesses, before);
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache c("t", 4096, 2, 64);
    c.access(0, true);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.probe(0));
    EXPECT_FALSE(c.access(0, false).hit);
}

TEST(Cache, CapacitySweepMonotoneMissRates)
{
    // Bigger caches can't miss more on the same address stream.
    std::vector<std::uint64_t> addrs;
    std::uint64_t x = 12345;
    for (int i = 0; i < 20000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        addrs.push_back((x >> 20) % (256 * 1024)); // 256KB footprint
    }
    double prev = 1.1;
    for (std::uint64_t kb : {8, 16, 32, 64, 128}) {
        Cache c("t", kb * 1024, 2, 64);
        for (auto a : addrs)
            c.access(a, false);
        const double mr = c.stats().missRate();
        EXPECT_LE(mr, prev + 0.01) << kb;
        prev = mr;
    }
}

TEST(Cache, FullyAssociativeBehaviour)
{
    // assoc == #lines: no conflict misses within capacity.
    Cache c("t", 8 * 64, 8, 64);
    ASSERT_EQ(c.numSets(), 1u);
    for (int i = 0; i < 8; ++i)
        c.access(static_cast<std::uint64_t>(i) * 64, false);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(c.probe(static_cast<std::uint64_t>(i) * 64)) << i;
}

} // namespace
