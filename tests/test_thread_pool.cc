/**
 * @file
 * Unit tests for the ppm::util thread pool and the parallelFor /
 * parallelMap helpers: lifecycle, range shapes, exception propagation,
 * nested submission, and a tasks >> threads stress run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace {

using namespace ppm;

TEST(ThreadPool, ConstructionAndIdleTeardown)
{
    // Pools of every interesting size construct and destroy cleanly
    // without ever receiving work.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        util::ThreadPool pool(n);
        EXPECT_EQ(pool.size(), n);
    }
    // 0 = environment default, at least one thread.
    util::ThreadPool auto_sized(0);
    EXPECT_GE(auto_sized.size(), 1u);
}

TEST(ThreadPool, ForEachEmptyRangeRunsNothing)
{
    util::ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.forEach(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ForEachSingleElement)
{
    util::ThreadPool pool(4);
    std::vector<std::size_t> seen;
    pool.forEach(1, [&](std::size_t i) { seen.push_back(i); });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 0u);
}

TEST(ThreadPool, ForEachOddRangeCoversEveryIndexOnce)
{
    util::ThreadPool pool(4);
    const std::size_t n = 37; // odd, not a multiple of the pool size
    std::vector<std::atomic<int>> counts(n);
    pool.forEach(n, [&](std::size_t i) { ++counts[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    util::ThreadPool pool(1);
    std::set<std::thread::id> threads;
    pool.forEach(16, [&](std::size_t) {
        threads.insert(std::this_thread::get_id());
    });
    ASSERT_EQ(threads.size(), 1u);
    EXPECT_EQ(*threads.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    util::ThreadPool pool(4);
    EXPECT_THROW(
        pool.forEach(64,
                     [&](std::size_t i) {
                         if (i == 13)
                             throw std::runtime_error("boom");
                     }),
        std::runtime_error);
}

TEST(ThreadPool, PoolUsableAfterException)
{
    util::ThreadPool pool(4);
    EXPECT_THROW(pool.forEach(8,
                              [](std::size_t) {
                                  throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
    std::atomic<int> sum{0};
    pool.forEach(100, [&](std::size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ExceptionInSerialPathPropagates)
{
    util::ThreadPool pool(1);
    EXPECT_THROW(pool.forEach(4,
                              [](std::size_t) {
                                  throw std::invalid_argument("bad");
                              }),
                 std::invalid_argument);
}

TEST(ThreadPool, NestedSubmissionRunsInlineWithoutDeadlock)
{
    util::ThreadPool pool(4);
    const std::size_t outer = 8, inner = 16;
    std::vector<std::atomic<int>> counts(outer * inner);
    pool.forEach(outer, [&](std::size_t i) {
        EXPECT_TRUE(util::ThreadPool::insideTask());
        pool.forEach(inner, [&](std::size_t j) {
            ++counts[i * inner + j];
        });
    });
    EXPECT_FALSE(util::ThreadPool::insideTask());
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, StressManyMoreTasksThanThreads)
{
    util::ThreadPool pool(4);
    const std::size_t n = 50000;
    std::atomic<std::uint64_t> sum{0};
    pool.forEach(n, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelMap, PreservesOrder)
{
    util::setGlobalThreads(4);
    std::vector<int> items(101);
    std::iota(items.begin(), items.end(), 0);
    auto squares = util::parallelMap(items, [](const int &v) {
        return v * v;
    });
    ASSERT_EQ(squares.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(squares[i], items[i] * items[i]);
    util::setGlobalThreads(0);
}

TEST(ParallelFor, GlobalPoolSizeFollowsSetGlobalThreads)
{
    util::setGlobalThreads(3);
    EXPECT_EQ(util::globalPool().size(), 3u);
    util::setGlobalThreads(1);
    EXPECT_EQ(util::globalPool().size(), 1u);
    util::setGlobalThreads(0); // back to the environment default
    EXPECT_EQ(util::globalPool().size(), util::configuredThreads());
}

TEST(ConfiguredThreads, HonoursEnvironmentVariable)
{
    ASSERT_EQ(setenv("PPM_THREADS", "3", 1), 0);
    EXPECT_EQ(util::configuredThreads(), 3u);
    ASSERT_EQ(setenv("PPM_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(util::configuredThreads(), 1u); // falls back to hardware
    ASSERT_EQ(unsetenv("PPM_THREADS"), 0);
    EXPECT_GE(util::configuredThreads(), 1u);
}

} // namespace
